// lake_server: the online half of data discovery as a long-lived service —
// load a saved ShardedLakeIndex ("LAKS" manifest or legacy single file)
// once, then serve join/union queries to concurrent clients over a local
// socket, batching in-flight requests into the index's batch entry points.
//
// Serve:        ./build/lake_server <index-file> <socket-path>
//               (runs until SIGINT/SIGTERM, then drains and prints stats)
//
// Distributed:  ./build/lake_server --distributed <manifest.laks> <socket-path>
//               spawns one lake_shard_worker *process* per manifest shard
//               (worker s serves on "<socket-path>.shard-s"), connects a
//               DistributedLakeIndex coordinator over them, and serves the
//               same public socket — clients cannot tell the difference.
//               SIGINT drains the coordinator, then SIGTERMs the workers.
//
// With no arguments, runs a self-contained demo: builds a small in-memory
// lake, serves it from a temp socket, queries it with a LakeClient from
// this same process, and shuts down gracefully.
//
// The matching client side lives in lake_search ("remote" command) and in
// server/lake_client.h for embedding into other programs.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "search/lake_manifest.h"
#include "search/sharded_lake_index.h"
#include "server/distributed_lake_index.h"
#include "server/lake_client.h"
#include "server/lake_server.h"
#include "server/shard_worker.h"
#include "util/random.h"

using namespace tsfm;
namespace fs = std::filesystem;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

void PrintStats(const server::ServerStats& stats) {
  std::printf("served %llu requests in %llu batches (max batch %llu)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.max_batch));
  if (stats.requests > 0) {
    std::printf("mean queue wait %.3f ms, mean latency %.3f ms\n",
                stats.total_queue_wait_ms / static_cast<double>(stats.requests),
                stats.total_latency_ms / static_cast<double>(stats.requests));
  }
}

int Serve(const std::string& index_path, const std::string& socket_path) {
  auto loaded = search::ShardedLakeIndex::Load(index_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %zu tables, dim %zu, %s storage, %zu shard%s\n",
              loaded.value().num_tables(), loaded.value().dim(),
              loaded.value().options().storage == search::Storage::kSq8
                  ? "sq8"
                  : "float32",
              loaded.value().num_shards(),
              loaded.value().num_shards() == 1 ? "" : "s");

  server::LakeServer lake_server(std::move(loaded).value());
  if (Status status = lake_server.Start(socket_path); !status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("serving on %s (ctrl-c to drain and exit)\n", socket_path.c_str());
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("\ndraining...\n");
  lake_server.Stop();
  PrintStats(lake_server.stats());  // still readable after Stop
  return 0;
}

int ServeDistributed(const std::string& manifest_path,
                     const std::string& socket_path) {
  // Workers first (the fleet forks before this process grows threads and
  // rolls partial failures back itself), then the coordinator handshake.
  // Worker s serves on "<socket_path>.shard-s"; workers ignore the
  // terminal's group-wide SIGINT and stop only on the fleet's SIGTERM,
  // after the coordinator has drained.
  auto fleet = server::ShardWorkerFleet::Spawn(manifest_path, socket_path);
  if (!fleet.ok()) {
    std::fprintf(stderr, "worker fleet failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }

  auto coordinator = server::DistributedLakeIndex::Connect(
      manifest_path, fleet.value().sockets());
  if (!coordinator.ok()) {
    std::fprintf(stderr, "coordinator connect failed: %s\n",
                 coordinator.status().ToString().c_str());
    return 1;
  }
  // Workers inherit the row codec from the shard files they load; surface
  // the manifest's storage here so operators can tell what the fleet runs.
  const char* storage = "float32";
  if (auto manifest = search::LoadLakeManifest(manifest_path); manifest.ok() &&
      manifest.value().storage == search::Storage::kSq8) {
    storage = "sq8";
  }
  std::printf(
      "distributed lake: %zu tables, dim %zu, %s storage, %zu worker "
      "processes\n",
      coordinator.value().num_tables(), coordinator.value().dim(), storage,
      fleet.value().num_workers());

  server::LakeServer lake_server(std::move(coordinator).value());
  if (Status status = lake_server.Start(socket_path); !status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("serving on %s (ctrl-c to drain and exit)\n",
              socket_path.c_str());
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("\ndraining coordinator, stopping %zu workers...\n",
              fleet.value().num_workers());
  lake_server.Stop();
  PrintStats(lake_server.stats());
  // Worker-side view of the same traffic: each public query fans out as
  // one SHARD_QUERY per worker, so the fleet total is ~requests x workers.
  const server::DistributedBackend& backend =
      static_cast<const server::DistributedBackend&>(lake_server.backend());
  if (auto worker_stats = backend.index().AggregateStats();
      worker_stats.ok()) {
    std::printf("worker fleet: %llu shard queries served\n",
                static_cast<unsigned long long>(worker_stats.value().requests));
  }
  fleet.value().StopAll();
  return 0;
}

int Demo() {
  const size_t dim = 16;
  Rng rng(11);
  search::ShardedLakeIndex index(dim, /*num_shards=*/3);
  for (int t = 0; t < 40; ++t) {
    std::vector<std::vector<float>> cols(1 + t % 3);
    for (auto& col : cols) {
      col.resize(dim);
      for (auto& x : col) x = static_cast<float>(rng.Normal());
    }
    index.AddTable("demo_" + std::to_string(t), cols);
  }
  std::vector<float> query(dim);
  for (auto& x : query) x = static_cast<float>(rng.Normal());

  std::string socket_path = "/tmp/tsfm_lake_server_demo_" +
                            std::to_string(::getpid()) + ".sock";
  server::LakeServer lake_server(std::move(index));
  if (Status status = lake_server.Start(socket_path); !status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("demo lake (40 tables, 3 shards) serving on %s\n",
              socket_path.c_str());

  server::LakeClient client;
  if (!client.Connect(socket_path).ok()) return 1;
  auto joinable = client.QueryJoinable(query, 5);
  if (!joinable.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 joinable.status().ToString().c_str());
    return 1;
  }
  std::printf("joinable candidates:\n");
  for (const auto& id : joinable.value()) std::printf("  %s\n", id.c_str());

  auto stats = client.Stats();
  if (stats.ok()) PrintStats(stats.value());
  client.Close();
  lake_server.Stop();
  std::printf("drained cleanly\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::printf("(no arguments; running the self-contained demo)\n\n");
    return Demo();
  }
  if (argc == 4 && std::string(argv[1]) == "--distributed") {
    return ServeDistributed(argv[2], argv[3]);
  }
  if (argc == 3) return Serve(argv[1], argv[2]);
  std::fprintf(stderr,
               "usage: lake_server <index-file> <socket-path>\n"
               "       lake_server --distributed <manifest.laks> <socket-path>\n");
  return 2;
}
