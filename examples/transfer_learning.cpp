// Transfer across tasks and domains (paper Sec IV-C.4 / Fig 8): fine-tune
// TabSketchFM on a JOIN task over one synthetic domain, then use it for
// UNION search over a different domain — the deployment pattern the paper
// recommends for enterprises (train offline, apply online).
//
//   ./build/examples/transfer_learning
#include <cstdio>

#include "core/cross_encoder.h"
#include "core/embedder.h"
#include "core/finetuner.h"
#include "core/pretrainer.h"
#include "lakebench/corpus.h"
#include "lakebench/finetune_benchmarks.h"
#include "lakebench/search_benchmarks.h"
#include "search/pipeline.h"

using namespace tsfm;

int main() {
  lakebench::DomainCatalog catalog(31, 150);
  SketchOptions sopt;
  sopt.num_perm = 16;

  // Target: union search corpus.
  lakebench::UnionSearchScale uscale;
  uscale.num_seeds = 6;
  uscale.variants_per_seed = 8;
  uscale.num_queries = 12;
  auto bench = lakebench::MakeUnionSearch(catalog, uscale, 32, "target-union");
  bench.BuildSketches(sopt);

  // Source: a join-flavoured regression task (containment estimation).
  lakebench::BenchScale bscale;
  bscale.num_pairs = 80;
  bscale.rows = 32;
  auto source_task = lakebench::MakeWikiContainment(catalog, bscale, 33);
  source_task.BuildSketches(sopt);
  // In-domain reference: the union-flavoured task.
  auto reference_task = lakebench::MakeTusSantos(catalog, bscale, 34);
  reference_task.BuildSketches(sopt);

  lakebench::CorpusScale cscale;
  cscale.num_tables = 18;
  auto corpus = lakebench::MakePretrainCorpus(catalog, cscale, 35);
  std::vector<Table> vocab_tables = corpus;
  vocab_tables.insert(vocab_tables.end(), bench.tables.begin(), bench.tables.end());
  vocab_tables.insert(vocab_tables.end(), source_task.tables.begin(),
                      source_task.tables.end());
  vocab_tables.insert(vocab_tables.end(), reference_task.tables.begin(),
                      reference_task.tables.end());
  text::Vocab vocab = lakebench::BuildVocabFromTables(vocab_tables, true);

  core::TabSketchFMConfig config;
  config.encoder.hidden = 32;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 64;
  config.vocab_size = vocab.size();
  config.num_perm = sopt.num_perm;
  text::Tokenizer tokenizer(&vocab);
  core::InputEncoder input_encoder(&config, &tokenizer);

  Rng rng(36);
  core::TabSketchFM pretrained(config, &rng);
  {
    std::vector<core::EncodedTable> train, val;
    for (size_t i = 0; i < corpus.size(); ++i) {
      corpus[i].InferTypes();
      auto enc = input_encoder.EncodeTable(BuildTableSketch(corpus[i], sopt));
      (i % 8 == 0 ? val : train).push_back(std::move(enc));
    }
    core::PretrainOptions popt;
    popt.epochs = 2;
    core::Pretrainer pretrainer(&pretrained, popt);
    pretrainer.Train(train, val);
  }

  auto finetune = [&](const core::PairDataset& task) {
    auto encoder = std::make_unique<core::CrossEncoder>(
        config, task.task, task.num_outputs, &rng, &pretrained);
    core::FinetuneOptions fopt;
    fopt.epochs = 6;
    fopt.patience = 3;
    core::Finetuner finetuner(encoder.get(), &input_encoder, fopt);
    finetuner.Train(task);
    return encoder;
  };
  auto transfer_model = finetune(source_task);     // join -> union transfer
  auto reference_model = finetune(reference_task);  // union -> union

  auto evaluate = [&](core::CrossEncoder* model) {
    core::Embedder embedder(model->model(), &input_encoder);
    auto embed = [&](size_t t) {
      return embedder.ColumnEmbeddings(bench.sketches[t]);
    };
    return search::EvaluateEmbeddingSearch(bench, embed, 7);
  };

  auto transfer_report = evaluate(transfer_model.get());
  auto reference_report = evaluate(reference_model.get());

  std::printf("union search on the target lake (k up to 7):\n");
  std::printf("  fine-tuned on JOIN task (transfer):  mean F1 %.2f  R@7 %.2f\n",
              100 * transfer_report.mean_f1, transfer_report.RecallAt(7));
  std::printf("  fine-tuned on UNION task (matched):  mean F1 %.2f  R@7 %.2f\n",
              100 * reference_report.mean_f1, reference_report.RecallAt(7));
  double gap = 100 * (reference_report.mean_f1 - transfer_report.mean_f1);
  std::printf(
      "\ntransfer gap: %.2f F1 points — the paper's Fig 8 finding is that this\n"
      "gap stays small: pretrained sketch representations carry across tasks.\n",
      gap);
  return 0;
}
