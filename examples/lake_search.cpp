// lake_search: offline/online data discovery over a directory of CSVs —
// the paper's recommended deployment (Sec V).
//
// Offline:  ./build/lake_search index <dir-of-csvs> <index-file> [flat|hnsw] [shards]
// Online:   ./build/lake_search query <index-file> <query.csv> [k]
// Remote:   ./build/lake_search remote <socket-path> <query.csv> [k]
//           (queries a running lake_server instead of loading the index)
//
// The offline half picks the ANN backend (exact flat scan by default, HNSW
// for big lakes) and the shard count (1 keeps a single index; N > 1 writes
// a "LAKS" manifest plus one shard file per shard); both choices are stored
// on disk, so the online half reopens the index with identical behaviour.
// Legacy single-file indexes still load as one shard.
//
// With no arguments, runs a self-contained demo: synthesizes a small lake
// in a temp directory, indexes it with both backends, and queries it.
#include <cstdio>
#include <filesystem>

#include "core/embedder.h"
#include "core/model.h"
#include "lakebench/corpus.h"
#include "lakebench/datagen.h"
#include "search/sharded_lake_index.h"
#include "server/lake_client.h"
#include "table/csv.h"

using namespace tsfm;
namespace fs = std::filesystem;

namespace {

// A fixed small config so offline and online halves agree without shipping
// a model checkpoint next to the index. A real deployment would store the
// model alongside (nn::SaveCheckpoint) — see README.
core::TabSketchFMConfig FixedConfig(size_t vocab_size) {
  core::TabSketchFMConfig config;
  config.encoder.hidden = 32;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 64;
  config.encoder.dropout = 0.0f;
  config.vocab_size = vocab_size;
  config.num_perm = 16;
  return config;
}

// Deterministic vocabulary so both halves tokenize identically.
text::Vocab FixedVocab() {
  lakebench::DomainCatalog catalog(99, 100);
  lakebench::CorpusScale cscale;
  cscale.num_tables = 12;
  cscale.augmentations = 0;
  auto corpus = lakebench::MakePretrainCorpus(catalog, cscale, 99);
  return lakebench::BuildVocabFromTables(corpus, /*include_cells=*/false);
}

std::vector<std::vector<float>> EmbedTable(const core::Embedder& embedder,
                                           Table* table) {
  table->InferTypes();
  SketchOptions sopt;
  sopt.num_perm = 16;
  return embedder.ColumnEmbeddings(BuildTableSketch(*table, sopt));
}

// The full model/encoder wiring every command needs, built once and kept
// together so the index/query/remote paths cannot drift apart. Members
// hold pointers into each other; construct in place and don't move.
struct EmbedderStack {
  EmbedderStack()
      : vocab(FixedVocab()),
        config(FixedConfig(vocab.size())),
        rng(1),
        model(config, &rng),
        tokenizer(&vocab),
        input_encoder(&config, &tokenizer),
        embedder(&model, &input_encoder) {}

  EmbedderStack(const EmbedderStack&) = delete;
  EmbedderStack& operator=(const EmbedderStack&) = delete;

  size_t dim() const {
    return config.encoder.hidden + 2 * config.num_perm + config.encoder.hidden;
  }

  text::Vocab vocab;
  core::TabSketchFMConfig config;
  Rng rng;
  core::TabSketchFM model;
  text::Tokenizer tokenizer;
  core::InputEncoder input_encoder;
  core::Embedder embedder;
};

int IndexCommand(const std::string& dir, const std::string& index_path,
                 search::IndexBackend backend, size_t shards,
                 search::Storage storage) {
  EmbedderStack stack;

  search::IndexOptions options;
  options.backend = backend;
  options.storage = storage;
  search::ShardedLakeIndex lake(stack.dim(), shards, options);

  size_t indexed = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".csv") continue;
    auto parsed = ReadCsvFile(entry.path().string());
    if (!parsed.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", entry.path().c_str(),
                   parsed.status().ToString().c_str());
      continue;
    }
    Table table = parsed.value();
    lake.AddTable(entry.path().filename().string(),
                  EmbedTable(stack.embedder, &table));
    ++indexed;
  }
  Status status = lake.Save(index_path);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu tables -> %s (%s backend, %s storage, %zu shard%s)\n",
              indexed, index_path.c_str(),
              backend == search::IndexBackend::kHnsw ? "hnsw" : "flat",
              lake.options().storage == search::Storage::kSq8 ? "sq8"
                                                              : "float32",
              lake.num_shards(), lake.num_shards() == 1 ? "" : "s");
  return 0;
}

int QueryCommand(const std::string& index_path, const std::string& csv_path,
                 size_t k) {
  auto loaded = search::ShardedLakeIndex::Load(index_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %zu tables, dim %zu, %s backend, %s storage, %zu shard%s\n",
              loaded.value().num_tables(), loaded.value().dim(),
              loaded.value().options().backend == search::IndexBackend::kHnsw
                  ? "hnsw"
                  : "flat",
              loaded.value().options().storage == search::Storage::kSq8
                  ? "sq8"
                  : "float32",
              loaded.value().num_shards(),
              loaded.value().num_shards() == 1 ? "" : "s");
  auto parsed = ReadCsvFile(csv_path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "query read failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }

  EmbedderStack stack;
  Table table = parsed.value();
  auto columns = EmbedTable(stack.embedder, &table);
  std::printf("unionable candidates for %s:\n", csv_path.c_str());
  for (const auto& id : loaded.value().QueryUnionable(columns, k)) {
    std::printf("  %s\n", id.c_str());
  }
  std::printf("joinable candidates on column '%s':\n",
              table.column(0).name.c_str());
  for (const auto& id : loaded.value().QueryJoinable(columns[0], k)) {
    std::printf("  %s\n", id.c_str());
  }
  return 0;
}

// Same embedding + query flow as QueryCommand, but the index lives in a
// running lake_server process; only the query table is embedded locally.
int RemoteCommand(const std::string& socket_path, const std::string& csv_path,
                  size_t k) {
  auto parsed = ReadCsvFile(csv_path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "query read failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  EmbedderStack stack;
  Table table = parsed.value();
  // Embed before connecting: the server dedicates a handler to each open
  // connection, and the model forward pass can take a while.
  auto columns = EmbedTable(stack.embedder, &table);
  server::LakeClient client;
  if (Status status = client.Connect(socket_path); !status.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto unionable = client.QueryUnionable(columns, k);
  if (!unionable.ok()) {
    std::fprintf(stderr, "union query failed: %s\n",
                 unionable.status().ToString().c_str());
    return 1;
  }
  std::printf("unionable candidates for %s:\n", csv_path.c_str());
  for (const auto& id : unionable.value()) std::printf("  %s\n", id.c_str());

  auto joinable = client.QueryJoinable(columns[0], k);
  if (!joinable.ok()) {
    std::fprintf(stderr, "join query failed: %s\n",
                 joinable.status().ToString().c_str());
    return 1;
  }
  std::printf("joinable candidates on column '%s':\n",
              table.column(0).name.c_str());
  for (const auto& id : joinable.value()) std::printf("  %s\n", id.c_str());
  return 0;
}

int Demo() {
  fs::path dir = fs::temp_directory_path() / "tsfm_lake_demo";
  fs::create_directories(dir);
  lakebench::DomainCatalog catalog(5, 80);
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    Table t = lakebench::GenerateDomainTable(
        catalog.domain(static_cast<size_t>(i) % catalog.size()),
        "demo_" + std::to_string(i), 24, &rng);
    if (Status s = WriteCsvFile(t, (dir / (t.id() + ".csv")).string());
        !s.ok()) {
      std::fprintf(stderr, "write %s: %s\n", t.id().c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }
  // Query with a fresh table from domain 0: demo_0.csv should rank high.
  Table query = lakebench::GenerateDomainTable(catalog.domain(0), "query", 24, &rng);
  std::string query_path = (dir / "query.csv").string();
  if (Status s = WriteCsvFile(query, query_path); !s.ok()) {
    std::fprintf(stderr, "write query: %s\n", s.ToString().c_str());
    return 1;
  }
  // Index and query with both ANN backends, unsharded and sharded; the
  // flat results are identical across shard counts while HNSW stays
  // sublinear as the lake grows.
  for (auto backend : {search::IndexBackend::kFlat, search::IndexBackend::kHnsw}) {
    for (size_t shards : {size_t{1}, size_t{3}}) {
      std::string index_path = (dir / "lake.idx").string();
      if (IndexCommand(dir.string(), index_path, backend, shards,
                       search::Storage::kFloat32) != 0) {
        return 1;
      }
      if (int rc = QueryCommand(index_path, query_path, 3); rc != 0) return rc;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::printf("(no arguments; running the self-contained demo)\n\n");
    return Demo();
  }
  std::string command = argv[1];
  if (command == "index" && argc >= 4) {
    // Positional: <dir> <index-file> [flat|hnsw] [shards]; the row codec is
    // a flag (--storage sq8|float32) so old invocations keep working.
    search::IndexBackend backend = search::IndexBackend::kFlat;
    search::Storage storage = search::Storage::kFloat32;
    std::vector<std::string> positional;
    for (int i = 4; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--storage") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "--storage needs a value (sq8 or float32)\n");
          return 2;
        }
        std::string value = argv[++i];
        if (value == "sq8") {
          storage = search::Storage::kSq8;
        } else if (value != "float32") {
          std::fprintf(stderr,
                       "unknown storage '%s' (expected sq8 or float32)\n",
                       value.c_str());
          return 2;
        }
      } else {
        positional.push_back(std::move(arg));
      }
    }
    if (positional.size() > 2) {
      std::fprintf(stderr, "too many index arguments\n");
      return 2;
    }
    if (!positional.empty()) {
      if (positional[0] == "hnsw") {
        backend = search::IndexBackend::kHnsw;
      } else if (positional[0] != "flat") {
        std::fprintf(stderr, "unknown backend '%s' (expected flat or hnsw)\n",
                     positional[0].c_str());
        return 2;
      }
    }
    size_t shards =
        positional.size() == 2 ? std::strtoul(positional[1].c_str(), nullptr, 10)
                               : 1;
    return IndexCommand(argv[2], argv[3], backend, shards, storage);
  }
  if (command == "query" && (argc == 4 || argc == 5)) {
    size_t k = argc == 5 ? std::strtoul(argv[4], nullptr, 10) : 5;
    return QueryCommand(argv[2], argv[3], k);
  }
  if (command == "remote" && (argc == 4 || argc == 5)) {
    size_t k = argc == 5 ? std::strtoul(argv[4], nullptr, 10) : 5;
    return RemoteCommand(argv[2], argv[3], k);
  }
  std::fprintf(stderr,
               "usage: lake_search index <dir> <index-file> [flat|hnsw] "
               "[shards] [--storage sq8|float32]\n"
               "       lake_search query <index-file> <query.csv> [k]\n"
               "       lake_search remote <socket-path> <query.csv> [k]\n");
  return 2;
}
