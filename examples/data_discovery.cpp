// Data discovery over a synthetic lake: build a corpus, fine-tune
// TabSketchFM cross-encoders, and run union, join, and subset search —
// the paper's three headline applications, end to end.
//
//   ./build/examples/data_discovery
#include <cstdio>

#include "baselines/sbert_like.h"
#include "core/cross_encoder.h"
#include "core/embedder.h"
#include "core/finetuner.h"
#include "core/pretrainer.h"
#include "lakebench/corpus.h"
#include "lakebench/finetune_benchmarks.h"
#include "lakebench/search_benchmarks.h"
#include "search/pipeline.h"

using namespace tsfm;

int main() {
  lakebench::DomainCatalog catalog(21, 150);
  SketchOptions sopt;
  sopt.num_perm = 16;

  // --------------------------------------------------------------------
  // The data lake: a union-search corpus (sliced seed tables) plus a join
  // corpus (entity-keyed tables).
  // --------------------------------------------------------------------
  lakebench::UnionSearchScale uscale;
  uscale.num_seeds = 6;
  uscale.variants_per_seed = 8;
  uscale.num_queries = 10;
  auto union_bench = lakebench::MakeUnionSearch(catalog, uscale, 22, "lake-union");
  union_bench.BuildSketches(sopt);

  lakebench::WikiJoinScale wscale;
  wscale.num_tables = 80;
  wscale.num_queries = 10;
  auto join_bench = lakebench::MakeWikiJoinSearch(wscale, 23);
  join_bench.BuildSketches(sopt);

  lakebench::EurostatScale escale;
  escale.num_seeds = 8;
  auto subset_bench = lakebench::MakeEurostatSubsetSearch(catalog, escale, 24);
  subset_bench.BuildSketches(sopt);

  std::printf("lake: %zu union tables, %zu join tables, %zu subset tables\n",
              union_bench.tables.size(), join_bench.tables.size(),
              subset_bench.tables.size());

  // --------------------------------------------------------------------
  // Pretrain TabSketchFM, then fine-tune one cross-encoder per task.
  // --------------------------------------------------------------------
  lakebench::CorpusScale cscale;
  cscale.num_tables = 18;
  auto corpus = lakebench::MakePretrainCorpus(catalog, cscale, 25);
  std::vector<Table> vocab_tables = corpus;
  for (const auto* b : {&union_bench, &join_bench, &subset_bench}) {
    vocab_tables.insert(vocab_tables.end(), b->tables.begin(), b->tables.end());
  }
  text::Vocab vocab = lakebench::BuildVocabFromTables(vocab_tables, true);

  core::TabSketchFMConfig config;
  config.encoder.hidden = 32;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 64;
  config.vocab_size = vocab.size();
  config.num_perm = sopt.num_perm;
  text::Tokenizer tokenizer(&vocab);
  core::InputEncoder input_encoder(&config, &tokenizer);

  Rng rng(26);
  core::TabSketchFM pretrained(config, &rng);
  {
    std::vector<core::EncodedTable> train, val;
    for (size_t i = 0; i < corpus.size(); ++i) {
      corpus[i].InferTypes();
      auto enc = input_encoder.EncodeTable(BuildTableSketch(corpus[i], sopt));
      (i % 8 == 0 ? val : train).push_back(std::move(enc));
    }
    core::PretrainOptions popt;
    popt.epochs = 2;
    core::Pretrainer pretrainer(&pretrained, popt);
    auto r = pretrainer.Train(train, val);
    std::printf("pretrained: %zu epochs, val loss %.3f\n", r.epochs_run,
                r.best_val_loss);
  }

  lakebench::BenchScale bscale;
  bscale.num_pairs = 80;
  bscale.rows = 32;
  auto union_task = lakebench::MakeTusSantos(catalog, bscale, 27);
  auto join_task = lakebench::MakeWikiContainment(catalog, bscale, 28);
  auto subset_task = lakebench::MakeCkanSubset(catalog, bscale, 29);

  auto finetune = [&](core::PairDataset* task, const char* label) {
    task->BuildSketches(sopt);
    auto encoder = std::make_unique<core::CrossEncoder>(
        config, task->task, task->num_outputs, &rng, &pretrained);
    core::FinetuneOptions fopt;
    fopt.epochs = 6;
    fopt.patience = 3;
    core::Finetuner finetuner(encoder.get(), &input_encoder, fopt);
    auto r = finetuner.Train(*task);
    std::printf("fine-tuned %-16s %zu epochs, val loss %.3f\n", label,
                r.epochs_run, r.best_val_loss);
    return encoder;
  };
  auto union_model = finetune(&union_task, "union");
  auto join_model = finetune(&join_task, "join");
  auto subset_model = finetune(&subset_task, "subset");

  // --------------------------------------------------------------------
  // Search each corpus with the matching fine-tuned model.
  // --------------------------------------------------------------------
  auto evaluate = [&](const lakebench::SearchBenchmark& bench,
                      core::CrossEncoder* model, size_t k, const char* label,
                      const search::SearchRunOptions& run = {}) {
    core::Embedder embedder(model->model(), &input_encoder);
    auto embed = [&](size_t t) {
      return embedder.ColumnEmbeddings(bench.sketches[t]);
    };
    auto report = search::EvaluateEmbeddingSearch(bench, embed, k, run);
    std::printf("%-14s mean F1 %.2f   P@%zu %.2f   R@%zu %.2f\n", label,
                100 * report.mean_f1, k, report.PrecisionAt(k), k,
                report.RecallAt(k));
  };

  std::printf("\nsearch quality (higher is better):\n");
  evaluate(union_bench, union_model.get(), 7, "union search");
  evaluate(join_bench, join_model.get(), 10, "join search");
  evaluate(subset_bench, subset_model.get(), 11, "subset search");

  // The same pipeline through the approximate HNSW backend: at lake scale
  // this trades a little recall for sublinear query time.
  search::SearchRunOptions hnsw_run;
  hnsw_run.index.backend = search::IndexBackend::kHnsw;
  evaluate(join_bench, join_model.get(), 10, "join (hnsw)", hnsw_run);

  // --------------------------------------------------------------------
  // Inspect one join query: show the top-3 tables for a query column.
  // --------------------------------------------------------------------
  core::Embedder embedder(join_model->model(), &input_encoder);
  auto ranked = search::RunSearch(
      join_bench,
      [&](size_t t) { return embedder.ColumnEmbeddings(join_bench.sketches[t]); },
      3);
  const auto& q = join_bench.queries[0];
  std::printf("\njoin query: table '%s', column '%s'\n",
              join_bench.tables[q.table_index].id().c_str(),
              join_bench.tables[q.table_index].column(0).name.c_str());
  for (size_t i = 0; i < 3 && i < ranked[0].size(); ++i) {
    std::printf("  match %zu: %s\n", i + 1,
                join_bench.tables[ranked[0][i]].id().c_str());
  }
  return 0;
}
