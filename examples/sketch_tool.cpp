// sketch_tool: command-line sketch inspector for CSV files.
//
// Usage:
//   ./build/examples/sketch_tool file.csv [file2.csv ...]
//
// Prints each file's inferred column types, numerical sketches, and — when
// two or more files are given — pairwise column MinHash Jaccard estimates,
// i.e. the raw signals TabSketchFM consumes. With no arguments, runs on two
// bundled demo tables.
#include <cstdio>

#include "sketch/table_sketch.h"
#include "table/csv.h"

using namespace tsfm;

namespace {

void PrintSketch(const Table& table, const TableSketch& sketch) {
  std::printf("table %s  (%zu rows x %zu cols)  \"%s\"\n", table.id().c_str(),
              table.num_rows(), table.num_columns(), table.description().c_str());
  for (const auto& col : sketch.columns) {
    const auto& v = col.numerical.values;
    std::printf(
        "  %-20s %-7s uniq=%.2f nan=%.2f width=%.2f p50=%.2f mean=%.2f "
        "min=%.2f max=%.2f\n",
        col.name.c_str(), ColumnTypeName(col.type), v[0], v[1], v[2], v[7], v[12],
        v[14], v[15]);
  }
}

void PrintOverlaps(const Table& ta, const TableSketch& sa, const Table& tb,
                   const TableSketch& sb) {
  std::printf("\ncolumn value-overlap estimates (MinHash Jaccard), %s vs %s:\n",
              ta.id().c_str(), tb.id().c_str());
  for (const auto& ca : sa.columns) {
    for (const auto& cb : sb.columns) {
      double j = ca.cell_minhash.EstimateJaccard(cb.cell_minhash);
      if (j > 0.05) {
        std::printf("  %-20s ~ %-20s jaccard ~= %.2f\n", ca.name.c_str(),
                    cb.name.c_str(), j);
      }
    }
  }
}

Table DemoTable(const char* id, const char* desc, const char* csv) {
  auto parsed = ParseCsv(csv);
  Table t = parsed.value();
  t.set_id(id);
  t.set_description(desc);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  SketchOptions sopt;
  sopt.num_perm = 64;

  std::vector<Table> tables;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      auto parsed = ReadCsvFile(argv[i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "error reading %s: %s\n", argv[i],
                     parsed.status().ToString().c_str());
        return 1;
      }
      tables.push_back(parsed.value());
    }
  } else {
    std::printf("(no files given; using bundled demo tables)\n\n");
    tables.push_back(DemoTable("employees", "employee directory",
                               "name,department,salary\n"
                               "ann lee,engineering,98000\n"
                               "bob wu,sales,72000\n"
                               "cy diaz,engineering,105000\n"));
    tables.push_back(DemoTable("payroll", "monthly payroll run",
                               "employee,gross pay,pay date\n"
                               "ann lee,8166.67,2024-05-31\n"
                               "cy diaz,8750.00,2024-05-31\n"
                               "dana kim,6100.00,2024-05-31\n"));
  }

  std::vector<TableSketch> sketches;
  for (auto& table : tables) {
    table.InferTypes();
    sketches.push_back(BuildTableSketch(table, sopt));
    PrintSketch(table, sketches.back());
    std::printf("\n");
  }
  for (size_t a = 0; a < tables.size(); ++a) {
    for (size_t b = a + 1; b < tables.size(); ++b) {
      PrintOverlaps(tables[a], sketches[a], tables[b], sketches[b]);
    }
  }
  return 0;
}
