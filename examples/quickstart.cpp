// Quickstart: sketch two CSV tables, pretrain a small TabSketchFM, and
// compare the tables with the pretrained embeddings.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cmath>
#include <cstdio>

#include "core/embedder.h"
#include "core/model.h"
#include "core/pretrainer.h"
#include "lakebench/corpus.h"
#include "table/csv.h"

using namespace tsfm;

namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

}  // namespace

int main() {
  // ---------------------------------------------------------------------
  // 1. Parse CSV data. In a real deployment these come from the data lake.
  // ---------------------------------------------------------------------
  auto sales_north = ParseCsv(
      "product,units sold,revenue,report date\n"
      "widget alpha,120,2400.50,2024-01-15\n"
      "widget beta,80,1600.00,2024-01-15\n"
      "gadget gamma,45,1350.75,2024-02-01\n"
      "widget alpha,130,2600.00,2024-02-15\n");
  auto sales_south = ParseCsv(
      "product,units sold,revenue,report date\n"
      "widget alpha,95,1900.00,2024-01-20\n"
      "gadget gamma,60,1800.25,2024-02-05\n"
      "doohickey delta,30,450.00,2024-02-20\n");
  auto hospital = ParseCsv(
      "hospital,admissions,avg stay days\n"
      "st mary,1200,4.5\n"
      "city general,3400,3.9\n");
  if (!sales_north.ok() || !sales_south.ok() || !hospital.ok()) {
    std::fprintf(stderr, "CSV parse failed\n");
    return 1;
  }
  Table north = sales_north.value();
  north.set_id("sales_north");
  north.set_description("regional product sales");
  Table south = sales_south.value();
  south.set_id("sales_south");
  south.set_description("regional product sales");
  Table other = hospital.value();
  other.set_id("hospital");
  other.set_description("hospital admissions");

  // ---------------------------------------------------------------------
  // 2. Build sketches (paper Sec III-A): per-column MinHash + numerical
  //    sketches and a table-level content snapshot.
  // ---------------------------------------------------------------------
  SketchOptions sopt;
  sopt.num_perm = 16;
  TableSketch north_sketch = BuildTableSketch(north, sopt);
  std::printf("Sketched '%s': %zu columns\n", north.id().c_str(),
              north_sketch.columns.size());
  for (const auto& col : north_sketch.columns) {
    std::printf("  column %-14s type=%-6s unique-frac(slot0)=%.2f\n",
                col.name.c_str(), ColumnTypeName(col.type),
                col.numerical.values[0]);
  }

  // ---------------------------------------------------------------------
  // 3. Pretrain a small TabSketchFM on a synthetic open-data corpus
  //    (stand-in for the paper's 197k CKAN/Socrata tables).
  // ---------------------------------------------------------------------
  lakebench::DomainCatalog catalog(7, 120);
  lakebench::CorpusScale cscale;
  cscale.num_tables = 24;
  auto corpus = lakebench::MakePretrainCorpus(catalog, cscale, 7);
  corpus.push_back(north);
  corpus.push_back(south);
  corpus.push_back(other);
  text::Vocab vocab = lakebench::BuildVocabFromTables(corpus, false);

  core::TabSketchFMConfig config;
  config.encoder.hidden = 32;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 64;
  config.vocab_size = vocab.size();
  config.num_perm = sopt.num_perm;

  Rng rng(1);
  core::TabSketchFM model(config, &rng);
  text::Tokenizer tokenizer(&vocab);
  core::InputEncoder input_encoder(&config, &tokenizer);

  std::vector<core::EncodedTable> train, val;
  for (size_t i = 0; i < corpus.size(); ++i) {
    corpus[i].InferTypes();
    auto enc = input_encoder.EncodeTable(BuildTableSketch(corpus[i], sopt));
    (i % 8 == 0 ? val : train).push_back(std::move(enc));
  }
  core::PretrainOptions popt;
  popt.epochs = 2;
  popt.batch_size = 8;
  core::Pretrainer pretrainer(&model, popt);
  auto result = pretrainer.Train(train, val);
  std::printf("\nPretrained %zu epochs, MLM val loss %.3f\n", result.epochs_run,
              result.best_val_loss);

  // ---------------------------------------------------------------------
  // 4. Embed and compare tables: the two sales tables should be far more
  //    similar to each other than to the hospital table.
  // ---------------------------------------------------------------------
  core::Embedder embedder(&model, &input_encoder);
  auto north_cols = embedder.ColumnEmbeddings(north_sketch);
  auto south_cols = embedder.ColumnEmbeddings(BuildTableSketch(south, sopt));
  auto other_cols = embedder.ColumnEmbeddings(BuildTableSketch(other, sopt));

  double sales_sim = Cosine(north_cols[0], south_cols[0]);
  double cross_sim = Cosine(north_cols[0], other_cols[0]);
  std::printf("\ncolumn similarity, sales_north.product vs:\n");
  std::printf("  sales_south.product : %.3f\n", sales_sim);
  std::printf("  hospital.hospital   : %.3f\n", cross_sim);
  std::printf("\n%s\n", sales_sim > cross_sim
                            ? "OK: unionable columns are closer in embedding space."
                            : "unexpected: similarity ordering inverted");
  return sales_sim > cross_sim ? 0 : 1;
}
