// lake_shard_worker: one shard of a distributed lake as its own process.
//
// Loads one index file — normally a "<lake>.laks.shard-N" LakeIndex file
// written by ShardedLakeIndex::Save — and serves it over an AF_UNIX socket
// until SIGINT/SIGTERM, then drains gracefully and prints its stats.
//
//   ./build/lake_shard_worker <shard-file> <socket-path>
//
// The worker speaks the full protocol: a DistributedLakeIndex coordinator
// scatters SHARD_QUERY/HEALTH/SHARD_TABLES frames at it, and plain
// join/union queries (lake_search remote) work too, which makes a single
// misbehaving shard directly debuggable. Spawning a whole worker fleet +
// coordinator in one command is `lake_server --distributed` instead.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "server/shard_worker.h"

using namespace tsfm;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: lake_shard_worker <shard-file> <socket-path>\n");
    return 2;
  }
  auto worker = server::ShardWorker::Load(argv[1]);
  if (!worker.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 worker.status().ToString().c_str());
    return 1;
  }
  const server::LakeBackend& backend = worker.value().server().backend();
  std::printf("shard: %zu tables, %zu columns, dim %zu\n",
              backend.num_tables(), backend.num_columns(), backend.dim());
  if (Status status = worker.value().Start(argv[2]); !status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("serving shard on %s (ctrl-c to drain and exit)\n", argv[2]);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("\ndraining...\n");
  worker.value().Stop();
  server::ServerStats stats = worker.value().server().stats();
  std::printf("served %llu ranked queries in %llu batches\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches));
  return 0;
}
