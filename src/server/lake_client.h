// Blocking client for the LakeServer wire protocol: connect to a serving
// socket, issue join/union/stats requests, read framed responses. One
// in-flight request per client; share nothing across threads, or give each
// thread its own client (connections are cheap on AF_UNIX).
#ifndef TSFM_SERVER_LAKE_CLIENT_H_
#define TSFM_SERVER_LAKE_CLIENT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "util/status.h"

namespace tsfm::server {

/// \brief A synchronous connection to a LakeServer.
///
/// Query methods mirror ShardedLakeIndex's Query* surface and return the
/// same ranked ids the index would return directly. A server-side error
/// comes back as that error's Status; transport failures (server gone,
/// malformed response) are kIoError/kParseError. The destructor closes.
class LakeClient {
 public:
  /// `max_frame_bytes` bounds the response frames this client will accept;
  /// raise it for very large k against very large lakes (the server's
  /// request-side ceiling is configured independently in ServerOptions).
  explicit LakeClient(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}
  ~LakeClient();

  LakeClient(const LakeClient&) = delete;
  LakeClient& operator=(const LakeClient&) = delete;

  /// Connects to a LakeServer's AF_UNIX socket path.
  Status Connect(const std::string& socket_path);

  /// Ranked table ids joinable on `column`, best first. k saturates at
  /// UINT32_MAX on the wire (the server clamps to its table count anyway).
  Result<std::vector<std::string>> QueryJoinable(
      const std::vector<float>& column, size_t k);

  /// Ranked table ids unionable with `columns` (all columns must share one
  /// dimension; an empty query is legal and returns no results).
  Result<std::vector<std::string>> QueryUnionable(
      const std::vector<std::vector<float>>& columns, size_t k);

  /// \brief Server-side batching/latency counters plus churn counters.
  ///
  /// The request is stamped protocol version 3 so the response carries the
  /// churn counters (the stats payload shape follows the request version).
  /// Pre-v3 servers reject the stamp with a clean version error — query a
  /// frozen deployment's stats with an older client build.
  Result<ServerStats> Stats();

  /// Live-ingests one table (ADD_TABLE). All columns must share one
  /// dimension. Requires a protocol-version-3 server.
  Status AddTable(const std::string& table_id,
                  const std::vector<std::vector<float>>& columns);

  /// Tombstones the newest live table named `table_id` (REMOVE_TABLE);
  /// kNotFound when no live table has that id. Requires a v3 server.
  Status RemoveTable(const std::string& table_id);

  /// Folds deltas + tombstones into the base segments (COMPACT). Blocks
  /// until the server's compaction finishes. Requires a v3 server.
  Status Compact();

  /// \brief Raw top-`m` column hits per query column (SHARD_QUERY).
  ///
  /// The scatter half of a distributed query: hits come back in the
  /// server's own table-handle space, sorted by (distance, table, column),
  /// one list per query column, for the coordinator to remap and k-way
  /// merge. Requires a protocol-version-2 server.
  Result<std::vector<std::vector<ShardHit>>> ShardQuery(
      const std::vector<std::vector<float>>& columns, size_t m);

  /// The server's identity/shape counters (HEALTH). Requires a v2 server.
  Result<ShardHealth> Health();

  /// The server's table ids in its local handle order (SHARD_TABLES).
  /// Requires a v2 server.
  Result<std::vector<std::string>> ShardTables();

  /// \brief Bounds how long each socket operation of a round trip may block.
  ///
  /// Sets both SO_RCVTIMEO and SO_SNDTIMEO: a worker that stops *reading*
  /// (wedged peer, SIGSTOP) would otherwise hang a large send forever once
  /// the socket buffer fills, exactly like one that stops writing. `ms`
  /// <= 0 restores the default (block forever). Applies to the current
  /// connection immediately and to future Connects. On expiry the pending
  /// call fails with kIoError ("timed out") and the connection closes —
  /// the request may still execute server-side, so only idempotent reads
  /// should be retried. The bound is per socket operation, not per round
  /// trip: a peer trickling bytes can stretch a round trip past it, but
  /// can no longer stall one indefinitely.
  void set_timeout_ms(int ms);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Result<Response> RoundTrip(const Request& request);
  void ApplyTimeouts();

  size_t max_frame_bytes_;
  int timeout_ms_ = 0;
  int fd_ = -1;
};

}  // namespace tsfm::server

#endif  // TSFM_SERVER_LAKE_CLIENT_H_
