// Blocking client for the LakeServer wire protocol: connect to a serving
// socket, issue join/union/stats requests, read framed responses. One
// in-flight request per client; share nothing across threads, or give each
// thread its own client (connections are cheap on AF_UNIX).
#ifndef TSFM_SERVER_LAKE_CLIENT_H_
#define TSFM_SERVER_LAKE_CLIENT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "util/status.h"

namespace tsfm::server {

/// \brief A synchronous connection to a LakeServer.
///
/// Query methods mirror ShardedLakeIndex's Query* surface and return the
/// same ranked ids the index would return directly. A server-side error
/// comes back as that error's Status; transport failures (server gone,
/// malformed response) are kIoError/kParseError. The destructor closes.
class LakeClient {
 public:
  /// `max_frame_bytes` bounds the response frames this client will accept;
  /// raise it for very large k against very large lakes (the server's
  /// request-side ceiling is configured independently in ServerOptions).
  explicit LakeClient(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}
  ~LakeClient();

  LakeClient(const LakeClient&) = delete;
  LakeClient& operator=(const LakeClient&) = delete;

  /// Connects to a LakeServer's AF_UNIX socket path.
  Status Connect(const std::string& socket_path);

  /// Ranked table ids joinable on `column`, best first. k saturates at
  /// UINT32_MAX on the wire (the server clamps to its table count anyway).
  Result<std::vector<std::string>> QueryJoinable(
      const std::vector<float>& column, size_t k);

  /// Ranked table ids unionable with `columns` (all columns must share one
  /// dimension; an empty query is legal and returns no results).
  Result<std::vector<std::string>> QueryUnionable(
      const std::vector<std::vector<float>>& columns, size_t k);

  /// Server-side batching and latency counters.
  Result<ServerStats> Stats();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Result<Response> RoundTrip(const Request& request);

  size_t max_frame_bytes_;
  int fd_ = -1;
};

}  // namespace tsfm::server

#endif  // TSFM_SERVER_LAKE_CLIENT_H_
