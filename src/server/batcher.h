// Coalesces concurrent in-flight queries into ShardedLakeIndex batch calls.
//
// Connection handlers block per request, so without coalescing the index
// would see one single-query call per connection and throughput would be
// bounded by connection count. The batcher instead parks each request on a
// queue; a dedicated dispatcher thread drains the queue, groups compatible
// requests (same opcode and k) — each group filling to max_batch from the
// whole queue, so a mixed-opcode burst still forms full per-key batches —
// and hands each group to the query ThreadPool as one QueryJoinableBatch /
// QueryUnionableBatch call. Up to pool-width groups run concurrently, so a
// slow group (huge k, cold shard) never head-of-line-blocks the groups
// formed after it; past that cap the dispatcher waits — deliberate
// backpressure, since a dispatcher racing ahead of the pool would shred a
// steady request stream into singleton batches, while waiting lets
// arrivals accumulate into full per-key groups for the multi-query scan.
// Throughput therefore scales with shard count and pool width rather than
// connection count or the latency of the slowest in-flight group.
#ifndef TSFM_SERVER_BATCHER_H_
#define TSFM_SERVER_BATCHER_H_

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::server {

class LakeBackend;

/// \brief Groups concurrent queries into batch calls on the lake backend.
///
/// Submit is called from many connection-handler threads and blocks until
/// the batch containing the query has executed. Stop() drains: every query
/// accepted before Stop still gets its result; queries submitted after
/// Stop are rejected with an error Status. The destructor calls Stop().
/// A backend failure (a distributed backend's dead shard, say) fails every
/// query of the affected batch with that Status — coalescing never turns
/// one query's error into another's wrong answer, because a batch call
/// either answers all its queries or none.
class QueryBatcher {
 public:
  /// `backend` and `query_pool` must outlive the batcher. `max_batch` caps
  /// how many queries one dispatch round coalesces (>= 1).
  QueryBatcher(const LakeBackend* backend, ThreadPool* query_pool,
               size_t max_batch);
  ~QueryBatcher();

  QueryBatcher(const QueryBatcher&) = delete;
  QueryBatcher& operator=(const QueryBatcher&) = delete;

  /// \brief Enqueues one query and blocks until its batch has run.
  ///
  /// `op` must be kJoin (exactly one column) or kUnion; the caller is
  /// responsible for dimension validation. Returns the ranked table ids,
  /// or an error Status if the batcher is stopping.
  Result<std::vector<std::string>> Submit(
      Opcode op, std::vector<std::vector<float>> columns, size_t k)
      LAKS_EXCLUDES(mu_);

  /// \brief Drains every accepted query, then joins the dispatcher.
  ///
  /// Waits for groups already handed to the query pool as well as parked
  /// jobs, so every Submit accepted before Stop has its result when Stop
  /// returns. Idempotent.
  void Stop() LAKS_EXCLUDES(stop_mu_, mu_);

  /// Point-in-time batching counters (queue-wait / batch-size fields of
  /// ServerStats; the server layers latency on top).
  ServerStats stats() const LAKS_EXCLUDES(stats_mu_);

  /// Test-only: parked jobs not yet taken by a dispatch round.
  size_t PendingForTest() const LAKS_EXCLUDES(mu_);

 private:
  struct Job;

  void DispatchLoop() LAKS_EXCLUDES(mu_);
  /// Hands one same-(op, k) group to the query pool (inline on a rejected
  /// Submit during shutdown drain) and tracks it in inflight_groups_.
  void DispatchGroup(Opcode op, size_t k,
                     std::vector<std::unique_ptr<Job>> group)
      LAKS_EXCLUDES(mu_);
  /// Runs one group of same-(op, k) jobs as a single batch call and
  /// fulfils their results.
  void RunGroup(Opcode op, size_t k,
                std::vector<std::unique_ptr<Job>> group)
      LAKS_EXCLUDES(mu_, stats_mu_);

  const LakeBackend* backend_;
  ThreadPool* query_pool_;
  size_t max_batch_;
  size_t max_inflight_groups_;  // = pool width; the coalescing backpressure

  // Lock order: stop_mu_ before mu_ (Stop holds both in sequence); mu_
  // and stats_mu_ are never held together.
  Mutex stop_mu_;  // serializes Stop
  mutable Mutex mu_ LAKS_ACQUIRED_AFTER(stop_mu_);
  CondVar work_cv_;
  std::deque<std::unique_ptr<Job>> pending_ LAKS_GUARDED_BY(mu_);
  bool stopping_ LAKS_GUARDED_BY(mu_) = false;
  // Groups handed to the pool, not yet done.
  size_t inflight_groups_ LAKS_GUARDED_BY(mu_) = 0;
  CondVar idle_cv_;  // signalled when a group finishes

  mutable Mutex stats_mu_;
  ServerStats stats_ LAKS_GUARDED_BY(stats_mu_);

  std::thread dispatcher_;
};

}  // namespace tsfm::server

#endif  // TSFM_SERVER_BATCHER_H_
