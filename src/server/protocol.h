// Wire protocol for the lake query server (ROADMAP "Async query server").
//
// Everything on the socket is a length-prefixed frame: a uint32 payload
// byte count followed by the payload, little-endian host layout via
// stream_io.h like the rest of the on-disk formats. Payloads start with a
// protocol version byte so the format can evolve without breaking old
// clients, then an opcode. See src/server/README.md for the full layout.
//
// The codec is split from the socket layer on purpose: Encode*/Decode*
// work on std::iostreams so they can be property-tested without a socket,
// while WriteFrame/ReadFrame move whole frames over a file descriptor and
// are the only functions that touch the network.
#ifndef TSFM_SERVER_PROTOCOL_H_
#define TSFM_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace tsfm::server {

/// \brief Newest protocol version this build understands.
///
/// Version 1 defined JOIN/UNION/STATS; version 2 added the per-shard
/// opcodes (SHARD_QUERY/HEALTH/SHARD_TABLES) for the distributed tier and
/// changed nothing about the version-1 payloads. Version 3 added the
/// mutation opcodes (ADD_TABLE/REMOVE_TABLE/COMPACT) and three churn
/// counters to the kStats payload (carried only in v3-stamped stats
/// responses, so v1/v2 stats traffic is unchanged). Every message is
/// encoded with the *lowest* version that can express it (RequiredVersion
/// below), so a v3 client interoperates with a v1 server for the v1
/// opcodes, and decoders reject only frames they genuinely cannot parse: a
/// version outside [kMinProtocolVersion, kProtocolVersion], or an opcode
/// claimed inside a frame older than its RequiredVersion.
inline constexpr uint8_t kProtocolVersion = 3;

/// Oldest version still decoded (version-1 traffic stays valid).
inline constexpr uint8_t kMinProtocolVersion = 1;

/// Default ceiling on one frame's payload. A length prefix above the
/// negotiated ceiling is answered with a Status error, not an allocation.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// Request kinds. Values are wire format — never renumber.
enum class Opcode : uint8_t {
  kJoin = 1,         ///< rank tables joinable on one query column
  kUnion = 2,        ///< rank tables unionable with a set of query columns
  kStats = 3,        ///< fetch server-side batching/latency counters
  kShardQuery = 4,   ///< raw top-m column hits per query column (coordinator scatter)
  kHealth = 5,       ///< shard identity: protocol version, backend, dim, counts
  kShardTables = 6,  ///< the shard's table ids in local-handle order
  kAddTable = 7,     ///< live-ingest one table (id + column embeddings)
  kRemoveTable = 8,  ///< tombstone the newest live table with an id
  kCompact = 9,      ///< fold deltas + tombstones into the base segments
};

/// True for the opcodes this version understands.
bool IsValidOpcode(uint8_t raw);

/// The lowest protocol version that can carry `op` (1 for the original
/// opcodes, 2 for the shard opcodes, 3 for the mutation opcodes). Encoders
/// stamp messages with this so old peers keep understanding new binaries'
/// v1 traffic.
uint8_t RequiredVersion(Opcode op);

/// \brief One client request.
///
/// kJoin carries exactly one column; kUnion and kShardQuery any number
/// (zero included — the server answers it exactly like a direct call with
/// no columns); kStats, kHealth, kShardTables, and kCompact carry neither
/// k nor columns. For kShardQuery, `k` is the per-column hit budget `m`
/// (the coordinator's k*3 over-retrieval), not a result-table count.
/// kAddTable carries `table_id` plus the new table's columns (no k);
/// kRemoveTable carries only `table_id`.
struct Request {
  uint8_t version = kProtocolVersion;
  Opcode op = Opcode::kJoin;
  uint32_t k = 0;
  std::string table_id;  ///< kAddTable / kRemoveTable target
  std::vector<std::vector<float>> columns;

  bool operator==(const Request&) const = default;
};

/// \brief One raw column hit returned by a SHARD_QUERY.
///
/// `table` is a table handle in the *responding server's* handle space
/// (shard-local when the worker serves one shard); the coordinator remaps
/// it into the global handle space before merging.
struct ShardHit {
  uint64_t table = 0;
  uint32_t column = 0;
  float distance = 0;

  bool operator==(const ShardHit&) const = default;
};

/// \brief A shard worker's identity, returned by the HEALTH opcode.
///
/// The coordinator handshakes every worker with this before serving:
/// `protocol_version` catches mixed-version deployments, `backend`/
/// `metric`/`dim` must match the lake manifest, and the counts must agree
/// with the manifest's locator records.
struct ShardHealth {
  uint8_t protocol_version = kProtocolVersion;
  uint8_t backend = 0;  ///< search::IndexBackend
  uint8_t metric = 0;   ///< search::Metric
  uint64_t dim = 0;
  uint64_t num_tables = 0;
  uint64_t num_columns = 0;

  bool operator==(const ShardHealth&) const = default;
};

/// Server-side counters returned by the kStats opcode. The churn counters
/// travel only in v3-stamped stats responses (RequiredVersion keeps kStats
/// itself at version 1, so old peers still get the original five fields);
/// a v3 client requests the v3 shape by stamping its stats request v3.
struct ServerStats {
  uint64_t requests = 0;          ///< query requests answered (join/union/shard)
  uint64_t batches = 0;           ///< coalesced batch dispatches
  uint64_t max_batch = 0;         ///< largest batch coalesced so far
  double total_queue_wait_ms = 0; ///< sum of enqueue->dispatch waits
  double total_latency_ms = 0;    ///< sum of frame-read->response latencies
  uint64_t pending_delta_tables = 0;  ///< v3: delta tables awaiting compaction
  uint64_t pending_tombstones = 0;    ///< v3: tombstoned-but-uncompacted tables
  uint64_t compactions = 0;           ///< v3: completed compaction passes

  bool operator==(const ServerStats&) const = default;
};

/// \brief One server response.
///
/// `op` echoes the request opcode — when the server could parse one; for
/// frame-level errors (oversized prefix) and header-level parse failures
/// it stays the default kJoin — and selects which payload field is
/// meaningful. A non-OK `status` carries `message` and no payload.
struct Response {
  uint8_t version = kProtocolVersion;
  Opcode op = Opcode::kJoin;
  StatusCode status = StatusCode::kOk;
  std::string message;           ///< non-empty iff status != kOk
  std::vector<std::string> ids;  ///< kJoin/kUnion/kShardTables payload, ranked
  ServerStats stats;             ///< kStats payload
  std::vector<std::vector<ShardHit>> hits;  ///< kShardQuery: one list per column
  ShardHealth health;            ///< kHealth payload

  bool operator==(const Response&) const = default;

  /// Shorthand for an error response echoing `op`, stamped with the lowest
  /// version that carries `op` so peers of either version can decode it.
  static Response Error(Opcode op, const Status& status);
};

/// Serializes a request payload (without the frame length prefix). All
/// columns must share one dimension — the wire format carries a single dim
/// for the whole query — and ragged input check-fails rather than encoding
/// a payload that would decode to a different request.
void EncodeRequest(const Request& request, std::ostream& out);

/// \brief Parses a request payload.
///
/// Returns kParseError for a wrong version byte, unknown opcode, column
/// counts or dims large enough to be hostile, a stream that ends early, or
/// one that does not end exactly at the message end (a frame carries one
/// message; trailing bytes mean a desynced or hostile peer).
Status DecodeRequest(std::istream& in, Request* request);

/// Serializes a response payload (without the frame length prefix).
void EncodeResponse(const Response& response, std::ostream& out);

/// Parses a response payload; error taxonomy mirrors DecodeRequest.
Status DecodeResponse(std::istream& in, Response* response);

/// EncodeRequest into a string, ready for WriteFrame.
std::string SerializeRequest(const Request& request);

/// EncodeResponse into a string, ready for WriteFrame.
std::string SerializeResponse(const Response& response);

/// \brief Sends one length-prefixed frame over `fd`.
///
/// Handles short writes; never raises SIGPIPE (a vanished peer surfaces as
/// a kIoError Status instead).
Status WriteFrame(int fd, const std::string& payload);

/// \brief Reads one length-prefixed frame from `fd`.
///
/// A clean EOF at a frame boundary sets `*clean_eof` and returns OK with an
/// empty payload. EOF mid-frame (a truncated frame) is kIoError; a length
/// prefix above `max_bytes` is kOutOfRange, reported before any allocation
/// so an adversarial prefix cannot balloon memory.
Status ReadFrame(int fd, size_t max_bytes, std::string* payload,
                 bool* clean_eof);

}  // namespace tsfm::server

#endif  // TSFM_SERVER_PROTOCOL_H_
