// One shard of a distributed lake, served as its own process.
//
// A shard worker is just a LakeServer over the one LakeIndex ("LAK2")
// shard file it loaded — it speaks the full wire protocol, so a worker
// answers the coordinator's SHARD_QUERY/HEALTH/SHARD_TABLES scatter frames
// *and* ordinary join/union queries for direct debugging with lake_search.
// Queries carry precomputed embeddings on the wire, so workers never
// re-embed anything.
//
// Two ways to run one:
//   - in this process: ShardWorker::Load(...).Start(socket) — what the
//     lake_shard_worker example binary does;
//   - as a child process: SpawnShardWorkerProcess forks, runs the worker
//     in the child until SIGTERM, and returns the pid to the parent. Used
//     by lake_server's --distributed mode and the fault-injection tests.
#ifndef TSFM_SERVER_SHARD_WORKER_H_
#define TSFM_SERVER_SHARD_WORKER_H_

#include <sys/types.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "server/lake_server.h"
#include "util/status.h"

namespace tsfm::server {

/// \brief An in-process shard worker: one loaded shard behind a LakeServer.
///
/// Movable, not copyable. Stop() (or the destructor) drains gracefully.
class ShardWorker {
 public:
  /// Loads `index_path` — normally one "LAK2" shard file of a distributed
  /// lake; a "LAKS" manifest or legacy "LAKE" file also works, making any
  /// saved index servable as a single worker.
  static Result<ShardWorker> Load(const std::string& index_path,
                                  const ServerOptions& options = {});

  /// Binds `socket_path` and starts serving. One Start per worker.
  Status Start(const std::string& socket_path);

  /// Graceful drain; idempotent.
  void Stop();

  const LakeServer& server() const { return *server_; }

 private:
  explicit ShardWorker(std::unique_ptr<LakeServer> server)
      : server_(std::move(server)) {}

  std::unique_ptr<LakeServer> server_;
};

/// \brief Forks a child process that serves `index_path` on `socket_path`.
///
/// The child stops only on SIGTERM (SIGINT is ignored: a terminal Ctrl-C
/// signals the whole foreground process group, and workers self-draining
/// concurrently with the parent's coordinator drain would turn a graceful
/// shutdown into shard errors — the parent SIGTERMs them when *it* is
/// done). It loads the shard, serves until signalled, drains, and exits
/// (status 0 on a clean drain, 1 when the load or bind fails — the parent
/// observes that through waitpid, or immediately through WaitForWorker's
/// pid check). The parent gets the child pid and must eventually reap it
/// with StopShardWorkerProcess.
///
/// fork(2) composes badly with live threads: call this before spawning
/// thread pools / coordinators in the parent (the child only runs
/// worker code, so the parent's later threads are unaffected).
Result<pid_t> SpawnShardWorkerProcess(const std::string& index_path,
                                      const std::string& socket_path,
                                      const ServerOptions& options = {});

/// \brief Polls `socket_path` until a connect succeeds (the worker is
/// accepting) or `timeout_ms` elapses — the startup barrier between
/// spawning workers and handing their sockets to a coordinator.
///
/// With a non-negative `pid`, also watches that child: a worker that dies
/// during startup (bad shard file) fails immediately with its exit status
/// instead of stalling out the whole timeout against a socket that will
/// never appear.
Status WaitForWorker(const std::string& socket_path, int timeout_ms,
                     pid_t pid = -1);

/// \brief SIGTERMs `pid`, waits up to `timeout_ms` for a clean exit, then
/// escalates to SIGKILL. Always reaps. OK when the child exited cleanly
/// (by this signal or earlier); an error describes a nonzero exit or the
/// escalation.
Status StopShardWorkerProcess(pid_t pid, int timeout_ms = 5000);

/// \brief One worker process per shard of a saved lake, managed together.
///
/// The spawn → wait-all → stop-all choreography every distributed caller
/// needs (lake_server --distributed, BM_DistributedQPS, the test fixture),
/// in one place: Spawn forks worker s to serve shard s's file on
/// "<socket_prefix>.shard-s", then waits for every socket to accept
/// (observing early child deaths); any failure stops the already-spawned
/// workers and returns an error naming the shard. StopAll (also run by the
/// destructor) SIGTERMs, reaps, and unlinks every socket. Movable, not
/// copyable. Spawn before creating threads in the calling process.
class ShardWorkerFleet {
 public:
  /// An empty fleet (no workers) — the state Spawn fills in, and a valid
  /// placeholder for deferred initialization.
  ShardWorkerFleet() = default;

  /// `socket_prefix` must not be the manifest path itself: sockets are
  /// "<prefix>.shard-s", the same naming shard *files* use next to the
  /// manifest, and binding a socket over a shard file would destroy it
  /// (Spawn rejects the collision).
  static Result<ShardWorkerFleet> Spawn(const std::string& manifest_path,
                                        const std::string& socket_prefix,
                                        const ServerOptions& options = {},
                                        int startup_timeout_ms = 10000);

  // Moves must leave the source demonstrably empty (a moved-from vector is
  // only *usually* empty) — two fleets believing they own one pid would
  // double-signal it — and move-assignment stops the target's old fleet
  // first.
  ShardWorkerFleet(ShardWorkerFleet&& other) noexcept
      : sockets_(std::move(other.sockets_)), pids_(std::move(other.pids_)) {
    other.sockets_.clear();
    other.pids_.clear();
  }
  ShardWorkerFleet& operator=(ShardWorkerFleet&& other) noexcept {
    if (this != &other) {
      StopAll();
      sockets_ = std::move(other.sockets_);
      pids_ = std::move(other.pids_);
      other.sockets_.clear();
      other.pids_.clear();
    }
    return *this;
  }
  ~ShardWorkerFleet() { StopAll(); }

  /// Worker sockets in shard order — what DistributedLakeIndex::Connect
  /// takes.
  const std::vector<std::string>& sockets() const { return sockets_; }

  size_t num_workers() const { return sockets_.size(); }
  pid_t pid(size_t shard) const { return pids_[shard]; }

  /// Fault injection: SIGKILL worker `shard` and reap it (simulates a
  /// crashed worker; StopAll skips it afterwards).
  void KillWorker(size_t shard);

  /// Stops every still-running worker and unlinks the sockets. Idempotent.
  void StopAll();

 private:
  std::vector<std::string> sockets_;
  std::vector<pid_t> pids_;
};

}  // namespace tsfm::server

#endif  // TSFM_SERVER_SHARD_WORKER_H_
