#include "server/distributed_lake_index.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "search/lake_index.h"
#include "search/lake_manifest.h"
#include "server/lake_client.h"
#include "util/hash.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace tsfm::server {

using search::ColumnEmbeddingIndex;
using search::TableRanker;

namespace {

/// One worker endpoint with its pool of warm connections. Heap-allocated
/// (the mutex pins it) and shared-fate: a transport failure drops every
/// idle connection, since they all point at the same dead process.
struct ShardEndpoint {
  std::string socket_path;
  Mutex mu;
  std::vector<std::unique_ptr<LakeClient>> idle LAKS_GUARDED_BY(mu);
};

}  // namespace

struct DistributedLakeIndex::State {
  // options through shards are written only by Connect, before the State
  // is published behind a DistributedLakeIndex; afterwards they are
  // immutable (the ShardEndpoint objects carry their own locks), so they
  // are read without a lock.
  DistributedOptions options;
  search::IndexBackend backend = search::IndexBackend::kFlat;
  search::Metric metric = search::Metric::kCosine;
  size_t dim = 0;
  std::vector<std::unique_ptr<ShardEndpoint>> shards;

  // Lock order: writer_mu before maps_mu (before any ShardEndpoint::mu).
  //
  // `maps_mu` pins a map epoch: queries hold it shared across their whole
  // scatter+remap+rank so a concurrent Compact's map swap (unique) can
  // never tear a result. `writer_mu` serializes mutations against each
  // other; fields only mutations touch (the coordinator's mirror of each
  // worker's newest-live rule) are guarded by it alone, since no query
  // ever reads them.
  Mutex writer_mu;
  mutable SharedMutex maps_mu LAKS_ACQUIRED_AFTER(writer_mu);

  size_t num_columns LAKS_GUARDED_BY(maps_mu) = 0;
  // handle -> id
  std::vector<std::string> global_ids LAKS_GUARDED_BY(maps_mu);
  // shard -> local -> handle
  std::vector<std::vector<size_t>> to_global LAKS_GUARDED_BY(maps_mu);
  uint64_t pending_delta_tables LAKS_GUARDED_BY(maps_mu) = 0;
  uint64_t pending_tombstones LAKS_GUARDED_BY(maps_mu) = 0;
  uint64_t compactions LAKS_GUARDED_BY(maps_mu) = 0;

  // --- mutation bookkeeping, guarded by writer_mu only ---
  // handle -> (shard, local)
  std::vector<std::pair<size_t, size_t>> locator LAKS_GUARDED_BY(writer_mu);
  // handle -> tombstoned?
  std::vector<uint8_t> dead LAKS_GUARDED_BY(writer_mu);
  std::unordered_map<std::string, std::vector<size_t>> handles_by_id
      LAKS_GUARDED_BY(writer_mu);
  // Cleared when Connect finds a churned manifest: the handshake cannot
  // see which handles the workers have tombstoned, so the coordinator's
  // newest-live bookkeeping could diverge from theirs. Queries still work.
  bool mutable_ok LAKS_GUARDED_BY(writer_mu) = true;
  // Set when a mutation fails after it may have reached a worker: the
  // coordinator's maps may disagree with worker handle spaces, so further
  // mutations are refused until a fresh Connect (queries stay available
  // against the old epoch).
  bool mutations_broken LAKS_GUARDED_BY(writer_mu) = false;

  /// Scatters one SHARD_QUERY over all workers and remaps hits to global
  /// handles: result[column] holds one sorted list per shard, ready for
  /// TableRanker::MergeColumnHits. Lives on State (not the public class)
  /// so the shared-lock requirement can name maps_mu directly.
  Result<std::vector<std::vector<
      std::vector<search::ColumnEmbeddingIndex::ColumnHit>>>>
  ScatterColumnHits(const std::vector<std::vector<float>>& columns, size_t m,
                    ThreadPool* pool) LAKS_REQUIRES_SHARED(maps_mu);

  Status Annotate(size_t shard, const Status& status) const {
    return Status(status.code(), "shard " + std::to_string(shard) + " (" +
                                     shards[shard]->socket_path +
                                     "): " + status.message());
  }

  Result<std::unique_ptr<LakeClient>> Acquire(size_t shard) {
    ShardEndpoint& ep = *shards[shard];
    {
      MutexLock lock(&ep.mu);
      if (!ep.idle.empty()) {
        auto client = std::move(ep.idle.back());
        ep.idle.pop_back();
        return client;
      }
    }
    auto client = std::make_unique<LakeClient>(options.max_frame_bytes);
    client->set_timeout_ms(options.shard_timeout_ms);
    if (Status s = client->Connect(ep.socket_path); !s.ok()) return s;
    return client;
  }

  void Release(size_t shard, std::unique_ptr<LakeClient> client) {
    if (client == nullptr || !client->connected()) return;
    ShardEndpoint& ep = *shards[shard];
    MutexLock lock(&ep.mu);
    if (ep.idle.size() < options.max_idle_connections_per_shard) {
      ep.idle.push_back(std::move(client));
    }
  }

  // A dead worker invalidates every pooled connection to it at once;
  // dropping them makes the retry below connect fresh instead of cycling
  // through stale fds.
  void DropIdle(size_t shard) {
    ShardEndpoint& ep = *shards[shard];
    MutexLock lock(&ep.mu);
    ep.idle.clear();
  }

  /// \brief Runs `fn(client)` against shard `shard` with retry-once.
  ///
  /// A transport failure (the client closed its connection: worker died,
  /// timeout, stale socket) drops the shard's idle pool and retries once
  /// on a fresh connection — queries are idempotent reads, so a resend is
  /// safe. A server-side error (connection still open) is deterministic
  /// and returned immediately. Every error is annotated with the shard
  /// number and socket path.
  template <typename Fn>
  auto CallShard(size_t shard, Fn&& fn) -> decltype(fn(
      std::declval<LakeClient&>())) {
    Status last = Status::OK();
    for (int attempt = 0; attempt < 2; ++attempt) {
      auto conn = Acquire(shard);
      if (!conn.ok()) {
        last = conn.status();
        DropIdle(shard);
        continue;
      }
      std::unique_ptr<LakeClient> client = std::move(conn).value();
      auto result = fn(*client);
      const bool transport_failure = !result.ok() && !client->connected();
      Release(shard, std::move(client));
      if (result.ok()) return result;
      if (!transport_failure) return Annotate(shard, result.status());
      last = result.status();
      DropIdle(shard);
    }
    return Annotate(shard, last);
  }

  /// \brief Runs a Status-returning mutation against shard `shard`,
  /// exactly once.
  ///
  /// Mutations are not idempotent, so unlike CallShard a transport
  /// failure is never retried: if the request may have reached the worker
  /// (the connection dropped after the send), `*maybe_applied` is set and
  /// the caller must treat the coordinator's bookkeeping as suspect. A
  /// failure to even connect leaves `*maybe_applied` false — the mutation
  /// definitely did not happen.
  template <typename Fn>
  Status CallShardMutation(size_t shard, bool* maybe_applied, Fn&& fn) {
    *maybe_applied = false;
    auto conn = Acquire(shard);
    if (!conn.ok()) {
      DropIdle(shard);
      return Annotate(shard, conn.status());
    }
    std::unique_ptr<LakeClient> client = std::move(conn).value();
    Status status = fn(*client);
    const bool transport_failure = !status.ok() && !client->connected();
    Release(shard, std::move(client));
    if (transport_failure) {
      *maybe_applied = true;
      DropIdle(shard);
    }
    return status.ok() ? status : Annotate(shard, status);
  }
};

DistributedLakeIndex::DistributedLakeIndex(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

DistributedLakeIndex::DistributedLakeIndex(DistributedLakeIndex&&) noexcept =
    default;
DistributedLakeIndex& DistributedLakeIndex::operator=(
    DistributedLakeIndex&&) noexcept = default;
DistributedLakeIndex::~DistributedLakeIndex() = default;

size_t DistributedLakeIndex::num_shards() const { return state_->shards.size(); }
size_t DistributedLakeIndex::num_tables() const {
  State& st = *state_;
  ReaderMutexLock lock(&st.maps_mu);
  return st.global_ids.size();
}
size_t DistributedLakeIndex::num_columns() const {
  State& st = *state_;
  ReaderMutexLock lock(&st.maps_mu);
  return st.num_columns;
}
size_t DistributedLakeIndex::dim() const { return state_->dim; }
search::IndexBackend DistributedLakeIndex::backend() const {
  return state_->backend;
}
search::Metric DistributedLakeIndex::metric() const { return state_->metric; }
std::string DistributedLakeIndex::table_id(size_t handle) const {
  State& st = *state_;
  ReaderMutexLock lock(&st.maps_mu);
  return st.global_ids[handle];
}
const std::string& DistributedLakeIndex::worker_socket(size_t shard) const {
  return state_->shards[shard]->socket_path;
}

Result<DistributedLakeIndex> DistributedLakeIndex::Connect(
    const std::string& manifest_path,
    const std::vector<std::string>& worker_sockets,
    const DistributedOptions& options) {
  Result<search::LakeManifest> parsed =
      search::LoadLakeManifest(manifest_path);
  if (!parsed.ok()) return parsed.status();
  const search::LakeManifest manifest = std::move(parsed).value();
  if (worker_sockets.size() != manifest.num_shards()) {
    return Status::InvalidArgument(
        "manifest " + manifest_path + " has " +
        std::to_string(manifest.num_shards()) + " shards but " +
        std::to_string(worker_sockets.size()) + " worker sockets were given");
  }

  auto state = std::make_unique<State>();
  State& st = *state;
  // `st` is not visible to any other thread until the return publishes it;
  // the locks are uncontended and exist for the checker. Lock order
  // writer_mu -> maps_mu as everywhere else.
  MutexLock writer(&st.writer_mu);
  WriterMutexLock maps_lock(&st.maps_mu);
  state->options = options;
  state->backend = manifest.backend;
  state->metric = manifest.metric;
  state->dim = static_cast<size_t>(manifest.dim);
  state->shards.reserve(worker_sockets.size());
  for (const std::string& socket_path : worker_sockets) {
    auto ep = std::make_unique<ShardEndpoint>();
    ep->socket_path = socket_path;
    state->shards.push_back(std::move(ep));
  }

  // Handshake every worker: health must agree with the manifest, and the
  // table list sizes must match the locator before the global handle space
  // can be trusted.
  const size_t num_shards = state->shards.size();
  // Per-shard table counts from one locator pass up front.
  std::vector<size_t> expected_counts(num_shards, 0);
  for (const auto& [shard, local] : manifest.locator) ++expected_counts[shard];
  std::vector<std::vector<std::string>> shard_tables(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Result<ShardHealth> health = state->CallShard(
        s, [](LakeClient& client) { return client.Health(); });
    if (!health.ok()) return health.status();
    const ShardHealth& h = health.value();
    auto reject = [&](const std::string& what) {
      return state->Annotate(s, Status::InvalidArgument(what));
    };
    if (h.protocol_version != kProtocolVersion) {
      return reject("worker speaks protocol version " +
                    std::to_string(h.protocol_version) +
                    ", coordinator requires " +
                    std::to_string(kProtocolVersion));
    }
    if (h.dim != manifest.dim) {
      return reject("worker dim " + std::to_string(h.dim) +
                    " disagrees with manifest dim " +
                    std::to_string(manifest.dim));
    }
    if (h.backend != static_cast<uint8_t>(manifest.backend) ||
        h.metric != static_cast<uint8_t>(manifest.metric)) {
      return reject("worker backend/metric disagrees with the manifest");
    }
    const size_t expected_tables = expected_counts[s];
    if (h.num_tables != expected_tables) {
      return reject("worker holds " + std::to_string(h.num_tables) +
                    " tables, manifest routes " +
                    std::to_string(expected_tables) + " to this shard");
    }
    Result<std::vector<std::string>> tables = state->CallShard(
        s, [](LakeClient& client) { return client.ShardTables(); });
    if (!tables.ok()) return tables.status();
    if (tables.value().size() != expected_tables) {
      return reject("worker table list disagrees with its health counters");
    }
    shard_tables[s] = std::move(tables).value();
    st.num_columns += static_cast<size_t>(h.num_columns);
  }

  // Rebuild the global handle space in insertion order from the locator,
  // exactly as ShardedLakeIndex::Load does — this is what keeps the Fig 6
  // tie-breaking identical between the two deployments.
  st.to_global.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    st.to_global[s].assign(shard_tables[s].size(), SIZE_MAX);
  }
  st.global_ids.reserve(manifest.num_tables());
  for (const auto& [shard, local] : manifest.locator) {
    if (local >= st.to_global[shard].size() ||
        st.to_global[shard][local] != SIZE_MAX) {
      return Status::ParseError("lake manifest " + manifest_path +
                                " has an invalid or duplicate table record");
    }
    const size_t handle = st.global_ids.size();
    st.to_global[shard][local] = handle;
    st.locator.emplace_back(static_cast<size_t>(shard),
                            static_cast<size_t>(local));
    st.handles_by_id[shard_tables[shard][local]].push_back(handle);
    st.global_ids.push_back(shard_tables[shard][local]);
  }
  st.dead.assign(st.global_ids.size(), 0);
  // A churned manifest means the workers carry tombstones this handshake
  // cannot see, so the coordinator's newest-live bookkeeping would
  // diverge from theirs: serve queries, refuse mutations.
  if (manifest.live_tables < manifest.num_tables()) {
    st.mutable_ok = false;
    st.pending_tombstones = manifest.num_tables() - manifest.live_tables;
  }
  // The guards only reference st, which the moved-from unique_ptr leaves
  // alive (it now lives behind the returned index), so unlocking at scope
  // exit is safe.
  return DistributedLakeIndex(std::move(state));
}

Result<std::vector<std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>>>
DistributedLakeIndex::State::ScatterColumnHits(
    const std::vector<std::vector<float>>& columns, size_t m,
    ThreadPool* pool) {
  const size_t num_shards = shards.size();
  std::vector<Result<std::vector<std::vector<ShardHit>>>> raw(
      num_shards, Status::Internal("shard not queried"));
  auto query_shard = [&](size_t s) {
    raw[s] = CallShard(s, [&](LakeClient& client) {
      return client.ShardQuery(columns, m);
    });
  };
  if (pool != nullptr && num_shards > 1) {
    ParallelFor(pool, 0, num_shards, query_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) query_shard(s);
  }

  // result[column][shard]: the sorted lists MergeColumnHits expects. The
  // local->global remap is monotone (locals are insertion-ordered), so
  // each list stays sorted by (distance, table, column).
  std::vector<std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>>
      result(columns.size());
  for (auto& per_shard : result) per_shard.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    if (!raw[s].ok()) return raw[s].status();
    const auto& lists = raw[s].value();
    if (lists.size() != columns.size()) {
      return Annotate(
          s, Status::ParseError("worker answered " +
                                std::to_string(lists.size()) +
                                " hit lists for " +
                                std::to_string(columns.size()) + " columns"));
    }
    for (size_t c = 0; c < lists.size(); ++c) {
      auto& out = result[c][s];
      out.reserve(lists[c].size());
      for (const ShardHit& hit : lists[c]) {
        if (hit.table >= to_global[s].size()) {
          return Annotate(
              s, Status::ParseError("worker returned unknown table handle " +
                                    std::to_string(hit.table)));
        }
        out.push_back({to_global[s][hit.table], hit.column, hit.distance});
      }
    }
  }
  return result;
}

Result<std::vector<std::string>> DistributedLakeIndex::QueryJoinable(
    const std::vector<float>& query_column, size_t k, ThreadPool* pool) const {
  // Pin one map epoch across the whole scatter+remap+rank: a concurrent
  // Compact re-densifies the maps under the unique side of this lock.
  State& st = *state_;
  ReaderMutexLock lock(&st.maps_mu);
  auto scattered = st.ScatterColumnHits({query_column}, k * 3, pool);
  if (!scattered.ok()) return scattered.status();
  auto merged = TableRanker::MergeColumnHits(scattered.value()[0], k * 3);
  return search::RankedTableIds(
      st.global_ids,
      TableRanker::RankFromSingleColumnHits(merged, /*exclude=*/SIZE_MAX), k);
}

Result<std::vector<std::string>> DistributedLakeIndex::QueryUnionable(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    ThreadPool* pool) const {
  State& st = *state_;
  ReaderMutexLock lock(&st.maps_mu);
  auto scattered = st.ScatterColumnHits(query_columns, k * 3, pool);
  if (!scattered.ok()) return scattered.status();
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> per_column_hits;
  per_column_hits.reserve(query_columns.size());
  for (const auto& per_shard : scattered.value()) {
    per_column_hits.push_back(TableRanker::MergeColumnHits(per_shard, k * 3));
  }
  return search::RankedTableIds(
      st.global_ids,
      TableRanker::RankFromColumnHits(per_column_hits, /*exclude=*/SIZE_MAX),
      k);
}

namespace {

// Shared batch fan-out: per-query results gathered under the same
// pool-or-serial rules as ShardedLakeIndex's batch entry points, with the
// first shard failure (lowest query index) failing the batch.
template <typename Query, typename Fn>
Result<std::vector<std::vector<std::string>>> RunBatch(
    const std::vector<Query>& queries, ThreadPool* pool, Fn&& run_one) {
  std::vector<Result<std::vector<std::string>>> results(
      queries.size(), Status::Internal("query not run"));
  if (pool != nullptr && queries.size() > 1) {
    // Fan out over queries; the per-query scatter stays serial because
    // ParallelFor must not nest on one pool.
    ParallelFor(pool, 0, queries.size(),
                [&](size_t q) { results[q] = run_one(queries[q], nullptr); });
  } else {
    for (size_t q = 0; q < queries.size(); ++q) {
      results[q] = run_one(queries[q], pool);
    }
  }
  std::vector<std::vector<std::string>> out;
  out.reserve(queries.size());
  for (auto& result : results) {
    if (!result.ok()) return result.status();
    out.push_back(std::move(result).value());
  }
  return out;
}

}  // namespace

Result<std::vector<std::vector<std::string>>>
DistributedLakeIndex::QueryJoinableBatch(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    ThreadPool* pool) const {
  return RunBatch(query_columns, pool,
                  [&](const std::vector<float>& q, ThreadPool* p) {
                    return QueryJoinable(q, k, p);
                  });
}

Result<std::vector<std::vector<std::string>>>
DistributedLakeIndex::QueryUnionableBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    ThreadPool* pool) const {
  return RunBatch(queries, pool,
                  [&](const std::vector<std::vector<float>>& q, ThreadPool* p) {
                    return QueryUnionable(q, k, p);
                  });
}

namespace {

// Gate shared by every coordinator mutation; callers hold writer_mu.
Status MutationGate(bool mutable_ok, bool mutations_broken) {
  if (!mutable_ok) {
    return Status::InvalidArgument(
        "coordinator connected to a churned manifest; compact the lake "
        "before serving mutations through a coordinator");
  }
  if (mutations_broken) {
    return Status::Internal(
        "a previous mutation failed in flight and coordinator bookkeeping "
        "may disagree with the workers; reconnect to recover");
  }
  return Status::OK();
}

}  // namespace

Status DistributedLakeIndex::AddTable(
    const std::string& table_id, const std::vector<std::vector<float>>& columns) {
  State& st = *state_;
  MutexLock writer(&st.writer_mu);
  if (Status s = MutationGate(st.mutable_ok, st.mutations_broken); !s.ok()) {
    return s;
  }
  const size_t shard = StableShard(table_id, st.shards.size());
  bool maybe_applied = false;
  Status sent = st.CallShardMutation(shard, &maybe_applied,
                                     [&](LakeClient& client) {
                                       return client.AddTable(table_id, columns);
                                     });
  if (!sent.ok()) {
    // A server-side rejection (dim mismatch, ...) did not mutate the
    // worker; only a maybe-delivered send poisons the bookkeeping.
    st.mutations_broken = maybe_applied;
    return sent;
  }
  WriterMutexLock lock(&st.maps_mu);
  const size_t handle = st.global_ids.size();
  st.to_global[shard].push_back(handle);
  st.locator.emplace_back(shard, st.to_global[shard].size() - 1);
  st.handles_by_id[table_id].push_back(handle);
  st.global_ids.push_back(table_id);
  st.dead.push_back(0);
  st.num_columns += columns.size();
  ++st.pending_delta_tables;
  return Status::OK();
}

Status DistributedLakeIndex::RemoveTable(const std::string& table_id) {
  State& st = *state_;
  MutexLock writer(&st.writer_mu);
  if (Status s = MutationGate(st.mutable_ok, st.mutations_broken); !s.ok()) {
    return s;
  }
  // Resolve the victim locally first (the coordinator mirrors the owning
  // worker's newest-live rule, so a miss here needs no wire trip).
  size_t victim = SIZE_MAX;
  auto it = st.handles_by_id.find(table_id);
  if (it != st.handles_by_id.end() && !it->second.empty()) {
    victim = it->second.back();
  }
  if (victim == SIZE_MAX) {
    return Status::NotFound("no live table with id \"" + table_id + "\"");
  }
  const size_t shard = StableShard(table_id, st.shards.size());
  bool maybe_applied = false;
  Status sent = st.CallShardMutation(
      shard, &maybe_applied,
      [&](LakeClient& client) { return client.RemoveTable(table_id); });
  if (!sent.ok()) {
    // The worker disagreeing that the table exists is also divergence.
    st.mutations_broken = maybe_applied || sent.code() == StatusCode::kNotFound;
    return sent;
  }
  WriterMutexLock lock(&st.maps_mu);
  st.dead[victim] = 1;
  it->second.pop_back();
  if (it->second.empty()) st.handles_by_id.erase(it);
  ++st.pending_tombstones;
  return Status::OK();
}

Status DistributedLakeIndex::Compact(ThreadPool* pool) {
  State& st = *state_;
  MutexLock writer(&st.writer_mu);
  if (Status s = MutationGate(st.mutable_ok, st.mutations_broken); !s.ok()) {
    return s;
  }
  const size_t num_shards = st.shards.size();

  // Phase 1: every worker folds its deltas + tombstones (full rebuild of
  // churned shards, so the remap below is deterministic). A partial
  // success leaves worker handle spaces out of step with these maps, so
  // any failure disables further mutations until a fresh Connect.
  std::vector<Status> compacted(num_shards, Status::OK());
  std::vector<uint8_t> applied(num_shards, 0);
  auto compact_shard = [&](size_t s) {
    bool maybe_applied = false;
    compacted[s] = st.CallShardMutation(
        s, &maybe_applied, [](LakeClient& client) { return client.Compact(); });
    applied[s] = compacted[s].ok() || maybe_applied;
  };
  if (pool != nullptr && num_shards > 1) {
    ParallelFor(pool, 0, num_shards, compact_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) compact_shard(s);
  }
  size_t first_failure = num_shards;
  bool any_applied = false;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!compacted[s].ok() && first_failure == num_shards) first_failure = s;
    if (applied[s]) any_applied = true;
  }
  if (first_failure != num_shards) {
    // Only a clean sweep of server-side rejections (nothing applied
    // anywhere) leaves the old epoch intact and retryable.
    if (any_applied) st.mutations_broken = true;
    return compacted[first_failure];
  }

  // Phase 2: verify each worker's post-compaction shape against the
  // survivor counts these maps predict. global_ids is pinned with a brief
  // shared lock (queries keep running); dead and locator need only
  // writer_mu, which this function holds throughout.
  std::vector<size_t> survivors(num_shards, 0);
  size_t live_columns = 0;
  {
    ReaderMutexLock maps_lock(&st.maps_mu);
    for (size_t h = 0; h < st.global_ids.size(); ++h) {
      if (!st.dead[h]) ++survivors[st.locator[h].first];
    }
  }
  for (size_t s = 0; s < num_shards; ++s) {
    Result<ShardHealth> health = st.CallShard(
        s, [](LakeClient& client) { return client.Health(); });
    if (!health.ok()) {
      st.mutations_broken = true;
      return health.status();
    }
    if (health.value().num_tables != survivors[s]) {
      st.mutations_broken = true;
      return st.Annotate(
          s, Status::Internal(
                 "worker holds " + std::to_string(health.value().num_tables) +
                 " tables after compaction, coordinator expected " +
                 std::to_string(survivors[s]) + "; reconnect to recover"));
    }
    live_columns += static_cast<size_t>(health.value().num_columns);
  }

  // Phase 3: re-densify the global maps exactly as each worker's full
  // rebuild did — survivors keep their per-shard insertion order — so the
  // new local handle spaces line up without another table-list fetch.
  std::vector<std::string> new_ids;
  std::vector<std::pair<size_t, size_t>> new_locator;
  std::vector<std::vector<size_t>> new_to_global(num_shards);
  std::unordered_map<std::string, std::vector<size_t>> new_handles_by_id;
  {
    // Build off the exclusive lock (queries keep running against the old
    // epoch); the shared lock pins global_ids, and writer_mu — held since
    // entry — keeps the whole read-build-swap sequence atomic against
    // other mutations even across the lock-upgrade gap below.
    ReaderMutexLock maps_lock(&st.maps_mu);
    new_ids.reserve(st.global_ids.size());
    for (size_t h = 0; h < st.global_ids.size(); ++h) {
      if (st.dead[h]) continue;
      const size_t shard = st.locator[h].first;
      const size_t handle = new_ids.size();
      new_to_global[shard].push_back(handle);
      new_locator.emplace_back(shard, new_to_global[shard].size() - 1);
      new_handles_by_id[st.global_ids[h]].push_back(handle);
      new_ids.push_back(st.global_ids[h]);
    }
  }
  WriterMutexLock lock(&st.maps_mu);
  st.global_ids = std::move(new_ids);
  st.locator = std::move(new_locator);
  st.to_global = std::move(new_to_global);
  st.handles_by_id = std::move(new_handles_by_id);
  st.dead.assign(st.global_ids.size(), 0);
  st.num_columns = live_columns;
  st.pending_delta_tables = 0;
  st.pending_tombstones = 0;
  ++st.compactions;
  return Status::OK();
}

LakeChurnCounters DistributedLakeIndex::Churn() const {
  State& st = *state_;
  ReaderMutexLock lock(&st.maps_mu);
  LakeChurnCounters counters;
  counters.pending_delta_tables = st.pending_delta_tables;
  counters.pending_tombstones = st.pending_tombstones;
  counters.compactions = st.compactions;
  return counters;
}

Result<std::vector<ShardHealth>> DistributedLakeIndex::Health() const {
  std::vector<ShardHealth> health(state_->shards.size());
  for (size_t s = 0; s < state_->shards.size(); ++s) {
    Result<ShardHealth> one = state_->CallShard(
        s, [](LakeClient& client) { return client.Health(); });
    if (!one.ok()) return one.status();
    health[s] = std::move(one).value();
  }
  return health;
}

Result<ServerStats> DistributedLakeIndex::AggregateStats() const {
  ServerStats total;
  for (size_t s = 0; s < state_->shards.size(); ++s) {
    Result<ServerStats> one = state_->CallShard(
        s, [](LakeClient& client) { return client.Stats(); });
    if (!one.ok()) return one.status();
    const ServerStats& stats = one.value();
    total.requests += stats.requests;
    total.batches += stats.batches;
    total.max_batch = std::max(total.max_batch, stats.max_batch);
    total.total_queue_wait_ms += stats.total_queue_wait_ms;
    total.total_latency_ms += stats.total_latency_ms;
    total.pending_delta_tables += stats.pending_delta_tables;
    total.pending_tombstones += stats.pending_tombstones;
    total.compactions += stats.compactions;
  }
  return total;
}

}  // namespace tsfm::server
