#include "server/distributed_lake_index.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "search/lake_index.h"
#include "search/lake_manifest.h"
#include "server/lake_client.h"
#include "util/thread_pool.h"

namespace tsfm::server {

using search::ColumnEmbeddingIndex;
using search::TableRanker;

namespace {

/// One worker endpoint with its pool of warm connections. Heap-allocated
/// (the mutex pins it) and shared-fate: a transport failure drops every
/// idle connection, since they all point at the same dead process.
struct ShardEndpoint {
  std::string socket_path;
  std::mutex mu;
  std::vector<std::unique_ptr<LakeClient>> idle;
};

}  // namespace

struct DistributedLakeIndex::State {
  DistributedOptions options;
  search::IndexBackend backend = search::IndexBackend::kFlat;
  search::Metric metric = search::Metric::kCosine;
  size_t dim = 0;
  size_t num_columns = 0;
  std::vector<std::string> global_ids;          // handle -> id
  std::vector<std::vector<size_t>> to_global;   // shard -> local -> handle
  std::vector<std::unique_ptr<ShardEndpoint>> shards;

  Status Annotate(size_t shard, const Status& status) const {
    return Status(status.code(), "shard " + std::to_string(shard) + " (" +
                                     shards[shard]->socket_path +
                                     "): " + status.message());
  }

  Result<std::unique_ptr<LakeClient>> Acquire(size_t shard) {
    ShardEndpoint& ep = *shards[shard];
    {
      std::lock_guard<std::mutex> lock(ep.mu);
      if (!ep.idle.empty()) {
        auto client = std::move(ep.idle.back());
        ep.idle.pop_back();
        return client;
      }
    }
    auto client = std::make_unique<LakeClient>(options.max_frame_bytes);
    client->set_timeout_ms(options.shard_timeout_ms);
    if (Status s = client->Connect(ep.socket_path); !s.ok()) return s;
    return client;
  }

  void Release(size_t shard, std::unique_ptr<LakeClient> client) {
    if (client == nullptr || !client->connected()) return;
    ShardEndpoint& ep = *shards[shard];
    std::lock_guard<std::mutex> lock(ep.mu);
    if (ep.idle.size() < options.max_idle_connections_per_shard) {
      ep.idle.push_back(std::move(client));
    }
  }

  // A dead worker invalidates every pooled connection to it at once;
  // dropping them makes the retry below connect fresh instead of cycling
  // through stale fds.
  void DropIdle(size_t shard) {
    ShardEndpoint& ep = *shards[shard];
    std::lock_guard<std::mutex> lock(ep.mu);
    ep.idle.clear();
  }

  /// \brief Runs `fn(client)` against shard `shard` with retry-once.
  ///
  /// A transport failure (the client closed its connection: worker died,
  /// timeout, stale socket) drops the shard's idle pool and retries once
  /// on a fresh connection — queries are idempotent reads, so a resend is
  /// safe. A server-side error (connection still open) is deterministic
  /// and returned immediately. Every error is annotated with the shard
  /// number and socket path.
  template <typename Fn>
  auto CallShard(size_t shard, Fn&& fn) -> decltype(fn(
      std::declval<LakeClient&>())) {
    Status last = Status::OK();
    for (int attempt = 0; attempt < 2; ++attempt) {
      auto conn = Acquire(shard);
      if (!conn.ok()) {
        last = conn.status();
        DropIdle(shard);
        continue;
      }
      std::unique_ptr<LakeClient> client = std::move(conn).value();
      auto result = fn(*client);
      const bool transport_failure = !result.ok() && !client->connected();
      Release(shard, std::move(client));
      if (result.ok()) return result;
      if (!transport_failure) return Annotate(shard, result.status());
      last = result.status();
      DropIdle(shard);
    }
    return Annotate(shard, last);
  }
};

DistributedLakeIndex::DistributedLakeIndex(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

DistributedLakeIndex::DistributedLakeIndex(DistributedLakeIndex&&) noexcept =
    default;
DistributedLakeIndex& DistributedLakeIndex::operator=(
    DistributedLakeIndex&&) noexcept = default;
DistributedLakeIndex::~DistributedLakeIndex() = default;

size_t DistributedLakeIndex::num_shards() const { return state_->shards.size(); }
size_t DistributedLakeIndex::num_tables() const {
  return state_->global_ids.size();
}
size_t DistributedLakeIndex::num_columns() const { return state_->num_columns; }
size_t DistributedLakeIndex::dim() const { return state_->dim; }
search::IndexBackend DistributedLakeIndex::backend() const {
  return state_->backend;
}
search::Metric DistributedLakeIndex::metric() const { return state_->metric; }
const std::string& DistributedLakeIndex::table_id(size_t handle) const {
  return state_->global_ids[handle];
}
const std::string& DistributedLakeIndex::worker_socket(size_t shard) const {
  return state_->shards[shard]->socket_path;
}

Result<DistributedLakeIndex> DistributedLakeIndex::Connect(
    const std::string& manifest_path,
    const std::vector<std::string>& worker_sockets,
    const DistributedOptions& options) {
  Result<search::LakeManifest> parsed =
      search::LoadLakeManifest(manifest_path);
  if (!parsed.ok()) return parsed.status();
  const search::LakeManifest manifest = std::move(parsed).value();
  if (worker_sockets.size() != manifest.num_shards()) {
    return Status::InvalidArgument(
        "manifest " + manifest_path + " has " +
        std::to_string(manifest.num_shards()) + " shards but " +
        std::to_string(worker_sockets.size()) + " worker sockets were given");
  }

  auto state = std::make_unique<State>();
  state->options = options;
  state->backend = manifest.backend;
  state->metric = manifest.metric;
  state->dim = static_cast<size_t>(manifest.dim);
  state->shards.reserve(worker_sockets.size());
  for (const std::string& socket_path : worker_sockets) {
    auto ep = std::make_unique<ShardEndpoint>();
    ep->socket_path = socket_path;
    state->shards.push_back(std::move(ep));
  }

  // Handshake every worker: health must agree with the manifest, and the
  // table list sizes must match the locator before the global handle space
  // can be trusted.
  const size_t num_shards = state->shards.size();
  // Per-shard table counts from one locator pass up front.
  std::vector<size_t> expected_counts(num_shards, 0);
  for (const auto& [shard, local] : manifest.locator) ++expected_counts[shard];
  std::vector<std::vector<std::string>> shard_tables(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Result<ShardHealth> health = state->CallShard(
        s, [](LakeClient& client) { return client.Health(); });
    if (!health.ok()) return health.status();
    const ShardHealth& h = health.value();
    auto reject = [&](const std::string& what) {
      return state->Annotate(s, Status::InvalidArgument(what));
    };
    if (h.protocol_version != kProtocolVersion) {
      return reject("worker speaks protocol version " +
                    std::to_string(h.protocol_version) +
                    ", coordinator requires " +
                    std::to_string(kProtocolVersion));
    }
    if (h.dim != manifest.dim) {
      return reject("worker dim " + std::to_string(h.dim) +
                    " disagrees with manifest dim " +
                    std::to_string(manifest.dim));
    }
    if (h.backend != static_cast<uint8_t>(manifest.backend) ||
        h.metric != static_cast<uint8_t>(manifest.metric)) {
      return reject("worker backend/metric disagrees with the manifest");
    }
    const size_t expected_tables = expected_counts[s];
    if (h.num_tables != expected_tables) {
      return reject("worker holds " + std::to_string(h.num_tables) +
                    " tables, manifest routes " +
                    std::to_string(expected_tables) + " to this shard");
    }
    Result<std::vector<std::string>> tables = state->CallShard(
        s, [](LakeClient& client) { return client.ShardTables(); });
    if (!tables.ok()) return tables.status();
    if (tables.value().size() != expected_tables) {
      return reject("worker table list disagrees with its health counters");
    }
    shard_tables[s] = std::move(tables).value();
    state->num_columns += static_cast<size_t>(h.num_columns);
  }

  // Rebuild the global handle space in insertion order from the locator,
  // exactly as ShardedLakeIndex::Load does — this is what keeps the Fig 6
  // tie-breaking identical between the two deployments.
  state->to_global.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    state->to_global[s].assign(shard_tables[s].size(), SIZE_MAX);
  }
  state->global_ids.reserve(manifest.num_tables());
  for (const auto& [shard, local] : manifest.locator) {
    if (local >= state->to_global[shard].size() ||
        state->to_global[shard][local] != SIZE_MAX) {
      return Status::ParseError("lake manifest " + manifest_path +
                                " has an invalid or duplicate table record");
    }
    state->to_global[shard][local] = state->global_ids.size();
    state->global_ids.push_back(shard_tables[shard][local]);
  }
  return DistributedLakeIndex(std::move(state));
}

Result<std::vector<std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>>>
DistributedLakeIndex::ScatterColumnHits(
    const std::vector<std::vector<float>>& columns, size_t m,
    ThreadPool* pool) const {
  const size_t num_shards = state_->shards.size();
  std::vector<Result<std::vector<std::vector<ShardHit>>>> raw(
      num_shards, Status::Internal("shard not queried"));
  auto query_shard = [&](size_t s) {
    raw[s] = state_->CallShard(s, [&](LakeClient& client) {
      return client.ShardQuery(columns, m);
    });
  };
  if (pool != nullptr && num_shards > 1) {
    ParallelFor(pool, 0, num_shards, query_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) query_shard(s);
  }

  // result[column][shard]: the sorted lists MergeColumnHits expects. The
  // local->global remap is monotone (locals are insertion-ordered), so
  // each list stays sorted by (distance, table, column).
  std::vector<std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>>
      result(columns.size());
  for (auto& per_shard : result) per_shard.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    if (!raw[s].ok()) return raw[s].status();
    const auto& lists = raw[s].value();
    if (lists.size() != columns.size()) {
      return state_->Annotate(
          s, Status::ParseError("worker answered " +
                                std::to_string(lists.size()) +
                                " hit lists for " +
                                std::to_string(columns.size()) + " columns"));
    }
    for (size_t c = 0; c < lists.size(); ++c) {
      auto& out = result[c][s];
      out.reserve(lists[c].size());
      for (const ShardHit& hit : lists[c]) {
        if (hit.table >= state_->to_global[s].size()) {
          return state_->Annotate(
              s, Status::ParseError("worker returned unknown table handle " +
                                    std::to_string(hit.table)));
        }
        out.push_back({state_->to_global[s][hit.table], hit.column,
                       hit.distance});
      }
    }
  }
  return result;
}

Result<std::vector<std::string>> DistributedLakeIndex::QueryJoinable(
    const std::vector<float>& query_column, size_t k, ThreadPool* pool) const {
  auto scattered = ScatterColumnHits({query_column}, k * 3, pool);
  if (!scattered.ok()) return scattered.status();
  auto merged = TableRanker::MergeColumnHits(scattered.value()[0], k * 3);
  return search::RankedTableIds(
      state_->global_ids,
      TableRanker::RankFromSingleColumnHits(merged, /*exclude=*/SIZE_MAX), k);
}

Result<std::vector<std::string>> DistributedLakeIndex::QueryUnionable(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    ThreadPool* pool) const {
  auto scattered = ScatterColumnHits(query_columns, k * 3, pool);
  if (!scattered.ok()) return scattered.status();
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> per_column_hits;
  per_column_hits.reserve(query_columns.size());
  for (const auto& per_shard : scattered.value()) {
    per_column_hits.push_back(TableRanker::MergeColumnHits(per_shard, k * 3));
  }
  return search::RankedTableIds(
      state_->global_ids,
      TableRanker::RankFromColumnHits(per_column_hits, /*exclude=*/SIZE_MAX),
      k);
}

namespace {

// Shared batch fan-out: per-query results gathered under the same
// pool-or-serial rules as ShardedLakeIndex's batch entry points, with the
// first shard failure (lowest query index) failing the batch.
template <typename Query, typename Fn>
Result<std::vector<std::vector<std::string>>> RunBatch(
    const std::vector<Query>& queries, ThreadPool* pool, Fn&& run_one) {
  std::vector<Result<std::vector<std::string>>> results(
      queries.size(), Status::Internal("query not run"));
  if (pool != nullptr && queries.size() > 1) {
    // Fan out over queries; the per-query scatter stays serial because
    // ParallelFor must not nest on one pool.
    ParallelFor(pool, 0, queries.size(),
                [&](size_t q) { results[q] = run_one(queries[q], nullptr); });
  } else {
    for (size_t q = 0; q < queries.size(); ++q) {
      results[q] = run_one(queries[q], pool);
    }
  }
  std::vector<std::vector<std::string>> out;
  out.reserve(queries.size());
  for (auto& result : results) {
    if (!result.ok()) return result.status();
    out.push_back(std::move(result).value());
  }
  return out;
}

}  // namespace

Result<std::vector<std::vector<std::string>>>
DistributedLakeIndex::QueryJoinableBatch(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    ThreadPool* pool) const {
  return RunBatch(query_columns, pool,
                  [&](const std::vector<float>& q, ThreadPool* p) {
                    return QueryJoinable(q, k, p);
                  });
}

Result<std::vector<std::vector<std::string>>>
DistributedLakeIndex::QueryUnionableBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    ThreadPool* pool) const {
  return RunBatch(queries, pool,
                  [&](const std::vector<std::vector<float>>& q, ThreadPool* p) {
                    return QueryUnionable(q, k, p);
                  });
}

Result<std::vector<ShardHealth>> DistributedLakeIndex::Health() const {
  std::vector<ShardHealth> health(state_->shards.size());
  for (size_t s = 0; s < state_->shards.size(); ++s) {
    Result<ShardHealth> one = state_->CallShard(
        s, [](LakeClient& client) { return client.Health(); });
    if (!one.ok()) return one.status();
    health[s] = std::move(one).value();
  }
  return health;
}

Result<ServerStats> DistributedLakeIndex::AggregateStats() const {
  ServerStats total;
  for (size_t s = 0; s < state_->shards.size(); ++s) {
    Result<ServerStats> one = state_->CallShard(
        s, [](LakeClient& client) { return client.Stats(); });
    if (!one.ok()) return one.status();
    const ServerStats& stats = one.value();
    total.requests += stats.requests;
    total.batches += stats.batches;
    total.max_batch = std::max(total.max_batch, stats.max_batch);
    total.total_queue_wait_ms += stats.total_queue_wait_ms;
    total.total_latency_ms += stats.total_latency_ms;
  }
  return total;
}

}  // namespace tsfm::server
