#include "server/backend.h"

#include <utility>

namespace tsfm::server {

Result<std::vector<std::vector<std::string>>>
InProcessBackend::QueryJoinableBatch(
    const std::vector<std::vector<float>>& queries, size_t k,
    ThreadPool* pool) const {
  return index_.QueryJoinableBatch(queries, k, pool);
}

Result<std::vector<std::vector<std::string>>>
InProcessBackend::QueryUnionableBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    ThreadPool* pool) const {
  return index_.QueryUnionableBatch(queries, k, pool);
}

Result<std::vector<std::vector<ShardHit>>> InProcessBackend::ShardQuery(
    const std::vector<std::vector<float>>& columns, size_t m,
    ThreadPool* pool) const {
  // One batched scatter for all columns in the frame: each shard streams
  // its rows once for the whole SHARD_QUERY instead of once per column.
  std::vector<std::vector<ShardHit>> hits(columns.size());
  auto merged = index_.SearchColumnHitsBatch(columns, m, pool);
  for (size_t c = 0; c < columns.size(); ++c) {
    hits[c].reserve(merged[c].size());
    for (const auto& hit : merged[c]) {
      hits[c].push_back({static_cast<uint64_t>(hit.table_id),
                         static_cast<uint32_t>(hit.column_index),
                         hit.distance});
    }
  }
  return hits;
}

Result<std::vector<std::string>> InProcessBackend::TableIds() const {
  std::vector<std::string> ids;
  ids.reserve(index_.num_tables());
  for (size_t h = 0; h < index_.num_tables(); ++h) {
    ids.push_back(index_.table_id(h));
  }
  return ids;
}

ShardHealth InProcessBackend::Health() const {
  ShardHealth health;
  health.protocol_version = kProtocolVersion;
  health.backend = static_cast<uint8_t>(index_.options().backend);
  health.metric = static_cast<uint8_t>(index_.options().metric);
  health.dim = index_.dim();
  health.num_tables = index_.num_tables();
  health.num_columns = index_.num_columns();
  return health;
}

Status InProcessBackend::AddTable(
    const std::string& table_id,
    const std::vector<std::vector<float>>& columns) {
  index_.AddTable(table_id, columns);
  return Status::OK();
}

Status InProcessBackend::RemoveTable(const std::string& table_id) {
  return index_.RemoveTable(table_id);
}

Status InProcessBackend::Compact(ThreadPool* pool) {
  // Wire-driven compaction always rebuilds churned shards from scratch
  // (threshold 0): a coordinator fronting this worker mirrors the handle
  // remap locally, which is deterministic only for the full rebuild.
  return index_.Compact(/*hnsw_rebuild_threshold=*/0.0, pool);
}

LakeBackend::ChurnCounters InProcessBackend::Churn() const {
  ChurnCounters counters;
  counters.pending_delta_tables = index_.pending_delta_tables();
  counters.pending_tombstones = index_.pending_tombstones();
  counters.compactions = index_.compactions();
  return counters;
}

Result<std::vector<std::vector<std::string>>>
DistributedBackend::QueryJoinableBatch(
    const std::vector<std::vector<float>>& queries, size_t k,
    ThreadPool* pool) const {
  return index_.QueryJoinableBatch(queries, k, pool);
}

Result<std::vector<std::vector<std::string>>>
DistributedBackend::QueryUnionableBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    ThreadPool* pool) const {
  return index_.QueryUnionableBatch(queries, k, pool);
}

Result<std::vector<std::vector<ShardHit>>> DistributedBackend::ShardQuery(
    const std::vector<std::vector<float>>& columns, size_t m,
    ThreadPool* pool) const {
  (void)columns;
  (void)m;
  (void)pool;
  return Status::Unimplemented(
      "this server fronts a distributed coordinator; it is not itself a "
      "shard worker");
}

Result<std::vector<std::string>> DistributedBackend::TableIds() const {
  std::vector<std::string> ids;
  ids.reserve(index_.num_tables());
  for (size_t h = 0; h < index_.num_tables(); ++h) {
    ids.push_back(index_.table_id(h));
  }
  return ids;
}

ShardHealth DistributedBackend::Health() const {
  ShardHealth health;
  health.protocol_version = kProtocolVersion;
  health.backend = static_cast<uint8_t>(index_.backend());
  health.metric = static_cast<uint8_t>(index_.metric());
  health.dim = index_.dim();
  health.num_tables = index_.num_tables();
  health.num_columns = index_.num_columns();
  return health;
}

Status DistributedBackend::AddTable(
    const std::string& table_id,
    const std::vector<std::vector<float>>& columns) {
  return index_.AddTable(table_id, columns);
}

Status DistributedBackend::RemoveTable(const std::string& table_id) {
  return index_.RemoveTable(table_id);
}

Status DistributedBackend::Compact(ThreadPool* pool) {
  return index_.Compact(pool);
}

LakeBackend::ChurnCounters DistributedBackend::Churn() const {
  return index_.Churn();
}

}  // namespace tsfm::server
