// Internal plumbing shared by the server-subsystem .cc files (not part of
// the public surface): steady-clock millisecond deltas for the stats
// counters, and AF_UNIX address setup used identically on both ends of the
// socket.
#ifndef TSFM_SERVER_NET_UTIL_H_
#define TSFM_SERVER_NET_UTIL_H_

#include <sys/socket.h>
#include <sys/un.h>

#include <chrono>
#include <cstring>
#include <string>

#include "util/status.h"

namespace tsfm::server::internal {

using SteadyClock = std::chrono::steady_clock;

inline double MsSince(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

/// Fills `addr` for `socket_path`; too-long paths (sun_path is ~108 bytes)
/// are an error on either end, not a silent truncation.
inline Status FillUnixSockaddr(const std::string& socket_path,
                               sockaddr_un* addr) {
  *addr = {};
  addr->sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::memcpy(addr->sun_path, socket_path.c_str(), socket_path.size() + 1);
  return Status::OK();
}

}  // namespace tsfm::server::internal

#endif  // TSFM_SERVER_NET_UTIL_H_
