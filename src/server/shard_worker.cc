#include "server/shard_worker.h"

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#include "search/lake_manifest.h"
#include "search/sharded_lake_index.h"
#include "server/net_util.h"

namespace tsfm::server {

Result<ShardWorker> ShardWorker::Load(const std::string& index_path,
                                      const ServerOptions& options) {
  auto index = search::ShardedLakeIndex::Load(index_path);
  if (!index.ok()) return index.status();
  return ShardWorker(
      std::make_unique<LakeServer>(std::move(index).value(), options));
}

Status ShardWorker::Start(const std::string& socket_path) {
  return server_->Start(socket_path);
}

void ShardWorker::Stop() { server_->Stop(); }

namespace {

// Child-side SIGTERM latch. sig_atomic_t + a plain handler: the child's
// serving loop polls it, everything non-trivial happens outside the
// handler.
volatile std::sig_atomic_t g_worker_stop = 0;

void HandleWorkerSignal(int) { g_worker_stop = 1; }

// Runs the worker in the forked child; never returns.
[[noreturn]] void RunWorkerChild(const std::string& index_path,
                                 const std::string& socket_path,
                                 const ServerOptions& options) {
  std::signal(SIGTERM, HandleWorkerSignal);
  // Ctrl-C signals the whole foreground process group. The parent owns
  // the shutdown order (drain its coordinator first, SIGTERM workers
  // after); a worker that reacted to the group SIGINT would vanish
  // mid-drain and turn a graceful stop into shard errors.
  std::signal(SIGINT, SIG_IGN);
  auto worker = ShardWorker::Load(index_path, options);
  if (!worker.ok()) _exit(1);
  if (!worker.value().Start(socket_path).ok()) _exit(1);
  while (g_worker_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  worker.value().Stop();
  _exit(0);
}

}  // namespace

Result<pid_t> SpawnShardWorkerProcess(const std::string& index_path,
                                      const std::string& socket_path,
                                      const ServerOptions& options) {
  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) RunWorkerChild(index_path, socket_path, options);
  return pid;
}

Status WaitForWorker(const std::string& socket_path, int timeout_ms,
                     pid_t pid) {
  sockaddr_un addr;
  if (Status s = internal::FillUnixSockaddr(socket_path, &addr); !s.ok()) {
    return s;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd >= 0) {
      int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      ::close(fd);
      if (rc == 0) return Status::OK();
    }
    if (pid >= 0) {
      // A child that died during startup (bad shard file, bind failure)
      // will never bind this socket; report that now instead of burning
      // the whole timeout against a path that cannot appear. WNOWAIT
      // leaves the zombie in place — StopShardWorkerProcess still owns
      // the reap, so the pid cannot be recycled under the caller.
      siginfo_t info;
      info.si_pid = 0;
      if (::waitid(P_PID, static_cast<id_t>(pid), &info,
                   WEXITED | WNOHANG | WNOWAIT) == 0 &&
          info.si_pid == pid) {
        return Status::IoError("worker for " + socket_path +
                               " exited during startup (status " +
                               std::to_string(info.si_status) + ")");
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::IoError("worker on " + socket_path +
                             " did not start accepting within " +
                             std::to_string(timeout_ms) + " ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

Result<ShardWorkerFleet> ShardWorkerFleet::Spawn(
    const std::string& manifest_path, const std::string& socket_prefix,
    const ServerOptions& options, int startup_timeout_ms) {
  auto manifest = search::LoadLakeManifest(manifest_path);
  if (!manifest.ok()) return manifest.status();
  const auto dir = std::filesystem::path(manifest_path).parent_path();

  // Fork the whole fleet first (before any failure can have spawned
  // threads in this process), then run the startup barrier.
  ShardWorkerFleet fleet;
  for (size_t s = 0; s < manifest.value().num_shards(); ++s) {
    const std::string shard_file =
        (dir / manifest.value().shard_files[s]).string();
    fleet.sockets_.push_back(socket_prefix + ".shard-" + std::to_string(s));
    // Sockets and shard files share the ".shard-s" suffix convention; a
    // prefix equal to the manifest path would make the worker's socket
    // bind unlink the very shard file it is about to serve.
    if (fleet.sockets_.back() == shard_file) {
      return Status::InvalidArgument(
          "socket prefix collides with shard file " + shard_file +
          "; pick a prefix that is not the manifest path");
    }
    auto pid = SpawnShardWorkerProcess(shard_file, fleet.sockets_.back(),
                                       options);
    if (!pid.ok()) {
      return Status(pid.status().code(), "spawning worker for shard " +
                                             std::to_string(s) + ": " +
                                             pid.status().message());
    }
    fleet.pids_.push_back(pid.value());
  }
  for (size_t s = 0; s < fleet.sockets_.size(); ++s) {
    if (Status status = WaitForWorker(fleet.sockets_[s], startup_timeout_ms,
                                      fleet.pids_[s]);
        !status.ok()) {
      return Status(status.code(), "shard " + std::to_string(s) + ": " +
                                       status.message());
    }
  }
  return fleet;
}

void ShardWorkerFleet::KillWorker(size_t shard) {
  if (pids_[shard] <= 0) return;
  ::kill(pids_[shard], SIGKILL);
  int wstatus = 0;
  ::waitpid(pids_[shard], &wstatus, 0);
  pids_[shard] = -1;
}

void ShardWorkerFleet::StopAll() {
  for (pid_t& pid : pids_) {
    // Ignorable: StopAll is the tear-everything-down path (tests, fatal
    // exits); a worker that already died or refuses the handshake is
    // SIGKILLed by StopShardWorkerProcess itself, so there is nothing
    // more to do with its Status here.
    if (pid > 0) (void)StopShardWorkerProcess(pid);
    pid = -1;
  }
  for (const std::string& socket_path : sockets_) {
    ::unlink(socket_path.c_str());
  }
}

Status StopShardWorkerProcess(pid_t pid, int timeout_ms) {
  if (pid <= 0) return Status::InvalidArgument("bad worker pid");
  ::kill(pid, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int wstatus = 0;
  for (;;) {
    pid_t reaped = ::waitpid(pid, &wstatus, WNOHANG);
    if (reaped == pid) break;
    if (reaped < 0) {
      // Already reaped elsewhere (or never ours): nothing left to stop.
      return Status::OK();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      // A worker that ignores SIGTERM past the deadline is wedged; a
      // blocking reap after SIGKILL cannot hang.
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &wstatus, 0);
      return Status::Internal("worker " + std::to_string(pid) +
                              " ignored SIGTERM and was killed");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) return Status::OK();
  if (WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGTERM) return Status::OK();
  return Status::Internal("worker " + std::to_string(pid) +
                          " exited abnormally (status " +
                          std::to_string(wstatus) + ")");
}

}  // namespace tsfm::server
