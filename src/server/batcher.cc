#include "server/batcher.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <utility>

#include "server/backend.h"
#include "server/net_util.h"
#include "util/thread_pool.h"

namespace tsfm::server {

using internal::MsSince;
using Clock = internal::SteadyClock;

struct QueryBatcher::Job {
  Opcode op;
  std::vector<std::vector<float>> columns;
  size_t k;
  Clock::time_point enqueued;
  std::promise<Result<std::vector<std::string>>> done;
};

QueryBatcher::QueryBatcher(const LakeBackend* backend, ThreadPool* query_pool,
                           size_t max_batch)
    : backend_(backend),
      query_pool_(query_pool),
      max_batch_(std::max<size_t>(1, max_batch)),
      max_inflight_groups_(std::max<size_t>(1, query_pool->num_threads())),
      dispatcher_([this] { DispatchLoop(); }) {}

QueryBatcher::~QueryBatcher() { Stop(); }

Result<std::vector<std::string>> QueryBatcher::Submit(
    Opcode op, std::vector<std::vector<float>> columns, size_t k) {
  auto job = std::make_unique<Job>();
  job->op = op;
  job->columns = std::move(columns);
  job->k = k;
  job->enqueued = Clock::now();
  std::future<Result<std::vector<std::string>>> result = job->done.get_future();
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      return Status::Internal("query batcher is shutting down");
    }
    pending_.push_back(std::move(job));
  }
  work_cv_.NotifyOne();
  return result.get();
}

void QueryBatcher::Stop() {
  // Serialize concurrent Stop calls (e.g. an explicit Stop racing the
  // destructor's): the loser blocks until the dispatcher is joined rather
  // than returning while the thread is still live.
  MutexLock stop_lock(&stop_mu_);
  if (!dispatcher_.joinable()) return;
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  dispatcher_.join();
  // The dispatcher has drained the queue, but groups it handed to the
  // query pool may still be running; wait them out so every accepted
  // query has its result before Stop returns.
  MutexLock lock(&mu_);
  while (inflight_groups_ != 0) idle_cv_.Wait(mu_);
}

ServerStats QueryBatcher::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

size_t QueryBatcher::PendingForTest() const {
  MutexLock lock(&mu_);
  return pending_.size();
}

void QueryBatcher::DispatchLoop() {
  for (;;) {
    // Group compatible jobs: the batch entry points take one k for the
    // whole batch, so (opcode, k) is the coalescing key. Each group fills
    // to max_batch_ from the WHOLE queue — splitting happens before the
    // cap, so a mixed-opcode burst still yields full per-key batches
    // instead of max_batch_ jobs fragmented across keys. Jobs whose group
    // is already full stay parked in FIFO order for the next round.
    std::map<std::pair<uint8_t, size_t>, std::vector<std::unique_ptr<Job>>>
        groups;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && pending_.empty()) work_cv_.Wait(mu_);
      // Drain before exiting so every accepted query gets its result.
      if (pending_.empty()) return;
      std::deque<std::unique_ptr<Job>> leftover;
      while (!pending_.empty()) {
        std::unique_ptr<Job> job = std::move(pending_.front());
        pending_.pop_front();
        auto key = std::make_pair(static_cast<uint8_t>(job->op), job->k);
        auto& group = groups[key];
        if (group.size() < max_batch_) {
          group.push_back(std::move(job));
        } else {
          leftover.push_back(std::move(job));
        }
      }
      pending_ = std::move(leftover);
    }
    for (auto& [key, group] : groups) {
      DispatchGroup(static_cast<Opcode>(key.first), key.second,
                    std::move(group));
    }
  }
}

void QueryBatcher::DispatchGroup(Opcode op, size_t k,
                                 std::vector<std::unique_ptr<Job>> group) {
  // Hand the group to the query pool so one slow group (a huge k, a cold
  // shard) cannot head-of-line-block every other group behind the
  // dispatcher thread. inflight_groups_ keeps the Stop() drain guarantee:
  // Stop waits until every dispatched group has fulfilled its promises.
  //
  // The pool-width cap is the coalescing backpressure: more concurrent
  // groups than threads adds no parallelism, and a dispatcher that raced
  // ahead of the pool would shred a steady request stream into singleton
  // batches (each arrival dispatched the instant it lands). Waiting here
  // instead lets pending_ accumulate, so the next round forms full
  // per-key groups for the multi-query scan.
  {
    MutexLock lock(&mu_);
    while (inflight_groups_ >= max_inflight_groups_) idle_cv_.Wait(mu_);
    ++inflight_groups_;
  }
  // std::function must be copyable; the move-only group rides a shared_ptr.
  auto shared = std::make_shared<std::vector<std::unique_ptr<Job>>>(
      std::move(group));
  auto task = [this, op, k, shared] {
    RunGroup(op, k, std::move(*shared));
    MutexLock lock(&mu_);
    --inflight_groups_;
    idle_cv_.NotifyAll();
  };
  if (!query_pool_->Submit(task)) {
    // Pool already shut down (shutdown drain): run inline on the
    // dispatcher — slower, but every accepted query still gets its result.
    task();
  }
}

void QueryBatcher::RunGroup(Opcode op, size_t k,
                            std::vector<std::unique_ptr<Job>> group) {
  double queue_wait_ms = 0;
  for (const auto& job : group) queue_wait_ms += MsSince(job->enqueued);

  // These batch calls fan out on query_pool_ with ParallelFor — which is
  // nest-safe, so it is fine that this very function is usually itself a
  // query_pool_ task. During a shutdown drain the pool may already be
  // rejecting tasks; ParallelFor's contract (util/thread_pool.h) runs
  // rejected chunks inline on the calling thread, so every drained query
  // still gets a complete answer — slower, never partial.
  Result<std::vector<std::vector<std::string>>> results =
      Status::Internal("batch not run");
  if (op == Opcode::kJoin) {
    std::vector<std::vector<float>> queries;
    queries.reserve(group.size());
    for (auto& job : group) queries.push_back(std::move(job->columns[0]));
    results = backend_->QueryJoinableBatch(queries, k, query_pool_);
  } else {
    std::vector<std::vector<std::vector<float>>> queries;
    queries.reserve(group.size());
    for (auto& job : group) queries.push_back(std::move(job->columns));
    results = backend_->QueryUnionableBatch(queries, k, query_pool_);
  }
  // Count the batch before unblocking its waiters: once a response is
  // delivered, a STATS read must already see its request, or an exact
  // served-vs-reported comparison can transiently undercount.
  {
    MutexLock lock(&stats_mu_);
    stats_.requests += group.size();
    stats_.batches += 1;
    stats_.max_batch = std::max<uint64_t>(stats_.max_batch, group.size());
    stats_.total_queue_wait_ms += queue_wait_ms;
  }
  if (!results.ok()) {
    // A backend failure (dead shard, say) fails the whole batch: every
    // coalesced query gets the same Status rather than a fabricated
    // partial answer.
    for (auto& job : group) job->done.set_value(results.status());
    return;
  }
  for (size_t i = 0; i < group.size(); ++i) {
    group[i]->done.set_value(std::move(results.value()[i]));
  }
}

}  // namespace tsfm::server
