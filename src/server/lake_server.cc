#include "server/lake_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "server/net_util.h"
#include "util/thread_pool.h"

namespace tsfm::server {

using internal::FillUnixSockaddr;
using internal::MsSince;
using Clock = internal::SteadyClock;

namespace {
constexpr int kAcceptPollMs = 50;  // stop-flag check cadence
}  // namespace

LakeServer::LakeServer(std::unique_ptr<LakeBackend> backend,
                       const ServerOptions& options)
    : backend_(std::move(backend)), options_(options) {
  size_t query_threads = options_.query_threads != 0
                             ? options_.query_threads
                             : std::thread::hardware_concurrency();
  query_pool_ = std::make_unique<ThreadPool>(query_threads);
  io_pool_ = std::make_unique<ThreadPool>(options_.io_threads);
  batcher_ = std::make_unique<QueryBatcher>(backend_.get(), query_pool_.get(),
                                            options_.max_batch);
}

LakeServer::LakeServer(search::ShardedLakeIndex index,
                       const ServerOptions& options)
    : LakeServer(std::make_unique<InProcessBackend>(std::move(index)),
                 options) {}

LakeServer::LakeServer(DistributedLakeIndex index, const ServerOptions& options)
    : LakeServer(std::make_unique<DistributedBackend>(std::move(index)),
                 options) {}

LakeServer::~LakeServer() { Stop(); }

Status LakeServer::Start(const std::string& socket_path) {
  if (started_.load()) return Status::Internal("server already started");
  sockaddr_un addr;
  if (Status s = FillUnixSockaddr(socket_path, &addr); !s.ok()) return s;

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(socket_path.c_str());  // a stale path from a dead server is fine
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IoError("bind " + socket_path + ": " +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path.c_str());
    return status;
  }
  socket_path_ = socket_path;
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LakeServer::Stop() {
  // Serialize concurrent Stop calls (say, an explicit call racing the
  // destructor's): the loser blocks until the winner has fully torn down,
  // so it can never observe a half-stopped server.
  MutexLock stop_lock(&stop_mu_);
  if (!started_.load() || stopped_) return;
  stopped_ = true;

  // 1. Refuse new connections: flag the accept loop down, join it, release
  //    the socket path.
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());

  // 2. Nudge every open connection: a read-side shutdown makes a handler
  //    blocked in ReadFrame see a clean EOF. Handlers that already read a
  //    request keep going — they finish through the batcher and write
  //    their response on the still-open write side.
  {
    MutexLock lock(&conn_mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RD);
  }

  // 3. Drain: wait for every connection handler (running and queued), then
  //    for the batcher (which answers all accepted queries before exiting).
  //    If a drained query's ParallelFor races the query pool's teardown
  //    below, rejected chunks run inline on the batcher's dispatcher
  //    thread (the ParallelFor shutdown contract in util/thread_pool.h) —
  //    drained responses are complete, never partial.
  io_pool_->Wait();
  batcher_->Stop();

  // 4. Tear down the pools; their destructors would do this too, but doing
  //    it here makes "no leaked threads" hold the moment Stop returns.
  io_pool_->Shutdown();
  query_pool_->Shutdown();
}

ServerStats LakeServer::stats() const {
  ServerStats stats = batcher_->stats();
  const LakeBackend::ChurnCounters churn = backend_->Churn();
  stats.pending_delta_tables = churn.pending_delta_tables;
  stats.pending_tombstones = churn.pending_tombstones;
  stats.compactions = churn.compactions;
  MutexLock lock(&latency_mu_);
  stats.total_latency_ms = total_latency_ms_;
  stats.requests += shard_requests_;
  return stats;
}

void LakeServer::MaybeAutoCompact() {
  if (options_.auto_compact_pending == 0) return;
  const LakeBackend::ChurnCounters churn = backend_->Churn();
  if (churn.pending_delta_tables + churn.pending_tombstones <
      options_.auto_compact_pending) {
    return;
  }
  if (compacting_.exchange(true)) return;  // one in flight is enough
  // The compaction itself runs serially (pool=nullptr): its task lives on
  // the query pool, and ParallelFor must not nest on the pool it runs on.
  // Stop() drains the query pool, so a compaction in flight at shutdown
  // completes rather than being torn out from under the backend.
  if (!query_pool_->Submit([this] {
        // Ignorable: there is no client on this code path to report a
        // failure to, and it already shows up in the still-elevated churn
        // counters the next STATS read returns.
        (void)backend_->Compact(nullptr);
        compacting_.store(false);
      })) {
    compacting_.store(false);
  }
}

void LakeServer::AcceptLoop() {
  for (;;) {
    if (stopping_.load()) return;
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0 && errno != EINTR) {
      // A transient poll failure (e.g. ENOMEM) must not silently retire
      // the accept loop while running() still reads true; back off, retry.
      std::this_thread::sleep_for(std::chrono::milliseconds(kAcceptPollMs));
      continue;
    }
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      // Under fd exhaustion (EMFILE/ENFILE) the pending connection keeps
      // the listen fd readable, so a bare retry would busy-spin a core;
      // back off and let fds free up.
      std::this_thread::sleep_for(std::chrono::milliseconds(kAcceptPollMs));
      continue;
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    // A client that stops reading must not wedge a handler (and with it
    // graceful shutdown) in send() forever.
    timeval send_timeout{/*tv_sec=*/60, /*tv_usec=*/0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    {
      MutexLock lock(&conn_mu_);
      conns_.insert(fd);
    }
    if (!io_pool_->Submit([this, fd] { HandleConnection(fd); })) {
      MutexLock lock(&conn_mu_);
      conns_.erase(fd);
      ::close(fd);
    }
  }
}

void LakeServer::HandleConnection(int fd) {
  for (;;) {
    std::string payload;
    bool clean_eof = false;
    Status status =
        ReadFrame(fd, options_.max_frame_bytes, &payload, &clean_eof);
    if (status.ok() && clean_eof) break;
    if (!status.ok()) {
      // An oversized length prefix leaves the stream positioned after the
      // prefix, so the connection cannot be re-synchronized — answer with
      // a Status error, then close. Truncated frames and transport errors
      // mean the client is gone; just close.
      if (status.code() == StatusCode::kOutOfRange) {
        // Ignorable: this reply is best-effort courtesy on a connection we
        // are about to close — if the client is already gone there is
        // nobody left to tell.
        (void)WriteFrame(
            fd, SerializeResponse(Response::Error(Opcode::kJoin, status)));
      }
      break;
    }

    Clock::time_point received = Clock::now();
    std::istringstream in(payload);
    Request request;
    Response response;
    if (Status parsed = DecodeRequest(in, &request); !parsed.ok()) {
      // The frame boundary survived, so the connection is still usable.
      // DecodeRequest fills request.op before later failures (trailing
      // bytes, truncated vectors), so echo it where it got that far;
      // header-level failures leave the default.
      response = Response::Error(request.op, parsed);
    } else {
      response = HandleRequest(std::move(request));
    }
    // Query round trips (ranked and shard) feed the latency counter —
    // the same set stats() counts as requests, so served-vs-reported
    // means stay consistent; metadata ops (STATS/HEALTH/TABLES) don't.
    if (response.status == StatusCode::kOk &&
        (response.op == Opcode::kJoin || response.op == Opcode::kUnion ||
         response.op == Opcode::kShardQuery)) {
      MutexLock lock(&latency_mu_);
      total_latency_ms_ += MsSince(received);
    }
    if (!WriteFrame(fd, SerializeResponse(response)).ok()) break;
  }
  {
    MutexLock lock(&conn_mu_);
    conns_.erase(fd);
  }
  ::close(fd);
}

Response LakeServer::HandleRequest(Request&& request) {
  const Opcode op = request.op;
  // Echo the version the request arrived with: a version-1 client must get
  // version-1 responses it can decode, and Error() below already stamps
  // the lowest version that carries the opcode.
  Response response;
  response.version = request.version;
  response.op = op;
  if (op == Opcode::kStats) {
    response.stats = stats();
    return response;
  }
  if (op == Opcode::kHealth) {
    response.health = backend_->Health();
    return response;
  }
  if (op == Opcode::kShardTables) {
    Result<std::vector<std::string>> ids = backend_->TableIds();
    if (!ids.ok()) return Response::Error(op, ids.status());
    response.ids = std::move(ids).value();
    return response;
  }
  if (op == Opcode::kRemoveTable) {
    if (Status s = backend_->RemoveTable(request.table_id); !s.ok()) {
      return Response::Error(op, s);
    }
    MaybeAutoCompact();
    return response;
  }
  if (op == Opcode::kCompact) {
    // Blocks this handler until the fold finishes — the client asked for a
    // compaction and gets told when it is durable. Concurrent queries keep
    // serving against the pre-compaction epoch until the atomic swap.
    if (Status s = backend_->Compact(query_pool_.get()); !s.ok()) {
      return Response::Error(op, s);
    }
    return response;
  }
  if (op == Opcode::kJoin && request.columns.size() != 1) {
    return Response::Error(
        op, Status::InvalidArgument(
                "join query must carry exactly one column, got " +
                std::to_string(request.columns.size())));
  }
  for (const auto& column : request.columns) {
    if (column.size() != backend_->dim()) {
      return Response::Error(
          op, Status::InvalidArgument("query dim " +
                                      std::to_string(column.size()) +
                                      " does not match index dim " +
                                      std::to_string(backend_->dim())));
    }
  }
  if (op == Opcode::kAddTable) {
    if (Status s = backend_->AddTable(request.table_id, request.columns);
        !s.ok()) {
      return Response::Error(op, s);
    }
    MaybeAutoCompact();
    return response;
  }
  if (op == Opcode::kShardQuery) {
    // Shard queries bypass the batcher: they are the scatter primitive a
    // coordinator builds its own coalescing on, and their per-column hit
    // budget does not coalesce by (opcode, k) the way ranked queries do.
    // Clamping m to the column count changes nothing semantically (a
    // search cannot return more hits than columns exist) but bounds what
    // a hostile m can make the ANN layer allocate.
    const size_t m = std::min<size_t>(request.k, backend_->num_columns());
    Result<std::vector<std::vector<ShardHit>>> hits =
        backend_->ShardQuery(request.columns, m, query_pool_.get());
    if (!hits.ok()) return Response::Error(op, hits.status());
    response.hits = std::move(hits).value();
    {
      MutexLock lock(&latency_mu_);
      ++shard_requests_;
    }
    return response;
  }
  // Ranked results can never exceed the table count, so clamping k there
  // changes nothing semantically — but it stops a hostile k=0xFFFFFFFF in
  // an otherwise-valid tiny frame from driving a ~300 GB reserve() inside
  // the ranking stack and killing the server with bad_alloc.
  const size_t k = std::min<size_t>(request.k, backend_->num_tables());
  Result<std::vector<std::string>> ids =
      batcher_->Submit(op, std::move(request.columns), k);
  if (!ids.ok()) return Response::Error(op, ids.status());
  response.ids = std::move(ids).value();
  return response;
}

}  // namespace tsfm::server
