#include "server/protocol.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "search/stream_io.h"
#include "util/logging.h"

namespace tsfm::server {

using search::io::ReadPod;
using search::io::WritePod;

namespace {

// Codec-level sanity caps. The socket layer already bounds a frame's total
// bytes, but a garbage payload can still claim absurd element counts; these
// caps turn that into kParseError before any large allocation. Every
// legitimate message is far below them.
constexpr uint64_t kMaxColumns = 1u << 16;
constexpr uint64_t kMaxDim = 1u << 16;
constexpr uint64_t kMaxIds = 1u << 20;
constexpr uint64_t kMaxIdBytes = 1u << 20;

Status Truncated(const char* what) {
  return Status::ParseError(std::string("payload ends inside ") + what);
}

// One frame carries exactly one message; accepting trailing bytes would
// let a desynced or hostile peer smuggle a second message the receiver
// silently drops, desyncing request/response accounting.
Status RequireFullyConsumed(std::istream& in) {
  if (in.peek() != std::istream::traits_type::eof()) {
    return Status::ParseError("payload has trailing bytes after the message");
  }
  return Status::OK();
}

// True for the opcodes that carry no payload beyond the header.
bool IsHeaderOnly(Opcode op) {
  return op == Opcode::kStats || op == Opcode::kHealth ||
         op == Opcode::kShardTables || op == Opcode::kCompact;
}

// True for the opcodes whose payload starts with a table id.
bool CarriesTableId(Opcode op) {
  return op == Opcode::kAddTable || op == Opcode::kRemoveTable;
}

// Shared header validation: the version byte must be one this build
// decodes, and a newer opcode must not be smuggled into an older frame — an
// old-version-only peer would misparse it, so that combination never
// appears on a healthy wire.
Status CheckVersionedOpcode(uint8_t version, uint8_t raw_op) {
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Status::ParseError("unsupported protocol version " +
                              std::to_string(version));
  }
  if (!IsValidOpcode(raw_op)) {
    return Status::ParseError("unknown opcode " + std::to_string(raw_op));
  }
  const uint8_t required = RequiredVersion(static_cast<Opcode>(raw_op));
  if (version < required) {
    return Status::ParseError(
        "opcode " + std::to_string(raw_op) + " requires protocol version " +
        std::to_string(required) + ", got " + std::to_string(version));
  }
  return Status::OK();
}

}  // namespace

bool IsValidOpcode(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kJoin) &&
         raw <= static_cast<uint8_t>(Opcode::kCompact);
}

uint8_t RequiredVersion(Opcode op) {
  switch (op) {
    case Opcode::kJoin:
    case Opcode::kUnion:
    case Opcode::kStats:
      return 1;
    case Opcode::kShardQuery:
    case Opcode::kHealth:
    case Opcode::kShardTables:
      return 2;
    case Opcode::kAddTable:
    case Opcode::kRemoveTable:
    case Opcode::kCompact:
      return 3;
  }
  return kProtocolVersion;
}

Response Response::Error(Opcode op, const Status& status) {
  Response response;
  response.version = RequiredVersion(op);
  response.op = op;
  response.status = status.code();
  response.message = status.message();
  return response;
}

void EncodeRequest(const Request& request, std::ostream& out) {
  WritePod(out, request.version);
  WritePod(out, static_cast<uint8_t>(request.op));
  if (IsHeaderOnly(request.op)) return;
  if (CarriesTableId(request.op)) {
    WritePod(out, static_cast<uint32_t>(request.table_id.size()));
    out.write(request.table_id.data(),
              static_cast<std::streamsize>(request.table_id.size()));
    if (request.op == Opcode::kRemoveTable) return;
    // kAddTable continues with the new table's columns; no k — an ingest
    // has no result-count knob.
    WritePod(out, static_cast<uint32_t>(request.columns.size()));
    const uint32_t dim = request.columns.empty()
                             ? 0u
                             : static_cast<uint32_t>(request.columns[0].size());
    WritePod(out, dim);
    for (const auto& column : request.columns) {
      TSFM_CHECK_EQ(column.size(), static_cast<size_t>(dim));
      out.write(reinterpret_cast<const char*>(column.data()),
                static_cast<std::streamsize>(column.size() * sizeof(float)));
    }
    return;
  }
  WritePod(out, request.k);
  WritePod(out, static_cast<uint32_t>(request.columns.size()));
  const uint32_t dim =
      request.columns.empty() ? 0u
                              : static_cast<uint32_t>(request.columns[0].size());
  WritePod(out, dim);
  for (const auto& column : request.columns) {
    // The wire format carries one dim for the whole query; ragged input
    // would encode to a payload that decodes to a *different* request.
    TSFM_CHECK_EQ(column.size(), static_cast<size_t>(dim));
    out.write(reinterpret_cast<const char*>(column.data()),
              static_cast<std::streamsize>(column.size() * sizeof(float)));
  }
}

Status DecodeRequest(std::istream& in, Request* request) {
  uint8_t version = 0, raw_op = 0;
  if (!ReadPod(in, &version) || !ReadPod(in, &raw_op)) {
    return Truncated("request header");
  }
  if (Status s = CheckVersionedOpcode(version, raw_op); !s.ok()) return s;
  request->version = version;
  request->op = static_cast<Opcode>(raw_op);
  request->k = 0;
  request->table_id.clear();
  request->columns.clear();
  if (IsHeaderOnly(request->op)) return RequireFullyConsumed(in);
  if (CarriesTableId(request->op)) {
    uint32_t id_len = 0;
    if (!ReadPod(in, &id_len)) return Truncated("table id length");
    if (id_len > kMaxIdBytes) {
      return Status::ParseError("table id length exceeds protocol limits");
    }
    request->table_id.resize(id_len);
    in.read(request->table_id.data(), static_cast<std::streamsize>(id_len));
    if (!in) return Truncated("table id");
    if (request->op == Opcode::kRemoveTable) return RequireFullyConsumed(in);
    uint32_t num_columns = 0, dim = 0;
    if (!ReadPod(in, &num_columns) || !ReadPod(in, &dim)) {
      return Truncated("table shape");
    }
    if (num_columns > kMaxColumns || dim > kMaxDim) {
      return Status::ParseError("table shape " + std::to_string(num_columns) +
                                "x" + std::to_string(dim) +
                                " exceeds protocol limits");
    }
    request->columns.resize(num_columns);
    for (auto& column : request->columns) {
      column.resize(dim);
      in.read(reinterpret_cast<char*>(column.data()),
              static_cast<std::streamsize>(dim * sizeof(float)));
      if (!in) return Truncated("table vectors");
    }
    return RequireFullyConsumed(in);
  }

  uint32_t num_columns = 0, dim = 0;
  if (!ReadPod(in, &request->k) || !ReadPod(in, &num_columns) ||
      !ReadPod(in, &dim)) {
    return Truncated("request query header");
  }
  if (num_columns > kMaxColumns || dim > kMaxDim) {
    return Status::ParseError("query shape " + std::to_string(num_columns) +
                              "x" + std::to_string(dim) +
                              " exceeds protocol limits");
  }
  request->columns.resize(num_columns);
  for (auto& column : request->columns) {
    column.resize(dim);
    in.read(reinterpret_cast<char*>(column.data()),
            static_cast<std::streamsize>(dim * sizeof(float)));
    if (!in) return Truncated("query vectors");
  }
  return RequireFullyConsumed(in);
}

void EncodeResponse(const Response& response, std::ostream& out) {
  WritePod(out, response.version);
  WritePod(out, static_cast<uint8_t>(response.op));
  WritePod(out, static_cast<uint8_t>(response.status));
  if (response.status != StatusCode::kOk) {
    WritePod(out, static_cast<uint32_t>(response.message.size()));
    out.write(response.message.data(),
              static_cast<std::streamsize>(response.message.size()));
    return;
  }
  if (response.op == Opcode::kStats) {
    WritePod(out, response.stats.requests);
    WritePod(out, response.stats.batches);
    WritePod(out, response.stats.max_batch);
    WritePod(out, response.stats.total_queue_wait_ms);
    WritePod(out, response.stats.total_latency_ms);
    // Churn counters ride only in v3-stamped stats responses; the server
    // echoes the request's version, so a v1/v2 peer keeps receiving the
    // exact five-field payload it always parsed.
    if (response.version >= 3) {
      WritePod(out, response.stats.pending_delta_tables);
      WritePod(out, response.stats.pending_tombstones);
      WritePod(out, response.stats.compactions);
    }
    return;
  }
  if (response.op == Opcode::kHealth) {
    WritePod(out, response.health.protocol_version);
    WritePod(out, response.health.backend);
    WritePod(out, response.health.metric);
    WritePod(out, response.health.dim);
    WritePod(out, response.health.num_tables);
    WritePod(out, response.health.num_columns);
    return;
  }
  if (response.op == Opcode::kShardQuery) {
    WritePod(out, static_cast<uint32_t>(response.hits.size()));
    for (const auto& list : response.hits) {
      WritePod(out, static_cast<uint32_t>(list.size()));
      for (const ShardHit& hit : list) {
        WritePod(out, hit.table);
        WritePod(out, hit.column);
        WritePod(out, hit.distance);
      }
    }
    return;
  }
  WritePod(out, static_cast<uint32_t>(response.ids.size()));
  for (const auto& id : response.ids) {
    WritePod(out, static_cast<uint32_t>(id.size()));
    out.write(id.data(), static_cast<std::streamsize>(id.size()));
  }
}

Status DecodeResponse(std::istream& in, Response* response) {
  uint8_t version = 0, raw_op = 0, raw_status = 0;
  if (!ReadPod(in, &version) || !ReadPod(in, &raw_op) ||
      !ReadPod(in, &raw_status)) {
    return Truncated("response header");
  }
  if (Status s = CheckVersionedOpcode(version, raw_op); !s.ok()) return s;
  if (raw_status > static_cast<uint8_t>(StatusCode::kUnimplemented)) {
    return Status::ParseError("unknown status code " +
                              std::to_string(raw_status));
  }
  response->version = version;
  response->op = static_cast<Opcode>(raw_op);
  response->status = static_cast<StatusCode>(raw_status);
  response->message.clear();
  response->ids.clear();
  response->stats = ServerStats{};
  response->hits.clear();
  response->health = ShardHealth{};
  if (response->status != StatusCode::kOk) {
    uint32_t len = 0;
    if (!ReadPod(in, &len)) return Truncated("error message length");
    if (len > kMaxIdBytes) {
      return Status::ParseError("error message length exceeds protocol limits");
    }
    response->message.resize(len);
    in.read(response->message.data(), static_cast<std::streamsize>(len));
    if (!in) return Truncated("error message");
    return RequireFullyConsumed(in);
  }
  if (response->op == Opcode::kStats) {
    if (!ReadPod(in, &response->stats.requests) ||
        !ReadPod(in, &response->stats.batches) ||
        !ReadPod(in, &response->stats.max_batch) ||
        !ReadPod(in, &response->stats.total_queue_wait_ms) ||
        !ReadPod(in, &response->stats.total_latency_ms)) {
      return Truncated("stats payload");
    }
    if (version >= 3 &&
        (!ReadPod(in, &response->stats.pending_delta_tables) ||
         !ReadPod(in, &response->stats.pending_tombstones) ||
         !ReadPod(in, &response->stats.compactions))) {
      return Truncated("stats churn counters");
    }
    return RequireFullyConsumed(in);
  }
  if (response->op == Opcode::kHealth) {
    if (!ReadPod(in, &response->health.protocol_version) ||
        !ReadPod(in, &response->health.backend) ||
        !ReadPod(in, &response->health.metric) ||
        !ReadPod(in, &response->health.dim) ||
        !ReadPod(in, &response->health.num_tables) ||
        !ReadPod(in, &response->health.num_columns)) {
      return Truncated("health payload");
    }
    return RequireFullyConsumed(in);
  }
  if (response->op == Opcode::kShardQuery) {
    uint32_t num_lists = 0;
    if (!ReadPod(in, &num_lists)) return Truncated("hit list count");
    if (num_lists > kMaxColumns) {
      return Status::ParseError("hit list count exceeds protocol limits");
    }
    response->hits.resize(num_lists);
    for (auto& list : response->hits) {
      uint32_t num_hits = 0;
      if (!ReadPod(in, &num_hits)) return Truncated("hit count");
      if (num_hits > kMaxIds) {
        return Status::ParseError("hit count exceeds protocol limits");
      }
      // Grow incrementally so a hostile count with no data behind it fails
      // on its first missing hit, not after a count-sized allocation.
      list.reserve(std::min<uint32_t>(num_hits, 1024));
      for (uint32_t i = 0; i < num_hits; ++i) {
        ShardHit hit;
        if (!ReadPod(in, &hit.table) || !ReadPod(in, &hit.column) ||
            !ReadPod(in, &hit.distance)) {
          return Truncated("hit entries");
        }
        list.push_back(hit);
      }
    }
    return RequireFullyConsumed(in);
  }
  uint32_t count = 0;
  if (!ReadPod(in, &count)) return Truncated("result count");
  if (count > kMaxIds) {
    return Status::ParseError("result count exceeds protocol limits");
  }
  // Grow incrementally rather than resize(count) upfront: a hostile count
  // with no data behind it fails on its first missing id, not after a
  // count-sized allocation.
  response->ids.reserve(std::min<uint32_t>(count, 1024));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!ReadPod(in, &len)) return Truncated("table id length");
    if (len > kMaxIdBytes) {
      return Status::ParseError("table id length exceeds protocol limits");
    }
    std::string id(len, '\0');
    in.read(id.data(), static_cast<std::streamsize>(len));
    if (!in) return Truncated("table id");
    response->ids.push_back(std::move(id));
  }
  return RequireFullyConsumed(in);
}

std::string SerializeRequest(const Request& request) {
  std::ostringstream out;
  EncodeRequest(request, out);
  return std::move(out).str();
}

std::string SerializeResponse(const Response& response) {
  std::ostringstream out;
  EncodeResponse(response, out);
  return std::move(out).str();
}

namespace {

// send() with MSG_NOSIGNAL so a vanished peer is an error code, not a
// process-killing SIGPIPE.
Status SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer stopped reading and the socket
        // buffer is full — same alive-but-wedged condition as a recv
        // timeout, named the same way.
        return Status::IoError("send timed out writing a frame");
      }
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Reads exactly `len` bytes. `*clean_eof` is set only when EOF arrives
// before the first byte (i.e. at a message boundary for the caller).
Status RecvAll(int fd, char* data, size_t len, bool* clean_eof) {
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the peer is alive-but-silent or wedged. Name
        // the condition so a coordinator can report "timed out", not a
        // generic resource error.
        return Status::IoError("recv timed out waiting for a frame");
      }
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[sizeof(len)];
  std::memcpy(prefix, &len, sizeof(len));
  if (Status s = SendAll(fd, prefix, sizeof(prefix)); !s.ok()) return s;
  return SendAll(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, size_t max_bytes, std::string* payload,
                 bool* clean_eof) {
  payload->clear();
  if (clean_eof != nullptr) *clean_eof = false;
  uint32_t len = 0;
  if (Status s = RecvAll(fd, reinterpret_cast<char*>(&len), sizeof(len),
                         clean_eof);
      !s.ok()) {
    return s;
  }
  if (clean_eof != nullptr && *clean_eof) return Status::OK();
  if (len > max_bytes) {
    return Status::OutOfRange("frame length " + std::to_string(len) +
                              " exceeds limit " + std::to_string(max_bytes));
  }
  payload->resize(len);
  return RecvAll(fd, payload->data(), len, nullptr);
}

}  // namespace tsfm::server
