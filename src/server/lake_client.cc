#include "server/lake_client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "server/net_util.h"

namespace tsfm::server {

LakeClient::~LakeClient() { Close(); }

Status LakeClient::Connect(const std::string& socket_path) {
  if (fd_ >= 0) return Status::Internal("client already connected");
  sockaddr_un addr;
  if (Status s = internal::FillUnixSockaddr(socket_path, &addr); !s.ok()) {
    return s;
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::IoError("connect " + socket_path + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  ApplyTimeouts();
  return Status::OK();
}

void LakeClient::set_timeout_ms(int ms) {
  timeout_ms_ = ms > 0 ? ms : 0;
  ApplyTimeouts();
}

void LakeClient::ApplyTimeouts() {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void LakeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Response> LakeClient::RoundTrip(const Request& request) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  if (Status s = WriteFrame(fd_, SerializeRequest(request)); !s.ok()) {
    Close();
    return s;
  }
  std::string payload;
  bool clean_eof = false;
  if (Status s = ReadFrame(fd_, max_frame_bytes_, &payload, &clean_eof);
      !s.ok()) {
    Close();
    return s;
  }
  if (clean_eof) {
    Close();
    return Status::IoError("server closed the connection");
  }
  std::istringstream in(payload);
  Response response;
  if (Status s = DecodeResponse(in, &response); !s.ok()) {
    Close();
    return s;
  }
  if (response.status != StatusCode::kOk) {
    return Status(response.status, response.message);
  }
  return response;
}

namespace {
// The wire carries a uint32 k; saturate rather than silently wrap (a k of
// exactly 2^32 would otherwise encode as 0 and return nothing). The server
// clamps to its table count anyway, so saturation never changes results.
uint32_t SaturateK(size_t k) {
  return static_cast<uint32_t>(
      std::min<size_t>(k, std::numeric_limits<uint32_t>::max()));
}

// Stamp each request with the lowest protocol version that carries its
// opcode, so this client keeps working against version-1 servers for the
// version-1 opcodes.
Request MakeRequest(Opcode op) {
  Request request;
  request.version = RequiredVersion(op);
  request.op = op;
  return request;
}
}  // namespace

Result<std::vector<std::string>> LakeClient::QueryJoinable(
    const std::vector<float>& column, size_t k) {
  Request request = MakeRequest(Opcode::kJoin);
  request.k = SaturateK(k);
  request.columns = {column};
  Result<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return std::move(response).value().ids;
}

Result<std::vector<std::string>> LakeClient::QueryUnionable(
    const std::vector<std::vector<float>>& columns, size_t k) {
  // EncodeRequest writes one dim for the whole query; catch ragged input
  // here rather than silently mangling it on the wire.
  for (const auto& column : columns) {
    if (column.size() != columns[0].size()) {
      return Status::InvalidArgument("union query columns differ in dim");
    }
  }
  Request request = MakeRequest(Opcode::kUnion);
  request.k = SaturateK(k);
  request.columns = columns;
  Result<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return std::move(response).value().ids;
}

Result<ServerStats> LakeClient::Stats() {
  Request request = MakeRequest(Opcode::kStats);
  // The stats payload shape follows the request version: stamp the newest
  // version so the response carries the v3 churn counters too.
  request.version = kProtocolVersion;
  Result<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return std::move(response).value().stats;
}

Status LakeClient::AddTable(const std::string& table_id,
                            const std::vector<std::vector<float>>& columns) {
  for (const auto& column : columns) {
    if (column.size() != columns[0].size()) {
      return Status::InvalidArgument("new table's columns differ in dim");
    }
  }
  Request request = MakeRequest(Opcode::kAddTable);
  request.table_id = table_id;
  request.columns = columns;
  Result<Response> response = RoundTrip(request);
  return response.ok() ? Status::OK() : response.status();
}

Status LakeClient::RemoveTable(const std::string& table_id) {
  Request request = MakeRequest(Opcode::kRemoveTable);
  request.table_id = table_id;
  Result<Response> response = RoundTrip(request);
  return response.ok() ? Status::OK() : response.status();
}

Status LakeClient::Compact() {
  Result<Response> response = RoundTrip(MakeRequest(Opcode::kCompact));
  return response.ok() ? Status::OK() : response.status();
}

Result<std::vector<std::vector<ShardHit>>> LakeClient::ShardQuery(
    const std::vector<std::vector<float>>& columns, size_t m) {
  for (const auto& column : columns) {
    if (column.size() != columns[0].size()) {
      return Status::InvalidArgument("shard query columns differ in dim");
    }
  }
  Request request = MakeRequest(Opcode::kShardQuery);
  request.k = SaturateK(m);
  request.columns = columns;
  Result<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return std::move(response).value().hits;
}

Result<ShardHealth> LakeClient::Health() {
  Result<Response> response = RoundTrip(MakeRequest(Opcode::kHealth));
  if (!response.ok()) return response.status();
  return std::move(response).value().health;
}

Result<std::vector<std::string>> LakeClient::ShardTables() {
  Result<Response> response = RoundTrip(MakeRequest(Opcode::kShardTables));
  if (!response.ok()) return response.status();
  return std::move(response).value().ids;
}

}  // namespace tsfm::server
