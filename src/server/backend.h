// The seam between LakeServer and whatever actually answers queries.
//
// PR 3's server hard-wired an in-process ShardedLakeIndex; the distributed
// tier needs the same serving front (accept loop, framing, validation,
// batching, graceful shutdown) over a coordinator that talks to shard
// worker processes instead. LakeBackend is that seam: batch query entry
// points returning Result (a distributed backend can fail per-shard), plus
// the shard-worker surface (SHARD_QUERY / HEALTH / SHARD_TABLES) that lets
// any LakeServer also act as one shard of a larger distributed lake.
#ifndef TSFM_SERVER_BACKEND_H_
#define TSFM_SERVER_BACKEND_H_

#include <cstddef>
#include <string>
#include <vector>

#include "search/sharded_lake_index.h"
#include "server/distributed_lake_index.h"
#include "server/protocol.h"
#include "util/status.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::server {

/// \brief What LakeServer serves. All const methods must be
/// const-thread-safe; the mutation entry points (AddTable/RemoveTable/
/// Compact) may run concurrently with queries but are serialized against
/// each other by the backend itself.
class LakeBackend {
 public:
  /// Churn counters reported through the v3 STATS payload.
  using ChurnCounters = LakeChurnCounters;

  virtual ~LakeBackend() = default;

  virtual size_t dim() const = 0;
  virtual size_t num_tables() const = 0;
  virtual size_t num_columns() const = 0;

  /// Human-readable backend kind for logs ("in-process", "distributed").
  virtual const char* kind() const = 0;

  /// One ranked-id list per query column (JOIN batch).
  virtual Result<std::vector<std::vector<std::string>>> QueryJoinableBatch(
      const std::vector<std::vector<float>>& queries, size_t k,
      ThreadPool* pool) const = 0;

  /// One ranked-id list per multi-column query (UNION batch).
  virtual Result<std::vector<std::vector<std::string>>> QueryUnionableBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      ThreadPool* pool) const = 0;

  /// Raw top-`m` column hits per query column in this backend's handle
  /// space (the SHARD_QUERY opcode). kUnimplemented when this backend is
  /// itself a coordinator — two-level scatter is not supported.
  virtual Result<std::vector<std::vector<ShardHit>>> ShardQuery(
      const std::vector<std::vector<float>>& columns, size_t m,
      ThreadPool* pool) const = 0;

  /// Table ids in handle order (the SHARD_TABLES opcode).
  virtual Result<std::vector<std::string>> TableIds() const = 0;

  /// Identity/shape counters (the HEALTH opcode).
  virtual ShardHealth Health() const = 0;

  /// Live-ingests one table (the ADD_TABLE opcode). The default backend
  /// serves a frozen lake and answers kUnimplemented.
  virtual Status AddTable(const std::string& table_id,
                          const std::vector<std::vector<float>>& columns) {
    (void)table_id;
    (void)columns;
    return Status::Unimplemented("this backend serves a frozen lake");
  }

  /// Tombstones the newest live table with `table_id` (REMOVE_TABLE).
  virtual Status RemoveTable(const std::string& table_id) {
    (void)table_id;
    return Status::Unimplemented("this backend serves a frozen lake");
  }

  /// Folds deltas + tombstones into the base segments (COMPACT). May fan
  /// the per-shard rebuilds over `pool`.
  virtual Status Compact(ThreadPool* pool) {
    (void)pool;
    return Status::Unimplemented("this backend serves a frozen lake");
  }

  /// Point-in-time churn counters (zeros for a frozen backend).
  virtual ChurnCounters Churn() const { return {}; }
};

/// \brief LakeBackend over an owned in-process ShardedLakeIndex.
///
/// The PR 3 deployment, and — over a 1-shard index loaded from one shard
/// file — what a lake_shard_worker process serves.
class InProcessBackend final : public LakeBackend {
 public:
  explicit InProcessBackend(search::ShardedLakeIndex index)
      : index_(std::move(index)) {
    // A served lake is a live artifact: tables ingested from here on are
    // churn (delta segments + tombstones), not bulk build, on every shard.
    index_.Seal();
  }

  const search::ShardedLakeIndex& index() const { return index_; }

  size_t dim() const override { return index_.dim(); }
  size_t num_tables() const override { return index_.num_tables(); }
  size_t num_columns() const override { return index_.num_columns(); }
  const char* kind() const override { return "in-process"; }

  Result<std::vector<std::vector<std::string>>> QueryJoinableBatch(
      const std::vector<std::vector<float>>& queries, size_t k,
      ThreadPool* pool) const override;
  Result<std::vector<std::vector<std::string>>> QueryUnionableBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      ThreadPool* pool) const override;
  Result<std::vector<std::vector<ShardHit>>> ShardQuery(
      const std::vector<std::vector<float>>& columns, size_t m,
      ThreadPool* pool) const override;
  Result<std::vector<std::string>> TableIds() const override;
  ShardHealth Health() const override;
  Status AddTable(const std::string& table_id,
                  const std::vector<std::vector<float>>& columns) override;
  Status RemoveTable(const std::string& table_id) override;
  Status Compact(ThreadPool* pool) override;
  ChurnCounters Churn() const override;

 private:
  search::ShardedLakeIndex index_;
};

/// \brief LakeBackend over a DistributedLakeIndex coordinator.
///
/// Lets the public LakeServer front a fleet of shard worker processes with
/// the exact same wire surface clients already speak. ShardQuery is
/// rejected (a coordinator is not itself a shard).
class DistributedBackend final : public LakeBackend {
 public:
  explicit DistributedBackend(DistributedLakeIndex index)
      : index_(std::move(index)) {}

  const DistributedLakeIndex& index() const { return index_; }

  size_t dim() const override { return index_.dim(); }
  size_t num_tables() const override { return index_.num_tables(); }
  size_t num_columns() const override { return index_.num_columns(); }
  const char* kind() const override { return "distributed"; }

  Result<std::vector<std::vector<std::string>>> QueryJoinableBatch(
      const std::vector<std::vector<float>>& queries, size_t k,
      ThreadPool* pool) const override;
  Result<std::vector<std::vector<std::string>>> QueryUnionableBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      ThreadPool* pool) const override;
  Result<std::vector<std::vector<ShardHit>>> ShardQuery(
      const std::vector<std::vector<float>>& columns, size_t m,
      ThreadPool* pool) const override;
  Result<std::vector<std::string>> TableIds() const override;
  ShardHealth Health() const override;
  Status AddTable(const std::string& table_id,
                  const std::vector<std::vector<float>>& columns) override;
  Status RemoveTable(const std::string& table_id) override;
  Status Compact(ThreadPool* pool) override;
  ChurnCounters Churn() const override;

 private:
  DistributedLakeIndex index_;
};

}  // namespace tsfm::server

#endif  // TSFM_SERVER_BACKEND_H_
