// Long-lived query server over a LakeBackend (ROADMAP "Async query
// server" + "Distributed shards"): load or connect a backend once, then
// serve join/union queries to many concurrent clients over a local
// (AF_UNIX) socket.
//
// Architecture: one accept thread polls the listening socket and hands each
// accepted connection to an I/O ThreadPool; connection handlers read
// length-prefixed request frames (server/protocol.h) and park each query on
// the QueryBatcher, which coalesces concurrent in-flight queries into
// QueryJoinableBatch/QueryUnionableBatch calls on a separate query
// ThreadPool. Results are bit-identical to calling the backend directly.
//
// The backend is pluggable (server/backend.h): an in-process
// ShardedLakeIndex (PR 3's deployment, and what a lake_shard_worker
// process serves over one shard file), or a DistributedLakeIndex
// coordinator fronting a fleet of shard workers. The shard opcodes
// (SHARD_QUERY / HEALTH / SHARD_TABLES) bypass the batcher and run
// directly on the connection handler — they are the scatter primitive a
// coordinator builds its own batching on top of.
//
// Shutdown is graceful: Stop() refuses new connections, nudges idle
// connections with a read-side shutdown, lets every request that was
// already read off the wire finish through the batcher, writes its
// response, and only then tears the pools down — no dropped accepted
// requests, no leaked threads.
#ifndef TSFM_SERVER_LAKE_SERVER_H_
#define TSFM_SERVER_LAKE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>

#include "server/backend.h"
#include "server/batcher.h"
#include "server/protocol.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::server {

/// \brief Serving knobs.
///
/// `io_threads` bounds how many connections are serviced concurrently
/// (excess accepted connections wait for a free handler); `query_threads`
/// sizes the pool the batch calls fan out over (0 = hardware concurrency).
struct ServerOptions {
  size_t io_threads = 8;
  size_t query_threads = 0;
  size_t max_batch = 64;                          ///< per dispatch round
  size_t max_frame_bytes = kDefaultMaxFrameBytes; ///< request frame ceiling
  /// When non-zero, a background compaction is kicked off on the query
  /// pool whenever pending deltas + tombstones reach this count after a
  /// mutation (at most one in flight; queries keep serving throughout).
  size_t auto_compact_pending = 0;
};

/// \brief A blocking query server that owns a LakeBackend.
///
/// Construct with a ready backend (an in-process ShardedLakeIndex, a
/// DistributedLakeIndex coordinator, or any LakeBackend), Start() on a
/// socket path, Stop() to drain. The destructor calls Stop(). Not
/// copyable or movable — live threads hold `this`.
class LakeServer {
 public:
  explicit LakeServer(search::ShardedLakeIndex index,
                      const ServerOptions& options = {});
  explicit LakeServer(DistributedLakeIndex index,
                      const ServerOptions& options = {});
  explicit LakeServer(std::unique_ptr<LakeBackend> backend,
                      const ServerOptions& options = {});
  ~LakeServer();

  LakeServer(const LakeServer&) = delete;
  LakeServer& operator=(const LakeServer&) = delete;

  /// \brief Binds `socket_path` (an AF_UNIX path, unlinked first if stale)
  /// and starts accepting connections. One Start per server.
  Status Start(const std::string& socket_path);

  /// \brief Graceful shutdown; see the file comment. Idempotent.
  void Stop() LAKS_EXCLUDES(stop_mu_, conn_mu_);

  /// True between a successful Start and Stop.
  bool running() const { return started_.load() && !stopping_.load(); }

  /// Batching counters plus served-request latency, as reported by the
  /// STATS opcode.
  ServerStats stats() const LAKS_EXCLUDES(latency_mu_);

  const LakeBackend& backend() const { return *backend_; }
  const std::string& socket_path() const { return socket_path_; }

 private:
  void AcceptLoop() LAKS_EXCLUDES(conn_mu_);
  void HandleConnection(int fd) LAKS_EXCLUDES(conn_mu_, latency_mu_);
  /// Validates and executes one parsed request (the only layer that knows
  /// both the protocol and the backend).
  Response HandleRequest(Request&& request) LAKS_EXCLUDES(latency_mu_);
  /// Kicks a background compaction onto the query pool when the churn
  /// counters cross ServerOptions::auto_compact_pending.
  void MaybeAutoCompact();

  std::unique_ptr<LakeBackend> backend_;
  ServerOptions options_;

  // Declaration order is teardown order in reverse: the batcher must die
  // before the query pool it dispatches onto.
  std::unique_ptr<ThreadPool> query_pool_;
  std::unique_ptr<ThreadPool> io_pool_;
  std::unique_ptr<QueryBatcher> batcher_;

  std::thread accept_thread_;
  int listen_fd_ = -1;
  std::string socket_path_;
  // Atomic because running() reads it from any thread while Start/Stop
  // flip it.
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> compacting_{false};  // one auto-compaction in flight

  // Lock order: stop_mu_ before conn_mu_ (Stop's connection nudge).
  Mutex stop_mu_;  // serializes Stop; stopped_ is written under it
  bool stopped_ LAKS_GUARDED_BY(stop_mu_) = false;

  Mutex conn_mu_ LAKS_ACQUIRED_AFTER(stop_mu_);
  std::unordered_set<int> conns_ LAKS_GUARDED_BY(conn_mu_);

  mutable Mutex latency_mu_;
  double total_latency_ms_ LAKS_GUARDED_BY(latency_mu_) = 0;
  // SHARD_QUERY round trips bypass the batcher, so they are counted here
  // and folded into stats(): a worker fleet that only ever serves a
  // coordinator must not report zero requests.
  uint64_t shard_requests_ LAKS_GUARDED_BY(latency_mu_) = 0;
};

}  // namespace tsfm::server

#endif  // TSFM_SERVER_LAKE_SERVER_H_
