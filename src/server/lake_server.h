// Long-lived query server over a ShardedLakeIndex (ROADMAP "Async query
// server"): load the index once, then serve join/union queries to many
// concurrent clients over a local (AF_UNIX) socket.
//
// Architecture: one accept thread polls the listening socket and hands each
// accepted connection to an I/O ThreadPool; connection handlers read
// length-prefixed request frames (server/protocol.h) and park each query on
// the QueryBatcher, which coalesces concurrent in-flight queries into
// QueryJoinableBatch/QueryUnionableBatch calls on a separate query
// ThreadPool. Results are bit-identical to calling the index directly.
//
// Shutdown is graceful: Stop() refuses new connections, nudges idle
// connections with a read-side shutdown, lets every request that was
// already read off the wire finish through the batcher, writes its
// response, and only then tears the pools down — no dropped accepted
// requests, no leaked threads.
#ifndef TSFM_SERVER_LAKE_SERVER_H_
#define TSFM_SERVER_LAKE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "search/sharded_lake_index.h"
#include "server/batcher.h"
#include "server/protocol.h"
#include "util/status.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::server {

/// \brief Serving knobs.
///
/// `io_threads` bounds how many connections are serviced concurrently
/// (excess accepted connections wait for a free handler); `query_threads`
/// sizes the pool the batch calls fan out over (0 = hardware concurrency).
struct ServerOptions {
  size_t io_threads = 8;
  size_t query_threads = 0;
  size_t max_batch = 64;                          ///< per dispatch round
  size_t max_frame_bytes = kDefaultMaxFrameBytes; ///< request frame ceiling
};

/// \brief A blocking query server that owns a ShardedLakeIndex.
///
/// Construct with a ready index (move it in, or load one with
/// ShardedLakeIndex::Load), Start() on a socket path, Stop() to drain.
/// The destructor calls Stop(). Not copyable or movable — live threads
/// hold `this`.
class LakeServer {
 public:
  explicit LakeServer(search::ShardedLakeIndex index,
                      const ServerOptions& options = {});
  ~LakeServer();

  LakeServer(const LakeServer&) = delete;
  LakeServer& operator=(const LakeServer&) = delete;

  /// \brief Binds `socket_path` (an AF_UNIX path, unlinked first if stale)
  /// and starts accepting connections. One Start per server.
  Status Start(const std::string& socket_path);

  /// \brief Graceful shutdown; see the file comment. Idempotent.
  void Stop();

  /// True between a successful Start and Stop.
  bool running() const { return started_ && !stopping_.load(); }

  /// Batching counters plus served-request latency, as reported by the
  /// STATS opcode.
  ServerStats stats() const;

  const search::ShardedLakeIndex& index() const { return index_; }
  const std::string& socket_path() const { return socket_path_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Validates and executes one parsed request (the only layer that knows
  /// both the protocol and the index).
  Response HandleRequest(Request&& request);

  search::ShardedLakeIndex index_;
  ServerOptions options_;

  // Declaration order is teardown order in reverse: the batcher must die
  // before the query pool it dispatches onto.
  std::unique_ptr<ThreadPool> query_pool_;
  std::unique_ptr<ThreadPool> io_pool_;
  std::unique_ptr<QueryBatcher> batcher_;

  std::thread accept_thread_;
  int listen_fd_ = -1;
  std::string socket_path_;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes Stop; stopped_ is written under it
  bool stopped_ = false;

  std::mutex conn_mu_;
  std::unordered_set<int> conns_;

  mutable std::mutex latency_mu_;
  double total_latency_ms_ = 0;
};

}  // namespace tsfm::server

#endif  // TSFM_SERVER_LAKE_SERVER_H_
