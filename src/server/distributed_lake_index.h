// Distributed data-lake index (ROADMAP "Distributed shards"): the
// ShardedLakeIndex scatter/gather path stretched across process
// boundaries. Each shard of a saved "LAKS" lake runs as its own
// lake_shard_worker process serving one shard file over the AF_UNIX wire
// protocol; this coordinator opens only the manifest, handshakes every
// worker, and answers the same join/union query surface by scattering
// SHARD_QUERY frames and gathering through the exact ranking code the
// in-process index uses (TableRanker::MergeColumnHits + Fig 6 RANK1/2).
//
// Parity: a SHARD_QUERY returns each worker's sorted top-m column hits in
// its local handle space with precomputed query embeddings on the wire (so
// workers never re-embed); the coordinator remaps local handles through
// the manifest's locator into the global insertion order — the same
// monotone remap ShardedLakeIndex uses — which makes flat-backend results
// bit-identical to the in-process sharded index over the same shard files
// (tests/distributed_lake_index_test.cc proves this at 1/2/4 workers).
//
// Failure semantics: every per-shard round trip is bounded by
// DistributedOptions::shard_timeout_ms, and a transport failure (worker
// killed, socket gone, timeout) is retried once on a fresh connection.
// When the retry also fails the query returns a Status error *naming the
// shard and its socket* — never a hang, and never a silently partial
// result. Server-side errors (e.g. a dim mismatch) are not retried.
#ifndef TSFM_SERVER_DISTRIBUTED_LAKE_INDEX_H_
#define TSFM_SERVER_DISTRIBUTED_LAKE_INDEX_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "search/table_ranker.h"
#include "search/vector_index.h"
#include "server/protocol.h"
#include "util/status.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::server {

/// \brief Coordinator knobs.
///
/// `shard_timeout_ms` bounds each socket send/recv of a worker round trip
/// (a wedged worker — whether it stops writing or stops reading — surfaces
/// as a kIoError naming the shard, not a coordinator hang).
/// `max_idle_connections_per_shard` caps the pooled connections kept warm
/// per worker; concurrent queries above the cap open short-lived extras.
struct DistributedOptions {
  int shard_timeout_ms = 5000;
  size_t max_idle_connections_per_shard = 4;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Point-in-time churn counters (the shape of the v3 STATS churn fields).
/// Defined here rather than in backend.h so the coordinator can report
/// them without depending on the serving seam.
struct LakeChurnCounters {
  uint64_t pending_delta_tables = 0;
  uint64_t pending_tombstones = 0;
  uint64_t compactions = 0;
};

/// \brief A ShardedLakeIndex-shaped query surface over worker processes.
///
/// Construct with Connect. Query methods mirror ShardedLakeIndex
/// (QueryJoinable/QueryUnionable + batch variants, optional ThreadPool to
/// fan the scatter out) but return Result: a dead or mismatched worker is
/// a recoverable error naming the shard, not a crash. All query methods
/// are const-thread-safe; the connection pool grows on demand. Movable,
/// not copyable.
class DistributedLakeIndex {
 public:
  /// \brief Opens the manifest, handshakes every worker, builds the global
  /// handle space.
  ///
  /// `worker_sockets[s]` must serve shard s of `manifest_path` (one socket
  /// per manifest shard file, same order). The handshake rejects, naming
  /// the shard: a worker that cannot be reached, speaks a different
  /// protocol version, disagrees with the manifest on backend/metric/dim,
  /// or reports a table count that contradicts the manifest's locator.
  ///
  /// Scale ceiling: the handshake fetches each worker's full table-id
  /// list in one SHARD_TABLES frame, so a single shard is limited to the
  /// protocol's 2^20 ids-per-message cap (and `max_frame_bytes` of id
  /// bytes) — far below the manifest format's 2^32-table ceiling that the
  /// in-process loader supports. Lakes beyond ~1M tables per shard need
  /// more shards until the handshake learns to page (see ROADMAP).
  static Result<DistributedLakeIndex> Connect(
      const std::string& manifest_path,
      const std::vector<std::string>& worker_sockets,
      const DistributedOptions& options = {});

  DistributedLakeIndex(DistributedLakeIndex&&) noexcept;
  DistributedLakeIndex& operator=(DistributedLakeIndex&&) noexcept;
  ~DistributedLakeIndex();

  DistributedLakeIndex(const DistributedLakeIndex&) = delete;
  DistributedLakeIndex& operator=(const DistributedLakeIndex&) = delete;

  /// Ranked table ids for a join query on a single column.
  Result<std::vector<std::string>> QueryJoinable(
      const std::vector<float>& query_column, size_t k,
      ThreadPool* pool = nullptr) const;

  /// Ranked table ids for a union/subset query (Fig 6 multi-column rank).
  Result<std::vector<std::string>> QueryUnionable(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      ThreadPool* pool = nullptr) const;

  /// One QueryJoinable result per query column; queries fan out over
  /// `pool`, each query's scatter then runs serially (ParallelFor must not
  /// nest). The first shard failure fails the whole batch.
  Result<std::vector<std::vector<std::string>>> QueryJoinableBatch(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      ThreadPool* pool = nullptr) const;

  /// One QueryUnionable result per query; same fan-out and failure rules.
  Result<std::vector<std::vector<std::string>>> QueryUnionableBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      ThreadPool* pool = nullptr) const;

  /// Fresh HEALTH from every worker, indexed by shard.
  Result<std::vector<ShardHealth>> Health() const;

  /// Worker STATS summed across shards (requests/batches/waits/latency).
  Result<ServerStats> AggregateStats() const;

  /// \brief Live-ingests one table: forwards ADD_TABLE to the owning shard
  /// worker (StableShard routing) and mirrors the new handle locally.
  ///
  /// Mutations through the coordinator require the lake to have been
  /// connected unchurned (a compacted or freshly built manifest): the
  /// handshake cannot see per-handle tombstones, so a churned connect
  /// disables mutations with a clean error. Mutations are never retried —
  /// a transport failure mid-mutation leaves worker and coordinator
  /// bookkeeping possibly diverged, so further mutations are refused until
  /// a fresh Connect (queries stay available).
  Status AddTable(const std::string& table_id,
                  const std::vector<std::vector<float>>& columns);

  /// Tombstones the newest live table named `table_id` on its owning shard
  /// and in the local maps. kNotFound when no live table has that id.
  Status RemoveTable(const std::string& table_id);

  /// \brief Sends COMPACT to every worker, then re-densifies the global
  /// handle maps to mirror the workers' full rebuilds (survivors keep
  /// their per-shard insertion order).
  ///
  /// On a partial failure the coordinator's maps are left at the old
  /// epoch and mutations are disabled (reconnect to recover) — some
  /// workers may have compacted, so the handle spaces no longer line up.
  Status Compact(ThreadPool* pool = nullptr);

  /// Coordinator-side churn counters (pending deltas/tombstones mirrored
  /// from the mutations issued through this coordinator).
  LakeChurnCounters Churn() const;

  size_t num_shards() const;
  size_t num_tables() const;
  size_t num_columns() const;
  size_t dim() const;
  search::IndexBackend backend() const;
  search::Metric metric() const;
  /// The id behind a global handle (a copy: the maps may be re-densified
  /// by a concurrent Compact).
  std::string table_id(size_t handle) const;
  const std::string& worker_socket(size_t shard) const;

 private:
  // All locking lives on State (see the .cc): it is a complete type there,
  // so the thread-safety annotations can name its capabilities directly.
  struct State;

  explicit DistributedLakeIndex(std::unique_ptr<State> state);

  std::unique_ptr<State> state_;
};

}  // namespace tsfm::server

#endif  // TSFM_SERVER_DISTRIBUTED_LAKE_INDEX_H_
