#include "lakebench/corpus.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace tsfm::lakebench {

std::vector<Table> MakePretrainCorpus(const DomainCatalog& catalog,
                                      const CorpusScale& scale, uint64_t seed) {
  Rng rng(seed);
  std::vector<Table> corpus;
  corpus.reserve(scale.num_tables * (1 + scale.augmentations));

  for (size_t t = 0; t < scale.num_tables; ++t) {
    const Domain& dom = catalog.domain(t % catalog.size());
    size_t rows = scale.min_rows +
                  rng.Uniform(static_cast<uint32_t>(scale.max_rows - scale.min_rows + 1));
    // Random column subset of >= 3 columns for schema diversity.
    size_t keep = 3 + rng.Uniform(static_cast<uint32_t>(dom.columns.size() - 2));
    Table base = GenerateDomainTable(dom, "pt_" + std::to_string(t), rows,
                                     rng.SampleIndices(dom.columns.size(), keep), &rng);

    // Column-shuffle augmentation (paper Sec III-C, Data Augmentation).
    for (size_t a = 0; a < scale.augmentations; ++a) {
      std::vector<size_t> perm(base.num_columns());
      for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      rng.Shuffle(&perm);
      Table aug = base.WithColumnOrder(perm);
      aug.set_id(base.id() + "_aug" + std::to_string(a));
      corpus.push_back(std::move(aug));
    }
    corpus.push_back(std::move(base));
  }
  return corpus;
}

text::Vocab BuildVocabFromTables(const std::vector<Table>& tables, bool include_cells,
                                 size_t cell_sample_per_column) {
  std::vector<std::string> words;
  for (const auto& table : tables) {
    for (const auto& w : text::BasicTokenize(table.description())) words.push_back(w);
    for (const auto& col : table.columns()) {
      for (const auto& w : text::BasicTokenize(col.name)) words.push_back(w);
      if (include_cells) {
        const size_t n = std::min(cell_sample_per_column, col.cells.size());
        for (size_t r = 0; r < n; ++r) {
          for (const auto& w : text::BasicTokenize(col.cells[r])) words.push_back(w);
        }
      }
    }
  }
  return text::Vocab::Build(words);
}

}  // namespace tsfm::lakebench
