#include "lakebench/search_benchmarks.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace tsfm::lakebench {

void SearchBenchmark::BuildSketches(const SketchOptions& options) {
  sketches.clear();
  sketches.reserve(tables.size());
  for (auto& t : tables) {
    t.InferTypes();
    sketches.push_back(BuildTableSketch(t, options));
  }
}

namespace {

double AnnotationJaccard(const std::vector<int>& a, const std::vector<int>& b) {
  std::unordered_set<int> sa(a.begin(), a.end());
  std::unordered_set<int> sb(b.begin(), b.end());
  size_t inter = 0;
  for (int x : sb) {
    if (sa.count(x)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

SearchBenchmark MakeWikiJoinSearch(const WikiJoinScale& scale, uint64_t seed) {
  Rng rng(seed);
  SearchBenchmark bench;
  bench.name = "Wiki Join";

  // Global entity space: pools share `surface_overlap` of their literal
  // strings but every (pool, slot) has a distinct entity id.
  std::vector<std::string> shared_names =
      MakeEntityPool(static_cast<size_t>(scale.pool_size * scale.surface_overlap) + 1,
                     &rng);
  struct Pool {
    std::vector<std::string> names;  // surface strings
    std::vector<int> ids;            // global entity ids
  };
  std::vector<Pool> pools(scale.num_pools);
  int next_id = 0;
  for (auto& pool : pools) {
    pool.names = MakeEntityPool(scale.pool_size, &rng);
    // Overwrite a prefix with globally shared surface strings (traps).
    for (size_t i = 0; i < shared_names.size() && i < pool.names.size(); ++i) {
      pool.names[i] = shared_names[i];
    }
    pool.ids.resize(pool.names.size());
    for (auto& id : pool.ids) id = next_id++;
  }

  // Each corpus table: a key column sampling 70–92% of one pool + 1–2
  // attribute columns.
  for (size_t t = 0; t < scale.num_tables; ++t) {
    size_t pi = rng.Uniform(static_cast<uint32_t>(pools.size()));
    const Pool& pool = pools[pi];
    size_t take = pool.names.size() * 55 / 100 +
                  rng.Uniform(static_cast<uint32_t>(pool.names.size() * 40 / 100 + 1));
    take = std::min(take, pool.names.size());
    auto idx = rng.SampleIndices(pool.names.size(), take);

    std::vector<std::string> key_cells;
    std::vector<int> annotation;
    key_cells.reserve(scale.rows);
    for (size_t i : idx) annotation.push_back(pool.ids[i]);
    for (size_t r = 0; r < scale.rows; ++r) {
      size_t i = idx[r % idx.size()];
      key_cells.push_back(pool.names[i]);
    }
    rng.Shuffle(&key_cells);

    Table table("wjs_" + std::to_string(t), "entity records " + std::to_string(pi));
    table.AddColumn("entity", std::move(key_cells));
    // Numeric attribute.
    std::vector<std::string> attr;
    attr.reserve(scale.rows);
    for (size_t r = 0; r < scale.rows; ++r) {
      attr.push_back(FormatDouble(rng.Normal(100, 40), 2));
    }
    table.AddColumn("measure", std::move(attr));
    table.InferTypes();

    bench.tables.push_back(std::move(table));
    bench.column_annotations.push_back({annotation, {}});
  }

  // Queries: the key column of sampled tables; gold = tables with a column
  // whose annotation Jaccard with the query column exceeds 0.5.
  auto query_tables = rng.SampleIndices(bench.tables.size(), scale.num_queries);
  for (size_t qt : query_tables) {
    SearchQuery q;
    q.table_index = qt;
    q.column_index = 0;
    std::vector<size_t> gold;
    const auto& qann = bench.column_annotations[qt][0];
    for (size_t t = 0; t < bench.tables.size(); ++t) {
      if (t == qt) continue;
      if (AnnotationJaccard(qann, bench.column_annotations[t][0]) > 0.5) {
        gold.push_back(t);
      }
    }
    bench.queries.push_back(q);
    bench.gold.push_back(std::move(gold));
  }
  return bench;
}

SearchBenchmark MakeUnionSearch(const DomainCatalog& catalog,
                                const UnionSearchScale& scale, uint64_t seed,
                                const std::string& name) {
  Rng rng(seed);
  SearchBenchmark bench;
  bench.name = name;

  std::vector<std::vector<size_t>> groups;  // per seed, corpus table indices
  for (size_t s = 0; s < scale.num_seeds; ++s) {
    size_t d = rng.Uniform(static_cast<uint32_t>(catalog.size()));
    const Domain& dom = catalog.domain(d);
    Table seed_table = GenerateDomainTable(
        dom, name + "_seed" + std::to_string(s), scale.rows, &rng);

    groups.emplace_back();
    for (size_t v = 0; v < scale.variants_per_seed; ++v) {
      // Row slice 40–80%, column slice of >= 3 columns, optional shuffle.
      size_t keep_rows = scale.rows * 2 / 5 +
                         rng.Uniform(static_cast<uint32_t>(scale.rows * 2 / 5));
      auto rows_idx = rng.SampleIndices(seed_table.num_rows(), keep_rows);
      size_t keep_cols =
          3 + rng.Uniform(static_cast<uint32_t>(seed_table.num_columns() - 2));
      auto cols_idx = rng.SampleIndices(seed_table.num_columns(), keep_cols);
      Table variant = seed_table.Slice(rows_idx, cols_idx);
      variant.set_id(name + "_s" + std::to_string(s) + "_v" + std::to_string(v));
      variant.set_description(seed_table.description());
      variant.InferTypes();
      groups.back().push_back(bench.tables.size());
      bench.tables.push_back(std::move(variant));
    }
  }

  // Queries: sampled corpus tables; gold = same-seed siblings.
  std::vector<std::pair<size_t, size_t>> members;  // (seed, table index)
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t ti : groups[g]) members.emplace_back(g, ti);
  }
  auto chosen = rng.SampleIndices(members.size(),
                                  std::min(scale.num_queries, members.size()));
  for (size_t m : chosen) {
    auto [g, ti] = members[m];
    SearchQuery q;
    q.table_index = ti;
    std::vector<size_t> gold;
    for (size_t other : groups[g]) {
      if (other != ti) gold.push_back(other);
    }
    bench.queries.push_back(q);
    bench.gold.push_back(std::move(gold));
  }
  return bench;
}

std::vector<Table> MakeEurostatVariants(const Table& seed_table, Rng* rng) {
  const size_t rows = seed_table.num_rows();
  const size_t cols = seed_table.num_columns();

  auto rows_frac = [&](double f) {
    return rng->SampleIndices(rows, std::max<size_t>(1, static_cast<size_t>(rows * f)));
  };
  auto cols_frac = [&](double f) {
    return rng->SampleIndices(cols, std::max<size_t>(1, static_cast<size_t>(cols * f)));
  };
  auto all_rows = [&] {
    std::vector<size_t> v(rows);
    for (size_t i = 0; i < rows; ++i) v[i] = i;
    return v;
  };
  auto all_cols = [&] {
    std::vector<size_t> v(cols);
    for (size_t i = 0; i < cols; ++i) v[i] = i;
    return v;
  };

  std::vector<Table> variants;
  int vid = 0;
  auto add = [&](std::vector<size_t> r, std::vector<size_t> c) {
    Table v = seed_table.Slice(r, c);
    v.set_id(seed_table.id() + "_v" + std::to_string(vid++));
    v.set_description(seed_table.description());
    v.InferTypes();
    variants.push_back(std::move(v));
  };

  // Fig 7, in order: fractional row+column grids...
  add(rows_frac(0.25), cols_frac(0.25));
  add(rows_frac(0.50), cols_frac(0.50));
  add(rows_frac(0.75), cols_frac(0.75));
  add(all_rows(), cols_frac(0.25));
  add(all_rows(), cols_frac(0.50));
  add(all_rows(), cols_frac(0.75));
  add(rows_frac(0.25), all_cols());
  add(rows_frac(0.50), all_cols());
  add(rows_frac(0.75), all_cols());
  // ...plus the two order-invariance probes.
  auto shuffled_cols = all_cols();
  rng->Shuffle(&shuffled_cols);
  add(all_rows(), shuffled_cols);
  auto shuffled_rows = all_rows();
  rng->Shuffle(&shuffled_rows);
  add(shuffled_rows, all_cols());

  return variants;
}

SearchBenchmark MakeEurostatSubsetSearch(const DomainCatalog& catalog,
                                         const EurostatScale& scale, uint64_t seed) {
  Rng rng(seed);
  SearchBenchmark bench;
  bench.name = "Eurostat Subset";

  for (size_t s = 0; s < scale.num_seeds; ++s) {
    // Eurostat-like statistical files: finance/trade/energy domains.
    const size_t kStatDomains[] = {5, 8, 9};
    const Domain& dom = catalog.domain(kStatDomains[rng.Uniform(3)]);
    Table seed_table =
        GenerateDomainTable(dom, "eu_seed" + std::to_string(s), scale.rows, &rng);

    size_t query_index = bench.tables.size();
    std::vector<Table> variants = MakeEurostatVariants(seed_table, &rng);
    bench.tables.push_back(std::move(seed_table));

    SearchQuery q;
    q.table_index = query_index;
    std::vector<size_t> gold;
    for (auto& v : variants) {
      gold.push_back(bench.tables.size());
      bench.tables.push_back(std::move(v));
    }
    bench.queries.push_back(q);
    bench.gold.push_back(std::move(gold));
  }
  return bench;
}

}  // namespace tsfm::lakebench
