// Synthetic "open data" generation substrate.
//
// Replaces the paper's crawled CKAN/Socrata/Wikidata/ECB corpora (see
// DESIGN.md, substitutions). Tables are drawn from a catalog of domains,
// each with its own entity vocabulary, cryptic code columns, numeric
// measures and date columns — reproducing the enterprise-lake character the
// paper relies on (numeric-heavy, domain-specific entities, code words).
#ifndef TSFM_LAKEBENCH_DATAGEN_H_
#define TSFM_LAKEBENCH_DATAGEN_H_

#include <string>
#include <vector>

#include "table/table.h"
#include "util/random.h"

namespace tsfm::lakebench {

/// Kinds of synthesized columns.
enum class ColumnKind {
  kEntity,    ///< names drawn from the domain's entity pool
  kCode,      ///< cryptic code words ("PROD_BPM", "AACT_EAA01")
  kInteger,   ///< integers in a range
  kFloat,     ///< floats from a normal distribution
  kDate,      ///< ISO dates in a year range
  kCategory,  ///< small closed set of category strings
};

/// \brief Specification of one synthesized column.
struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kInteger;
  // kEntity: index into the domain's entity pools.
  size_t entity_pool = 0;
  // kInteger / kFloat parameters.
  double lo = 0.0;
  double hi = 1000.0;
  double mean = 0.0;
  double stddev = 1.0;
  // kDate year range.
  int year_lo = 1990;
  int year_hi = 2024;
  // kCategory values.
  std::vector<std::string> categories;
  // Fraction of null cells.
  double null_fraction = 0.0;
};

/// \brief A data domain: entity pools plus a table schema template.
struct Domain {
  std::string name;
  std::string description;
  std::vector<std::vector<std::string>> entity_pools;
  std::vector<ColumnSpec> columns;
};

/// Deterministically synthesizes a pronounceable proper name
/// (2-4 syllables, capitalized).
std::string SyntheticName(Rng* rng);

/// Synthesizes a pool of `n` distinct proper names.
std::vector<std::string> MakeEntityPool(size_t n, Rng* rng);

/// Synthesizes a cryptic enterprise code like "AACT_EAA01".
std::string SyntheticCode(Rng* rng);

/// \brief The catalog of domains used by every generator.
///
/// Built deterministically from a seed; two catalogs with the same seed are
/// identical, so benchmarks are reproducible.
class DomainCatalog {
 public:
  explicit DomainCatalog(uint64_t seed = 42, size_t pool_size = 400);

  const std::vector<Domain>& domains() const { return domains_; }
  const Domain& domain(size_t i) const { return domains_[i]; }
  size_t size() const { return domains_.size(); }

 private:
  std::vector<Domain> domains_;
};

/// Generates `rows` rows for `spec` within `domain`.
std::vector<std::string> GenerateCells(const Domain& domain, const ColumnSpec& spec,
                                       size_t rows, Rng* rng);

/// Generates a full table from `domain` (all columns in the schema).
Table GenerateDomainTable(const Domain& domain, const std::string& id, size_t rows,
                          Rng* rng);

/// Generates a table using a subset of the domain's columns.
Table GenerateDomainTable(const Domain& domain, const std::string& id, size_t rows,
                          const std::vector<size_t>& column_subset, Rng* rng);

}  // namespace tsfm::lakebench

#endif  // TSFM_LAKEBENCH_DATAGEN_H_
