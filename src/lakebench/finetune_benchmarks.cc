#include "lakebench/finetune_benchmarks.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace tsfm::lakebench {

using core::PairDataset;
using core::PairExample;
using core::TaskType;

void SplitExamples(std::vector<PairExample> examples, Rng* rng,
                   PairDataset* dataset) {
  rng->Shuffle(&examples);
  const size_t n = examples.size();
  const size_t train_end = n * 70 / 100;
  const size_t val_end = n * 85 / 100;
  dataset->train.assign(examples.begin(), examples.begin() + train_end);
  dataset->val.assign(examples.begin() + train_end, examples.begin() + val_end);
  dataset->test.assign(examples.begin() + val_end, examples.end());
}

namespace {

// Adds `table` to the dataset, returning its index.
size_t AddTable(PairDataset* ds, Table table) {
  ds->tables.push_back(std::move(table));
  return ds->tables.size() - 1;
}

// Samples a set of distinct values from a pool; returns the chosen values.
std::vector<std::string> SampleValues(const std::vector<std::string>& pool,
                                      size_t count, Rng* rng) {
  auto idx = rng->SampleIndices(pool.size(), count);
  std::vector<std::string> out;
  out.reserve(idx.size());
  for (size_t i : idx) out.push_back(pool[i]);
  return out;
}

// Builds a column's cells by cycling `values` to the requested row count
// (each distinct value appears at least once when rows >= values).
std::vector<std::string> CellsFromValues(const std::vector<std::string>& values,
                                         size_t rows, Rng* rng) {
  std::vector<std::string> cells;
  cells.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    if (r < values.size()) {
      cells.push_back(values[r]);
    } else {
      cells.push_back(rng->Choice(values));
    }
  }
  rng->Shuffle(&cells);
  return cells;
}

// Exact Jaccard between two string sets.
double ExactJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  std::unordered_set<std::string> sa(a.begin(), a.end());
  size_t inter = 0;
  std::unordered_set<std::string> sb(b.begin(), b.end());
  for (const auto& x : sb) {
    if (sa.count(x)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

// Exact containment |A ∩ B| / |A|.
double ExactContainment(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& x : sa) {
    if (sb.count(x)) ++inter;
  }
  return sa.empty() ? 0.0 : static_cast<double>(inter) / static_cast<double>(sa.size());
}

}  // namespace

PairDataset MakeTusSantos(const DomainCatalog& catalog, const BenchScale& scale,
                          uint64_t seed) {
  Rng rng(seed);
  PairDataset ds;
  ds.name = "TUS-SANTOS";
  ds.task = TaskType::kBinaryClassification;
  ds.num_outputs = 2;

  std::vector<PairExample> examples;
  for (size_t p = 0; p < scale.num_pairs; ++p) {
    const bool positive = rng.Bernoulli(0.5);
    size_t d1 = rng.Uniform(static_cast<uint32_t>(catalog.size()));
    const Domain& dom1 = catalog.domain(d1);
    // Column subset of the domain schema (>= 3 columns).
    size_t keep = 3 + rng.Uniform(static_cast<uint32_t>(dom1.columns.size() - 2));
    auto cols = rng.SampleIndices(dom1.columns.size(), keep);

    std::string id_a = "tus_" + std::to_string(p) + "_a";
    Table a = GenerateDomainTable(dom1, id_a, scale.rows, cols, &rng);

    PairExample ex;
    ex.a = AddTable(&ds, std::move(a));
    if (positive) {
      // Unionable: same domain and columns, fresh rows, shuffled order.
      rng.Shuffle(&cols);
      Table b = GenerateDomainTable(dom1, "tus_" + std::to_string(p) + "_b",
                                    scale.rows, cols, &rng);
      ex.b = AddTable(&ds, std::move(b));
      ex.label = 1;
    } else {
      size_t d2 = rng.Uniform(static_cast<uint32_t>(catalog.size()));
      while (d2 == d1) d2 = rng.Uniform(static_cast<uint32_t>(catalog.size()));
      const Domain& dom2 = catalog.domain(d2);
      size_t keep2 = 3 + rng.Uniform(static_cast<uint32_t>(dom2.columns.size() - 2));
      Table b = GenerateDomainTable(dom2, "tus_" + std::to_string(p) + "_b",
                                    scale.rows, rng.SampleIndices(dom2.columns.size(), keep2),
                                    &rng);
      ex.b = AddTable(&ds, std::move(b));
      ex.label = 0;
    }
    examples.push_back(ex);
  }
  SplitExamples(std::move(examples), &rng, &ds);
  return ds;
}

PairDataset MakeWikiUnion(const DomainCatalog& catalog, const BenchScale& scale,
                          uint64_t seed) {
  Rng rng(seed);
  PairDataset ds;
  ds.name = "Wiki Union";
  ds.task = TaskType::kBinaryClassification;
  ds.num_outputs = 2;

  // Generic headers: unionability cannot be read off the schema.
  auto make_table = [&](const std::string& id, const Domain& dom, size_t pool,
                        const std::vector<std::string>& entities) {
    Table t(id, "wikidata derived table");
    (void)pool;
    t.AddColumn("name", CellsFromValues(entities, scale.rows / 2, &rng));
    ColumnSpec value_spec;
    value_spec.kind = ColumnKind::kFloat;
    value_spec.mean = 100;
    value_spec.stddev = 40;
    value_spec.name = "value";
    t.AddColumn("value", GenerateCells(dom, value_spec, scale.rows / 2, &rng));
    t.InferTypes();
    return t;
  };

  std::vector<PairExample> examples;
  for (size_t p = 0; p < scale.num_pairs; ++p) {
    const bool positive = rng.Bernoulli(0.5);
    size_t d1 = rng.Uniform(static_cast<uint32_t>(catalog.size()));
    const Domain& dom1 = catalog.domain(d1);
    const auto& pool1 = dom1.entity_pools[0];
    // Disjoint halves of the same pool: same semantic domain, minimal value
    // overlap (the paper's Fig 5 scenario).
    auto ents_a = SampleValues(pool1, scale.rows / 3, &rng);

    PairExample ex;
    ex.a = AddTable(&ds, make_table("wu_" + std::to_string(p) + "_a", dom1, 0, ents_a));
    if (positive) {
      std::unordered_set<std::string> used(ents_a.begin(), ents_a.end());
      std::vector<std::string> rest;
      for (const auto& e : pool1) {
        if (!used.count(e)) rest.push_back(e);
      }
      auto ents_b = SampleValues(rest, std::min(rest.size(), scale.rows / 3), &rng);
      ex.b = AddTable(&ds,
                      make_table("wu_" + std::to_string(p) + "_b", dom1, 0, ents_b));
      ex.label = 1;
    } else {
      size_t d2 = rng.Uniform(static_cast<uint32_t>(catalog.size()));
      while (d2 == d1) d2 = rng.Uniform(static_cast<uint32_t>(catalog.size()));
      const Domain& dom2 = catalog.domain(d2);
      auto ents_b = SampleValues(dom2.entity_pools[0], scale.rows / 3, &rng);
      // Trap: literal value overlap across domains.
      if (rng.Bernoulli(0.3) && !ents_a.empty()) {
        ents_b[0] = ents_a[0];
      }
      ex.b = AddTable(&ds,
                      make_table("wu_" + std::to_string(p) + "_b", dom2, 0, ents_b));
      ex.label = 0;
    }
    examples.push_back(ex);
  }
  SplitExamples(std::move(examples), &rng, &ds);
  return ds;
}

PairDataset MakeEcbUnion(const DomainCatalog& catalog, const BenchScale& scale,
                         uint64_t seed) {
  Rng rng(seed);
  PairDataset ds;
  ds.name = "ECB Union";
  ds.task = TaskType::kRegression;
  ds.num_outputs = 1;
  const Domain& fin = catalog.domain(8);  // finance

  // Wide tables: shared indicator columns + per-table private indicators.
  auto indicator = [&](const std::string& name, double mean, Rng* r) {
    ColumnSpec c;
    c.name = name;
    c.kind = ColumnKind::kFloat;
    c.mean = mean;
    c.stddev = std::max(1.0, mean * 0.2);
    return GenerateCells(fin, c, scale.rows, r);
  };

  std::vector<PairExample> examples;
  for (size_t p = 0; p < scale.num_pairs; ++p) {
    const size_t total = scale.wide_cols;
    const size_t shared = rng.Uniform(static_cast<uint32_t>(total + 1));

    // Shared indicator specs: identical names and distributions on both sides.
    Table a("ecbu_" + std::to_string(p) + "_a", "central bank statistics");
    Table b("ecbu_" + std::to_string(p) + "_b", "central bank statistics");
    for (size_t c = 0; c < total; ++c) {
      if (c < shared) {
        std::string name = "indicator " + SyntheticCode(&rng);
        double mean = rng.UniformDouble(10, 2000);
        a.AddColumn(name, indicator(name, mean, &rng));
        b.AddColumn(name, indicator(name, mean, &rng));
      } else {
        std::string name_a = "series " + SyntheticCode(&rng);
        std::string name_b = "series " + SyntheticCode(&rng);
        a.AddColumn(name_a, indicator(name_a, rng.UniformDouble(10, 2000), &rng));
        b.AddColumn(name_b, indicator(name_b, rng.UniformDouble(10, 2000), &rng));
      }
    }
    a.InferTypes();
    b.InferTypes();

    PairExample ex;
    ex.a = AddTable(&ds, std::move(a));
    ex.b = AddTable(&ds, std::move(b));
    // Regression target: fraction of unionable columns (paper: count).
    ex.target = static_cast<float>(shared) / static_cast<float>(total);
    examples.push_back(ex);
  }
  SplitExamples(std::move(examples), &rng, &ds);
  return ds;
}

namespace {

// Shared machinery for Wiki Jaccard / Containment: two key-column tables
// with a controlled set overlap.
PairDataset MakeOverlapRegression(const DomainCatalog& catalog,
                                  const BenchScale& scale, uint64_t seed,
                                  bool containment) {
  Rng rng(seed);
  PairDataset ds;
  ds.name = containment ? "Wiki Containment" : "Wiki Jaccard";
  ds.task = TaskType::kRegression;
  ds.num_outputs = 1;

  std::vector<PairExample> examples;
  for (size_t p = 0; p < scale.num_pairs; ++p) {
    size_t d = rng.Uniform(static_cast<uint32_t>(catalog.size()));
    const Domain& dom = catalog.domain(d);
    const auto& pool = dom.entity_pools[0];

    const size_t na = 8 + rng.Uniform(16);
    const size_t nb = 8 + rng.Uniform(16);
    const size_t max_overlap = std::min(na, nb);
    const size_t overlap = rng.Uniform(static_cast<uint32_t>(max_overlap + 1));

    auto base = SampleValues(pool, na + nb - overlap, &rng);
    std::vector<std::string> ents_a(base.begin(), base.begin() + na);
    std::vector<std::string> ents_b(base.begin() + (na - overlap), base.end());

    auto make = [&](const std::string& id, const std::vector<std::string>& ents) {
      // Row count >= |ents| so the table's distinct-value set is exactly
      // `ents` and the regression target stays exact.
      const size_t rows = std::max(ents.size(), scale.rows / 2);
      Table t(id, "wikidata entity table");
      t.AddColumn("entity", CellsFromValues(ents, rows, &rng));
      ColumnSpec c;
      c.name = "score";
      c.kind = ColumnKind::kFloat;
      c.mean = 50;
      c.stddev = 20;
      t.AddColumn("score", GenerateCells(dom, c, rows, &rng));
      t.InferTypes();
      return t;
    };

    PairExample ex;
    std::string prefix = (containment ? "wc_" : "wj_") + std::to_string(p);
    ex.a = AddTable(&ds, make(prefix + "_a", ents_a));
    ex.b = AddTable(&ds, make(prefix + "_b", ents_b));
    ex.target = static_cast<float>(containment ? ExactContainment(ents_a, ents_b)
                                               : ExactJaccard(ents_a, ents_b));
    examples.push_back(ex);
  }
  SplitExamples(std::move(examples), &rng, &ds);
  return ds;
}

}  // namespace

PairDataset MakeWikiJaccard(const DomainCatalog& catalog, const BenchScale& scale,
                            uint64_t seed) {
  return MakeOverlapRegression(catalog, scale, seed, /*containment=*/false);
}

PairDataset MakeWikiContainment(const DomainCatalog& catalog, const BenchScale& scale,
                                uint64_t seed) {
  return MakeOverlapRegression(catalog, scale, seed, /*containment=*/true);
}

PairDataset MakeSpiderOpenData(const DomainCatalog& catalog, const BenchScale& scale,
                               uint64_t seed) {
  Rng rng(seed);
  PairDataset ds;
  ds.name = "Spider-OpenData";
  ds.task = TaskType::kBinaryClassification;
  ds.num_outputs = 2;

  std::vector<PairExample> examples;
  for (size_t p = 0; p < scale.num_pairs; ++p) {
    const bool positive = rng.Bernoulli(0.5);
    size_t d = rng.Uniform(static_cast<uint32_t>(catalog.size()));
    const Domain& dom = catalog.domain(d);
    const auto& pool = dom.entity_pools[0];

    auto keys = SampleValues(pool, 20, &rng);

    // Fact table: key + measures.
    Table a("sp_" + std::to_string(p) + "_a", dom.description);
    a.AddColumn(dom.columns[0].name, CellsFromValues(keys, scale.rows, &rng));
    ColumnSpec m;
    m.name = "amount";
    m.kind = ColumnKind::kFloat;
    m.mean = 500;
    m.stddev = 200;
    a.AddColumn("amount", GenerateCells(dom, m, scale.rows, &rng));
    a.InferTypes();

    Table b("sp_" + std::to_string(p) + "_b", dom.description + " reference");
    std::vector<std::string> fk_values;
    if (positive) {
      // >= 60% of the same key set, under a differently-worded header.
      auto sub = SampleValues(keys, 12 + rng.Uniform(8), &rng);
      auto extra = SampleValues(pool, 4, &rng);
      sub.insert(sub.end(), extra.begin(), extra.end());
      fk_values = sub;
    } else if (rng.Bernoulli(0.5)) {
      // Same pool, (near-)disjoint subset: values do not overlap.
      std::unordered_set<std::string> used(keys.begin(), keys.end());
      std::vector<std::string> rest;
      for (const auto& e : pool) {
        if (!used.count(e)) rest.push_back(e);
      }
      fk_values = SampleValues(rest, std::min<size_t>(rest.size(), 20), &rng);
    } else {
      // Different domain entirely.
      size_t d2 = rng.Uniform(static_cast<uint32_t>(catalog.size()));
      while (d2 == d) d2 = rng.Uniform(static_cast<uint32_t>(catalog.size()));
      fk_values = SampleValues(catalog.domain(d2).entity_pools[0], 20, &rng);
    }
    b.AddColumn(dom.columns[0].name + " ref", CellsFromValues(fk_values, scale.rows, &rng));
    ColumnSpec m2;
    m2.name = "detail";
    m2.kind = ColumnKind::kInteger;
    m2.lo = 0;
    m2.hi = 5000;
    b.AddColumn("detail", GenerateCells(dom, m2, scale.rows, &rng));
    b.InferTypes();

    PairExample ex;
    ex.a = AddTable(&ds, std::move(a));
    ex.b = AddTable(&ds, std::move(b));
    ex.label = positive ? 1 : 0;
    examples.push_back(ex);
  }
  SplitExamples(std::move(examples), &rng, &ds);
  return ds;
}

PairDataset MakeEcbJoin(const DomainCatalog& catalog, const BenchScale& scale,
                        uint64_t seed) {
  Rng rng(seed);
  PairDataset ds;
  ds.name = "ECB Join";
  ds.task = TaskType::kMultiLabel;
  ds.num_outputs = kEcbJoinLabels;
  const Domain& fin = catalog.domain(8);  // finance

  std::vector<PairExample> examples;
  for (size_t p = 0; p < scale.num_pairs; ++p) {
    Table a("ecbj_" + std::to_string(p) + "_a", "financial series panel");
    Table b("ecbj_" + std::to_string(p) + "_b", "financial series panel");
    std::vector<float> labels(kEcbJoinLabels, 0.0f);

    for (size_t c = 0; c < kEcbJoinLabels; ++c) {
      const bool key_column = rng.Bernoulli(0.35);
      if (key_column) {
        // Joinable: both sides carry overlapping key values.
        const auto& pool = fin.entity_pools[0];
        auto keys = SampleValues(pool, 24, &rng);
        std::string name = "key " + SyntheticCode(&rng);
        a.AddColumn(name, CellsFromValues(SampleValues(keys, 18, &rng), scale.rows, &rng));
        b.AddColumn(name + " x", CellsFromValues(SampleValues(keys, 18, &rng), scale.rows, &rng));
        labels[c] = 1.0f;
      } else {
        ColumnSpec m;
        m.name = "obs " + SyntheticCode(&rng);
        m.kind = ColumnKind::kFloat;
        m.mean = rng.UniformDouble(10, 1000);
        m.stddev = m.mean * 0.2;
        a.AddColumn(m.name, GenerateCells(fin, m, scale.rows, &rng));
        ColumnSpec m2;
        m2.name = "obs " + SyntheticCode(&rng);
        m2.kind = ColumnKind::kFloat;
        m2.mean = rng.UniformDouble(10, 1000);
        m2.stddev = m2.mean * 0.2;
        b.AddColumn(m2.name, GenerateCells(fin, m2, scale.rows, &rng));
      }
    }
    a.InferTypes();
    b.InferTypes();

    PairExample ex;
    ex.a = AddTable(&ds, std::move(a));
    ex.b = AddTable(&ds, std::move(b));
    ex.multi_labels = labels;
    examples.push_back(ex);
  }
  SplitExamples(std::move(examples), &rng, &ds);
  return ds;
}

PairDataset MakeCkanSubset(const DomainCatalog& catalog, const BenchScale& scale,
                           uint64_t seed) {
  Rng rng(seed);
  PairDataset ds;
  ds.name = "CKAN Subset";
  ds.task = TaskType::kBinaryClassification;
  ds.num_outputs = 2;

  std::vector<PairExample> examples;
  for (size_t p = 0; p < scale.num_pairs; ++p) {
    const bool positive = rng.Bernoulli(0.5);
    size_t d = rng.Uniform(static_cast<uint32_t>(catalog.size()));
    const Domain& dom = catalog.domain(d);

    // Each table *instance* gets its own multiplicative scale jitter so an
    // independently generated table with the same schema has a measurably
    // different distribution — exactly the evidence the subset task needs.
    // The jitter is relative (not absolute) so it is visible on every
    // column regardless of its magnitude.
    auto make_instance = [&](const std::string& id, double factor) {
      Table t(id, dom.description);
      for (const auto& spec : dom.columns) {
        ColumnSpec s = spec;
        if (s.kind == ColumnKind::kFloat) {
          s.mean *= factor;
          s.stddev *= factor;
        }
        if (s.kind == ColumnKind::kInteger) {
          s.lo *= factor;
          s.hi *= factor;
        }
        t.AddColumn(s.name, GenerateCells(dom, s, scale.rows * 2, &rng));
      }
      t.InferTypes();
      return t;
    };

    double jitter = rng.UniformDouble(0.6, 1.6);
    Table a = make_instance("ck_" + std::to_string(p) + "_a", jitter);

    PairExample ex;
    if (positive) {
      // B = literal row subset of A (25–75%), rows shuffled.
      size_t keep = a.num_rows() / 4 + rng.Uniform(static_cast<uint32_t>(a.num_rows() / 2));
      keep = std::max<size_t>(keep, 4);
      auto row_idx = rng.SampleIndices(a.num_rows(), keep);
      std::vector<size_t> all_cols(a.num_columns());
      for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
      Table b = a.Slice(row_idx, all_cols);
      b.set_id("ck_" + std::to_string(p) + "_b");
      b.set_description(a.description());
      b.InferTypes();
      ex.a = AddTable(&ds, std::move(a));
      ex.b = AddTable(&ds, std::move(b));
      ex.label = 1;
    } else {
      // Same schema (identical headers!), fresh draw with its own jitter.
      double jitter_b = rng.UniformDouble(0.6, 1.6);
      Table b = make_instance("ck_" + std::to_string(p) + "_b", jitter_b);
      ex.a = AddTable(&ds, std::move(a));
      ex.b = AddTable(&ds, std::move(b));
      ex.label = 0;
    }
    examples.push_back(ex);
  }
  SplitExamples(std::move(examples), &rng, &ds);
  return ds;
}

std::vector<PairDataset> MakeAllFinetuneBenchmarks(const DomainCatalog& catalog,
                                                   const BenchScale& scale,
                                                   uint64_t seed) {
  std::vector<PairDataset> out;
  out.push_back(MakeTusSantos(catalog, scale, seed + 1));
  out.push_back(MakeWikiUnion(catalog, scale, seed + 2));
  out.push_back(MakeEcbUnion(catalog, scale, seed + 3));
  out.push_back(MakeWikiJaccard(catalog, scale, seed + 4));
  out.push_back(MakeWikiContainment(catalog, scale, seed + 5));
  out.push_back(MakeSpiderOpenData(catalog, scale, seed + 6));
  out.push_back(MakeEcbJoin(catalog, scale, seed + 7));
  out.push_back(MakeCkanSubset(catalog, scale, seed + 8));
  return out;
}

}  // namespace tsfm::lakebench
