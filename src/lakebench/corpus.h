// Pretraining corpus generation (paper Sec III-C) and vocabulary building.
#ifndef TSFM_LAKEBENCH_CORPUS_H_
#define TSFM_LAKEBENCH_CORPUS_H_

#include <vector>

#include "lakebench/datagen.h"
#include "text/vocab.h"

namespace tsfm::lakebench {

/// Corpus knobs; defaults give a CPU-trainable pretraining set.
struct CorpusScale {
  size_t num_tables = 60;      ///< base tables before augmentation
  size_t augmentations = 2;    ///< column-shuffled copies per table (paper: x3 total)
  size_t min_rows = 24;
  size_t max_rows = 64;
};

/// Generates enterprise-like tables across every catalog domain, plus the
/// paper's column-order augmentation: each base table is copied
/// `augmentations` times with shuffled column order (which also changes its
/// content snapshot).
std::vector<Table> MakePretrainCorpus(const DomainCatalog& catalog,
                                      const CorpusScale& scale, uint64_t seed);

/// Builds a tokenizer vocabulary from table metadata and column names; when
/// `include_cells` is true, sampled cell words are added too (needed by
/// value-serialization baselines).
text::Vocab BuildVocabFromTables(const std::vector<Table>& tables,
                                 bool include_cells, size_t cell_sample_per_column = 12);

}  // namespace tsfm::lakebench

#endif  // TSFM_LAKEBENCH_CORPUS_H_
