// Generators for the eight LakeBench-style fine-tuning benchmarks
// (paper Table I; task semantics from Srinivas et al. [17]).
//
// Each generator synthesizes tables plus exact-by-construction labels that
// stress the same signal as the original benchmark:
//   TUS-SANTOS       binary union; solvable from headers (paper Sec IV-A.2)
//   Wiki Union       binary union; same-domain values with little overlap
//   ECB Union        regression: number of unionable columns
//   Wiki Jaccard     regression: key-column Jaccard similarity
//   Wiki Containment regression: key-column containment
//   Spider-OpenData  binary join
//   ECB Join         multi-label: which columns of A join into B
//   CKAN Subset      binary subset; identical headers, content decides
#ifndef TSFM_LAKEBENCH_FINETUNE_BENCHMARKS_H_
#define TSFM_LAKEBENCH_FINETUNE_BENCHMARKS_H_

#include "core/dataset.h"
#include "lakebench/datagen.h"

namespace tsfm::lakebench {

/// Benchmark-size knobs. Defaults keep a full Table II run in CPU minutes.
struct BenchScale {
  size_t num_pairs = 160;   ///< total labelled pairs (split 70/15/15)
  size_t rows = 48;         ///< typical rows per table
  size_t wide_cols = 12;    ///< column count for the "wide" ECB-style tables
};

/// Width of the ECB Join multi-label output (fixed head size).
inline constexpr size_t kEcbJoinLabels = 12;

core::PairDataset MakeTusSantos(const DomainCatalog& catalog, const BenchScale& scale,
                                uint64_t seed);
core::PairDataset MakeWikiUnion(const DomainCatalog& catalog, const BenchScale& scale,
                                uint64_t seed);
core::PairDataset MakeEcbUnion(const DomainCatalog& catalog, const BenchScale& scale,
                               uint64_t seed);
core::PairDataset MakeWikiJaccard(const DomainCatalog& catalog,
                                  const BenchScale& scale, uint64_t seed);
core::PairDataset MakeWikiContainment(const DomainCatalog& catalog,
                                      const BenchScale& scale, uint64_t seed);
core::PairDataset MakeSpiderOpenData(const DomainCatalog& catalog,
                                     const BenchScale& scale, uint64_t seed);
core::PairDataset MakeEcbJoin(const DomainCatalog& catalog, const BenchScale& scale,
                              uint64_t seed);
core::PairDataset MakeCkanSubset(const DomainCatalog& catalog,
                                 const BenchScale& scale, uint64_t seed);

/// All eight, in paper Table II row order.
std::vector<core::PairDataset> MakeAllFinetuneBenchmarks(const DomainCatalog& catalog,
                                                         const BenchScale& scale,
                                                         uint64_t seed);

/// Assigns `examples` into train/val/test splits (70/15/15) of `dataset`.
void SplitExamples(std::vector<core::PairExample> examples, Rng* rng,
                   core::PairDataset* dataset);

}  // namespace tsfm::lakebench

#endif  // TSFM_LAKEBENCH_FINETUNE_BENCHMARKS_H_
