#include "lakebench/datagen.h"

#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace tsfm::lakebench {

namespace {

const char* kOnsets[] = {"b",  "br", "c",  "ch", "d",  "dr", "f", "g",  "gr",
                         "h",  "j",  "k",  "kl", "l",  "m",  "n", "p",  "pr",
                         "r",  "s",  "st", "t",  "tr", "v",  "w", "z",  "sh",
                         "th", "pl", "bl"};
const char* kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ei", "ou", "ia", "eo"};
const char* kCodas[] = {"",  "n", "r", "l", "s",  "t",  "m",  "k",
                        "x", "d", "g", "p", "nd", "rt", "st", "ck"};

}  // namespace

std::string SyntheticName(Rng* rng) {
  const size_t syllables = 2 + rng->Uniform(3);
  std::string name;
  for (size_t s = 0; s < syllables; ++s) {
    name += kOnsets[rng->Uniform(std::size(kOnsets))];
    name += kNuclei[rng->Uniform(std::size(kNuclei))];
    if (s + 1 == syllables) name += kCodas[rng->Uniform(std::size(kCodas))];
  }
  name[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(name[0])));
  return name;
}

std::vector<std::string> MakeEntityPool(size_t n, Rng* rng) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> pool;
  pool.reserve(n);
  while (pool.size() < n) {
    std::string name = SyntheticName(rng);
    if (rng->Bernoulli(0.3)) name += " " + SyntheticName(rng);  // two-word entities
    if (seen.insert(name).second) pool.push_back(std::move(name));
  }
  return pool;
}

std::string SyntheticCode(Rng* rng) {
  std::string code;
  const size_t letters = 3 + rng->Uniform(3);
  for (size_t i = 0; i < letters; ++i) {
    code += static_cast<char>('A' + rng->Uniform(26));
  }
  code += '_';
  const size_t letters2 = 2 + rng->Uniform(3);
  for (size_t i = 0; i < letters2; ++i) {
    code += static_cast<char>('A' + rng->Uniform(26));
  }
  code += std::to_string(rng->Uniform(100));
  return code;
}

DomainCatalog::DomainCatalog(uint64_t seed, size_t pool_size) {
  Rng rng(seed);

  struct DomainSeed {
    const char* name;
    const char* description;
    // Short schema description: entity columns, measures, etc. built below.
  };

  auto entity_col = [](std::string name, size_t pool) {
    ColumnSpec c;
    c.name = std::move(name);
    c.kind = ColumnKind::kEntity;
    c.entity_pool = pool;
    return c;
  };
  auto code_col = [](std::string name) {
    ColumnSpec c;
    c.name = std::move(name);
    c.kind = ColumnKind::kCode;
    return c;
  };
  auto int_col = [](std::string name, double lo, double hi) {
    ColumnSpec c;
    c.name = std::move(name);
    c.kind = ColumnKind::kInteger;
    c.lo = lo;
    c.hi = hi;
    return c;
  };
  auto float_col = [](std::string name, double mean, double stddev) {
    ColumnSpec c;
    c.name = std::move(name);
    c.kind = ColumnKind::kFloat;
    c.mean = mean;
    c.stddev = stddev;
    return c;
  };
  auto date_col = [](std::string name, int lo, int hi) {
    ColumnSpec c;
    c.name = std::move(name);
    c.kind = ColumnKind::kDate;
    c.year_lo = lo;
    c.year_hi = hi;
    return c;
  };
  auto cat_col = [](std::string name, std::vector<std::string> cats) {
    ColumnSpec c;
    c.name = std::move(name);
    c.kind = ColumnKind::kCategory;
    c.categories = std::move(cats);
    return c;
  };

  auto make_domain = [&](const char* name, const char* desc,
                         std::vector<ColumnSpec> cols,
                         size_t num_pools) {
    Domain d;
    d.name = name;
    d.description = desc;
    for (size_t p = 0; p < num_pools; ++p) {
      d.entity_pools.push_back(MakeEntityPool(pool_size, &rng));
    }
    d.columns = std::move(cols);
    domains_.push_back(std::move(d));
  };

  make_domain("meteorites", "recorded meteorite landings",
              {entity_col("meteorite name", 0), entity_col("landing site", 1),
               float_col("mass grams", 5000, 3000), int_col("year found", 1800, 2020),
               cat_col("fell or found", {"Fell", "Found"}),
               float_col("latitude", 20, 30), float_col("longitude", 10, 60)},
              2);
  make_domain("municipalities", "population of municipalities",
              {entity_col("municipality", 0), entity_col("region", 1),
               int_col("population", 500, 2000000), float_col("area km2", 80, 60),
               date_col("census date", 2000, 2023),
               float_col("density", 300, 200)},
              2);
  make_domain("properties", "residential properties listings",
              {entity_col("street", 0), entity_col("city", 1),
               int_col("age", 0, 120), float_col("price", 350000, 150000),
               int_col("bedrooms", 1, 7), float_col("lot size", 0.1, 0.4),
               date_col("listed date", 2015, 2024)},
              2);
  make_domain("employees", "employee directory",
              {entity_col("employee name", 0), entity_col("department", 1),
               int_col("age", 21, 67), float_col("salary", 72000, 25000),
               date_col("hire date", 1995, 2024),
               cat_col("grade", {"junior", "senior", "staff", "principal"})},
              2);
  make_domain("products", "product sales records",
              {entity_col("product", 0), code_col("sku"),
               float_col("unit price", 40, 30), int_col("units sold", 0, 100000),
               cat_col("channel", {"online", "retail", "wholesale"}),
               date_col("report date", 2018, 2024)},
              1);
  make_domain("energy", "energy production statistics",
              {code_col("dataflow"), entity_col("plant", 0),
               float_col("output gwh", 1200, 700), int_col("year", 1990, 2024),
               cat_col("source", {"hydro", "solar", "wind", "coal", "nuclear"}),
               float_col("efficiency", 0.4, 0.1)},
              1);
  make_domain("health", "hospital admission statistics",
              {entity_col("hospital", 0), entity_col("district", 1),
               int_col("admissions", 50, 40000), float_col("avg stay days", 4.5, 1.5),
               date_col("period", 2010, 2024),
               cat_col("ward", {"cardiology", "oncology", "general", "pediatric"})},
              2);
  make_domain("transport", "transit ridership by route",
              {code_col("route id"), entity_col("origin", 0),
               entity_col("destination", 0), int_col("riders", 100, 500000),
               float_col("on time rate", 0.85, 0.08),
               date_col("service date", 2012, 2024)},
              1);
  make_domain("finance", "central bank financial indicators",
              {code_col("series key"), cat_col("freq", {"A", "Q", "M"}),
               cat_col("unit", {"MIO_EUR", "PC", "THS"}),
               entity_col("reference area", 0), int_col("time period", 1980, 2024),
               float_col("obs value", 1000, 900)},
              1);
  make_domain("trade", "import export trade flows",
              {entity_col("partner", 0), code_col("commodity code"),
               float_col("import value", 50000, 40000),
               float_col("export value", 45000, 35000), int_col("year", 1995, 2024),
               cat_col("flow", {"import", "export", "re-export"})},
              1);
  make_domain("education", "school enrollment figures",
              {entity_col("school", 0), entity_col("district", 1),
               int_col("enrollment", 100, 5000), float_col("student teacher ratio", 16, 4),
               date_col("academic year", 2005, 2024),
               cat_col("level", {"primary", "secondary", "tertiary"})},
              2);
  make_domain("climate", "weather station observations",
              {entity_col("station", 0), float_col("temperature", 12, 9),
               float_col("precipitation mm", 60, 45), float_col("wind speed", 14, 6),
               date_col("observed", 1990, 2024), int_col("humidity", 20, 100)},
              1);
}

std::vector<std::string> GenerateCells(const Domain& domain, const ColumnSpec& spec,
                                       size_t rows, Rng* rng) {
  std::vector<std::string> cells;
  cells.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    if (spec.null_fraction > 0.0 && rng->Bernoulli(spec.null_fraction)) {
      cells.emplace_back();
      continue;
    }
    switch (spec.kind) {
      case ColumnKind::kEntity: {
        TSFM_CHECK_LT(spec.entity_pool, domain.entity_pools.size());
        cells.push_back(rng->Choice(domain.entity_pools[spec.entity_pool]));
        break;
      }
      case ColumnKind::kCode:
        cells.push_back(SyntheticCode(rng));
        break;
      case ColumnKind::kInteger:
        cells.push_back(std::to_string(
            rng->UniformInt(static_cast<int64_t>(spec.lo),
                            static_cast<int64_t>(spec.hi))));
        break;
      case ColumnKind::kFloat:
        cells.push_back(FormatDouble(rng->Normal(spec.mean, spec.stddev), 2));
        break;
      case ColumnKind::kDate: {
        int year = static_cast<int>(rng->UniformInt(spec.year_lo, spec.year_hi));
        int month = static_cast<int>(rng->UniformInt(1, 12));
        int day = static_cast<int>(rng->UniformInt(1, 28));
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
        cells.emplace_back(buf);
        break;
      }
      case ColumnKind::kCategory:
        cells.push_back(rng->Choice(spec.categories));
        break;
    }
  }
  return cells;
}

Table GenerateDomainTable(const Domain& domain, const std::string& id, size_t rows,
                          Rng* rng) {
  std::vector<size_t> all(domain.columns.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return GenerateDomainTable(domain, id, rows, all, rng);
}

Table GenerateDomainTable(const Domain& domain, const std::string& id, size_t rows,
                          const std::vector<size_t>& column_subset, Rng* rng) {
  Table table(id, domain.description);
  for (size_t ci : column_subset) {
    TSFM_CHECK_LT(ci, domain.columns.size());
    const ColumnSpec& spec = domain.columns[ci];
    table.AddColumn(spec.name, GenerateCells(domain, spec, rows, rng));
  }
  table.InferTypes();
  return table;
}

}  // namespace tsfm::lakebench
