// Search benchmark generators (paper Sec IV-C):
//   Wiki Join       entity-annotated join search (gold: annotation Jaccard > 0.5)
//   SANTOS union    slice-based union search, SANTOS-Small style
//   TUS union       slice-based union search, TUS-Small style (k up to 60)
//   Eurostat subset Fig 7 variant grid subset search
#ifndef TSFM_LAKEBENCH_SEARCH_BENCHMARKS_H_
#define TSFM_LAKEBENCH_SEARCH_BENCHMARKS_H_

#include <string>
#include <vector>

#include "lakebench/datagen.h"
#include "sketch/table_sketch.h"
#include "table/table.h"

namespace tsfm::lakebench {

/// \brief One search query: a table in the corpus, optionally with a marked
/// query column (join search); column_index == -1 means whole-table query.
struct SearchQuery {
  size_t table_index = 0;
  int column_index = -1;
};

/// \brief A search corpus with queries and gold relevance sets.
struct SearchBenchmark {
  std::string name;
  std::vector<Table> tables;
  std::vector<TableSketch> sketches;
  std::vector<SearchQuery> queries;
  /// gold[q] = indices of relevant corpus tables (never contains the query
  /// table itself).
  std::vector<std::vector<size_t>> gold;

  /// For join benchmarks: per table, per column, the entity-annotation set
  /// (ids into a global entity space). Used by annotation-aware baselines
  /// (SANTOS-style) and by tests validating gold construction.
  std::vector<std::vector<std::vector<int>>> column_annotations;

  void BuildSketches(const SketchOptions& options = {});
};

/// Wiki Join scale knobs.
struct WikiJoinScale {
  size_t num_pools = 18;      ///< distinct entity domains
  size_t pool_size = 60;      ///< entities per domain
  size_t num_tables = 220;    ///< corpus size
  size_t num_queries = 40;
  size_t rows = 48;
  double surface_overlap = 0.2;  ///< fraction of names shared across pools
};

/// Builds the Wiki Join benchmark: key columns annotated with entity ids;
/// a pair of columns is sensibly-joinable iff annotation Jaccard > 0.5.
/// Distinct pools share `surface_overlap` of their literal strings, so raw
/// value overlap exists between non-joinable columns (the marks-vs-ages trap).
SearchBenchmark MakeWikiJoinSearch(const WikiJoinScale& scale, uint64_t seed);

/// Union search scale knobs.
struct UnionSearchScale {
  size_t num_seeds = 10;
  size_t variants_per_seed = 12;
  size_t num_queries = 40;
  size_t rows = 64;
};

/// Builds a TUS/SANTOS-style union search corpus: each seed table is sliced
/// into row/column subsets; gold for a query slice is every other slice of
/// the same seed.
SearchBenchmark MakeUnionSearch(const DomainCatalog& catalog,
                                const UnionSearchScale& scale, uint64_t seed,
                                const std::string& name);

/// Eurostat subset scale knobs.
struct EurostatScale {
  size_t num_seeds = 40;
  size_t rows = 48;
};

/// The 11 Fig 7 variants of a seed table, in paper order.
std::vector<Table> MakeEurostatVariants(const Table& seed_table, Rng* rng);

/// Builds the Eurostat subset search benchmark: corpus = seeds + 11 variants
/// each; queries = the seeds; gold = their variants.
SearchBenchmark MakeEurostatSubsetSearch(const DomainCatalog& catalog,
                                         const EurostatScale& scale, uint64_t seed);

}  // namespace tsfm::lakebench

#endif  // TSFM_LAKEBENCH_SEARCH_BENCHMARKS_H_
