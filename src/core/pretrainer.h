// MLM pretraining loop (paper Sec III-C, Fig 2a).
#ifndef TSFM_CORE_PRETRAINER_H_
#define TSFM_CORE_PRETRAINER_H_

#include <vector>

#include "core/mlm.h"
#include "core/model.h"
#include "nn/optimizer.h"

namespace tsfm::core {

/// Pretraining hyper-parameters.
struct PretrainOptions {
  size_t epochs = 8;
  size_t batch_size = 8;       ///< gradient-accumulation examples per step
  float lr = 3e-4f;
  float warmup_fraction = 0.1f;
  size_t patience = 5;         ///< early-stopping patience in epochs (paper)
  uint64_t seed = 0;
  bool verbose = false;
};

/// Result of a pretraining run.
struct PretrainResult {
  std::vector<float> train_losses;  ///< per epoch
  std::vector<float> val_losses;    ///< per epoch
  size_t epochs_run = 0;
  float best_val_loss = 0.0f;
};

/// \brief Runs masked-column language-model pretraining.
class Pretrainer {
 public:
  Pretrainer(TabSketchFM* model, PretrainOptions options);

  /// Trains on `train` with early stopping on `val` loss.
  /// Examples are regenerated (re-masked) every epoch.
  PretrainResult Train(const std::vector<EncodedTable>& train,
                       const std::vector<EncodedTable>& val);

  /// Mean MLM loss over `examples` without gradient updates.
  float Evaluate(const std::vector<MlmExample>& examples);

 private:
  float LossOf(const MlmExample& example, bool training, Rng* rng,
               bool backward);

  TabSketchFM* model_;
  PretrainOptions options_;
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_PRETRAINER_H_
