#include "core/input_encoder.h"

#include <algorithm>

#include "util/logging.h"

namespace tsfm::core {

namespace {

// Duplicates a K-wide snapshot signature to the 2K input width used by
// column MinHash vectors, so every token row has the same shape.
std::vector<float> SnapshotInput(const MinHash& snapshot) {
  std::vector<float> k = snapshot.ToFloats();
  std::vector<float> out;
  out.reserve(k.size() * 2);
  out.insert(out.end(), k.begin(), k.end());
  out.insert(out.end(), k.begin(), k.end());
  return out;
}

}  // namespace

void ApplyAblation(const SketchAblation& ablation, EncodedTable* encoded) {
  for (size_t i = 0; i < encoded->size(); ++i) {
    const bool is_snapshot_token = encoded->column_pos[i] == 0;
    if (is_snapshot_token) {
      if (!ablation.use_snapshot) {
        std::fill(encoded->minhash[i].begin(), encoded->minhash[i].end(), 0.0f);
      }
    } else {
      if (!ablation.use_minhash) {
        std::fill(encoded->minhash[i].begin(), encoded->minhash[i].end(), 0.0f);
      }
    }
    if (!ablation.use_numerical) {
      std::fill(encoded->numerical[i].begin(), encoded->numerical[i].end(), 0.0f);
    }
  }
}

void InputEncoder::AppendTable(const TableSketch& sketch, int segment_id,
                               bool with_cls, size_t max_len,
                               EncodedTable* out) const {
  const size_t mh_dim = config_->MinHashInputDim();
  const size_t num_dim = config_->NumericalInputDim();
  const std::vector<float> snapshot_vec = SnapshotInput(sketch.content_snapshot);
  const std::vector<float> zero_numerical(num_dim, 0.0f);

  auto push = [&](int id, int tpos, int cpos, int ctype,
                  const std::vector<float>& mh, const std::vector<float>& num) {
    out->token_ids.push_back(id);
    out->token_pos.push_back(std::min<int>(tpos, static_cast<int>(config_->max_token_pos) - 1));
    out->column_pos.push_back(std::min<int>(cpos, static_cast<int>(config_->max_columns)));
    out->column_type.push_back(ctype);
    out->segment.push_back(segment_id);
    TSFM_CHECK_EQ(mh.size(), mh_dim);
    TSFM_CHECK_EQ(num.size(), num_dim);
    out->minhash.push_back(mh);
    out->numerical.push_back(num);
  };

  // Paper: position 0 / column-position 0 is reserved for table metadata;
  // its MinHash track carries the content snapshot E_CS.
  if (with_cls) {
    push(text::kClsId, 0, 0, 0, snapshot_vec, zero_numerical);
  }
  // Description tokens.
  std::vector<int> desc_ids = tokenizer_->Encode(sketch.description);
  if (desc_ids.size() > 8) desc_ids.resize(8);
  int dpos = 0;
  for (int id : desc_ids) {
    if (out->size() >= max_len) break;
    push(id, dpos++, 0, 0, snapshot_vec, zero_numerical);
  }
  if (out->size() < max_len) {
    push(text::kSepId, 0, 0, 0, snapshot_vec, zero_numerical);
  }

  out->column_spans.emplace_back();
  auto& spans = out->column_spans.back();

  for (size_t c = 0; c < sketch.columns.size(); ++c) {
    if (out->size() + 2 > max_len) break;  // need room for >=1 token + SEP
    const ColumnSketch& col = sketch.columns[c];
    std::vector<int> name_ids = tokenizer_->Encode(col.name);
    if (name_ids.empty()) name_ids.push_back(text::kUnkId);
    if (name_ids.size() > config_->max_name_tokens) {
      name_ids.resize(config_->max_name_tokens);
    }
    const std::vector<float> mh = col.MinHashInput();
    const std::vector<float> num = col.numerical.ToFloats();
    const int ctype = static_cast<int>(col.type);
    const int cpos = static_cast<int>(c) + 1;

    size_t span_start = out->size();
    int tpos = 0;
    for (int id : name_ids) {
      if (out->size() + 1 >= max_len) break;  // reserve the final SEP
      push(id, tpos++, cpos, ctype, mh, num);
    }
    spans.emplace_back(span_start, out->size() - span_start);
    push(text::kSepId, 0, cpos, ctype, mh, num);
  }
}

EncodedTable InputEncoder::EncodeTable(const TableSketch& sketch) const {
  EncodedTable out;
  AppendTable(sketch, /*segment_id=*/0, /*with_cls=*/true, config_->max_seq_len, &out);
  return out;
}

EncodedTable InputEncoder::EncodePair(const TableSketch& a,
                                      const TableSketch& b) const {
  EncodedTable out;
  // Split the budget between the halves so a wide first table cannot starve
  // the second.
  const size_t half = config_->max_seq_len / 2;
  AppendTable(a, /*segment_id=*/0, /*with_cls=*/true, half, &out);
  AppendTable(b, /*segment_id=*/1, /*with_cls=*/false, config_->max_seq_len, &out);
  return out;
}

}  // namespace tsfm::core
