#include "core/model.h"

#include "nn/ops.h"
#include "util/logging.h"

namespace tsfm::core {

TabSketchFM::TabSketchFM(const TabSketchFMConfig& config, Rng* rng)
    : config_(config) {
  TSFM_CHECK_GT(config.vocab_size, 0u) << "set vocab_size before building the model";
  const size_t h = config.encoder.hidden;
  token_emb_ = std::make_unique<nn::Embedding>(config.vocab_size, h, rng);
  token_pos_emb_ = std::make_unique<nn::Embedding>(config.max_token_pos, h, rng);
  column_pos_emb_ = std::make_unique<nn::Embedding>(config.max_columns + 1, h, rng);
  column_type_emb_ = std::make_unique<nn::Embedding>(5, h, rng);  // 0..4
  segment_emb_ = std::make_unique<nn::Embedding>(2, h, rng);
  minhash_proj_ = std::make_unique<nn::Linear>(config.MinHashInputDim(), h, rng);
  numerical_proj_ = std::make_unique<nn::Linear>(config.NumericalInputDim(), h, rng);
  input_norm_ = std::make_unique<nn::LayerNormModule>(h);
  encoder_ = std::make_unique<nn::TransformerEncoder>(config.encoder, rng);
  mlm_transform_ = std::make_unique<nn::Linear>(h, h, rng);
  mlm_norm_ = std::make_unique<nn::LayerNormModule>(h);
  mlm_decoder_ = std::make_unique<nn::Linear>(h, config.vocab_size, rng);
  pooler_ = std::make_unique<nn::Linear>(h, h, rng);
}

nn::Var TabSketchFM::Encode(const EncodedTable& input, bool training,
                            Rng* rng) const {
  const size_t seq = input.size();
  TSFM_CHECK_GT(seq, 0u);

  nn::Var tok = token_emb_->Forward(input.token_ids);
  nn::Var tpos = token_pos_emb_->Forward(input.token_pos);
  nn::Var cpos = column_pos_emb_->Forward(input.column_pos);
  nn::Var ctype = column_type_emb_->Forward(input.column_type);
  nn::Var seg = segment_emb_->Forward(input.segment);

  // Dense sketch tracks: one row per token, projected to hidden width.
  nn::Tensor mh(seq, config_.MinHashInputDim());
  nn::Tensor num(seq, config_.NumericalInputDim());
  for (size_t i = 0; i < seq; ++i) {
    std::copy(input.minhash[i].begin(), input.minhash[i].end(),
              mh.data() + i * mh.cols());
    std::copy(input.numerical[i].begin(), input.numerical[i].end(),
              num.data() + i * num.cols());
  }
  nn::Var mh_emb = minhash_proj_->Forward(nn::MakeLeaf(std::move(mh), false));
  nn::Var num_emb = numerical_proj_->Forward(nn::MakeLeaf(std::move(num), false));

  nn::Var sum = nn::Add(nn::Add(nn::Add(tok, tpos), nn::Add(cpos, ctype)),
                        nn::Add(seg, nn::Add(mh_emb, num_emb)));
  nn::Var normed = input_norm_->Forward(sum);
  normed = nn::Dropout(normed, config_.encoder.dropout, training, rng);
  return encoder_->Forward(normed, training, rng);
}

nn::Var TabSketchFM::MlmLogits(const nn::Var& hidden_states) const {
  nn::Var h = nn::Gelu(mlm_transform_->Forward(hidden_states));
  h = mlm_norm_->Forward(h);
  return mlm_decoder_->Forward(h);
}

nn::Var TabSketchFM::Pool(const nn::Var& hidden_states) const {
  return nn::Tanh(pooler_->Forward(nn::SelectRow(hidden_states, 0)));
}

std::vector<float> TabSketchFM::ProjectMinHash(
    const std::vector<float>& minhash_input) const {
  TSFM_CHECK_EQ(minhash_input.size(), config_.MinHashInputDim());
  nn::Tensor in(1, minhash_input.size());
  std::copy(minhash_input.begin(), minhash_input.end(), in.data());
  nn::Var out = minhash_proj_->Forward(nn::MakeLeaf(std::move(in), false));
  return out->value().flat();
}

std::vector<float> TabSketchFM::ProjectNumerical(
    const std::vector<float>& numerical_input) const {
  TSFM_CHECK_EQ(numerical_input.size(), config_.NumericalInputDim());
  nn::Tensor in(1, numerical_input.size());
  std::copy(numerical_input.begin(), numerical_input.end(), in.data());
  nn::Var out = numerical_proj_->Forward(nn::MakeLeaf(std::move(in), false));
  return out->value().flat();
}

void TabSketchFM::CollectParams(const std::string& prefix,
                                std::vector<nn::NamedParam>* out) const {
  token_emb_->CollectParams(prefix + ".token_emb", out);
  token_pos_emb_->CollectParams(prefix + ".token_pos_emb", out);
  column_pos_emb_->CollectParams(prefix + ".column_pos_emb", out);
  column_type_emb_->CollectParams(prefix + ".column_type_emb", out);
  segment_emb_->CollectParams(prefix + ".segment_emb", out);
  minhash_proj_->CollectParams(prefix + ".minhash_proj", out);
  numerical_proj_->CollectParams(prefix + ".numerical_proj", out);
  input_norm_->CollectParams(prefix + ".input_norm", out);
  encoder_->CollectParams(prefix + ".encoder", out);
  mlm_transform_->CollectParams(prefix + ".mlm_transform", out);
  mlm_norm_->CollectParams(prefix + ".mlm_norm", out);
  mlm_decoder_->CollectParams(prefix + ".mlm_decoder", out);
  pooler_->CollectParams(prefix + ".pooler", out);
}

}  // namespace tsfm::core
