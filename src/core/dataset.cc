#include "core/dataset.h"

namespace tsfm::core {

const char* TaskTypeName(TaskType type) {
  switch (type) {
    case TaskType::kBinaryClassification:
      return "binary-classification";
    case TaskType::kRegression:
      return "regression";
    case TaskType::kMultiLabel:
      return "multi-label";
  }
  return "?";
}

void PairDataset::BuildSketches(const SketchOptions& options) {
  sketches.clear();
  sketches.reserve(tables.size());
  for (auto& table : tables) {
    table.InferTypes();
    sketches.push_back(BuildTableSketch(table, options));
  }
}

}  // namespace tsfm::core
