#include "core/embedder.h"

#include <cmath>

#include "nn/ops.h"

namespace tsfm::core {

std::vector<float> Embedder::TableEmbedding(const TableSketch& sketch) const {
  EncodedTable encoded = input_encoder_->EncodeTable(sketch);
  ApplyAblation(ablation_, &encoded);
  Rng rng(0);
  nn::Var hidden = model_->Encode(encoded, /*training=*/false, &rng);
  nn::Var pooled = model_->Pool(hidden);
  return pooled->value().flat();
}

std::vector<std::vector<float>> Embedder::ColumnEmbeddings(
    const TableSketch& sketch) const {
  std::vector<std::vector<float>> context = ContextualColumnStates(sketch);
  std::vector<std::vector<float>> out;
  out.reserve(context.size());
  for (size_t c = 0; c < sketch.columns.size(); ++c) {
    const ColumnSketch& col = sketch.columns[c];
    // 1-bit MinHash block: cosine of two such blocks estimates the value
    // Jaccard, exactly the signal join/subset search needs.
    std::vector<float> mh_input = col.OneBitMinHashInput();
    std::vector<float> num_input = col.numerical.ToFloats();
    if (!ablation_.use_minhash) std::fill(mh_input.begin(), mh_input.end(), 0.0f);
    if (!ablation_.use_numerical) {
      std::fill(num_input.begin(), num_input.end(), 0.0f);
    }
    std::vector<float> ctx_block = context[c];
    std::vector<float> mh_block = std::move(mh_input);
    std::vector<float> num_block = model_->ProjectNumerical(num_input);
    ZNormalize(&ctx_block);
    ZNormalize(&mh_block);
    ZNormalize(&num_block);
    std::vector<float> emb;
    emb.reserve(ctx_block.size() + mh_block.size() + num_block.size());
    emb.insert(emb.end(), ctx_block.begin(), ctx_block.end());
    emb.insert(emb.end(), mh_block.begin(), mh_block.end());
    emb.insert(emb.end(), num_block.begin(), num_block.end());
    out.push_back(std::move(emb));
  }
  return out;
}

std::vector<std::vector<float>> Embedder::ContextualColumnStates(
    const TableSketch& sketch) const {
  EncodedTable encoded = input_encoder_->EncodeTable(sketch);
  ApplyAblation(ablation_, &encoded);
  Rng rng(0);
  nn::Var hidden = model_->Encode(encoded, /*training=*/false, &rng);
  const nn::Tensor& H = hidden->value();
  const size_t dim = H.cols();

  std::vector<std::vector<float>> out(sketch.columns.size(),
                                      std::vector<float>(dim, 0.0f));
  const auto& spans = encoded.column_spans[0];
  for (size_t c = 0; c < spans.size() && c < out.size(); ++c) {
    auto [start, len] = spans[c];
    if (len == 0) continue;
    for (size_t i = start; i < start + len; ++i) {
      for (size_t j = 0; j < dim; ++j) out[c][j] += H.at(i, j);
    }
    for (size_t j = 0; j < dim; ++j) out[c][j] /= static_cast<float>(len);
  }
  return out;
}

void ZNormalize(std::vector<float>* v) {
  if (v->empty()) return;
  double mean = 0.0;
  for (float x : *v) mean += x;
  mean /= static_cast<double>(v->size());
  double var = 0.0;
  for (float x : *v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v->size());
  double std = std::sqrt(var);
  if (std < 1e-9) return;
  for (auto& x : *v) x = static_cast<float>((x - mean) / std);
}

std::vector<float> NormalizeAndConcat(std::vector<float> a, std::vector<float> b) {
  ZNormalize(&a);
  ZNormalize(&b);
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

}  // namespace tsfm::core
