// Builds the model-input feature sequence from table sketches
// (paper Sec III-B and Fig 1, right panel).
//
// The "input string" is [CLS] <description tokens> [SEP] <col1 name tokens>
// [SEP] <col2 name tokens> [SEP] ... Each token carries six feature tracks:
// token id, within-column position, column position, column type, the
// MinHash vector of its column (content snapshot for description tokens),
// and the numerical sketch of its column (zeros for description tokens).
#ifndef TSFM_CORE_INPUT_ENCODER_H_
#define TSFM_CORE_INPUT_ENCODER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/config.h"
#include "sketch/table_sketch.h"
#include "text/tokenizer.h"

namespace tsfm::core {

/// \brief The fully-featurized input sequence of one table (or table pair).
struct EncodedTable {
  std::vector<int> token_ids;
  std::vector<int> token_pos;     ///< position within the column name (0-based)
  std::vector<int> column_pos;    ///< 0 = description/CLS/SEP, 1..N = columns
  std::vector<int> column_type;   ///< 0 = none, 1..4 = string/int/float/date
  std::vector<int> segment;       ///< 0 = first table, 1 = second (pair input)
  /// Per-token dense features; all rows have fixed widths
  /// (MinHashInputDim / NumericalInputDim).
  std::vector<std::vector<float>> minhash;
  std::vector<std::vector<float>> numerical;
  /// Token span (start, length) of each column's name tokens, per table.
  /// column_spans[0] covers the first table's columns; for pair inputs
  /// column_spans[1] covers the second.
  std::vector<std::vector<std::pair<size_t, size_t>>> column_spans;

  size_t size() const { return token_ids.size(); }
};

/// \brief Sketch-ablation switches (paper Tables III/IV).
///
/// Disabling a sketch zeroes its feature track, which is equivalent to
/// removing that input from the model: the linear projection then
/// contributes only its bias.
struct SketchAblation {
  bool use_minhash = true;    ///< column cell/word MinHash vectors
  bool use_numerical = true;  ///< 16-slot numerical sketches
  bool use_snapshot = true;   ///< table-level content snapshot
};

/// Zeroes the feature tracks disabled by `ablation` in-place.
/// The content snapshot occupies the MinHash track of tokens with
/// column_pos == 0; column MinHashes occupy tokens with column_pos > 0.
void ApplyAblation(const SketchAblation& ablation, EncodedTable* encoded);

/// \brief Turns TableSketch objects into EncodedTable sequences.
class InputEncoder {
 public:
  InputEncoder(const TabSketchFMConfig* config, const text::Tokenizer* tokenizer)
      : config_(config), tokenizer_(tokenizer) {}

  /// Encodes one table: [CLS] desc [SEP] col1 [SEP] col2 ... [SEP].
  EncodedTable EncodeTable(const TableSketch& sketch) const;

  /// Encodes a pair for the cross-encoder: the two single-table sequences
  /// concatenated (the second loses its [CLS]) with segment ids 0/1.
  /// Both halves share the [CLS] of the first — its pooler output is the
  /// pair representation (paper Fig 2b).
  EncodedTable EncodePair(const TableSketch& a, const TableSketch& b) const;

 private:
  // Appends one table's tokens to `out` with the given segment id.
  // `with_cls` controls the leading [CLS].
  void AppendTable(const TableSketch& sketch, int segment_id, bool with_cls,
                   size_t max_len, EncodedTable* out) const;

  const TabSketchFMConfig* config_;
  const text::Tokenizer* tokenizer_;
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_INPUT_ENCODER_H_
