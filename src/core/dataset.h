// Pair datasets for fine-tuning (paper Sec III-D).
#ifndef TSFM_CORE_DATASET_H_
#define TSFM_CORE_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sketch/table_sketch.h"

namespace tsfm::core {

/// The three LakeBench task formulations.
enum class TaskType {
  kBinaryClassification,  ///< output 2, cross-entropy
  kRegression,            ///< output 1, mean-squared error
  kMultiLabel,            ///< output N, BCE-with-logits
};

const char* TaskTypeName(TaskType type);

/// \brief One labelled table pair.
struct PairExample {
  size_t a = 0;  ///< index into the dataset's table list
  size_t b = 0;
  int label = 0;                    ///< binary tasks
  float target = 0.0f;              ///< regression tasks
  std::vector<float> multi_labels;  ///< multi-label tasks (one-hot floats)
};

/// \brief A fine-tuning benchmark: tables + labelled pairs + splits.
struct PairDataset {
  std::string name;
  TaskType task = TaskType::kBinaryClassification;
  size_t num_outputs = 2;  ///< head width N
  std::vector<Table> tables;
  std::vector<TableSketch> sketches;  ///< parallel to `tables`
  std::vector<PairExample> train;
  std::vector<PairExample> val;
  std::vector<PairExample> test;

  /// Builds `sketches` from `tables` (call after generation).
  void BuildSketches(const SketchOptions& options = {});
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_DATASET_H_
