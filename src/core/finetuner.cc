#include "core/finetuner.h"

#include <limits>

#include "nn/optimizer.h"
#include "util/logging.h"

namespace tsfm::core {

Finetuner::Finetuner(CrossEncoder* encoder, const InputEncoder* input_encoder,
                     FinetuneOptions options)
    : encoder_(encoder), input_encoder_(input_encoder), options_(options) {}

EncodedTable Finetuner::EncodePair(const PairDataset& dataset,
                                   const PairExample& ex) const {
  EncodedTable encoded =
      input_encoder_->EncodePair(dataset.sketches[ex.a], dataset.sketches[ex.b]);
  ApplyAblation(options_.ablation, &encoded);
  return encoded;
}

FinetuneResult Finetuner::Train(const PairDataset& dataset) {
  Rng rng(options_.seed);

  std::vector<PairExample> train = dataset.train;
  if (options_.max_train_examples > 0 && train.size() > options_.max_train_examples) {
    rng.Shuffle(&train);
    train.resize(options_.max_train_examples);
  }

  // Encode every pair once; masking does not change across epochs here.
  std::vector<EncodedTable> train_inputs;
  train_inputs.reserve(train.size());
  for (const auto& ex : train) train_inputs.push_back(EncodePair(dataset, ex));
  std::vector<EncodedTable> val_inputs;
  val_inputs.reserve(dataset.val.size());
  for (const auto& ex : dataset.val) val_inputs.push_back(EncodePair(dataset, ex));

  nn::AdamW::Options opt_options;
  opt_options.lr = options_.lr;
  nn::AdamW optimizer(encoder_->Params("ce"), opt_options);

  FinetuneResult result;
  float best_val = std::numeric_limits<float>::max();
  size_t since_best = 0;

  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    optimizer.ZeroGrad();
    double epoch_loss = 0.0;
    size_t in_batch = 0;
    for (size_t idx : order) {
      nn::Var loss =
          encoder_->Loss(train_inputs[idx], train[idx], /*training=*/true, &rng);
      nn::Backward(loss);
      epoch_loss += loss->value()[0];
      if (++in_batch >= options_.batch_size) {
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.Step();
      optimizer.ZeroGrad();
    }

    double val_loss_sum = 0.0;
    for (size_t i = 0; i < val_inputs.size(); ++i) {
      nn::Var loss = encoder_->Loss(val_inputs[i], dataset.val[i],
                                    /*training=*/false, &rng);
      val_loss_sum += loss->value()[0];
    }
    float train_loss =
        train.empty() ? 0.0f : static_cast<float>(epoch_loss / train.size());
    float val_loss = val_inputs.empty()
                         ? train_loss
                         : static_cast<float>(val_loss_sum / val_inputs.size());
    result.train_losses.push_back(train_loss);
    result.val_losses.push_back(val_loss);
    result.epochs_run = epoch + 1;
    if (options_.verbose) {
      TSFM_LOG(Info) << dataset.name << " finetune epoch " << epoch
                     << " train=" << train_loss << " val=" << val_loss;
    }
    if (val_loss < best_val - 1e-5f) {
      best_val = val_loss;
      since_best = 0;
    } else if (++since_best >= options_.patience) {
      break;
    }
  }
  result.best_val_loss = best_val;
  return result;
}

std::vector<std::vector<float>> Finetuner::Predict(
    const PairDataset& dataset, const std::vector<PairExample>& examples) {
  std::vector<std::vector<float>> out;
  out.reserve(examples.size());
  for (const auto& ex : examples) {
    out.push_back(encoder_->Predict(EncodePair(dataset, ex)));
  }
  return out;
}

}  // namespace tsfm::core
