#include "core/pretrainer.h"

#include <limits>

#include "nn/ops.h"
#include "util/logging.h"

namespace tsfm::core {

Pretrainer::Pretrainer(TabSketchFM* model, PretrainOptions options)
    : model_(model), options_(options) {}

float Pretrainer::LossOf(const MlmExample& example, bool training, Rng* rng,
                         bool backward) {
  nn::Var hidden = model_->Encode(example.input, training, rng);
  nn::Var logits = model_->MlmLogits(hidden);
  nn::Var loss =
      nn::CrossEntropyLoss(logits, example.targets, MlmExample::kIgnoreIndex);
  if (backward) nn::Backward(loss);
  return loss->value()[0];
}

float Pretrainer::Evaluate(const std::vector<MlmExample>& examples) {
  Rng rng(options_.seed + 999);
  double total = 0.0;
  size_t count = 0;
  for (const auto& ex : examples) {
    total += LossOf(ex, /*training=*/false, &rng, /*backward=*/false);
    ++count;
  }
  return count > 0 ? static_cast<float>(total / count) : 0.0f;
}

PretrainResult Pretrainer::Train(const std::vector<EncodedTable>& train,
                                 const std::vector<EncodedTable>& val) {
  Rng rng(options_.seed);
  MlmSampler sampler(&model_->config());

  // Validation examples are masked once, so the early-stopping signal is
  // comparable across epochs.
  Rng val_rng(options_.seed + 17);
  std::vector<MlmExample> val_examples;
  for (const auto& table : val) {
    auto exs = sampler.Sample(table, &val_rng);
    val_examples.insert(val_examples.end(), exs.begin(), exs.end());
  }

  nn::AdamW::Options opt_options;
  opt_options.lr = options_.lr;
  nn::AdamW optimizer(model_->Params("tabsketchfm"), opt_options);

  PretrainResult result;
  float best_val = std::numeric_limits<float>::max();
  size_t epochs_since_best = 0;

  // Rough step count for the LR schedule (examples ~ tables * masked cols).
  const size_t approx_examples = train.size() * 3;
  const size_t total_steps =
      options_.epochs * (approx_examples / options_.batch_size + 1);
  nn::LinearWarmupSchedule schedule(
      options_.lr, static_cast<size_t>(options_.warmup_fraction * total_steps),
      total_steps);
  size_t step = 0;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // Fresh masking every epoch.
    std::vector<MlmExample> examples;
    for (const auto& table : train) {
      auto exs = sampler.Sample(table, &rng);
      examples.insert(examples.end(), exs.begin(), exs.end());
    }
    rng.Shuffle(&examples);

    optimizer.ZeroGrad();
    double epoch_loss = 0.0;
    size_t in_batch = 0;
    for (const auto& ex : examples) {
      epoch_loss += LossOf(ex, /*training=*/true, &rng, /*backward=*/true);
      if (++in_batch >= options_.batch_size) {
        optimizer.set_lr(schedule.LrAt(step++));
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.set_lr(schedule.LrAt(step++));
      optimizer.Step();
      optimizer.ZeroGrad();
    }

    float train_loss =
        examples.empty() ? 0.0f : static_cast<float>(epoch_loss / examples.size());
    float val_loss = Evaluate(val_examples);
    result.train_losses.push_back(train_loss);
    result.val_losses.push_back(val_loss);
    result.epochs_run = epoch + 1;
    if (options_.verbose) {
      TSFM_LOG(Info) << "pretrain epoch " << epoch << " train=" << train_loss
                     << " val=" << val_loss;
    }

    if (val_loss < best_val - 1e-5f) {
      best_val = val_loss;
      epochs_since_best = 0;
    } else if (++epochs_since_best >= options_.patience) {
      break;  // paper: patience of 5 epochs
    }
  }
  result.best_val_loss = best_val;
  return result;
}

}  // namespace tsfm::core
