#include "core/cross_encoder.h"

#include <cmath>
#include <unordered_map>

#include "nn/ops.h"
#include "util/logging.h"

namespace tsfm::core {

void CopyParams(const nn::Module& src, const nn::Module& dst) {
  auto src_params = src.Params("m");
  auto dst_params = dst.Params("m");
  TSFM_CHECK_EQ(src_params.size(), dst_params.size());
  std::unordered_map<std::string, nn::Var> by_name;
  for (auto& p : src_params) by_name[p.name] = p.var;
  for (auto& p : dst_params) {
    auto it = by_name.find(p.name);
    TSFM_CHECK(it != by_name.end()) << "missing parameter " << p.name;
    TSFM_CHECK(p.var->value().SameShape(it->second->value()));
    p.var->value() = it->second->value();
  }
}

CrossEncoder::CrossEncoder(const TabSketchFMConfig& config, TaskType task,
                           size_t num_outputs, Rng* rng,
                           const TabSketchFM* pretrained)
    : task_(task),
      dropout_(config.encoder.dropout),
      model_(std::make_unique<TabSketchFM>(config, rng)),
      head_(std::make_unique<nn::Linear>(config.encoder.hidden, num_outputs, rng)) {
  if (pretrained != nullptr) CopyParams(*pretrained, *model_);
}

nn::Var CrossEncoder::Logits(const EncodedTable& pair_input, bool training,
                             Rng* rng) const {
  nn::Var hidden = model_->Encode(pair_input, training, rng);
  nn::Var pooled = model_->Pool(hidden);
  pooled = nn::Dropout(pooled, dropout_, training, rng);
  return head_->Forward(pooled);
}

nn::Var CrossEncoder::Loss(const EncodedTable& pair_input, const PairExample& example,
                           bool training, Rng* rng) const {
  nn::Var logits = Logits(pair_input, training, rng);
  switch (task_) {
    case TaskType::kBinaryClassification:
      return nn::CrossEntropyLoss(logits, {example.label});
    case TaskType::kRegression:
      return nn::MseLoss(logits, {example.target});
    case TaskType::kMultiLabel:
      return nn::BceWithLogitsLoss(logits, example.multi_labels);
  }
  TSFM_CHECK(false) << "unreachable";
  return nn::Var();
}

std::vector<float> CrossEncoder::Predict(const EncodedTable& pair_input) const {
  Rng rng(0);  // unused in eval mode
  nn::Var logits = Logits(pair_input, /*training=*/false, &rng);
  const nn::Tensor& L = logits->value();
  std::vector<float> out;
  switch (task_) {
    case TaskType::kBinaryClassification: {
      // Softmax over the 2 classes; report P(class 1).
      float mx = std::max(L[0], L[1]);
      float e0 = std::exp(L[0] - mx), e1 = std::exp(L[1] - mx);
      out.push_back(e1 / (e0 + e1));
      break;
    }
    case TaskType::kRegression:
      out.push_back(L[0]);
      break;
    case TaskType::kMultiLabel:
      for (size_t i = 0; i < L.size(); ++i) {
        out.push_back(1.0f / (1.0f + std::exp(-L[i])));
      }
      break;
  }
  return out;
}

void CrossEncoder::CollectParams(const std::string& prefix,
                                 std::vector<nn::NamedParam>* out) const {
  model_->CollectParams(prefix + ".model", out);
  head_->CollectParams(prefix + ".head", out);
}

}  // namespace tsfm::core
