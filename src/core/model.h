// The TabSketchFM model: six summed input embeddings feeding a BERT encoder
// (paper Fig 1 right panel, Fig 2a), with an MLM head for pretraining and a
// pooler for downstream heads.
#ifndef TSFM_CORE_MODEL_H_
#define TSFM_CORE_MODEL_H_

#include <memory>

#include "core/config.h"
#include "core/input_encoder.h"
#include "nn/embedding.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/transformer.h"

namespace tsfm::core {

/// \brief Encoder + embedding layers of TabSketchFM.
///
/// Input embedding = token + token-position + column-position + column-type
/// + segment + Linear(MinHash vector) + Linear(numerical sketch), followed
/// by LayerNorm and dropout, then the transformer stack.
class TabSketchFM : public nn::Module {
 public:
  TabSketchFM(const TabSketchFMConfig& config, Rng* rng);

  /// Runs the encoder; returns contextual token states [seq, hidden].
  nn::Var Encode(const EncodedTable& input, bool training, Rng* rng) const;

  /// MLM logits [seq, vocab] from encoder states.
  nn::Var MlmLogits(const nn::Var& hidden_states) const;

  /// BERT pooler: tanh(Linear(h[0])) -> [1, hidden].
  nn::Var Pool(const nn::Var& hidden_states) const;

  /// The learned MinHash input projection of a raw MinHash vector
  /// (paper Sec III-B.5, E_{C||W}); used by the Embedder to expose the
  /// sketch-identity signal at small model scale (see DESIGN.md).
  std::vector<float> ProjectMinHash(const std::vector<float>& minhash_input) const;

  /// The learned numerical-sketch input projection (paper Sec III-B.6).
  std::vector<float> ProjectNumerical(const std::vector<float>& numerical_input) const;

  void CollectParams(const std::string& prefix,
                     std::vector<nn::NamedParam>* out) const override;

  const TabSketchFMConfig& config() const { return config_; }

 private:
  TabSketchFMConfig config_;
  std::unique_ptr<nn::Embedding> token_emb_;
  std::unique_ptr<nn::Embedding> token_pos_emb_;
  std::unique_ptr<nn::Embedding> column_pos_emb_;
  std::unique_ptr<nn::Embedding> column_type_emb_;
  std::unique_ptr<nn::Embedding> segment_emb_;
  std::unique_ptr<nn::Linear> minhash_proj_;    ///< paper Sec III-B.5
  std::unique_ptr<nn::Linear> numerical_proj_;  ///< paper Sec III-B.6
  std::unique_ptr<nn::LayerNormModule> input_norm_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::unique_ptr<nn::Linear> mlm_transform_;
  std::unique_ptr<nn::LayerNormModule> mlm_norm_;
  std::unique_ptr<nn::Linear> mlm_decoder_;
  std::unique_ptr<nn::Linear> pooler_;
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_MODEL_H_
