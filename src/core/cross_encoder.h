// Cross-encoder for table-pair tasks (paper Sec III-D, Fig 2b):
// pair input -> pretrained TabSketchFM -> pooler -> dropout -> linear(N).
#ifndef TSFM_CORE_CROSS_ENCODER_H_
#define TSFM_CORE_CROSS_ENCODER_H_

#include <memory>

#include "core/dataset.h"
#include "core/model.h"

namespace tsfm::core {

/// \brief A task head on top of TabSketchFM.
class CrossEncoder : public nn::Module {
 public:
  /// Builds a fresh model. When `pretrained` is non-null its weights are
  /// copied in (the fine-tuning initialization of Fig 2b).
  CrossEncoder(const TabSketchFMConfig& config, TaskType task, size_t num_outputs,
               Rng* rng, const TabSketchFM* pretrained = nullptr);

  /// Head logits [1, N] for an encoded pair.
  nn::Var Logits(const EncodedTable& pair_input, bool training, Rng* rng) const;

  /// Task loss for one example.
  nn::Var Loss(const EncodedTable& pair_input, const PairExample& example,
               bool training, Rng* rng) const;

  /// Predicted positive-class probability (binary), regression value, or
  /// per-class sigmoid scores (multi-label).
  std::vector<float> Predict(const EncodedTable& pair_input) const;

  void CollectParams(const std::string& prefix,
                     std::vector<nn::NamedParam>* out) const override;

  TabSketchFM* model() { return model_.get(); }
  const TabSketchFM* model() const { return model_.get(); }
  TaskType task() const { return task_; }

 private:
  TaskType task_;
  float dropout_;
  std::unique_ptr<TabSketchFM> model_;
  std::unique_ptr<nn::Linear> head_;
};

/// Copies every parameter of `src` into same-named parameters of `dst`
/// (shapes must match). Parameters present in only one side are an error.
void CopyParams(const nn::Module& src, const nn::Module& dst);

}  // namespace tsfm::core

#endif  // TSFM_CORE_CROSS_ENCODER_H_
