// Fine-tuning loop for cross-encoders (paper Sec III-D, IV).
#ifndef TSFM_CORE_FINETUNER_H_
#define TSFM_CORE_FINETUNER_H_

#include <vector>

#include "core/cross_encoder.h"
#include "core/input_encoder.h"

namespace tsfm::core {

/// Fine-tuning hyper-parameters.
struct FinetuneOptions {
  size_t epochs = 12;
  size_t batch_size = 8;
  float lr = 2e-4f;
  size_t patience = 5;   ///< early stopping on validation loss (paper)
  uint64_t seed = 0;
  size_t max_train_examples = 0;  ///< 0 = use all
  bool verbose = false;
  SketchAblation ablation;  ///< sketch switches for Tables III/IV
};

/// Fine-tuning result.
struct FinetuneResult {
  std::vector<float> train_losses;
  std::vector<float> val_losses;
  size_t epochs_run = 0;
  float best_val_loss = 0.0f;
};

/// \brief Trains a CrossEncoder on a PairDataset.
class Finetuner {
 public:
  Finetuner(CrossEncoder* encoder, const InputEncoder* input_encoder,
            FinetuneOptions options);

  FinetuneResult Train(const PairDataset& dataset);

  /// Predictions for every example in `examples` (see CrossEncoder::Predict).
  std::vector<std::vector<float>> Predict(const PairDataset& dataset,
                                          const std::vector<PairExample>& examples);

 private:
  EncodedTable EncodePair(const PairDataset& dataset, const PairExample& ex) const;

  CrossEncoder* encoder_;
  const InputEncoder* input_encoder_;
  FinetuneOptions options_;
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_FINETUNER_H_
