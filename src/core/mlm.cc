#include "core/mlm.h"

#include "text/vocab.h"
#include "util/logging.h"

namespace tsfm::core {

MlmExample MlmSampler::MaskColumn(const EncodedTable& encoded, size_t column_index,
                                  Rng* rng) const {
  TSFM_CHECK(!encoded.column_spans.empty());
  const auto& spans = encoded.column_spans[0];
  TSFM_CHECK_LT(column_index, spans.size());

  MlmExample example;
  example.input = encoded;
  example.targets.assign(encoded.size(), MlmExample::kIgnoreIndex);

  // Whole-column masking: every name token of the chosen column.
  auto [start, len] = spans[column_index];
  for (size_t i = start; i < start + len; ++i) {
    example.targets[i] = encoded.token_ids[i];
    example.input.token_ids[i] = text::kMaskId;
  }

  // Description tokens (column_pos == 0, excluding CLS/SEP specials) are
  // masked at the MLM probability.
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (encoded.column_pos[i] != 0) continue;
    int id = encoded.token_ids[i];
    if (id == text::kClsId || id == text::kSepId) continue;
    if (rng->Bernoulli(config_->mlm_probability)) {
      example.targets[i] = id;
      example.input.token_ids[i] = text::kMaskId;
    }
  }
  return example;
}

std::vector<MlmExample> MlmSampler::Sample(const EncodedTable& encoded,
                                           Rng* rng) const {
  std::vector<MlmExample> examples;
  if (encoded.column_spans.empty()) return examples;
  const size_t num_cols = encoded.column_spans[0].size();
  if (num_cols == 0) return examples;

  if (num_cols <= config_->max_masked_columns) {
    // Small tables: mask each column one after another (paper Fig 3).
    for (size_t c = 0; c < num_cols; ++c) {
      examples.push_back(MaskColumn(encoded, c, rng));
    }
  } else {
    // Large tables: a random subset, to avoid over-representing them.
    for (size_t c : rng->SampleIndices(num_cols, config_->max_masked_columns)) {
      examples.push_back(MaskColumn(encoded, c, rng));
    }
  }
  return examples;
}

}  // namespace tsfm::core
