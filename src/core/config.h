// TabSketchFM model configuration.
#ifndef TSFM_CORE_CONFIG_H_
#define TSFM_CORE_CONFIG_H_

#include <cstddef>

#include "nn/transformer.h"
#include "sketch/table_sketch.h"

namespace tsfm::core {

/// \brief Hyper-parameters of a TabSketchFM model.
///
/// The paper trains a 12-layer, 768-wide, 118M-parameter model on 4xA100;
/// the defaults here are the laptop-scale equivalent (see DESIGN.md,
/// substitutions). Every structural element — the six summed embedding
/// types, whole-column masking, the MLM head, the cross-encoder head — is
/// identical.
struct TabSketchFMConfig {
  nn::TransformerConfig encoder;   ///< depth/width of the BERT encoder
  size_t vocab_size = 0;           ///< set after building the vocabulary
  size_t max_seq_len = 96;         ///< hard cap on input tokens
  size_t max_token_pos = 8;        ///< positions within one column name
  size_t max_columns = 24;         ///< column-position embedding rows (0 = description)
  size_t num_perm = 32;            ///< MinHash slots; input width is 2x this
  float mlm_probability = 0.15f;   ///< masking rate for description tokens
  size_t max_masked_columns = 5;   ///< whole-column masks per table (paper Fig 3)
  size_t max_name_tokens = 4;      ///< token budget per column name

  /// Width of the per-token MinHash input vector (cell||word signature).
  size_t MinHashInputDim() const { return 2 * num_perm; }

  /// Width of the numerical sketch vector.
  size_t NumericalInputDim() const { return kNumericalSketchDim; }
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_CONFIG_H_
