// Whole-column masking for MLM pretraining (paper Sec III-C, Fig 3).
//
// For each table, up to `max_masked_columns` columns are selected; every
// token of a selected column name becomes [MASK] in one training example.
// Description tokens are additionally masked at the MLM probability.
#ifndef TSFM_CORE_MLM_H_
#define TSFM_CORE_MLM_H_

#include <vector>

#include "core/config.h"
#include "core/input_encoder.h"
#include "util/random.h"

namespace tsfm::core {

/// \brief One MLM training example: masked inputs plus per-token targets.
///
/// targets[i] is the original token id where masked, or kIgnoreIndex
/// elsewhere (those positions contribute no loss).
struct MlmExample {
  EncodedTable input;
  std::vector<int> targets;

  static constexpr int kIgnoreIndex = -100;
};

/// \brief Generates masked examples from encoded tables.
class MlmSampler {
 public:
  explicit MlmSampler(const TabSketchFMConfig* config) : config_(config) {}

  /// Produces the paper's per-table example set: one example per masked
  /// column (all columns when there are <= max_masked_columns, otherwise a
  /// random subset of that size), each with description tokens masked at
  /// mlm_probability.
  std::vector<MlmExample> Sample(const EncodedTable& encoded, Rng* rng) const;

  /// Masks exactly one column span (by index into column_spans[0]);
  /// exposed for tests.
  MlmExample MaskColumn(const EncodedTable& encoded, size_t column_index,
                        Rng* rng) const;

 private:
  const TabSketchFMConfig* config_;
};

}  // namespace tsfm::core

#endif  // TSFM_CORE_MLM_H_
