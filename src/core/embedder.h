// Table and column embeddings from a (fine-tuned) TabSketchFM model, plus
// the SBERT-concatenation variant (paper Sec IV-C).
#ifndef TSFM_CORE_EMBEDDER_H_
#define TSFM_CORE_EMBEDDER_H_

#include <vector>

#include "core/input_encoder.h"
#include "core/model.h"

namespace tsfm::core {

/// \brief Extracts dense embeddings for search indexing.
class Embedder {
 public:
  Embedder(const TabSketchFM* model, const InputEncoder* input_encoder,
           SketchAblation ablation = {})
      : model_(model), input_encoder_(input_encoder), ablation_(ablation) {}

  /// Table embedding: the pooler output of the single-table input.
  std::vector<float> TableEmbedding(const TableSketch& sketch) const;

  /// \brief Contextual column embeddings.
  ///
  /// Each column's embedding is the concatenation of three z-normalized
  /// blocks, all produced by the model:
  ///   1. the mean encoder state over the column's name-token span
  ///      (context: neighbouring columns, description, snapshot),
  ///   2. the learned MinHash input projection E_{C||W} of the column,
  ///   3. the learned numerical-sketch projection.
  /// Blocks 2 and 3 expose the sketch-identity signal directly; at the
  /// paper's 118M-parameter scale the encoder states carry it on their own,
  /// at this repo's CPU scale the shortcut keeps search viable (see
  /// DESIGN.md). Ablation switches zero the corresponding blocks.
  /// Result is parallel to sketch.columns (columns truncated away by the
  /// sequence budget get zero context blocks).
  std::vector<std::vector<float>> ColumnEmbeddings(const TableSketch& sketch) const;

  /// Context-only variant of ColumnEmbeddings (block 1 alone); used by
  /// tests and ablation benches.
  std::vector<std::vector<float>> ContextualColumnStates(
      const TableSketch& sketch) const;

 private:
  const TabSketchFM* model_;
  const InputEncoder* input_encoder_;
  SketchAblation ablation_;
};

/// Z-normalizes `v` in place (zero mean, unit variance across dimensions).
/// No-op on near-constant vectors.
void ZNormalize(std::vector<float>* v);

/// The paper's TabSketchFM-SBERT combination: z-normalize both embeddings
/// so their scales match, then concatenate.
std::vector<float> NormalizeAndConcat(std::vector<float> a, std::vector<float> b);

}  // namespace tsfm::core

#endif  // TSFM_CORE_EMBEDDER_H_
