#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <unordered_map>

namespace tsfm::nn {

namespace {
constexpr uint32_t kMagic = 0x5453464d;  // "TSFM"
}  // namespace

Status SaveCheckpoint(const std::vector<NamedParam>& params, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  uint32_t magic = kMagic;
  uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    uint64_t name_len = p.name.size();
    uint64_t rows = p.var->value().rows();
    uint64_t cols = p.var->value().cols();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p.name.data(), static_cast<std::streamsize>(name_len));
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.var->value().data()),
              static_cast<std::streamsize>(rows * cols * sizeof(float)));
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status LoadCheckpoint(const std::vector<NamedParam>& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kMagic) return Status::ParseError("bad checkpoint magic in " + path);
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (count != params.size()) {
    return Status::InvalidArgument("checkpoint has " + std::to_string(count) +
                                   " tensors, model expects " +
                                   std::to_string(params.size()));
  }
  std::unordered_map<std::string, const NamedParam*> by_name;
  for (const auto& p : params) by_name[p.name] = &p;

  for (uint64_t t = 0; t < count; ++t) {
    uint64_t name_len = 0, rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    auto it = by_name.find(name);
    if (it == by_name.end()) return Status::NotFound("unexpected tensor " + name);
    Tensor& dst = it->second->var->value();
    if (dst.rows() != rows || dst.cols() != cols) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    in.read(reinterpret_cast<char*>(dst.data()),
            static_cast<std::streamsize>(rows * cols * sizeof(float)));
    if (!in) return Status::IoError("truncated checkpoint " + path);
  }
  return Status::OK();
}

}  // namespace tsfm::nn
