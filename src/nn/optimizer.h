// Optimizers and learning-rate schedules.
#ifndef TSFM_NN_OPTIMIZER_H_
#define TSFM_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"

namespace tsfm::nn {

/// \brief AdamW (decoupled weight decay), the optimizer used for BERT.
class AdamW {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.01f;
    float clip_norm = 1.0f;  ///< global gradient-norm clip; <= 0 disables
  };

  AdamW(std::vector<NamedParam> params, Options options);

  /// Applies one update from the accumulated gradients, then does NOT zero
  /// them (call ZeroGrad explicitly so the contract is visible at call
  /// sites).
  void Step();

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }
  size_t step_count() const { return step_; }

 private:
  std::vector<NamedParam> params_;
  Options options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  size_t step_ = 0;
};

/// \brief Linear warmup then linear decay to zero (BERT schedule).
class LinearWarmupSchedule {
 public:
  LinearWarmupSchedule(float peak_lr, size_t warmup_steps, size_t total_steps);

  /// LR for step `step` (0-based).
  float LrAt(size_t step) const;

 private:
  float peak_lr_;
  size_t warmup_steps_;
  size_t total_steps_;
};

}  // namespace tsfm::nn

#endif  // TSFM_NN_OPTIMIZER_H_
