#include "nn/transformer.h"

#include "nn/ops.h"

namespace tsfm::nn {

EncoderLayer::EncoderLayer(const TransformerConfig& config, Rng* rng)
    : dropout_(config.dropout),
      attention_(std::make_unique<MultiHeadAttention>(config.hidden, config.num_heads,
                                                      config.dropout, rng)),
      norm1_(std::make_unique<LayerNormModule>(config.hidden)),
      ffn1_(std::make_unique<Linear>(config.hidden, config.ffn_dim, rng)),
      ffn2_(std::make_unique<Linear>(config.ffn_dim, config.hidden, rng)),
      norm2_(std::make_unique<LayerNormModule>(config.hidden)) {}

Var EncoderLayer::Forward(const Var& x, bool training, Rng* rng) const {
  Var attn = attention_->Forward(x, training, rng);
  attn = Dropout(attn, dropout_, training, rng);
  Var h = norm1_->Forward(Add(x, attn));

  Var ffn = ffn2_->Forward(Gelu(ffn1_->Forward(h)));
  ffn = Dropout(ffn, dropout_, training, rng);
  return norm2_->Forward(Add(h, ffn));
}

void EncoderLayer::CollectParams(const std::string& prefix,
                                 std::vector<NamedParam>* out) const {
  attention_->CollectParams(prefix + ".attn", out);
  norm1_->CollectParams(prefix + ".norm1", out);
  ffn1_->CollectParams(prefix + ".ffn1", out);
  ffn2_->CollectParams(prefix + ".ffn2", out);
  norm2_->CollectParams(prefix + ".norm2", out);
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config, Rng* rng)
    : config_(config) {
  layers_.reserve(config.num_layers);
  for (size_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<EncoderLayer>(config, rng));
  }
}

Var TransformerEncoder::Forward(const Var& x, bool training, Rng* rng) const {
  Var h = x;
  for (const auto& layer : layers_) {
    h = layer->Forward(h, training, rng);
  }
  return h;
}

void TransformerEncoder::CollectParams(const std::string& prefix,
                                       std::vector<NamedParam>* out) const {
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->CollectParams(prefix + ".layer" + std::to_string(i), out);
  }
}

}  // namespace tsfm::nn
