#include "nn/layer_norm.h"

namespace tsfm::nn {

LayerNormModule::LayerNormModule(size_t dim, float eps)
    : gamma_(MakeLeaf(Ones(1, dim), true)),
      beta_(MakeLeaf(Zeros(1, dim), true)),
      eps_(eps) {}

Var LayerNormModule::Forward(const Var& x) const {
  return LayerNorm(x, gamma_, beta_, eps_);
}

void LayerNormModule::CollectParams(const std::string& prefix,
                                    std::vector<NamedParam>* out) const {
  out->push_back({prefix + ".gamma", gamma_});
  out->push_back({prefix + ".beta", beta_});
}

}  // namespace tsfm::nn
