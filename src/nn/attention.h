// Multi-head bidirectional self-attention (BERT-style).
#ifndef TSFM_NN_ATTENTION_H_
#define TSFM_NN_ATTENTION_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace tsfm::nn {

/// \brief Multi-head self-attention over a [seq, hidden] sequence.
///
/// Bidirectional (no causal mask): each token attends to every other, which
/// is what lets TabSketchFM disambiguate a column name like "Age" by the
/// surrounding columns (paper Sec III-B).
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(size_t hidden, size_t num_heads, float dropout, Rng* rng);

  /// x[seq, hidden] -> [seq, hidden].
  /// `training` enables attention dropout; `rng` supplies the masks.
  Var Forward(const Var& x, bool training, Rng* rng) const;

  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>* out) const override;

 private:
  size_t hidden_;
  size_t num_heads_;
  size_t head_dim_;
  float dropout_;
  std::unique_ptr<Linear> wq_, wk_, wv_, wo_;
};

}  // namespace tsfm::nn

#endif  // TSFM_NN_ATTENTION_H_
