// Numerical gradient checking for the autograd implementation.
//
// Lives in the library (not the test tree) so examples and new modules can
// reuse it when extending the op set.
#ifndef TSFM_NN_GRADCHECK_H_
#define TSFM_NN_GRADCHECK_H_

#include <functional>

#include "nn/autograd.h"

namespace tsfm::nn {

/// \brief Compares autograd gradients of `leaf` against central differences.
///
/// `make_loss` must rebuild the forward graph from scratch and return a
/// scalar loss Var each time it is called (it is called 2*N+1 times).
/// Returns the maximum relative error max(|g_a - g_n| / (|g_a| + |g_n| + tol))
/// over all elements of the leaf.
double MaxGradError(const Var& leaf, const std::function<Var()>& make_loss,
                    float epsilon = 1e-3f, float tol = 1e-3f);

}  // namespace tsfm::nn

#endif  // TSFM_NN_GRADCHECK_H_
