#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tsfm::nn {

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}  // namespace

Var MatMul(const Var& a, const Var& b) {
  const Tensor& A = a->value();
  const Tensor& B = b->value();
  TSFM_CHECK_EQ(A.cols(), B.rows());
  const size_t m = A.rows(), k = A.cols(), n = B.cols();
  Tensor C(m, n);
  // ikj order: streams B rows, cache-friendly.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = A.data() + i * k;
    float* crow = C.data() + i * n;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = B.data() + kk * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  auto out = MakeOp(std::move(C), {a, b}, nullptr);
  if (out->requires_grad()) {
    Node* on = out.get();
    Var av = a, bv = b;
    out->set_backward([on, av, bv, m, k, n] {
      const Tensor& dC = on->grad();
      if (av->requires_grad()) {
        // dA = dC * B^T
        Tensor& dA = av->grad();
        const Tensor& B2 = bv->value();
        for (size_t i = 0; i < m; ++i) {
          const float* dcrow = dC.data() + i * n;
          float* darow = dA.data() + i * k;
          for (size_t kk = 0; kk < k; ++kk) {
            const float* brow = B2.data() + kk * n;
            float s = 0.0f;
            for (size_t j = 0; j < n; ++j) s += dcrow[j] * brow[j];
            darow[kk] += s;
          }
        }
      }
      if (bv->requires_grad()) {
        // dB = A^T * dC
        Tensor& dB = bv->grad();
        const Tensor& A2 = av->value();
        for (size_t i = 0; i < m; ++i) {
          const float* arow = A2.data() + i * k;
          const float* dcrow = dC.data() + i * n;
          for (size_t kk = 0; kk < k; ++kk) {
            const float avv = arow[kk];
            if (avv == 0.0f) continue;
            float* dbrow = dB.data() + kk * n;
            for (size_t j = 0; j < n; ++j) dbrow[j] += avv * dcrow[j];
          }
        }
      }
    });
  }
  return out;
}

Var MatMulNT(const Var& a, const Var& b) {
  const Tensor& A = a->value();
  const Tensor& B = b->value();
  TSFM_CHECK_EQ(A.cols(), B.cols());
  const size_t m = A.rows(), k = A.cols(), n = B.rows();
  Tensor C(m, n);
  for (size_t i = 0; i < m; ++i) {
    const float* arow = A.data() + i * k;
    float* crow = C.data() + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = B.data() + j * k;
      float s = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] = s;
    }
  }
  auto out = MakeOp(std::move(C), {a, b}, nullptr);
  if (out->requires_grad()) {
    Node* on = out.get();
    Var av = a, bv = b;
    out->set_backward([on, av, bv, m, k, n] {
      const Tensor& dC = on->grad();
      if (av->requires_grad()) {
        // dA = dC * B
        Tensor& dA = av->grad();
        const Tensor& B2 = bv->value();
        for (size_t i = 0; i < m; ++i) {
          const float* dcrow = dC.data() + i * n;
          float* darow = dA.data() + i * k;
          for (size_t j = 0; j < n; ++j) {
            const float d = dcrow[j];
            if (d == 0.0f) continue;
            const float* brow = B2.data() + j * k;
            for (size_t kk = 0; kk < k; ++kk) darow[kk] += d * brow[kk];
          }
        }
      }
      if (bv->requires_grad()) {
        // dB = dC^T * A
        Tensor& dB = bv->grad();
        const Tensor& A2 = av->value();
        for (size_t i = 0; i < m; ++i) {
          const float* dcrow = dC.data() + i * n;
          const float* arow = A2.data() + i * k;
          for (size_t j = 0; j < n; ++j) {
            const float d = dcrow[j];
            if (d == 0.0f) continue;
            float* dbrow = dB.data() + j * k;
            for (size_t kk = 0; kk < k; ++kk) dbrow[kk] += d * arow[kk];
          }
        }
      }
    });
  }
  return out;
}

Var Add(const Var& a, const Var& b) {
  TSFM_CHECK(a->value().SameShape(b->value()));
  Tensor out = a->value();
  out.Accumulate(b->value());
  auto node = MakeOp(std::move(out), {a, b}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var av = a, bv = b;
    node->set_backward([on, av, bv] {
      if (av->requires_grad()) av->grad().Accumulate(on->grad());
      if (bv->requires_grad()) bv->grad().Accumulate(on->grad());
    });
  }
  return node;
}

Var AddRow(const Var& x, const Var& row) {
  const Tensor& X = x->value();
  const Tensor& R = row->value();
  TSFM_CHECK_EQ(R.rows(), 1u);
  TSFM_CHECK_EQ(R.cols(), X.cols());
  Tensor out = X;
  for (size_t i = 0; i < X.rows(); ++i) {
    float* orow = out.data() + i * X.cols();
    for (size_t j = 0; j < X.cols(); ++j) orow[j] += R[j];
  }
  auto node = MakeOp(std::move(out), {x, row}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x, rv = row;
    node->set_backward([on, xv, rv] {
      const Tensor& d = on->grad();
      if (xv->requires_grad()) xv->grad().Accumulate(d);
      if (rv->requires_grad()) {
        Tensor& dr = rv->grad();
        for (size_t i = 0; i < d.rows(); ++i) {
          const float* drow = d.data() + i * d.cols();
          for (size_t j = 0; j < d.cols(); ++j) dr[j] += drow[j];
        }
      }
    });
  }
  return node;
}

Var Mul(const Var& a, const Var& b) {
  TSFM_CHECK(a->value().SameShape(b->value()));
  Tensor out = a->value();
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b->value()[i];
  auto node = MakeOp(std::move(out), {a, b}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var av = a, bv = b;
    node->set_backward([on, av, bv] {
      const Tensor& d = on->grad();
      if (av->requires_grad()) {
        for (size_t i = 0; i < d.size(); ++i) av->grad()[i] += d[i] * bv->value()[i];
      }
      if (bv->requires_grad()) {
        for (size_t i = 0; i < d.size(); ++i) bv->grad()[i] += d[i] * av->value()[i];
      }
    });
  }
  return node;
}

Var Scale(const Var& x, float s) {
  Tensor out = x->value();
  out.Scale(s);
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    node->set_backward([on, xv, s] {
      const Tensor& d = on->grad();
      for (size_t i = 0; i < d.size(); ++i) xv->grad()[i] += d[i] * s;
    });
  }
  return node;
}

Var Sub(const Var& a, const Var& b) { return Add(a, Scale(b, -1.0f)); }

Var Gelu(const Var& x) {
  const Tensor& X = x->value();
  Tensor out(X.rows(), X.cols());
  for (size_t i = 0; i < X.size(); ++i) {
    float v = X[i];
    float inner = kGeluC * (v + 0.044715f * v * v * v);
    out[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    node->set_backward([on, xv] {
      const Tensor& d = on->grad();
      const Tensor& X2 = xv->value();
      for (size_t i = 0; i < d.size(); ++i) {
        float v = X2[i];
        float inner = kGeluC * (v + 0.044715f * v * v * v);
        float t = std::tanh(inner);
        float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
        float grad = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * dinner;
        xv->grad()[i] += d[i] * grad;
      }
    });
  }
  return node;
}

Var Relu(const Var& x) {
  const Tensor& X = x->value();
  Tensor out(X.rows(), X.cols());
  for (size_t i = 0; i < X.size(); ++i) out[i] = X[i] > 0.0f ? X[i] : 0.0f;
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    node->set_backward([on, xv] {
      const Tensor& d = on->grad();
      const Tensor& X2 = xv->value();
      for (size_t i = 0; i < d.size(); ++i) {
        if (X2[i] > 0.0f) xv->grad()[i] += d[i];
      }
    });
  }
  return node;
}

Var Tanh(const Var& x) {
  const Tensor& X = x->value();
  Tensor out(X.rows(), X.cols());
  for (size_t i = 0; i < X.size(); ++i) out[i] = std::tanh(X[i]);
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    node->set_backward([on, xv] {
      const Tensor& d = on->grad();
      const Tensor& Y = on->value();
      for (size_t i = 0; i < d.size(); ++i) {
        xv->grad()[i] += d[i] * (1.0f - Y[i] * Y[i]);
      }
    });
  }
  return node;
}

Var Softmax(const Var& x) {
  const Tensor& X = x->value();
  Tensor out(X.rows(), X.cols());
  for (size_t i = 0; i < X.rows(); ++i) {
    const float* row = X.data() + i * X.cols();
    float* orow = out.data() + i * X.cols();
    float mx = row[0];
    for (size_t j = 1; j < X.cols(); ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (size_t j = 0; j < X.cols(); ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    for (size_t j = 0; j < X.cols(); ++j) orow[j] /= sum;
  }
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    node->set_backward([on, xv] {
      const Tensor& d = on->grad();
      const Tensor& Y = on->value();
      for (size_t i = 0; i < Y.rows(); ++i) {
        const float* yrow = Y.data() + i * Y.cols();
        const float* drow = d.data() + i * Y.cols();
        float dot = 0.0f;
        for (size_t j = 0; j < Y.cols(); ++j) dot += drow[j] * yrow[j];
        float* grow = xv->grad().data() + i * Y.cols();
        for (size_t j = 0; j < Y.cols(); ++j) {
          grow[j] += yrow[j] * (drow[j] - dot);
        }
      }
    });
  }
  return node;
}

Var LayerNorm(const Var& x, const Var& gamma, const Var& beta, float eps) {
  const Tensor& X = x->value();
  const size_t n = X.cols();
  TSFM_CHECK_EQ(gamma->value().cols(), n);
  TSFM_CHECK_EQ(beta->value().cols(), n);
  Tensor out(X.rows(), n);
  // Cache per-row mean and inverse stddev for backward.
  auto means = std::make_shared<std::vector<float>>(X.rows());
  auto inv_stds = std::make_shared<std::vector<float>>(X.rows());
  for (size_t i = 0; i < X.rows(); ++i) {
    const float* row = X.data() + i * n;
    float mean = 0.0f;
    for (size_t j = 0; j < n; ++j) mean += row[j];
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (size_t j = 0; j < n; ++j) var += (row[j] - mean) * (row[j] - mean);
    var /= static_cast<float>(n);
    float inv = 1.0f / std::sqrt(var + eps);
    (*means)[i] = mean;
    (*inv_stds)[i] = inv;
    float* orow = out.data() + i * n;
    for (size_t j = 0; j < n; ++j) {
      orow[j] = (row[j] - mean) * inv * gamma->value()[j] + beta->value()[j];
    }
  }
  auto node = MakeOp(std::move(out), {x, gamma, beta}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x, gv = gamma, bv = beta;
    node->set_backward([on, xv, gv, bv, means, inv_stds, n] {
      const Tensor& d = on->grad();
      const Tensor& X2 = xv->value();
      for (size_t i = 0; i < X2.rows(); ++i) {
        const float* row = X2.data() + i * n;
        const float* drow = d.data() + i * n;
        const float mean = (*means)[i];
        const float inv = (*inv_stds)[i];
        // xhat_j = (x_j - mean) * inv
        // dgamma_j += d_j * xhat_j ; dbeta_j += d_j
        // dxhat_j = d_j * gamma_j
        // dx = inv * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))
        float sum_dxhat = 0.0f, sum_dxhat_xhat = 0.0f;
        for (size_t j = 0; j < n; ++j) {
          float xhat = (row[j] - mean) * inv;
          float dxhat = drow[j] * gv->value()[j];
          sum_dxhat += dxhat;
          sum_dxhat_xhat += dxhat * xhat;
          if (gv->requires_grad()) gv->grad()[j] += drow[j] * xhat;
          if (bv->requires_grad()) bv->grad()[j] += drow[j];
        }
        if (xv->requires_grad()) {
          const float invn = 1.0f / static_cast<float>(n);
          float* grow = xv->grad().data() + i * n;
          for (size_t j = 0; j < n; ++j) {
            float xhat = (row[j] - mean) * inv;
            float dxhat = drow[j] * gv->value()[j];
            grow[j] += inv * (dxhat - sum_dxhat * invn - xhat * sum_dxhat_xhat * invn);
          }
        }
      }
    });
  }
  return node;
}

Var EmbeddingLookup(const Var& weight, const std::vector<int>& ids) {
  const Tensor& W = weight->value();
  Tensor out(ids.size(), W.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    TSFM_CHECK_GE(ids[i], 0);
    TSFM_CHECK_LT(static_cast<size_t>(ids[i]), W.rows());
    const float* src = W.data() + static_cast<size_t>(ids[i]) * W.cols();
    std::copy(src, src + W.cols(), out.data() + i * W.cols());
  }
  auto node = MakeOp(std::move(out), {weight}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var wv = weight;
    auto ids_copy = std::make_shared<std::vector<int>>(ids);
    node->set_backward([on, wv, ids_copy] {
      const Tensor& d = on->grad();
      Tensor& dW = wv->grad();
      const size_t cols = d.cols();
      for (size_t i = 0; i < ids_copy->size(); ++i) {
        float* dst = dW.data() + static_cast<size_t>((*ids_copy)[i]) * cols;
        const float* src = d.data() + i * cols;
        for (size_t j = 0; j < cols; ++j) dst[j] += src[j];
      }
    });
  }
  return node;
}

Var Dropout(const Var& x, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) return x;
  const Tensor& X = x->value();
  auto mask = std::make_shared<std::vector<float>>(X.size());
  const float keep_scale = 1.0f / (1.0f - p);
  Tensor out(X.rows(), X.cols());
  for (size_t i = 0; i < X.size(); ++i) {
    float m = rng->Bernoulli(p) ? 0.0f : keep_scale;
    (*mask)[i] = m;
    out[i] = X[i] * m;
  }
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    node->set_backward([on, xv, mask] {
      const Tensor& d = on->grad();
      for (size_t i = 0; i < d.size(); ++i) xv->grad()[i] += d[i] * (*mask)[i];
    });
  }
  return node;
}

Var SliceCols(const Var& x, size_t start, size_t len) {
  const Tensor& X = x->value();
  TSFM_CHECK_LE(start + len, X.cols());
  Tensor out(X.rows(), len);
  for (size_t i = 0; i < X.rows(); ++i) {
    const float* src = X.data() + i * X.cols() + start;
    std::copy(src, src + len, out.data() + i * len);
  }
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    node->set_backward([on, xv, start, len] {
      const Tensor& d = on->grad();
      Tensor& dX = xv->grad();
      for (size_t i = 0; i < d.rows(); ++i) {
        float* dst = dX.data() + i * dX.cols() + start;
        const float* src = d.data() + i * len;
        for (size_t j = 0; j < len; ++j) dst[j] += src[j];
      }
    });
  }
  return node;
}

Var ConcatCols(const std::vector<Var>& xs) {
  TSFM_CHECK(!xs.empty());
  const size_t rows = xs[0]->value().rows();
  size_t total_cols = 0;
  for (const auto& x : xs) {
    TSFM_CHECK_EQ(x->value().rows(), rows);
    total_cols += x->value().cols();
  }
  Tensor out(rows, total_cols);
  size_t offset = 0;
  for (const auto& x : xs) {
    const Tensor& X = x->value();
    for (size_t i = 0; i < rows; ++i) {
      std::copy(X.data() + i * X.cols(), X.data() + (i + 1) * X.cols(),
                out.data() + i * total_cols + offset);
    }
    offset += X.cols();
  }
  auto node = MakeOp(std::move(out), xs, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    auto parents = std::make_shared<std::vector<Var>>(xs);
    node->set_backward([on, parents, rows, total_cols] {
      const Tensor& d = on->grad();
      size_t off = 0;
      for (const auto& x : *parents) {
        const size_t cols = x->value().cols();
        if (x->requires_grad()) {
          Tensor& dX = x->grad();
          for (size_t i = 0; i < rows; ++i) {
            const float* src = d.data() + i * total_cols + off;
            float* dst = dX.data() + i * cols;
            for (size_t j = 0; j < cols; ++j) dst[j] += src[j];
          }
        }
        off += cols;
      }
    });
  }
  return node;
}

Var SelectRow(const Var& x, size_t r) {
  const Tensor& X = x->value();
  TSFM_CHECK_LT(r, X.rows());
  Tensor out(1, X.cols());
  std::copy(X.data() + r * X.cols(), X.data() + (r + 1) * X.cols(), out.data());
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    node->set_backward([on, xv, r] {
      const Tensor& d = on->grad();
      float* dst = xv->grad().data() + r * d.cols();
      for (size_t j = 0; j < d.cols(); ++j) dst[j] += d[j];
    });
  }
  return node;
}

Var MeanRows(const Var& x) {
  const Tensor& X = x->value();
  TSFM_CHECK_GT(X.rows(), 0u);
  Tensor out(1, X.cols());
  for (size_t i = 0; i < X.rows(); ++i) {
    const float* row = X.data() + i * X.cols();
    for (size_t j = 0; j < X.cols(); ++j) out[j] += row[j];
  }
  const float inv = 1.0f / static_cast<float>(X.rows());
  out.Scale(inv);
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    node->set_backward([on, xv, inv] {
      const Tensor& d = on->grad();
      Tensor& dX = xv->grad();
      for (size_t i = 0; i < dX.rows(); ++i) {
        float* dst = dX.data() + i * d.cols();
        for (size_t j = 0; j < d.cols(); ++j) dst[j] += d[j] * inv;
      }
    });
  }
  return node;
}

Var MeanAll(const Var& x) {
  const Tensor& X = x->value();
  Tensor out(1, 1);
  out[0] = X.Mean();
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    const float inv = 1.0f / static_cast<float>(X.size());
    node->set_backward([on, xv, inv] {
      const float d = on->grad()[0] * inv;
      Tensor& dX = xv->grad();
      for (size_t i = 0; i < dX.size(); ++i) dX[i] += d;
    });
  }
  return node;
}

Var SumAll(const Var& x) {
  const Tensor& X = x->value();
  Tensor out(1, 1);
  out[0] = X.Sum();
  auto node = MakeOp(std::move(out), {x}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var xv = x;
    node->set_backward([on, xv] {
      const float d = on->grad()[0];
      Tensor& dX = xv->grad();
      for (size_t i = 0; i < dX.size(); ++i) dX[i] += d;
    });
  }
  return node;
}

Var CrossEntropyLoss(const Var& logits, const std::vector<int>& targets,
                     int ignore_index) {
  const Tensor& L = logits->value();
  TSFM_CHECK_EQ(L.rows(), targets.size());
  const size_t C = L.cols();
  // Softmax probabilities cached for the backward pass.
  auto probs = std::make_shared<Tensor>(L.rows(), C);
  size_t active = 0;
  double loss_sum = 0.0;
  for (size_t i = 0; i < L.rows(); ++i) {
    const float* row = L.data() + i * C;
    float* prow = probs->data() + i * C;
    float mx = row[0];
    for (size_t j = 1; j < C; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (size_t j = 0; j < C; ++j) {
      prow[j] = std::exp(row[j] - mx);
      sum += prow[j];
    }
    for (size_t j = 0; j < C; ++j) prow[j] /= sum;
    if (targets[i] == ignore_index) continue;
    TSFM_CHECK_GE(targets[i], 0);
    TSFM_CHECK_LT(static_cast<size_t>(targets[i]), C);
    ++active;
    loss_sum += -std::log(std::max(prow[targets[i]], 1e-12f));
  }
  Tensor out(1, 1);
  out[0] = active > 0 ? static_cast<float>(loss_sum / active) : 0.0f;
  auto node = MakeOp(std::move(out), {logits}, nullptr);
  if (node->requires_grad() && active > 0) {
    Node* on = node.get();
    Var lv = logits;
    auto tgt = std::make_shared<std::vector<int>>(targets);
    const float inv = 1.0f / static_cast<float>(active);
    node->set_backward([on, lv, tgt, probs, inv, ignore_index, C] {
      const float d = on->grad()[0];
      Tensor& dL = lv->grad();
      for (size_t i = 0; i < dL.rows(); ++i) {
        if ((*tgt)[i] == ignore_index) continue;
        const float* prow = probs->data() + i * C;
        float* drow = dL.data() + i * C;
        for (size_t j = 0; j < C; ++j) {
          float g = prow[j];
          if (j == static_cast<size_t>((*tgt)[i])) g -= 1.0f;
          drow[j] += d * g * inv;
        }
      }
    });
  }
  return node;
}

Var MseLoss(const Var& pred, const std::vector<float>& targets) {
  const Tensor& P = pred->value();
  TSFM_CHECK_EQ(P.size(), targets.size());
  double sum = 0.0;
  for (size_t i = 0; i < P.size(); ++i) {
    double diff = P[i] - targets[i];
    sum += diff * diff;
  }
  Tensor out(1, 1);
  out[0] = static_cast<float>(sum / static_cast<double>(P.size()));
  auto node = MakeOp(std::move(out), {pred}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var pv = pred;
    auto tgt = std::make_shared<std::vector<float>>(targets);
    const float inv = 2.0f / static_cast<float>(P.size());
    node->set_backward([on, pv, tgt, inv] {
      const float d = on->grad()[0];
      Tensor& dP = pv->grad();
      for (size_t i = 0; i < dP.size(); ++i) {
        dP[i] += d * inv * (pv->value()[i] - (*tgt)[i]);
      }
    });
  }
  return node;
}

Var BceWithLogitsLoss(const Var& logits, const std::vector<float>& targets) {
  const Tensor& L = logits->value();
  TSFM_CHECK_EQ(L.size(), targets.size());
  double sum = 0.0;
  for (size_t i = 0; i < L.size(); ++i) {
    // Stable: max(x,0) - x*y + log(1 + exp(-|x|))
    float x = L[i], y = targets[i];
    sum += std::max(x, 0.0f) - x * y + std::log1p(std::exp(-std::fabs(x)));
  }
  Tensor out(1, 1);
  out[0] = static_cast<float>(sum / static_cast<double>(L.size()));
  auto node = MakeOp(std::move(out), {logits}, nullptr);
  if (node->requires_grad()) {
    Node* on = node.get();
    Var lv = logits;
    auto tgt = std::make_shared<std::vector<float>>(targets);
    const float inv = 1.0f / static_cast<float>(L.size());
    node->set_backward([on, lv, tgt, inv] {
      const float d = on->grad()[0];
      Tensor& dL = lv->grad();
      for (size_t i = 0; i < dL.size(); ++i) {
        float x = lv->value()[i];
        float sig = 1.0f / (1.0f + std::exp(-x));
        dL[i] += d * inv * (sig - (*tgt)[i]);
      }
    });
  }
  return node;
}

}  // namespace tsfm::nn
