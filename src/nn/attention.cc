#include "nn/attention.h"

#include <cmath>

#include "nn/ops.h"
#include "util/logging.h"

namespace tsfm::nn {

MultiHeadAttention::MultiHeadAttention(size_t hidden, size_t num_heads, float dropout,
                                       Rng* rng)
    : hidden_(hidden),
      num_heads_(num_heads),
      head_dim_(hidden / num_heads),
      dropout_(dropout),
      wq_(std::make_unique<Linear>(hidden, hidden, rng)),
      wk_(std::make_unique<Linear>(hidden, hidden, rng)),
      wv_(std::make_unique<Linear>(hidden, hidden, rng)),
      wo_(std::make_unique<Linear>(hidden, hidden, rng)) {
  TSFM_CHECK_EQ(head_dim_ * num_heads_, hidden_);
}

Var MultiHeadAttention::Forward(const Var& x, bool training, Rng* rng) const {
  Var q = wq_->Forward(x);
  Var k = wk_->Forward(x);
  Var v = wv_->Forward(x);

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Var> head_outputs;
  head_outputs.reserve(num_heads_);
  for (size_t h = 0; h < num_heads_; ++h) {
    Var qh = SliceCols(q, h * head_dim_, head_dim_);
    Var kh = SliceCols(k, h * head_dim_, head_dim_);
    Var vh = SliceCols(v, h * head_dim_, head_dim_);
    Var scores = Scale(MatMulNT(qh, kh), scale);  // [seq, seq]
    Var attn = Softmax(scores);
    attn = Dropout(attn, dropout_, training, rng);
    head_outputs.push_back(MatMul(attn, vh));  // [seq, head_dim]
  }
  Var concat = num_heads_ == 1 ? head_outputs[0] : ConcatCols(head_outputs);
  return wo_->Forward(concat);
}

void MultiHeadAttention::CollectParams(const std::string& prefix,
                                       std::vector<NamedParam>* out) const {
  wq_->CollectParams(prefix + ".wq", out);
  wk_->CollectParams(prefix + ".wk", out);
  wv_->CollectParams(prefix + ".wv", out);
  wo_->CollectParams(prefix + ".wo", out);
}

}  // namespace tsfm::nn
