// Dense 2-D float tensor.
//
// The whole model operates on matrices: a token sequence is [seq, hidden],
// a weight is [in, out], a scalar loss is [1, 1]. Keeping the tensor 2-D
// makes every op's shape contract explicit and easy to check.
#ifndef TSFM_NN_TENSOR_H_
#define TSFM_NN_TENSOR_H_

#include <cstddef>
#include <string>
#include <vector>

namespace tsfm::nn {

/// \brief Row-major 2-D float matrix.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Tensor(size_t rows, size_t cols, std::vector<float> data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  /// Sets every element to `v`.
  void Fill(float v);

  /// Element-wise accumulate: this += other (same shape required).
  void Accumulate(const Tensor& other);

  /// Scales every element by `s`.
  void Scale(float s);

  /// Sum of all elements.
  float Sum() const;

  /// Mean of all elements (0 for an empty tensor).
  float Mean() const;

  /// L2 norm of the flattened tensor.
  float Norm() const;

  /// Shape equality.
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// "[RxC]" debug string.
  std::string ShapeString() const;

  /// The underlying flat vector (row-major).
  const std::vector<float>& flat() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace tsfm::nn

#endif  // TSFM_NN_TENSOR_H_
