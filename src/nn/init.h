// Weight initialization schemes.
#ifndef TSFM_NN_INIT_H_
#define TSFM_NN_INIT_H_

#include "nn/tensor.h"
#include "util/random.h"

namespace tsfm::nn {

/// Xavier/Glorot uniform: U(-b, b) with b = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(size_t rows, size_t cols, Rng* rng);

/// Truncated-normal-ish init used by BERT: N(0, 0.02), clipped to 2 sigma.
Tensor BertNormal(size_t rows, size_t cols, Rng* rng, float stddev = 0.02f);

/// All zeros.
Tensor Zeros(size_t rows, size_t cols);

/// All ones.
Tensor Ones(size_t rows, size_t cols);

}  // namespace tsfm::nn

#endif  // TSFM_NN_INIT_H_
