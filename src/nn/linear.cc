#include "nn/linear.h"

namespace tsfm::nn {

Linear::Linear(size_t in_features, size_t out_features, Rng* rng)
    : in_(in_features),
      out_(out_features),
      weight_(MakeLeaf(XavierUniform(in_features, out_features, rng), true)),
      bias_(MakeLeaf(Zeros(1, out_features), true)) {}

Var Linear::Forward(const Var& x) const { return AddRow(MatMul(x, weight_), bias_); }

void Linear::CollectParams(const std::string& prefix,
                           std::vector<NamedParam>* out) const {
  out->push_back({prefix + ".weight", weight_});
  out->push_back({prefix + ".bias", bias_});
}

}  // namespace tsfm::nn
