// Binary save/load of named parameter sets ("checkpoints").
#ifndef TSFM_NN_SERIALIZE_H_
#define TSFM_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace tsfm::nn {

/// Writes `params` to `path` in a simple tagged binary format
/// (magic, count, then per-tensor: name, rows, cols, float data).
Status SaveCheckpoint(const std::vector<NamedParam>& params, const std::string& path);

/// Loads a checkpoint into `params` in-place. Every named tensor in the file
/// must exist in `params` with matching shape (and vice versa).
Status LoadCheckpoint(const std::vector<NamedParam>& params, const std::string& path);

}  // namespace tsfm::nn

#endif  // TSFM_NN_SERIALIZE_H_
