// Transformer encoder stack (post-norm BERT layout).
#ifndef TSFM_NN_TRANSFORMER_H_
#define TSFM_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace tsfm::nn {

/// Encoder hyper-parameters.
struct TransformerConfig {
  size_t hidden = 64;         ///< model width
  size_t num_layers = 2;      ///< encoder depth
  size_t num_heads = 2;       ///< attention heads
  size_t ffn_dim = 128;       ///< feed-forward inner width
  float dropout = 0.1f;       ///< dropout probability
};

/// \brief One encoder block: attention + FFN, each with residual + LayerNorm.
class EncoderLayer : public Module {
 public:
  EncoderLayer(const TransformerConfig& config, Rng* rng);

  Var Forward(const Var& x, bool training, Rng* rng) const;

  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>* out) const override;

 private:
  float dropout_;
  std::unique_ptr<MultiHeadAttention> attention_;
  std::unique_ptr<LayerNormModule> norm1_;
  std::unique_ptr<Linear> ffn1_;
  std::unique_ptr<Linear> ffn2_;
  std::unique_ptr<LayerNormModule> norm2_;
};

/// \brief Stack of encoder layers.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const TransformerConfig& config, Rng* rng);

  /// x[seq, hidden] -> [seq, hidden].
  Var Forward(const Var& x, bool training, Rng* rng) const;

  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>* out) const override;

  const TransformerConfig& config() const { return config_; }

 private:
  TransformerConfig config_;
  std::vector<std::unique_ptr<EncoderLayer>> layers_;
};

}  // namespace tsfm::nn

#endif  // TSFM_NN_TRANSFORMER_H_
