// Layer normalization module with learnable gain and bias.
#ifndef TSFM_NN_LAYER_NORM_H_
#define TSFM_NN_LAYER_NORM_H_

#include "nn/init.h"
#include "nn/module.h"
#include "nn/ops.h"

namespace tsfm::nn {

/// \brief Row-wise layer norm over feature dimension `dim`.
class LayerNormModule : public Module {
 public:
  explicit LayerNormModule(size_t dim, float eps = 1e-5f);

  Var Forward(const Var& x) const;

  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>* out) const override;

 private:
  Var gamma_;
  Var beta_;
  float eps_;
};

}  // namespace tsfm::nn

#endif  // TSFM_NN_LAYER_NORM_H_
