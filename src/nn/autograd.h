// Tape-based reverse-mode automatic differentiation.
//
// Every op produces a Var: a shared node holding the value, a grad buffer,
// links to its parents and a closure that pushes its output gradient back to
// them. Backward() topologically sorts the graph from the loss and runs the
// closures in reverse order. Parameters are leaf Vars with requires_grad;
// they survive across steps while intermediate nodes free themselves when
// the loss Var goes out of scope.
#ifndef TSFM_NN_AUTOGRAD_H_
#define TSFM_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace tsfm::nn {

class Node;

/// Shared handle to a graph node. Copy = alias.
using Var = std::shared_ptr<Node>;

/// \brief One node of the autodiff graph.
class Node {
 public:
  Node(Tensor value, bool requires_grad)
      : value_(std::move(value)), requires_grad_(requires_grad) {
    if (requires_grad_) grad_ = Tensor(value_.rows(), value_.cols());
  }

  const Tensor& value() const { return value_; }
  Tensor& value() { return value_; }
  Tensor& grad() { return grad_; }
  const Tensor& grad() const { return grad_; }
  bool requires_grad() const { return requires_grad_; }

  /// Zeroes the accumulated gradient.
  void ZeroGrad() { grad_.Fill(0.0f); }

  const std::vector<Var>& parents() const { return parents_; }
  void set_parents(std::vector<Var> parents) { parents_ = std::move(parents); }
  void set_backward(std::function<void()> fn) { backward_fn_ = std::move(fn); }
  const std::function<void()>& backward_fn() const { return backward_fn_; }

 private:
  Tensor value_;
  Tensor grad_;
  bool requires_grad_;
  std::vector<Var> parents_;
  std::function<void()> backward_fn_;
};

/// Creates a leaf variable (no parents). Parameters use requires_grad=true;
/// constant inputs use false.
Var MakeLeaf(Tensor value, bool requires_grad);

/// Creates an interior node whose gradient flows to `parents` via `backward`.
/// The node requires grad iff any parent does; `backward` is only invoked in
/// that case.
Var MakeOp(Tensor value, std::vector<Var> parents, std::function<void()> backward);

/// \brief Runs reverse-mode autodiff from `loss` (must be [1x1]).
///
/// Seeds d(loss)/d(loss) = 1 and propagates to every reachable node with
/// requires_grad. Gradients accumulate — call ZeroGrad on parameters between
/// steps.
void Backward(const Var& loss);

}  // namespace tsfm::nn

#endif  // TSFM_NN_AUTOGRAD_H_
