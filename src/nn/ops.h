// Differentiable operations over Vars.
//
// Every function builds the forward value eagerly and registers a backward
// closure on the tape. Shape contracts are checked with TSFM_CHECK — a shape
// bug aborts instead of silently corrupting training.
#ifndef TSFM_NN_OPS_H_
#define TSFM_NN_OPS_H_

#include <vector>

#include "nn/autograd.h"
#include "util/random.h"

namespace tsfm::nn {

/// C[m,n] = A[m,k] * B[k,n].
Var MatMul(const Var& a, const Var& b);

/// C[m,n] = A[m,k] * B[n,k]^T  (matmul with transposed right operand;
/// used for attention scores Q K^T without a transpose op).
Var MatMulNT(const Var& a, const Var& b);

/// Element-wise sum; shapes must match.
Var Add(const Var& a, const Var& b);

/// Adds a [1,n] row vector to every row of X[m,n] (bias add).
Var AddRow(const Var& x, const Var& row);

/// Element-wise product; shapes must match.
Var Mul(const Var& a, const Var& b);

/// x * s for a compile-time-constant scalar.
Var Scale(const Var& x, float s);

/// a - b (element-wise).
Var Sub(const Var& a, const Var& b);

/// GELU activation (tanh approximation, as in BERT).
Var Gelu(const Var& x);

/// ReLU activation.
Var Relu(const Var& x);

/// tanh activation (BERT pooler uses it).
Var Tanh(const Var& x);

/// Row-wise softmax of X[m,n].
Var Softmax(const Var& x);

/// Layer normalization over each row with learnable gain/bias [1,n].
Var LayerNorm(const Var& x, const Var& gamma, const Var& beta, float eps = 1e-5f);

/// Gathers rows of `weight`[V,d] by token id -> [ids.size(), d].
/// Ids must be in [0, V).
Var EmbeddingLookup(const Var& weight, const std::vector<int>& ids);

/// Inverted dropout. Identity when !training or p == 0.
Var Dropout(const Var& x, float p, bool training, Rng* rng);

/// Columns [start, start+len) of X.
Var SliceCols(const Var& x, size_t start, size_t len);

/// Concatenates tensors with equal row counts along columns.
Var ConcatCols(const std::vector<Var>& xs);

/// Selects a single row r of X -> [1, n] (e.g. the CLS token).
Var SelectRow(const Var& x, size_t r);

/// Mean over rows -> [1, n] (mean pooling).
Var MeanRows(const Var& x);

/// Mean of all elements -> [1,1].
Var MeanAll(const Var& x);

/// Sum of all elements -> [1,1].
Var SumAll(const Var& x);

/// \brief Mean cross-entropy between logits[m,C] and integer targets.
///
/// targets[i] == ignore_index rows contribute nothing (used for unmasked
/// MLM positions). Returns [1,1]. Numerically stable (log-sum-exp).
Var CrossEntropyLoss(const Var& logits, const std::vector<int>& targets,
                     int ignore_index = -100);

/// Mean squared error between pred[m,n] and constant targets (same shape,
/// flattened row-major). Returns [1,1].
Var MseLoss(const Var& pred, const std::vector<float>& targets);

/// Mean binary cross-entropy with logits; targets in [0,1], flattened.
/// Returns [1,1].
Var BceWithLogitsLoss(const Var& logits, const std::vector<float>& targets);

}  // namespace tsfm::nn

#endif  // TSFM_NN_OPS_H_
