#include "nn/init.h"

#include <algorithm>
#include <cmath>

namespace tsfm::nn {

Tensor XavierUniform(size_t rows, size_t cols, Rng* rng) {
  Tensor t(rows, cols);
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->UniformDouble(-bound, bound));
  }
  return t;
}

Tensor BertNormal(size_t rows, size_t cols, Rng* rng, float stddev) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    float v = static_cast<float>(rng->Normal(0.0, stddev));
    t[i] = std::clamp(v, -2.0f * stddev, 2.0f * stddev);
  }
  return t;
}

Tensor Zeros(size_t rows, size_t cols) { return Tensor(rows, cols, 0.0f); }

Tensor Ones(size_t rows, size_t cols) { return Tensor(rows, cols, 1.0f); }

}  // namespace tsfm::nn
