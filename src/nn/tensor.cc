#include "nn/tensor.h"

#include <cmath>

#include "util/logging.h"

namespace tsfm::nn {

Tensor::Tensor(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  TSFM_CHECK_EQ(rows_ * cols_, data_.size());
}

void Tensor::Fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::Accumulate(const Tensor& other) {
  TSFM_CHECK(SameShape(other)) << ShapeString() << " vs " << other.ShapeString();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Scale(float s) {
  for (auto& x : data_) x *= s;
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  if (data_.empty()) return 0.0f;
  return Sum() / static_cast<float>(data_.size());
}

float Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

std::string Tensor::ShapeString() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

}  // namespace tsfm::nn
