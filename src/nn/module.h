// Module base: a named collection of trainable parameters.
#ifndef TSFM_NN_MODULE_H_
#define TSFM_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/autograd.h"

namespace tsfm::nn {

/// A named parameter handle, used by optimizers and serialization.
struct NamedParam {
  std::string name;
  Var var;
};

/// \brief Base class for layers that own parameters.
///
/// Subclasses register parameters in their constructor; CollectParams
/// gathers the flat list with hierarchical dot-names.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends this module's parameters to `out`, prefixing names with
  /// `prefix` (e.g. "encoder.layer0.attn.wq").
  virtual void CollectParams(const std::string& prefix,
                             std::vector<NamedParam>* out) const = 0;

  /// Convenience: the flat parameter list.
  std::vector<NamedParam> Params(const std::string& prefix = "") const {
    std::vector<NamedParam> out;
    CollectParams(prefix, &out);
    return out;
  }

  /// Total scalar parameter count.
  size_t NumParams() const;

  /// Zeroes gradients of every parameter.
  void ZeroGrad() const;
};

}  // namespace tsfm::nn

#endif  // TSFM_NN_MODULE_H_
