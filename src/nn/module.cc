#include "nn/module.h"

namespace tsfm::nn {

size_t Module::NumParams() const {
  size_t n = 0;
  for (const auto& p : Params()) n += p.var->value().size();
  return n;
}

void Module::ZeroGrad() const {
  for (const auto& p : Params()) p.var->ZeroGrad();
}

}  // namespace tsfm::nn
