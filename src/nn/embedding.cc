#include "nn/embedding.h"

namespace tsfm::nn {

Embedding::Embedding(size_t num_embeddings, size_t dim, Rng* rng)
    : num_(num_embeddings),
      dim_(dim),
      weight_(MakeLeaf(BertNormal(num_embeddings, dim, rng), true)) {}

Var Embedding::Forward(const std::vector<int>& ids) const {
  return EmbeddingLookup(weight_, ids);
}

void Embedding::CollectParams(const std::string& prefix,
                              std::vector<NamedParam>* out) const {
  out->push_back({prefix + ".weight", weight_});
}

}  // namespace tsfm::nn
