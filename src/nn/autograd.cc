#include "nn/autograd.h"

#include <unordered_set>

#include "util/logging.h"

namespace tsfm::nn {

Var MakeLeaf(Tensor value, bool requires_grad) {
  return std::make_shared<Node>(std::move(value), requires_grad);
}

Var MakeOp(Tensor value, std::vector<Var> parents, std::function<void()> backward) {
  bool needs = false;
  for (const auto& p : parents) {
    if (p->requires_grad()) {
      needs = true;
      break;
    }
  }
  auto node = std::make_shared<Node>(std::move(value), needs);
  if (needs) {
    node->set_parents(std::move(parents));
    node->set_backward(std::move(backward));
  }
  return node;
}

namespace {

// Iterative post-order DFS producing a topological order (parents before
// children in `order` reversed).
void TopoSort(const Var& root, std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    const auto& parents = node->parents();
    if (idx < parents.size()) {
      Node* parent = parents[idx].get();
      ++idx;
      if (parent->requires_grad() && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& loss) {
  TSFM_CHECK(loss->requires_grad());
  TSFM_CHECK_EQ(loss->value().size(), 1u);
  loss->grad().Fill(1.0f);

  std::vector<Node*> order;
  TopoSort(loss, &order);
  // Post-order puts dependencies first; iterate from the root backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn()) node->backward_fn()();
  }
}

}  // namespace tsfm::nn
