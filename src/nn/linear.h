// Fully-connected layer: y = x W + b.
#ifndef TSFM_NN_LINEAR_H_
#define TSFM_NN_LINEAR_H_

#include "nn/init.h"
#include "nn/module.h"
#include "nn/ops.h"

namespace tsfm::nn {

/// \brief Affine layer with weight [in, out] and bias [1, out].
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng);

  /// x[m, in] -> [m, out].
  Var Forward(const Var& x) const;

  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>* out) const override;

  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }
  size_t in_features() const { return in_; }
  size_t out_features() const { return out_; }

 private:
  size_t in_;
  size_t out_;
  Var weight_;
  Var bias_;
};

}  // namespace tsfm::nn

#endif  // TSFM_NN_LINEAR_H_
