#include "nn/optimizer.h"

#include <cmath>

namespace tsfm::nn {

AdamW::AdamW(std::vector<NamedParam> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.var->value().rows(), p.var->value().cols());
    v_.emplace_back(p.var->value().rows(), p.var->value().cols());
  }
}

void AdamW::Step() {
  ++step_;
  // Optional global gradient clipping.
  float scale = 1.0f;
  if (options_.clip_norm > 0.0f) {
    double total = 0.0;
    for (const auto& p : params_) {
      float n = p.var->grad().Norm();
      total += static_cast<double>(n) * n;
    }
    float norm = static_cast<float>(std::sqrt(total));
    if (norm > options_.clip_norm) scale = options_.clip_norm / (norm + 1e-12f);
  }

  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& w = params_[pi].var->value();
    const Tensor& g = params_[pi].var->grad();
    Tensor& m = m_[pi];
    Tensor& v = v_[pi];
    for (size_t i = 0; i < w.size(); ++i) {
      float grad = g[i] * scale;
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * grad;
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * grad * grad;
      float mhat = m[i] / bc1;
      float vhat = v[i] / bc2;
      w[i] -= options_.lr * (mhat / (std::sqrt(vhat) + options_.eps) +
                             options_.weight_decay * w[i]);
    }
  }
}

void AdamW::ZeroGrad() {
  for (const auto& p : params_) p.var->ZeroGrad();
}

LinearWarmupSchedule::LinearWarmupSchedule(float peak_lr, size_t warmup_steps,
                                           size_t total_steps)
    : peak_lr_(peak_lr), warmup_steps_(warmup_steps), total_steps_(total_steps) {}

float LinearWarmupSchedule::LrAt(size_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return peak_lr_ * static_cast<float>(step + 1) / static_cast<float>(warmup_steps_);
  }
  if (total_steps_ <= warmup_steps_) return peak_lr_;
  float frac = static_cast<float>(step - warmup_steps_) /
               static_cast<float>(total_steps_ - warmup_steps_);
  if (frac > 1.0f) frac = 1.0f;
  return peak_lr_ * (1.0f - frac);
}

}  // namespace tsfm::nn
