// Embedding table module: id -> dense row.
#ifndef TSFM_NN_EMBEDDING_H_
#define TSFM_NN_EMBEDDING_H_

#include <vector>

#include "nn/init.h"
#include "nn/module.h"
#include "nn/ops.h"

namespace tsfm::nn {

/// \brief Lookup table [num_embeddings, dim].
class Embedding : public Module {
 public:
  Embedding(size_t num_embeddings, size_t dim, Rng* rng);

  /// ids -> [ids.size(), dim].
  Var Forward(const std::vector<int>& ids) const;

  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>* out) const override;

  const Var& weight() const { return weight_; }
  size_t num_embeddings() const { return num_; }
  size_t dim() const { return dim_; }

 private:
  size_t num_;
  size_t dim_;
  Var weight_;
};

}  // namespace tsfm::nn

#endif  // TSFM_NN_EMBEDDING_H_
