#include "nn/gradcheck.h"

#include <cmath>

namespace tsfm::nn {

double MaxGradError(const Var& leaf, const std::function<Var()>& make_loss,
                    float epsilon, float tol) {
  // Analytic gradients.
  leaf->ZeroGrad();
  Var loss = make_loss();
  Backward(loss);
  Tensor analytic = leaf->grad();

  double max_err = 0.0;
  Tensor& w = leaf->value();
  for (size_t i = 0; i < w.size(); ++i) {
    const float orig = w[i];
    w[i] = orig + epsilon;
    float up = make_loss()->value()[0];
    w[i] = orig - epsilon;
    float down = make_loss()->value()[0];
    w[i] = orig;
    double numeric = (static_cast<double>(up) - down) / (2.0 * epsilon);
    double a = analytic[i];
    double err = std::fabs(a - numeric) / (std::fabs(a) + std::fabs(numeric) + tol);
    if (err > max_err) max_err = err;
  }
  return max_err;
}

}  // namespace tsfm::nn
