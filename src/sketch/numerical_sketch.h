// The paper's numerical sketch (Sec III-A):
//   [unique count, NaN count, cell width, p10..p90, mean, std, min, max]
// with counts normalized by row count.
#ifndef TSFM_SKETCH_NUMERICAL_SKETCH_H_
#define TSFM_SKETCH_NUMERICAL_SKETCH_H_

#include <array>
#include <vector>

#include "table/stats.h"
#include "table/table.h"

namespace tsfm {

/// Number of slots in a numerical sketch vector.
inline constexpr size_t kNumericalSketchDim = 16;

/// \brief The 16-slot numerical sketch vector of one column.
///
/// Slot layout (paper order):
///   0 unique_fraction, 1 nan_fraction, 2 avg cell width,
///   3..11 p10..p90, 12 mean, 13 stddev, 14 min, 15 max.
/// For string columns the numeric slots (3..15) are zero.
struct NumericalSketch {
  std::array<float, kNumericalSketchDim> values = {};

  /// Raw vector for feeding the linear embedding layer.
  std::vector<float> ToFloats() const {
    return std::vector<float>(values.begin(), values.end());
  }
};

/// Builds the numerical sketch of `column` from its statistics.
NumericalSketch MakeNumericalSketch(const Column& column);

/// \brief Squashes unbounded numeric stats into a stable range.
///
/// Raw means/extremes can span many orders of magnitude across a lake, which
/// destabilizes the linear embedding. We apply signed log1p compression:
/// sign(x) * log1p(|x|). Fractions and widths pass through it too for
/// uniformity; the transform is monotone so ordering information survives.
float CompressStat(double v);

}  // namespace tsfm

#endif  // TSFM_SKETCH_NUMERICAL_SKETCH_H_
