// SimHash (Charikar 2002) over dense float vectors.
//
// Used by the WarpGate baseline, which indexes column embeddings with
// SimHash LSH for approximate cosine-similarity search.
#ifndef TSFM_SKETCH_SIMHASH_H_
#define TSFM_SKETCH_SIMHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsfm {

/// \brief A family of `num_bits` random hyperplanes producing SimHash codes.
class SimHasher {
 public:
  /// `dim` is the input vector dimensionality; `seed` fixes the hyperplanes.
  SimHasher(size_t dim, size_t num_bits = 64, uint64_t seed = 7);

  /// 64-bit SimHash code of `vec` (only the low `num_bits` bits are used).
  uint64_t Hash(const std::vector<float>& vec) const;

  /// Hamming distance between two codes over the active bits.
  int HammingDistance(uint64_t a, uint64_t b) const;

  size_t num_bits() const { return num_bits_; }

 private:
  size_t dim_;
  size_t num_bits_;
  std::vector<float> planes_;  // num_bits x dim, row-major
};

}  // namespace tsfm

#endif  // TSFM_SKETCH_SIMHASH_H_
