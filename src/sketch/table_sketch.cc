#include "sketch/table_sketch.h"

#include <unordered_set>

#include "util/hash.h"
#include "util/string_util.h"

namespace tsfm {

std::vector<float> ColumnSketch::MinHashInput() const {
  std::vector<float> cells = cell_minhash.ToFloats();
  std::vector<float> out;
  out.reserve(cells.size() * 2);
  out.insert(out.end(), cells.begin(), cells.end());
  if (type == ColumnType::kString) {
    std::vector<float> words = word_minhash.ToFloats();
    out.insert(out.end(), words.begin(), words.end());
  } else {
    // Non-string columns have no words signature; the paper includes only
    // the cell MinHash. We duplicate it so every column feeds the same
    // linear layer width.
    out.insert(out.end(), cells.begin(), cells.end());
  }
  return out;
}

std::vector<float> ColumnSketch::OneBitMinHashInput() const {
  auto one_bit = [](const MinHash& mh) {
    std::vector<float> out(mh.num_perm());
    for (size_t i = 0; i < mh.num_perm(); ++i) {
      out[i] = (SplitMix64(mh.signature()[i]) & 1) ? 1.0f : -1.0f;
    }
    return out;
  };
  std::vector<float> cells = one_bit(cell_minhash);
  std::vector<float> out;
  out.reserve(cells.size() * 2);
  out.insert(out.end(), cells.begin(), cells.end());
  if (type == ColumnType::kString) {
    std::vector<float> words = one_bit(word_minhash);
    out.insert(out.end(), words.begin(), words.end());
  } else {
    out.insert(out.end(), cells.begin(), cells.end());
  }
  return out;
}

std::vector<std::string> DistinctCells(const Column& column, size_t max_cells) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  for (const auto& cell : column.cells) {
    if (out.size() >= max_cells) break;
    if (IsNullToken(cell)) continue;
    if (seen.insert(cell).second) out.push_back(cell);
  }
  return out;
}

std::vector<std::string> DistinctWords(const Column& column, size_t max_cells) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  size_t budget = max_cells;
  for (const auto& cell : column.cells) {
    if (budget == 0) break;
    --budget;
    if (IsNullToken(cell)) continue;
    for (const auto& word : SplitWhitespace(cell)) {
      std::string lower = ToLower(word);
      if (seen.insert(lower).second) out.push_back(std::move(lower));
    }
  }
  return out;
}

TableSketch BuildTableSketch(const Table& table, const SketchOptions& options) {
  TableSketch sketch;
  sketch.table_id = table.id();
  sketch.description = table.description();
  sketch.content_snapshot =
      MakeContentSnapshot(table, options.num_perm, options.snapshot_rows);

  sketch.columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    ColumnSketch cs;
    cs.name = col.name;
    cs.type = col.type;
    cs.cell_minhash = MinHashOfSet(DistinctCells(col, options.max_cells),
                                   options.num_perm);
    if (col.type == ColumnType::kString) {
      cs.word_minhash = MinHashOfSet(DistinctWords(col, options.max_cells),
                                     options.num_perm);
    } else {
      cs.word_minhash = MinHash(options.num_perm);
    }
    cs.numerical = MakeNumericalSketch(col);
    sketch.columns.push_back(std::move(cs));
  }
  return sketch;
}

}  // namespace tsfm
