#include "sketch/content_snapshot.h"

#include <algorithm>

namespace tsfm {

MinHash MakeContentSnapshot(const Table& table, size_t num_perm, size_t max_rows) {
  MinHash mh(num_perm);
  const size_t rows = std::min(table.num_rows(), max_rows);
  for (size_t r = 0; r < rows; ++r) {
    mh.Update(table.RowString(r));
  }
  return mh;
}

}  // namespace tsfm
