// The paper's table-level content snapshot (Sec III-A): a MinHash over the
// set of row-strings of the first N rows.
#ifndef TSFM_SKETCH_CONTENT_SNAPSHOT_H_
#define TSFM_SKETCH_CONTENT_SNAPSHOT_H_

#include "sketch/minhash.h"
#include "table/table.h"

namespace tsfm {

/// Default row budget, matching the paper's "first 10000 rows".
inline constexpr size_t kContentSnapshotRows = 10000;

/// Builds the content snapshot MinHash of `table`: each of the first
/// `max_rows` rows is rendered as one string and folded into the signature.
MinHash MakeContentSnapshot(const Table& table, size_t num_perm = 32,
                            size_t max_rows = kContentSnapshotRows);

}  // namespace tsfm

#endif  // TSFM_SKETCH_CONTENT_SNAPSHOT_H_
