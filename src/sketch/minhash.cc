#include "sketch/minhash.h"

#include <limits>

#include "util/hash.h"
#include "util/logging.h"

namespace tsfm {

MinHash::MinHash(size_t num_perm)
    : signature_(num_perm, std::numeric_limits<uint32_t>::max()) {}

void MinHash::Update(std::string_view element) {
  // One base hash per element, then cheap per-slot mixing: the classic
  // h_i(x) = mix(base ^ seed_i) family. Murmur gives a well-distributed
  // base; SplitMix64 decorrelates the K slots.
  uint64_t base = (static_cast<uint64_t>(Murmur3_32(element, 0x9747b28c)) << 32) |
                  Murmur3_32(element, 0x85ebca6b);
  for (size_t i = 0; i < signature_.size(); ++i) {
    uint64_t h = SplitMix64(base ^ (0x27d4eb2f165667c5ULL * (i + 1)));
    uint32_t h32 = static_cast<uint32_t>(h >> 32);
    if (h32 < signature_[i]) signature_[i] = h32;
  }
  empty_ = false;
}

void MinHash::UpdateAll(const std::vector<std::string>& elements) {
  for (const auto& e : elements) Update(e);
}

double MinHash::EstimateJaccard(const MinHash& other) const {
  TSFM_CHECK_EQ(num_perm(), other.num_perm());
  if (empty_ && other.empty_) return 1.0;
  if (empty_ || other.empty_) return 0.0;
  size_t same = 0;
  for (size_t i = 0; i < signature_.size(); ++i) {
    if (signature_[i] == other.signature_[i]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(signature_.size());
}

size_t MinHash::HammingDistance(const MinHash& other) const {
  TSFM_CHECK_EQ(num_perm(), other.num_perm());
  size_t diff = 0;
  for (size_t i = 0; i < signature_.size(); ++i) {
    if (signature_[i] != other.signature_[i]) ++diff;
  }
  return diff;
}

void MinHash::Merge(const MinHash& other) {
  TSFM_CHECK_EQ(num_perm(), other.num_perm());
  for (size_t i = 0; i < signature_.size(); ++i) {
    if (other.signature_[i] < signature_[i]) signature_[i] = other.signature_[i];
  }
  empty_ = empty_ && other.empty_;
}

std::vector<float> MinHash::ToFloats() const {
  std::vector<float> out(signature_.size());
  const double scale = 1.0 / static_cast<double>(std::numeric_limits<uint32_t>::max());
  for (size_t i = 0; i < signature_.size(); ++i) {
    out[i] = empty_ ? 0.0f : static_cast<float>(signature_[i] * scale);
  }
  return out;
}

MinHash MinHashOfSet(const std::vector<std::string>& elements, size_t num_perm) {
  MinHash mh(num_perm);
  mh.UpdateAll(elements);
  return mh;
}

}  // namespace tsfm
