// MinHash signatures (Broder '97) for fast Jaccard estimation.
//
// The paper uses the datasketch library's MinHash; this is the same
// construction: K independent hash functions, signature[i] = min over the
// set of h_i(element). Jaccard(A, B) is estimated by the fraction of
// matching signature slots.
#ifndef TSFM_SKETCH_MINHASH_H_
#define TSFM_SKETCH_MINHASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsfm {

/// \brief A K-slot MinHash signature.
class MinHash {
 public:
  /// Creates an empty signature with `num_perm` slots (all at +inf).
  explicit MinHash(size_t num_perm = 32);

  /// Folds one set element into the signature.
  void Update(std::string_view element);

  /// Folds every element of `elements` in.
  void UpdateAll(const std::vector<std::string>& elements);

  /// Estimated Jaccard similarity with `other` (same num_perm required).
  double EstimateJaccard(const MinHash& other) const;

  /// Number of differing slots (used by the paper's error analysis).
  size_t HammingDistance(const MinHash& other) const;

  /// Merges with `other` (signature of the set union).
  void Merge(const MinHash& other);

  /// True when no element has been folded in.
  bool empty() const { return empty_; }

  size_t num_perm() const { return signature_.size(); }
  const std::vector<uint32_t>& signature() const { return signature_; }

  /// Signature slots scaled to [0, 1] floats for use as a neural-net input
  /// vector (paper Sec III-B.5 feeds MinHash vectors through a linear layer).
  std::vector<float> ToFloats() const;

 private:
  std::vector<uint32_t> signature_;
  bool empty_ = true;
};

/// Convenience: builds a MinHash over a set of strings.
MinHash MinHashOfSet(const std::vector<std::string>& elements, size_t num_perm = 32);

}  // namespace tsfm

#endif  // TSFM_SKETCH_MINHASH_H_
