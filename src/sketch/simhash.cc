#include "sketch/simhash.h"

#include <bit>

#include "util/logging.h"
#include "util/random.h"

namespace tsfm {

SimHasher::SimHasher(size_t dim, size_t num_bits, uint64_t seed)
    : dim_(dim), num_bits_(num_bits) {
  TSFM_CHECK_LE(num_bits_, 64u);
  Rng rng(seed);
  planes_.resize(num_bits_ * dim_);
  for (auto& p : planes_) p = static_cast<float>(rng.Normal());
}

uint64_t SimHasher::Hash(const std::vector<float>& vec) const {
  TSFM_CHECK_EQ(vec.size(), dim_);
  uint64_t code = 0;
  for (size_t b = 0; b < num_bits_; ++b) {
    const float* plane = planes_.data() + b * dim_;
    float dot = 0.0f;
    for (size_t i = 0; i < dim_; ++i) dot += plane[i] * vec[i];
    if (dot >= 0.0f) code |= (uint64_t{1} << b);
  }
  return code;
}

int SimHasher::HammingDistance(uint64_t a, uint64_t b) const {
  uint64_t mask = num_bits_ == 64 ? ~uint64_t{0} : ((uint64_t{1} << num_bits_) - 1);
  return std::popcount((a ^ b) & mask);
}

}  // namespace tsfm
