// MinHash LSH index with banding, plus an LSH-Forest variant.
//
// Substrate for the LSH-Forest join-search baseline (paper Table V) and a
// fast candidate generator for large lakes: signatures are cut into bands of
// rows; two sets collide when any band matches exactly.
#ifndef TSFM_SKETCH_MINHASH_LSH_H_
#define TSFM_SKETCH_MINHASH_LSH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sketch/minhash.h"

namespace tsfm {

/// \brief Classic banded MinHash LSH index over named items.
class MinHashLsh {
 public:
  /// `num_perm` must equal `bands * rows_per_band`.
  MinHashLsh(size_t num_perm, size_t bands);

  /// Inserts an item; `key` identifies it in query results.
  void Insert(const std::string& key, const MinHash& minhash);

  /// Returns keys sharing at least one band with `query` (no dedup cost:
  /// results are deduplicated, order unspecified).
  std::vector<std::string> Query(const MinHash& query) const;

  size_t size() const { return num_items_; }

 private:
  uint64_t BandHash(const MinHash& mh, size_t band) const;

  size_t num_perm_;
  size_t bands_;
  size_t rows_per_band_;
  size_t num_items_ = 0;
  // One hash table per band: band-hash -> keys.
  std::vector<std::unordered_map<uint64_t, std::vector<std::string>>> tables_;
};

/// \brief LSH-Forest (Bawa et al. 2005) over MinHash signatures.
///
/// Each of `num_trees` trees stores items keyed by a prefix of a permuted
/// signature; queries descend to the deepest matching prefix and walk
/// upward until enough candidates are collected. This reproduces the
/// LSH-Forest baseline used in the paper's join-search comparison.
class LshForest {
 public:
  LshForest(size_t num_perm, size_t num_trees, size_t max_depth);

  void Insert(const std::string& key, const MinHash& minhash);

  /// Top candidates for `query`, most-overlapping prefixes first.
  /// Returns up to `k` distinct keys.
  std::vector<std::string> Query(const MinHash& query, size_t k) const;

 private:
  // Prefix key of length `depth` for tree `t`.
  std::string PrefixKey(const MinHash& mh, size_t tree, size_t depth) const;

  size_t num_perm_;
  size_t num_trees_;
  size_t max_depth_;
  // trees_[t][depth] : prefix -> keys.
  std::vector<std::vector<std::unordered_map<std::string, std::vector<std::string>>>>
      trees_;
};

}  // namespace tsfm

#endif  // TSFM_SKETCH_MINHASH_LSH_H_
