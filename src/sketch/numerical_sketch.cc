#include "sketch/numerical_sketch.h"

#include <cmath>

namespace tsfm {

float CompressStat(double v) {
  double s = v < 0 ? -1.0 : 1.0;
  return static_cast<float>(s * std::log1p(std::fabs(v)));
}

NumericalSketch MakeNumericalSketch(const Column& column) {
  ColumnStats stats = ComputeColumnStats(column);
  NumericalSketch sketch;
  sketch.values[0] = CompressStat(stats.unique_fraction);
  sketch.values[1] = CompressStat(stats.nan_fraction);
  sketch.values[2] = CompressStat(stats.avg_cell_width);
  if (stats.has_numeric) {
    for (int i = 0; i < 9; ++i) {
      sketch.values[3 + i] = CompressStat(stats.percentiles[i]);
    }
    sketch.values[12] = CompressStat(stats.mean);
    sketch.values[13] = CompressStat(stats.stddev);
    sketch.values[14] = CompressStat(stats.min);
    sketch.values[15] = CompressStat(stats.max);
  }
  return sketch;
}

}  // namespace tsfm
