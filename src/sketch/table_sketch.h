// The full sketch bundle for one table (paper Sec III-A / Fig 1 left panel):
// a table-level content snapshot plus, per column, a cell-value MinHash, a
// words MinHash (string columns only) and a numerical sketch.
#ifndef TSFM_SKETCH_TABLE_SKETCH_H_
#define TSFM_SKETCH_TABLE_SKETCH_H_

#include <string>
#include <vector>

#include "sketch/content_snapshot.h"
#include "sketch/minhash.h"
#include "sketch/numerical_sketch.h"
#include "table/table.h"

namespace tsfm {

/// Sketch-building knobs.
struct SketchOptions {
  size_t num_perm = 32;            ///< MinHash slots per signature
  size_t snapshot_rows = 256;      ///< rows folded into the content snapshot
  size_t max_cells = 10000;        ///< cell budget per column MinHash
};

/// \brief Sketches of one column.
struct ColumnSketch {
  std::string name;
  ColumnType type = ColumnType::kString;
  MinHash cell_minhash;       ///< over the set of cell value strings
  MinHash word_minhash;       ///< over the set of words (string columns only)
  NumericalSketch numerical;  ///< the 16-slot statistics vector

  ColumnSketch() : cell_minhash(0), word_minhash(0) {}

  /// The model-input MinHash vector: for string columns the concatenation
  /// cell||word (paper: E_{C||W}); for other types the cell signature
  /// duplicated to keep a fixed input width.
  std::vector<float> MinHashInput() const;

  /// \brief 1-bit MinHash variant (Li & Koenig 2010) of MinHashInput().
  ///
  /// Each signature slot is mapped to +-1 by one hash bit; the cosine of
  /// two such vectors is an unbiased estimate of the Jaccard similarity
  /// (matching slots contribute +1, non-matching slots are independent
  /// coin flips with mean 0). Used by the Embedder's sketch-identity
  /// block, where cosine similarity must track set overlap.
  std::vector<float> OneBitMinHashInput() const;
};

/// \brief Sketches of one table.
struct TableSketch {
  std::string table_id;
  std::string description;
  MinHash content_snapshot;
  std::vector<ColumnSketch> columns;

  TableSketch() : content_snapshot(0) {}
};

/// Builds every sketch for `table`. Types must already be inferred (or call
/// table.InferTypes() first); this function does not mutate the table.
TableSketch BuildTableSketch(const Table& table, const SketchOptions& options = {});

/// Extracts the distinct non-null cell values of a column (bounded).
std::vector<std::string> DistinctCells(const Column& column, size_t max_cells = 10000);

/// Extracts the distinct lower-cased words across a column's cells.
std::vector<std::string> DistinctWords(const Column& column, size_t max_cells = 10000);

}  // namespace tsfm

#endif  // TSFM_SKETCH_TABLE_SKETCH_H_
