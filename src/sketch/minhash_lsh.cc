#include "sketch/minhash_lsh.h"

#include <unordered_set>

#include "util/hash.h"
#include "util/logging.h"

namespace tsfm {

MinHashLsh::MinHashLsh(size_t num_perm, size_t bands)
    : num_perm_(num_perm), bands_(bands), rows_per_band_(num_perm / bands) {
  TSFM_CHECK_GT(bands_, 0u);
  TSFM_CHECK_EQ(bands_ * rows_per_band_, num_perm_);
  tables_.resize(bands_);
}

uint64_t MinHashLsh::BandHash(const MinHash& mh, size_t band) const {
  uint64_t h = SplitMix64(band + 1);
  const auto& sig = mh.signature();
  for (size_t r = 0; r < rows_per_band_; ++r) {
    h = HashCombine(h, SplitMix64(sig[band * rows_per_band_ + r]));
  }
  return h;
}

void MinHashLsh::Insert(const std::string& key, const MinHash& minhash) {
  TSFM_CHECK_EQ(minhash.num_perm(), num_perm_);
  for (size_t b = 0; b < bands_; ++b) {
    tables_[b][BandHash(minhash, b)].push_back(key);
  }
  ++num_items_;
}

std::vector<std::string> MinHashLsh::Query(const MinHash& query) const {
  TSFM_CHECK_EQ(query.num_perm(), num_perm_);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  for (size_t b = 0; b < bands_; ++b) {
    auto it = tables_[b].find(BandHash(query, b));
    if (it == tables_[b].end()) continue;
    for (const auto& key : it->second) {
      if (seen.insert(key).second) out.push_back(key);
    }
  }
  return out;
}

LshForest::LshForest(size_t num_perm, size_t num_trees, size_t max_depth)
    : num_perm_(num_perm), num_trees_(num_trees), max_depth_(max_depth) {
  TSFM_CHECK_GT(num_trees_, 0u);
  TSFM_CHECK_GT(max_depth_, 0u);
  TSFM_CHECK_LE(num_trees_ * max_depth_, num_perm_);
  trees_.resize(num_trees_);
  for (auto& tree : trees_) tree.resize(max_depth_ + 1);
}

std::string LshForest::PrefixKey(const MinHash& mh, size_t tree, size_t depth) const {
  // Tree t uses signature slots [t*max_depth, t*max_depth + depth).
  std::string key;
  key.reserve(depth * 4);
  const auto& sig = mh.signature();
  for (size_t d = 0; d < depth; ++d) {
    uint32_t v = sig[tree * max_depth_ + d];
    key.append(reinterpret_cast<const char*>(&v), 4);
  }
  return key;
}

void LshForest::Insert(const std::string& key, const MinHash& minhash) {
  TSFM_CHECK_EQ(minhash.num_perm(), num_perm_);
  for (size_t t = 0; t < num_trees_; ++t) {
    for (size_t d = 1; d <= max_depth_; ++d) {
      trees_[t][d][PrefixKey(minhash, t, d)].push_back(key);
    }
  }
}

std::vector<std::string> LshForest::Query(const MinHash& query, size_t k) const {
  TSFM_CHECK_EQ(query.num_perm(), num_perm_);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  // Walk from the deepest (most selective) prefix up; deeper matches are
  // higher-confidence candidates and are emitted first.
  for (size_t d = max_depth_; d >= 1 && out.size() < k; --d) {
    for (size_t t = 0; t < num_trees_ && out.size() < k; ++t) {
      auto it = trees_[t][d].find(PrefixKey(query, t, d));
      if (it == trees_[t][d].end()) continue;
      for (const auto& key : it->second) {
        if (seen.insert(key).second) {
          out.push_back(key);
          if (out.size() >= k) break;
        }
      }
    }
  }
  return out;
}

}  // namespace tsfm
