// Pluggable approximate/exact nearest-neighbour layer.
//
// The paper's deployment (Sec V) answers every online query through one
// column-embedding index; VectorIndex is the seam that lets that index be
// either exact brute force (KnnIndex) or an HNSW graph (HnswIndex, the
// substrate DeepJoin uses at scale) without the ranking stack caring which.
// Backends are chosen with IndexOptions and constructed via MakeVectorIndex;
// both serialize to a tagged binary stream so an offline builder and an
// online server can exchange ready-built indexes.
#ifndef TSFM_SEARCH_VECTOR_INDEX_H_
#define TSFM_SEARCH_VECTOR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <utility>
#include <vector>

#include "search/distance_kernels.h"  // Metric + the kernel seam below it
#include "util/status.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::search {

/// Which ANN backend an index uses.
enum class IndexBackend {
  kFlat,  ///< exact brute-force scan (KnnIndex)
  kHnsw,  ///< approximate HNSW graph (HnswIndex)
};

/// HNSW construction/search knobs (Malkov & Yashunin 2020).
struct HnswOptions {
  size_t m = 12;                ///< max neighbours per node per layer
  size_t ef_construction = 64;  ///< beam width during insertion
  size_t ef_search = 48;        ///< beam width during queries
  uint64_t seed = 17;           ///< level assignment RNG
};

/// \brief Row storage of the flat backend.
///
/// kSq8 keeps each row as per-dimension scalar-quantized bytes (4x smaller,
/// calibrated from the indexed data; see quantizer.h) and answers Search
/// through the asymmetric int8 scan with exact rescore, so ranked results
/// track the float scan within the tested recall bound. The HNSW backend
/// stores float rows regardless — graph construction re-reads stored
/// vectors at full precision — and treats kSq8 as kFloat32.
enum class Storage {
  kFloat32,  ///< rows stored as float, exact scan
  kSq8,      ///< rows stored as SQ8 bytes, quantized scan + exact rescore
};

/// \brief Backend selection for MakeVectorIndex and everything above it.
///
/// `metric` applies to both backends (HNSW normalizes on insert under
/// cosine, stores raw vectors under L2). `hnsw` is ignored by the flat
/// backend; `storage` by the HNSW backend.
struct IndexOptions {
  IndexBackend backend = IndexBackend::kFlat;
  Metric metric = Metric::kCosine;
  Storage storage = Storage::kFloat32;
  HnswOptions hnsw;
};

/// \brief Abstract nearest-neighbour index over dense vectors with payloads.
///
/// Implementations must keep Search/SearchBatch const-thread-safe: SearchBatch
/// fans queries out over a ThreadPool, so concurrent Search calls on one
/// index must not race. Add is not thread-safe and must not overlap searches.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Adds a vector with an opaque payload id. Vector size must equal dim().
  virtual void Add(size_t payload, const std::vector<float>& vec) = 0;

  /// \brief Top-k (payload, distance) pairs, nearest first.
  ///
  /// Degenerate inputs are answered, not UB: k == 0 or a query whose size
  /// differs from dim() returns an empty list; k > size() returns size()
  /// results.
  virtual std::vector<std::pair<size_t, float>> Search(
      const std::vector<float>& query, size_t k) const = 0;

  /// \brief Searches many queries, optionally in parallel.
  ///
  /// Returns one Search result per query, in query order. With a non-null
  /// `pool` the queries are fanned out with ParallelFor; results are
  /// identical to the serial loop.
  virtual std::vector<std::vector<std::pair<size_t, float>>> SearchBatch(
      const std::vector<std::vector<float>>& queries, size_t k,
      ThreadPool* pool = nullptr) const;

  virtual size_t size() const = 0;
  virtual size_t dim() const = 0;
  virtual IndexBackend backend() const = 0;
  virtual Metric metric() const = 0;

  /// Writes a self-describing binary image (backend tag + payload) that
  /// LoadVectorIndex can restore.
  virtual Status Save(std::ostream& out) const = 0;
};

/// Constructs an empty index of the requested backend.
std::unique_ptr<VectorIndex> MakeVectorIndex(size_t dim,
                                             const IndexOptions& options = {});

/// Restores an index written by VectorIndex::Save, dispatching on the
/// backend tag.
Result<std::unique_ptr<VectorIndex>> LoadVectorIndex(std::istream& in);

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_VECTOR_INDEX_H_
