// The "LAKS" manifest: the metadata half of a sharded lake index on disk.
//
// A sharded index is one manifest plus one self-contained "LAK2" LakeIndex
// file per shard. The manifest records everything a reader needs to know
// *without* opening the shard files: backend, metric, dim, the per-shard
// file names, and the global handle order (one (shard, local) record per
// table in AddTable insertion order, so handles survive a round trip).
//
// Split out of ShardedLakeIndex because two deployments read it:
//   - ShardedLakeIndex::Load opens the manifest and then loads every shard
//     file into one process;
//   - server::DistributedLakeIndex opens only the manifest and leaves each
//     shard file to its own lake_shard_worker process, rebuilding the
//     global handle space from the locator plus the workers' table lists.
#ifndef TSFM_SEARCH_LAKE_MANIFEST_H_
#define TSFM_SEARCH_LAKE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "search/vector_index.h"
#include "util/status.h"

namespace tsfm::search {

/// First four bytes of a manifest file ("LAKS" little-endian); anything
/// else is treated as a legacy single-file index by ShardedLakeIndex::Load.
inline constexpr uint32_t kLakeManifestMagic = 0x4c414b53;

/// \brief Newest manifest layout this build writes or reads.
///
/// Version 1: backend/metric/dim/shard files/locator. Version 2 adds a
/// storage word after the metric. Version 3 adds a live-table count after
/// the dim, and is written only for churned lakes (some shard carries
/// pending deltas or tombstones, so the locator's handle count exceeds the
/// live count). Unchurned float32 manifests still write version 1 and
/// unchurned sq8 manifests version 2 (both byte-identical for old
/// readers); pre-v3 readers reject churned manifests with a clean "newer
/// format version" Status.
inline constexpr uint32_t kLakeManifestVersion = 3;

/// Upper bound on the shard count a manifest may claim.
inline constexpr uint64_t kMaxLakeShards = 1u << 16;

/// \brief Parsed contents of a "LAKS" manifest.
///
/// `shard_files[s]` is the file name of shard s, relative to the manifest's
/// directory. `locator[h]` is table handle h's (shard, local-handle) pair,
/// in global insertion order — the record that makes sharded and
/// distributed deployments rank with identical tie-breaking.
struct LakeManifest {
  IndexBackend backend = IndexBackend::kFlat;
  Metric metric = Metric::kCosine;
  Storage storage = Storage::kFloat32;  ///< storage of every shard file
  uint64_t dim = 0;
  /// Tables queries can return. Meaningful only when `churned` (version 3
  /// manifests); otherwise equals num_tables().
  uint64_t live_tables = 0;
  /// Write-side flag, not itself persisted: true forces a version-3
  /// manifest carrying `live_tables`. LoadLakeManifest sets it for v3
  /// files so callers can tell the two shapes apart.
  bool churned = false;
  std::vector<std::string> shard_files;
  std::vector<std::pair<uint32_t, uint64_t>> locator;

  size_t num_shards() const { return shard_files.size(); }
  size_t num_tables() const { return locator.size(); }
};

/// The conventional shard file name: "<manifest-basename>.shard-<s>".
std::string LakeShardFileName(const std::string& manifest_basename,
                              size_t shard);

/// True when `path` starts with the manifest magic (a readable file that is
/// too short or starts with anything else is false, not an error).
bool IsLakeManifestFile(const std::string& path);

/// \brief Writes `manifest` to `path`.
///
/// Validation mirrors LoadLakeManifest: an inconsistent manifest (locator
/// routing to a shard with no file entry, zero dim) is an error here rather
/// than a file no reader will accept.
Status SaveLakeManifest(const LakeManifest& manifest, const std::string& path);

/// \brief Parses a manifest written by SaveLakeManifest.
///
/// A truncated file, bad magic, newer version, implausible shape (zero or
/// absurd dim/shard counts), or a locator record routing to a nonexistent
/// shard yields an error Status, never a crash.
Result<LakeManifest> LoadLakeManifest(const std::string& path);

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_LAKE_MANIFEST_H_
