// Evaluation metrics: weighted F1 and R² for fine-tuning tasks
// (paper Table II), and P@k / R@k / F1@k for search (Tables V-VIII, Fig 4).
#ifndef TSFM_SEARCH_METRICS_H_
#define TSFM_SEARCH_METRICS_H_

#include <cstddef>
#include <vector>

namespace tsfm::search {

/// Weighted F1 over integer class predictions (scikit-learn
/// `f1_score(average="weighted")`): per-class F1 weighted by true-class
/// support.
double WeightedF1(const std::vector<int>& y_true, const std::vector<int>& y_pred,
                  int num_classes);

/// Coefficient of determination R² = 1 - SS_res / SS_tot.
double R2Score(const std::vector<float>& y_true, const std::vector<float>& y_pred);

/// Micro-averaged F1 for multi-label predictions thresholded at 0.5.
double MultiLabelF1(const std::vector<std::vector<float>>& y_true,
                    const std::vector<std::vector<float>>& y_pred,
                    float threshold = 0.5f);

/// \brief Relevance metrics of one ranked list against a gold set.
struct RankedMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// P/R/F1 of the top-k prefix of `ranked` against `gold`.
RankedMetrics MetricsAtK(const std::vector<size_t>& ranked,
                         const std::vector<size_t>& gold, size_t k);

/// \brief Aggregated search quality over a query set.
struct SearchReport {
  std::vector<double> f1_at_k;        ///< mean-over-queries F1@k, k = 1..k_max
  std::vector<double> precision_at_k;
  std::vector<double> recall_at_k;
  double mean_f1 = 0.0;               ///< mean of f1_at_k over the k sweep

  double PrecisionAt(size_t k) const { return precision_at_k[k - 1]; }
  double RecallAt(size_t k) const { return recall_at_k[k - 1]; }
  double F1At(size_t k) const { return f1_at_k[k - 1]; }
};

/// Evaluates ranked result lists (one per query) against gold sets for
/// k = 1..k_max. The paper's "Mean F1" is the mean of the per-k averaged F1
/// (the area under the Fig 4 curve).
SearchReport EvaluateSearch(const std::vector<std::vector<size_t>>& ranked,
                            const std::vector<std::vector<size_t>>& gold,
                            size_t k_max);

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_METRICS_H_
