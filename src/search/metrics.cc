#include "search/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace tsfm::search {

double WeightedF1(const std::vector<int>& y_true, const std::vector<int>& y_pred,
                  int num_classes) {
  TSFM_CHECK_EQ(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  double weighted = 0.0;
  for (int c = 0; c < num_classes; ++c) {
    size_t tp = 0, fp = 0, fn = 0, support = 0;
    for (size_t i = 0; i < y_true.size(); ++i) {
      const bool is_true = y_true[i] == c;
      const bool is_pred = y_pred[i] == c;
      if (is_true) ++support;
      if (is_true && is_pred) ++tp;
      if (!is_true && is_pred) ++fp;
      if (is_true && !is_pred) ++fn;
    }
    if (support == 0) continue;
    double precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
    double recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
    double f1 =
        precision + recall > 0 ? 2 * precision * recall / (precision + recall) : 0.0;
    weighted += f1 * static_cast<double>(support) / static_cast<double>(y_true.size());
  }
  return weighted;
}

double R2Score(const std::vector<float>& y_true, const std::vector<float>& y_pred) {
  TSFM_CHECK_EQ(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  double mean = 0.0;
  for (float y : y_true) mean += y;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot < 1e-12) return ss_res < 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double MultiLabelF1(const std::vector<std::vector<float>>& y_true,
                    const std::vector<std::vector<float>>& y_pred, float threshold) {
  TSFM_CHECK_EQ(y_true.size(), y_pred.size());
  size_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    TSFM_CHECK_EQ(y_true[i].size(), y_pred[i].size());
    for (size_t j = 0; j < y_true[i].size(); ++j) {
      const bool is_true = y_true[i][j] >= 0.5f;
      const bool is_pred = y_pred[i][j] >= threshold;
      if (is_true && is_pred) ++tp;
      if (!is_true && is_pred) ++fp;
      if (is_true && !is_pred) ++fn;
    }
  }
  double precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  double recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  return precision + recall > 0 ? 2 * precision * recall / (precision + recall) : 0.0;
}

RankedMetrics MetricsAtK(const std::vector<size_t>& ranked,
                         const std::vector<size_t>& gold, size_t k) {
  RankedMetrics m;
  if (gold.empty() || k == 0) return m;
  std::unordered_set<size_t> gold_set(gold.begin(), gold.end());
  const size_t top = std::min(k, ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < top; ++i) {
    if (gold_set.count(ranked[i])) ++hits;
  }
  m.precision = k > 0 ? static_cast<double>(hits) / static_cast<double>(k) : 0.0;
  m.recall = static_cast<double>(hits) / static_cast<double>(gold.size());
  m.f1 = m.precision + m.recall > 0
             ? 2 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

SearchReport EvaluateSearch(const std::vector<std::vector<size_t>>& ranked,
                            const std::vector<std::vector<size_t>>& gold,
                            size_t k_max) {
  TSFM_CHECK_EQ(ranked.size(), gold.size());
  SearchReport report;
  report.f1_at_k.resize(k_max, 0.0);
  report.precision_at_k.resize(k_max, 0.0);
  report.recall_at_k.resize(k_max, 0.0);

  size_t evaluated = 0;
  for (size_t q = 0; q < ranked.size(); ++q) {
    if (gold[q].empty()) continue;
    ++evaluated;
    for (size_t k = 1; k <= k_max; ++k) {
      RankedMetrics m = MetricsAtK(ranked[q], gold[q], k);
      report.f1_at_k[k - 1] += m.f1;
      report.precision_at_k[k - 1] += m.precision;
      report.recall_at_k[k - 1] += m.recall;
    }
  }
  if (evaluated > 0) {
    for (size_t k = 0; k < k_max; ++k) {
      report.f1_at_k[k] /= static_cast<double>(evaluated);
      report.precision_at_k[k] /= static_cast<double>(evaluated);
      report.recall_at_k[k] /= static_cast<double>(evaluated);
    }
  }
  double sum = 0.0;
  for (double f : report.f1_at_k) sum += f;
  report.mean_f1 = k_max > 0 ? sum / static_cast<double>(k_max) : 0.0;
  return report;
}

}  // namespace tsfm::search
