// Sharded data-lake index: the LakeIndex deployment partitioned across N
// shards so one lake can exceed a single machine's memory and build time
// (paper Sec V scaled out; ROADMAP "Sharded LakeIndex").
//
// Tables are routed to shards by a stable hash of their string id
// (util/hash.h StableShard), so every column of a table lives in exactly
// one shard and the assignment survives rebuilds. Each shard owns its own
// VectorIndex (flat or HNSW via IndexOptions). Queries scatter over all
// shards — on a ThreadPool when one is given — and the per-shard sorted
// candidate lists are gathered with TableRanker::MergeColumnHits (a k-way
// heap merge) before the usual Fig 6 ranking, which makes the flat-backend
// results bit-identical to an unsharded LakeIndex over the same corpus.
//
// On disk the index is a "LAKS" manifest (shard count, backend, metric,
// dim, per-shard file names) next to one "LAK2" LakeIndex file per shard;
// Save and Load handle the shard files in parallel. Legacy single-file
// "LAK2"/"LAKE" indexes load as a 1-shard index, so existing callers can
// switch over behind a --shards knob without a migration.
#ifndef TSFM_SEARCH_SHARDED_LAKE_INDEX_H_
#define TSFM_SEARCH_SHARDED_LAKE_INDEX_H_

#include <string>
#include <utility>
#include <vector>

#include "search/lake_index.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::search {

/// \brief A LakeIndex partitioned across shards with scatter/gather ranking.
///
/// Mirrors the LakeIndex query API (string table ids in, ranked ids out)
/// and adds handle-level Rank* entry points with an exclude id for
/// benchmark drivers. All query methods are const-thread-safe and may
/// overlap AddTable/RemoveTable/Compact: a query pins one epoch of the
/// global handle maps and shard set for its whole duration (shared lock),
/// mutations serialize behind a writer mutex and publish under brief
/// exclusive locks, and Compact rebuilds every churned shard off-lock
/// before swapping shards + maps in one exclusive section. The optional
/// ThreadPool fans work out over shards (single queries) or over queries
/// (batch entry points); results are identical to the serial path.
///
/// Like LakeIndex, each shard retains its raw column embeddings so Save
/// can write self-contained shard files; a query-only deployment pays
/// that memory twice (once in the shard, once in its VectorIndex).
class ShardedLakeIndex {
 public:
  /// Creates an empty index of `num_shards` shards (clamped to >= 1), each
  /// owning a VectorIndex configured by `options`.
  ShardedLakeIndex(size_t dim, size_t num_shards, const IndexOptions& options = {});

  /// Moves must not overlap any other operation on either operand (the
  /// same contract as LakeIndex: a moved index re-arms fresh locks).
  ShardedLakeIndex(ShardedLakeIndex&& other) noexcept;
  ShardedLakeIndex& operator=(ShardedLakeIndex&& other) noexcept;
  ShardedLakeIndex(const ShardedLakeIndex&) = delete;
  ShardedLakeIndex& operator=(const ShardedLakeIndex&) = delete;

  /// Routes the table to its shard by stable hash of `table_id` and
  /// registers its column embeddings. Returns the table's global handle
  /// (dense, in insertion order). Safe to call concurrently with queries;
  /// before any shard is sealed the table joins that shard's base segment
  /// (bulk build), afterwards its delta segment (live ingest).
  size_t AddTable(const std::string& table_id,
                  const std::vector<std::vector<float>>& column_embeddings)
      LAKS_EXCLUDES(writer_mu_, mu_);

  /// Tombstones the most recently added live table named `table_id` in its
  /// owning shard. kNotFound when no live table has that id. Safe to call
  /// concurrently with queries.
  Status RemoveTable(const std::string& table_id)
      LAKS_EXCLUDES(writer_mu_, mu_);

  /// Ends the bulk-build phase on every shard: later AddTable calls land
  /// in delta segments. Idempotent; Load() and Compact() seal.
  void Seal() LAKS_EXCLUDES(writer_mu_, mu_);

  /// \brief Folds every shard's deltas + tombstones back into its base.
  ///
  /// Rebuild shards are compacted off-lock in parallel over `pool`; the
  /// new shards and the re-densified global handle maps are then swapped
  /// in under one exclusive section, so concurrent queries see either the
  /// old epoch or the new one, never a mix. HNSW shards at or under
  /// `hnsw_rebuild_threshold` tombstone fraction fold in place (graph
  /// insert of deltas, tombstones kept and filtered) and keep their
  /// handles. Post-compaction flat-backend rankings are bit-identical to
  /// a from-scratch build of the surviving tables in insertion order.
  Status Compact(double hnsw_rebuild_threshold = 0.0,
                 ThreadPool* pool = nullptr) LAKS_EXCLUDES(writer_mu_, mu_);

  /// Ranked table ids for a union/subset query (Fig 6 multi-column rank).
  std::vector<std::string> QueryUnionable(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      ThreadPool* pool = nullptr) const LAKS_EXCLUDES(mu_);

  /// Ranked table ids for a join query on a single column.
  std::vector<std::string> QueryJoinable(const std::vector<float>& query_column,
                                         size_t k,
                                         ThreadPool* pool = nullptr) const
      LAKS_EXCLUDES(mu_);

  /// One QueryUnionable result per query; queries fan out over `pool`.
  std::vector<std::vector<std::string>> QueryUnionableBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      ThreadPool* pool = nullptr) const LAKS_EXCLUDES(mu_);

  /// One QueryJoinable result per query column; queries fan out over `pool`.
  std::vector<std::vector<std::string>> QueryJoinableBatch(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      ThreadPool* pool = nullptr) const LAKS_EXCLUDES(mu_);

  /// \brief Handle-level union/subset ranking with an exclude handle.
  ///
  /// Returns global table handles instead of ids and drops `exclude`
  /// (SIZE_MAX excludes nothing) — the entry point RunSearch uses, where
  /// the query table itself is part of the corpus.
  std::vector<size_t> RankUnionable(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      size_t exclude, ThreadPool* pool = nullptr) const LAKS_EXCLUDES(mu_);

  /// Handle-level join ranking with an exclude handle.
  std::vector<size_t> RankJoinable(const std::vector<float>& query_column,
                                   size_t k, size_t exclude,
                                   ThreadPool* pool = nullptr) const
      LAKS_EXCLUDES(mu_);

  /// Batch RankUnionable; `excludes` pairs with `queries` (empty = none).
  std::vector<std::vector<size_t>> RankUnionableBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      const std::vector<size_t>& excludes, ThreadPool* pool = nullptr) const
      LAKS_EXCLUDES(mu_);

  /// Batch RankJoinable; `excludes` pairs with `query_columns`.
  std::vector<std::vector<size_t>> RankJoinableBatch(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      const std::vector<size_t>& excludes, ThreadPool* pool = nullptr) const
      LAKS_EXCLUDES(mu_);

  /// \brief Raw scatter/gather: the global top-`m` column hits for one query.
  ///
  /// Scatters the column search over all shards, remaps shard-local table
  /// handles to global handles, and k-way-merges the sorted per-shard lists
  /// (TableRanker::MergeColumnHits). This is the half of a query below the
  /// Fig 6 ranking — exposed so a serving layer can answer SHARD_QUERY
  /// frames for a distributed coordinator, which gathers hits from many
  /// worker processes and runs the exact same ranking code on top.
  std::vector<ColumnEmbeddingIndex::ColumnHit> SearchColumnHits(
      const std::vector<float>& query, size_t m,
      ThreadPool* pool = nullptr) const LAKS_EXCLUDES(mu_);

  /// \brief Batched SearchColumnHits: one scatter per shard for the whole
  /// query batch.
  ///
  /// Each shard answers ALL queries through one SearchColumnsBatch call —
  /// on flat backends that is the multi-query mini-GEMM scan, so each
  /// shard's rows stream from memory once per batch instead of once per
  /// query. Shards (and the per-shard query chunks) fan out over `pool`
  /// when given. Result q is identical to SearchColumnHits(query q, m).
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>
  SearchColumnHitsBatch(const std::vector<std::vector<float>>& queries,
                        size_t m, ThreadPool* pool = nullptr) const
      LAKS_EXCLUDES(mu_);

  /// \brief Wraps an already-built single LakeIndex as a 1-shard index.
  ///
  /// Used for legacy single-file formats and by shard workers, which serve
  /// exactly one shard file of a distributed lake through the regular
  /// ShardedLakeIndex surface.
  static ShardedLakeIndex FromSingle(LakeIndex&& shard);

  /// \brief Persists the index as a "LAKS" manifest plus one shard file.
  ///
  /// `path` names the manifest; shard s is written next to it as
  /// "<basename>.shard-<s>" and recorded in the manifest by that relative
  /// name. Shard files are written in parallel over `pool` when given.
  Status Save(const std::string& path, ThreadPool* pool = nullptr) const
      LAKS_EXCLUDES(writer_mu_, mu_);

  /// \brief Loads an index written by Save, shards in parallel over `pool`.
  ///
  /// The manifest records the global handle space, so handles assigned by
  /// AddTable before Save stay valid after Load. A missing shard file, a
  /// truncated manifest, or metadata that contradicts the shard files
  /// yields an error Status. A legacy single-file "LAK2"/"LAKE" index
  /// loads as a 1-shard index.
  static Result<ShardedLakeIndex> Load(const std::string& path,
                                       ThreadPool* pool = nullptr);

  size_t num_shards() const LAKS_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return shards_.size();
  }
  /// Global handle-space size: live + tombstoned tables (re-densified by a
  /// full compaction, like LakeIndex handles).
  size_t num_tables() const LAKS_EXCLUDES(mu_);
  /// Tables a query can still return.
  size_t num_live_tables() const LAKS_EXCLUDES(mu_);
  /// Total column count across all shards (the ceiling on SearchColumnHits
  /// results — a serving layer clamps hostile `m` to it).
  size_t num_columns() const LAKS_EXCLUDES(mu_);
  size_t dim() const { return dim_; }
  const IndexOptions& options() const { return options_; }
  /// The id behind a global handle (a copy: the maps may be re-densified
  /// by a concurrent compaction).
  std::string table_id(size_t handle) const LAKS_EXCLUDES(mu_);

  /// The shard `table_id` routes to (stable across rebuilds and processes).
  size_t shard_of(const std::string& table_id) const LAKS_EXCLUDES(mu_);

  /// Number of tables resident in shard `s` (live + tombstoned).
  size_t shard_size(size_t s) const LAKS_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return shards_[s].num_tables();
  }

  /// Delta tables across all shards awaiting the next compaction.
  size_t pending_delta_tables() const LAKS_EXCLUDES(mu_);
  /// Tombstoned-but-not-yet-compacted tables across all shards.
  size_t pending_tombstones() const LAKS_EXCLUDES(mu_);
  /// Completed Compact calls on this sharded index (shard-internal folds
  /// triggered through this index count once, not per shard).
  uint64_t compactions() const LAKS_EXCLUDES(mu_);
  /// True when any shard carries pending deltas or tombstones.
  bool churned() const LAKS_EXCLUDES(mu_);

 private:
  explicit ShardedLakeIndex(size_t dim, const IndexOptions& options);

  /// Registers every table of shard `s` in the global handle maps, in the
  /// shard's insertion order.
  void IndexShardTables(size_t s) LAKS_REQUIRES(mu_);
  /// Unanalyzed on purpose: moves must not overlap any other operation on
  /// either operand (the documented move contract), so no lock is held.
  void MoveFieldsFrom(ShardedLakeIndex&& other) LAKS_NO_THREAD_SAFETY_ANALYSIS;
  size_t ShardOfLocked(const std::string& table_id) const
      LAKS_REQUIRES_SHARED(mu_);

  std::vector<ColumnEmbeddingIndex::ColumnHit> SearchColumnHitsLocked(
      const std::vector<float>& query, size_t m, ThreadPool* pool) const
      LAKS_REQUIRES_SHARED(mu_);
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>
  SearchColumnHitsBatchLocked(const std::vector<std::vector<float>>& queries,
                              size_t m, ThreadPool* pool) const
      LAKS_REQUIRES_SHARED(mu_);
  std::vector<size_t> RankUnionableLocked(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      size_t exclude, ThreadPool* pool) const LAKS_REQUIRES_SHARED(mu_);
  std::vector<std::vector<size_t>> RankUnionableBatchLocked(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      const std::vector<size_t>& excludes, ThreadPool* pool) const
      LAKS_REQUIRES_SHARED(mu_);
  std::vector<std::vector<size_t>> RankJoinableBatchLocked(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      const std::vector<size_t>& excludes, ThreadPool* pool) const
      LAKS_REQUIRES_SHARED(mu_);

  // Lock order: writer_mu_ before mu_ (before any shard's own locks).
  // Queries hold mu_ shared across the whole scatter + merge + rank so the
  // maps and shard set they read belong to one epoch; mutations take
  // writer_mu_, then mu_ exclusive only for the brief publish step.
  //
  // mutable writer_mu_: Save is const but must exclude mutations so the
  // manifest and shard files describe one epoch.
  mutable Mutex writer_mu_;
  mutable SharedMutex mu_ LAKS_ACQUIRED_AFTER(writer_mu_);

  // dim_ and options_ are set before the index is shared (constructor /
  // Load, moves excepted) and never change afterwards, so they are read
  // without the lock.
  size_t dim_;
  IndexOptions options_;
  // The vector structure (element count) only changes pre-publication; a
  // compaction swaps *elements* under an exclusive lock, which is why the
  // whole vector is guarded. Each element also carries its own locks.
  std::vector<LakeIndex> shards_ LAKS_GUARDED_BY(mu_);
  // handle -> id
  std::vector<std::string> global_ids_ LAKS_GUARDED_BY(mu_);
  // handle -> (shard, local)
  std::vector<std::pair<size_t, size_t>> locator_ LAKS_GUARDED_BY(mu_);
  // shard -> local -> handle
  std::vector<std::vector<size_t>> to_global_ LAKS_GUARDED_BY(mu_);
  uint64_t compactions_ LAKS_GUARDED_BY(mu_) = 0;
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_SHARDED_LAKE_INDEX_H_
