// Hierarchical Navigable Small World graph (Malkov & Yashunin 2020) for
// approximate nearest-neighbour search.
//
// The paper's DeepJoin baseline indexes column embeddings with HNSW; this
// implementation provides the same substrate so the repo's search stack can
// scale past brute force. Greedy descent through sparse upper layers, then
// beam search (ef candidates) at layer 0. Construction/search knobs live in
// HnswOptions (see vector_index.h).
#ifndef TSFM_SEARCH_HNSW_H_
#define TSFM_SEARCH_HNSW_H_

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "search/vector_index.h"
#include "util/random.h"

namespace tsfm::search {

/// \brief Approximate kNN over cosine or L2 distance (the kHnsw backend).
///
/// Under cosine, vectors are L2-normalized on insertion, so inner product
/// equals cosine similarity and distance = 1 - cos. Under L2 the vectors
/// are stored raw and distance is the Euclidean norm, matching KnnIndex so
/// IndexOptions.metric behaves the same for both backends.
///
/// Zero-norm caveat: normalization on insert erases norms, so a zero-norm
/// vector (or query) degrades to the zero vector and scores distance 1.0
/// against everything — unlike the flat backend, whose kernel seam reports
/// kMaxCosineDistance for it. The graph needs finite distances during
/// construction, and the exact backend is the reference for such edge
/// cases anyway (pinned in tests/hnsw_test.cc).
class HnswIndex : public VectorIndex {
 public:
  /// Binary stream tag written by Save ("HNS2" — the layout with a metric
  /// field). Streams tagged kLegacyFormatTag predate the field and load as
  /// cosine.
  static constexpr uint32_t kFormatTag = 0x484e5332;
  /// Tag of pre-metric streams ("HNSW").
  static constexpr uint32_t kLegacyFormatTag = 0x484e5357;

  HnswIndex(size_t dim, HnswOptions options = {}, Metric metric = Metric::kCosine);

  /// Inserts a vector with an opaque payload id.
  void Add(size_t payload, const std::vector<float>& vec) override;

  /// Top-k (payload, distance) pairs, nearest first. k == 0 or a query of
  /// the wrong dimension returns an empty list.
  std::vector<std::pair<size_t, float>> Search(const std::vector<float>& query,
                                               size_t k) const override;

  size_t size() const override { return payloads_.size(); }
  size_t dim() const override { return dim_; }
  IndexBackend backend() const override { return IndexBackend::kHnsw; }
  Metric metric() const override { return metric_; }

  const HnswOptions& options() const { return options_; }

  /// Serializes options, vectors, payloads, and the full layer graph, so a
  /// loaded index answers queries identically without rebuilding.
  Status Save(std::ostream& out) const override;

  /// Restores an index whose format tag has already been consumed (see
  /// LoadVectorIndex for the tagged entry point). `legacy` selects the
  /// kLegacyFormatTag layout, which has no metric field and is always
  /// cosine. The level RNG is re-seeded from the stored options, so later
  /// Adds remain deterministic.
  static Result<HnswIndex> Load(std::istream& in, bool legacy = false);

 private:
  struct Node {
    int level = 0;
    // neighbours[l] = ids of neighbours at layer l (0..level).
    std::vector<std::vector<uint32_t>> neighbours;
  };

  float Distance(const float* a, const float* b) const;
  const float* VectorOf(size_t node) const { return data_.data() + node * dim_; }

  // Beam search at one layer starting from `entry`; returns up to `ef`
  // (distance, node) pairs, nearest first.
  std::vector<std::pair<float, uint32_t>> SearchLayer(const float* query,
                                                      uint32_t entry, size_t ef,
                                                      int layer) const;

  // Keeps the m nearest of `candidates` as the node's neighbour list.
  void SelectNeighbours(std::vector<std::pair<float, uint32_t>>* candidates,
                        size_t m) const;

  size_t dim_;
  HnswOptions options_;
  Metric metric_;
  Rng level_rng_;
  std::vector<float> data_;       // row-major; unit-norm under cosine
  std::vector<size_t> payloads_;
  std::vector<Node> nodes_;
  int max_level_ = -1;
  uint32_t entry_point_ = 0;
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_HNSW_H_
