// Hierarchical Navigable Small World graph (Malkov & Yashunin 2020) for
// approximate nearest-neighbour search.
//
// The paper's DeepJoin baseline indexes column embeddings with HNSW; this
// implementation provides the same substrate so the repo's DeepJoin can
// scale past brute force. Greedy descent through sparse upper layers, then
// beam search (ef candidates) at layer 0.
#ifndef TSFM_SEARCH_HNSW_H_
#define TSFM_SEARCH_HNSW_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/random.h"

namespace tsfm::search {

/// HNSW construction/search knobs.
struct HnswOptions {
  size_t m = 12;                ///< max neighbours per node per layer
  size_t ef_construction = 64;  ///< beam width during insertion
  size_t ef_search = 48;        ///< beam width during queries
  uint64_t seed = 17;           ///< level assignment RNG
};

/// \brief Approximate kNN over cosine distance.
///
/// Vectors are L2-normalized on insertion, so inner product equals cosine
/// similarity and distance = 1 - cos.
class HnswIndex {
 public:
  HnswIndex(size_t dim, HnswOptions options = {});

  /// Inserts a vector with an opaque payload id.
  void Add(size_t payload, const std::vector<float>& vec);

  /// Top-k (payload, cosine distance) pairs, nearest first.
  std::vector<std::pair<size_t, float>> Search(const std::vector<float>& query,
                                               size_t k) const;

  size_t size() const { return payloads_.size(); }
  size_t dim() const { return dim_; }

 private:
  struct Node {
    int level = 0;
    // neighbours[l] = ids of neighbours at layer l (0..level).
    std::vector<std::vector<uint32_t>> neighbours;
  };

  float Distance(const float* a, const float* b) const;
  const float* VectorOf(size_t node) const { return data_.data() + node * dim_; }

  // Beam search at one layer starting from `entry`; returns up to `ef`
  // (distance, node) pairs, nearest first.
  std::vector<std::pair<float, uint32_t>> SearchLayer(const float* query,
                                                      uint32_t entry, size_t ef,
                                                      int layer) const;

  // Keeps the m nearest of `candidates` as the node's neighbour list.
  void SelectNeighbours(std::vector<std::pair<float, uint32_t>>* candidates,
                        size_t m) const;

  size_t dim_;
  HnswOptions options_;
  Rng level_rng_;
  std::vector<float> data_;       // normalized vectors, row-major
  std::vector<size_t> payloads_;
  std::vector<Node> nodes_;
  int max_level_ = -1;
  uint32_t entry_point_ = 0;
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_HNSW_H_
