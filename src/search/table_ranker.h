// The paper's Fig 6 column-based table ranking:
//   KNNSEARCH(c, k)          -> (k*3) nearest columns by distance
//   COLUMNNEARTABLES(c, k)   -> tables of those columns with min distance
//   NEARTABLES(t)            -> union over t's columns
//   RANK1 = number of matched query columns (descending)
//   RANK2 = sum of column distances (ascending tie-break)
//
// The corpus sits behind a pluggable VectorIndex (exact flat scan or HNSW);
// batch entry points fan independent queries out over a ThreadPool.
#ifndef TSFM_SEARCH_TABLE_RANKER_H_
#define TSFM_SEARCH_TABLE_RANKER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "search/vector_index.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::search {

/// \brief A corpus of column embeddings grouped by table.
class ColumnEmbeddingIndex {
 public:
  explicit ColumnEmbeddingIndex(size_t dim, const IndexOptions& options = {});

  /// Adds every column embedding of table `table_id`.
  void AddTable(size_t table_id, const std::vector<std::vector<float>>& columns);

  /// Nearest (table_id, column, distance) entries for a column query.
  struct ColumnHit {
    size_t table_id;
    size_t column_index;
    float distance;
  };
  std::vector<ColumnHit> SearchColumns(const std::vector<float>& query,
                                       size_t k) const;

  /// One SearchColumns result per query, fanned out over `pool` when given.
  std::vector<std::vector<ColumnHit>> SearchColumnsBatch(
      const std::vector<std::vector<float>>& queries, size_t k,
      ThreadPool* pool = nullptr) const;

  size_t num_columns() const { return index_->size(); }
  size_t dim() const { return index_->dim(); }
  const IndexOptions& options() const { return options_; }

 private:
  IndexOptions options_;
  std::unique_ptr<VectorIndex> index_;
  std::vector<std::pair<size_t, size_t>> column_of_;  // payload -> (table, col)
};

/// \brief Fig 6 ranking of corpus tables for a query table.
class TableRanker {
 public:
  explicit TableRanker(const ColumnEmbeddingIndex* index) : index_(index) {}

  /// Ranks corpus tables for a query represented by its column embeddings.
  /// `k` is the target result count; each column over-retrieves k*3
  /// candidates as in the paper. `exclude` (usually the query's own id) is
  /// dropped from results.
  std::vector<size_t> RankTables(const std::vector<std::vector<float>>& query_columns,
                                 size_t k, size_t exclude) const;

  /// Join-search variant: a single query column; tables ranked by their
  /// closest column distance.
  std::vector<size_t> RankTablesByColumn(const std::vector<float>& query_column,
                                         size_t k, size_t exclude) const;

  /// \brief Batch union/subset ranking: one RankTables result per query.
  ///
  /// `excludes` pairs with `queries` (empty means exclude nothing anywhere).
  /// Queries fan out over `pool` when given; results match the serial loop.
  std::vector<std::vector<size_t>> RankTablesBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      const std::vector<size_t>& excludes, ThreadPool* pool = nullptr) const;

  /// Batch join ranking: one RankTablesByColumn result per query column.
  std::vector<std::vector<size_t>> RankTablesByColumnBatch(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      const std::vector<size_t>& excludes, ThreadPool* pool = nullptr) const;

 private:
  const ColumnEmbeddingIndex* index_;
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_TABLE_RANKER_H_
