// The paper's Fig 6 column-based table ranking:
//   KNNSEARCH(c, k)          -> (k*3) nearest columns by distance
//   COLUMNNEARTABLES(c, k)   -> tables of those columns with min distance
//   NEARTABLES(t)            -> union over t's columns
//   RANK1 = number of matched query columns (descending)
//   RANK2 = sum of column distances (ascending tie-break)
//
// The corpus sits behind a pluggable VectorIndex (exact flat scan or HNSW);
// batch entry points fan independent queries out over a ThreadPool.
#ifndef TSFM_SEARCH_TABLE_RANKER_H_
#define TSFM_SEARCH_TABLE_RANKER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "search/vector_index.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::search {

class Sq8Codec;

/// \brief A corpus of column embeddings grouped by table.
class ColumnEmbeddingIndex {
 public:
  explicit ColumnEmbeddingIndex(size_t dim, const IndexOptions& options = {});

  /// Adds every column embedding of table `table_id`.
  void AddTable(size_t table_id, const std::vector<std::vector<float>>& columns);

  /// Nearest (table_id, column, distance) entries for a column query.
  struct ColumnHit {
    size_t table_id;
    size_t column_index;
    float distance;
  };
  std::vector<ColumnHit> SearchColumns(const std::vector<float>& query,
                                       size_t k) const;

  /// One SearchColumns result per query, fanned out over `pool` when given.
  std::vector<std::vector<ColumnHit>> SearchColumnsBatch(
      const std::vector<std::vector<float>>& queries, size_t k,
      ThreadPool* pool = nullptr) const;

  size_t num_columns() const { return index_->size(); }
  size_t dim() const { return index_->dim(); }
  const IndexOptions& options() const { return options_; }

  /// \brief Installs a pre-trained SQ8 codec on an empty kSq8 flat index.
  ///
  /// How LakeIndex::Load re-arms a restored corpus with the persisted
  /// calibration before replaying AddTable. Check-fails unless the corpus
  /// is an empty kFlat/kSq8 index (see KnnIndex::SeedSq8Codec).
  void SeedSq8Codec(Sq8Codec codec);

  /// The trained SQ8 codec (calibrating first if needed), or nullptr when
  /// the corpus does not use kSq8 storage.
  const Sq8Codec* sq8_codec() const;

 private:
  IndexOptions options_;
  std::unique_ptr<VectorIndex> index_;
  std::vector<std::pair<size_t, size_t>> column_of_;  // payload -> (table, col)
};

/// \brief Fig 6 ranking of corpus tables for a query table.
///
/// The instance methods search one ColumnEmbeddingIndex and rank; the
/// static methods expose the two halves separately — a k-way merge of
/// pre-sorted per-shard hit lists and the RANK1/RANK2 aggregation over hit
/// lists — so ShardedLakeIndex can scatter the search across shards and
/// gather through the exact same ranking code.
class TableRanker {
 public:
  explicit TableRanker(const ColumnEmbeddingIndex* index) : index_(index) {}

  /// \brief K-way heap merge of sorted candidate lists into the global top-k.
  ///
  /// Each input list must be sorted ascending by (distance, table_id,
  /// column_index) — the order SearchColumns produces. The result equals
  /// sorting the concatenation of all lists by that key and truncating to
  /// `k`, and is invariant to the order of the input lists as long as no
  /// (table_id, column_index) pair appears twice (shards partition columns,
  /// so per-shard lists never collide).
  static std::vector<ColumnEmbeddingIndex::ColumnHit> MergeColumnHits(
      const std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>& lists,
      size_t k);

  /// \brief Fig 6 RANK1/RANK2 aggregation over per-query-column hit lists.
  ///
  /// `per_column_hits[c]` holds the candidate columns retrieved for query
  /// column c (COLUMNNEARTABLES input). Tables are ranked by number of
  /// matched query columns (descending), then by summed min distance
  /// (ascending), then by table id. `exclude` is dropped.
  static std::vector<size_t> RankFromColumnHits(
      const std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>&
          per_column_hits,
      size_t exclude);

  /// Join variant of RankFromColumnHits: tables ranked by their closest
  /// column among `hits`, ties broken by table id.
  static std::vector<size_t> RankFromSingleColumnHits(
      const std::vector<ColumnEmbeddingIndex::ColumnHit>& hits, size_t exclude);

  /// Ranks corpus tables for a query represented by its column embeddings.
  /// `k` is the target result count; each column over-retrieves k*3
  /// candidates as in the paper. `exclude` (usually the query's own id) is
  /// dropped from results.
  std::vector<size_t> RankTables(const std::vector<std::vector<float>>& query_columns,
                                 size_t k, size_t exclude) const;

  /// Join-search variant: a single query column; tables ranked by their
  /// closest column distance.
  std::vector<size_t> RankTablesByColumn(const std::vector<float>& query_column,
                                         size_t k, size_t exclude) const;

  /// \brief Batch union/subset ranking: one RankTables result per query.
  ///
  /// `excludes` pairs with `queries` (empty means exclude nothing anywhere).
  /// Queries fan out over `pool` when given; results match the serial loop.
  std::vector<std::vector<size_t>> RankTablesBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      const std::vector<size_t>& excludes, ThreadPool* pool = nullptr) const;

  /// Batch join ranking: one RankTablesByColumn result per query column.
  std::vector<std::vector<size_t>> RankTablesByColumnBatch(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      const std::vector<size_t>& excludes, ThreadPool* pool = nullptr) const;

 private:
  const ColumnEmbeddingIndex* index_;
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_TABLE_RANKER_H_
