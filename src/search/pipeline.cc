#include "search/pipeline.h"

#include "util/logging.h"

namespace tsfm::search {

std::vector<std::vector<size_t>> RunSearch(const lakebench::SearchBenchmark& bench,
                                           const ColumnEmbedFn& embed, size_t k) {
  // Embed the whole corpus once.
  std::vector<std::vector<std::vector<float>>> all_columns(bench.tables.size());
  size_t dim = 0;
  for (size_t t = 0; t < bench.tables.size(); ++t) {
    all_columns[t] = embed(t);
    for (const auto& col : all_columns[t]) {
      if (dim == 0) dim = col.size();
      TSFM_CHECK_EQ(col.size(), dim);
    }
  }
  TSFM_CHECK_GT(dim, 0u);

  ColumnEmbeddingIndex index(dim);
  for (size_t t = 0; t < bench.tables.size(); ++t) {
    index.AddTable(t, all_columns[t]);
  }
  TableRanker ranker(&index);

  std::vector<std::vector<size_t>> ranked;
  ranked.reserve(bench.queries.size());
  for (const auto& query : bench.queries) {
    const auto& qcols = all_columns[query.table_index];
    if (query.column_index >= 0) {
      TSFM_CHECK_LT(static_cast<size_t>(query.column_index), qcols.size());
      ranked.push_back(ranker.RankTablesByColumn(
          qcols[static_cast<size_t>(query.column_index)], k, query.table_index));
    } else {
      ranked.push_back(ranker.RankTables(qcols, k, query.table_index));
    }
  }
  return ranked;
}

SearchReport EvaluateEmbeddingSearch(const lakebench::SearchBenchmark& bench,
                                     const ColumnEmbedFn& embed, size_t k_max) {
  return EvaluateSearch(RunSearch(bench, embed, k_max), bench.gold, k_max);
}

SearchReport EvaluateRankedLists(const lakebench::SearchBenchmark& bench,
                                 const std::vector<std::vector<size_t>>& ranked,
                                 size_t k_max) {
  return EvaluateSearch(ranked, bench.gold, k_max);
}

}  // namespace tsfm::search
