#include "search/pipeline.h"

#include <string>
#include <thread>

#include "search/sharded_lake_index.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tsfm::search {

std::vector<std::vector<size_t>> RunSearch(const lakebench::SearchBenchmark& bench,
                                           const ColumnEmbedFn& embed, size_t k,
                                           const SearchRunOptions& options) {
  // Embed the whole corpus once. The embed callback may share model state,
  // so embedding stays serial; ranking below is what fans out.
  std::vector<std::vector<std::vector<float>>> all_columns(bench.tables.size());
  size_t dim = 0;
  for (size_t t = 0; t < bench.tables.size(); ++t) {
    all_columns[t] = embed(t);
    for (const auto& col : all_columns[t]) {
      if (dim == 0) dim = col.size();
      TSFM_CHECK_EQ(col.size(), dim);
    }
  }
  TSFM_CHECK_GT(dim, 0u);

  // Split the query mix into join (single-column) and union/subset
  // (multi-column) batches, answer each batch in parallel, then stitch the
  // results back into query order.
  std::vector<std::vector<float>> join_queries;
  std::vector<size_t> join_excludes, join_slots;
  std::vector<std::vector<std::vector<float>>> union_queries;
  std::vector<size_t> union_excludes, union_slots;
  for (size_t q = 0; q < bench.queries.size(); ++q) {
    const auto& query = bench.queries[q];
    const auto& qcols = all_columns[query.table_index];
    if (query.column_index >= 0) {
      TSFM_CHECK_LT(static_cast<size_t>(query.column_index), qcols.size());
      join_queries.push_back(qcols[static_cast<size_t>(query.column_index)]);
      join_excludes.push_back(query.table_index);
      join_slots.push_back(q);
    } else {
      union_queries.push_back(qcols);
      union_excludes.push_back(query.table_index);
      union_slots.push_back(q);
    }
  }

  size_t threads = options.num_threads != 0
                       ? options.num_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(threads);

  std::vector<std::vector<size_t>> ranked(bench.queries.size());
  std::vector<std::vector<size_t>> join_ranked, union_ranked;
  if (options.shards > 1) {
    // Sharded path: table handles are assigned in insertion order, so the
    // global handle of table t is t and the exclude ids carry over.
    ShardedLakeIndex lake(dim, options.shards, options.index);
    for (size_t t = 0; t < bench.tables.size(); ++t) {
      lake.AddTable(std::to_string(t), all_columns[t]);
    }
    join_ranked = lake.RankJoinableBatch(join_queries, k, join_excludes, &pool);
    union_ranked = lake.RankUnionableBatch(union_queries, k, union_excludes,
                                           &pool);
  } else {
    ColumnEmbeddingIndex index(dim, options.index);
    for (size_t t = 0; t < bench.tables.size(); ++t) {
      index.AddTable(t, all_columns[t]);
    }
    TableRanker ranker(&index);
    join_ranked = ranker.RankTablesByColumnBatch(join_queries, k, join_excludes,
                                                 &pool);
    union_ranked = ranker.RankTablesBatch(union_queries, k, union_excludes,
                                          &pool);
  }
  for (size_t i = 0; i < join_slots.size(); ++i) {
    ranked[join_slots[i]] = std::move(join_ranked[i]);
  }
  for (size_t i = 0; i < union_slots.size(); ++i) {
    ranked[union_slots[i]] = std::move(union_ranked[i]);
  }
  return ranked;
}

SearchReport EvaluateEmbeddingSearch(const lakebench::SearchBenchmark& bench,
                                     const ColumnEmbedFn& embed, size_t k_max,
                                     const SearchRunOptions& options) {
  return EvaluateSearch(RunSearch(bench, embed, k_max, options), bench.gold, k_max);
}

SearchReport EvaluateRankedLists(const lakebench::SearchBenchmark& bench,
                                 const std::vector<std::vector<size_t>>& ranked,
                                 size_t k_max) {
  return EvaluateSearch(ranked, bench.gold, k_max);
}

}  // namespace tsfm::search
