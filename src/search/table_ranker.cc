#include "search/table_ranker.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace tsfm::search {

ColumnEmbeddingIndex::ColumnEmbeddingIndex(size_t dim, Metric metric)
    : index_(dim, metric) {}

void ColumnEmbeddingIndex::AddTable(size_t table_id,
                                    const std::vector<std::vector<float>>& columns) {
  for (size_t c = 0; c < columns.size(); ++c) {
    index_.Add(column_of_.size(), columns[c]);
    column_of_.emplace_back(table_id, c);
  }
}

std::vector<ColumnEmbeddingIndex::ColumnHit> ColumnEmbeddingIndex::SearchColumns(
    const std::vector<float>& query, size_t k) const {
  std::vector<ColumnHit> hits;
  for (const auto& [payload, dist] : index_.Search(query, k)) {
    const auto& [table, col] = column_of_[payload];
    hits.push_back({table, col, dist});
  }
  return hits;
}

std::vector<size_t> TableRanker::RankTables(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    size_t exclude) const {
  // Per candidate table: number of distinct query columns matched and the
  // sum of their min distances (RANK1 / RANK2).
  struct Candidate {
    size_t matched = 0;
    double distance_sum = 0.0;
  };
  std::unordered_map<size_t, Candidate> candidates;

  for (const auto& qcol : query_columns) {
    // COLUMNNEARTABLES: min distance per table among this column's hits.
    std::unordered_map<size_t, float> near_tables;
    for (const auto& hit : index_->SearchColumns(qcol, k * 3)) {
      if (hit.table_id == exclude) continue;
      auto it = near_tables.find(hit.table_id);
      if (it == near_tables.end() || hit.distance < it->second) {
        near_tables[hit.table_id] = hit.distance;
      }
    }
    for (const auto& [table, dist] : near_tables) {
      Candidate& c = candidates[table];
      c.matched += 1;
      c.distance_sum += dist;
    }
  }

  std::vector<std::pair<size_t, Candidate>> order(candidates.begin(),
                                                  candidates.end());
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second.matched != b.second.matched) {
      return a.second.matched > b.second.matched;  // RANK1
    }
    if (a.second.distance_sum != b.second.distance_sum) {
      return a.second.distance_sum < b.second.distance_sum;  // RANK2
    }
    return a.first < b.first;
  });

  std::vector<size_t> ranked;
  ranked.reserve(order.size());
  for (const auto& [table, c] : order) ranked.push_back(table);
  return ranked;
}

std::vector<size_t> TableRanker::RankTablesByColumn(
    const std::vector<float>& query_column, size_t k, size_t exclude) const {
  std::unordered_map<size_t, float> near_tables;
  for (const auto& hit : index_->SearchColumns(query_column, k * 3)) {
    if (hit.table_id == exclude) continue;
    auto it = near_tables.find(hit.table_id);
    if (it == near_tables.end() || hit.distance < it->second) {
      near_tables[hit.table_id] = hit.distance;
    }
  }
  std::vector<std::pair<size_t, float>> order(near_tables.begin(), near_tables.end());
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  std::vector<size_t> ranked;
  ranked.reserve(order.size());
  for (const auto& [table, dist] : order) ranked.push_back(table);
  return ranked;
}

}  // namespace tsfm::search
