#include "search/table_ranker.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "search/knn_index.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tsfm::search {

namespace {

// The HNSW backend stores float vectors regardless of the storage knob;
// normalizing here keeps options() honest about what was actually built
// (and keeps persisted headers from claiming sq8 for a float graph).
IndexOptions NormalizeStorage(IndexOptions options) {
  if (options.backend == IndexBackend::kHnsw) {
    options.storage = Storage::kFloat32;
  }
  return options;
}

}  // namespace

ColumnEmbeddingIndex::ColumnEmbeddingIndex(size_t dim, const IndexOptions& options)
    : options_(NormalizeStorage(options)), index_(MakeVectorIndex(dim, options_)) {}

void ColumnEmbeddingIndex::SeedSq8Codec(Sq8Codec codec) {
  auto* flat = dynamic_cast<KnnIndex*>(index_.get());
  TSFM_CHECK(flat != nullptr);
  flat->SeedSq8Codec(std::move(codec));
}

const Sq8Codec* ColumnEmbeddingIndex::sq8_codec() const {
  const auto* flat = dynamic_cast<const KnnIndex*>(index_.get());
  return flat != nullptr ? flat->sq8_codec() : nullptr;
}

void ColumnEmbeddingIndex::AddTable(size_t table_id,
                                    const std::vector<std::vector<float>>& columns) {
  for (size_t c = 0; c < columns.size(); ++c) {
    index_->Add(column_of_.size(), columns[c]);
    column_of_.emplace_back(table_id, c);
  }
}

std::vector<ColumnEmbeddingIndex::ColumnHit> ColumnEmbeddingIndex::SearchColumns(
    const std::vector<float>& query, size_t k) const {
  std::vector<ColumnHit> hits;
  for (const auto& [payload, dist] : index_->Search(query, k)) {
    const auto& [table, col] = column_of_[payload];
    hits.push_back({table, col, dist});
  }
  return hits;
}

std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>
ColumnEmbeddingIndex::SearchColumnsBatch(const std::vector<std::vector<float>>& queries,
                                         size_t k, ThreadPool* pool) const {
  std::vector<std::vector<ColumnHit>> results(queries.size());
  auto raw = index_->SearchBatch(queries, k, pool);
  for (size_t q = 0; q < raw.size(); ++q) {
    results[q].reserve(raw[q].size());
    for (const auto& [payload, dist] : raw[q]) {
      const auto& [table, col] = column_of_[payload];
      results[q].push_back({table, col, dist});
    }
  }
  return results;
}

std::vector<ColumnEmbeddingIndex::ColumnHit> TableRanker::MergeColumnHits(
    const std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>& lists,
    size_t k) {
  // Min-heap over the head of each list, keyed the same way the flat scan
  // breaks ties: (distance, table, column). Popping k times yields the
  // global top-k exactly as if the lists had been concatenated and sorted.
  using Head = std::tuple<float, size_t, size_t, size_t>;  // key..., list index
  std::priority_queue<Head, std::vector<Head>, std::greater<>> heap;
  std::vector<size_t> pos(lists.size(), 0);
  for (size_t l = 0; l < lists.size(); ++l) {
    if (!lists[l].empty()) {
      const auto& h = lists[l][0];
      heap.emplace(h.distance, h.table_id, h.column_index, l);
    }
  }
  std::vector<ColumnEmbeddingIndex::ColumnHit> merged;
  merged.reserve(k);
  while (merged.size() < k && !heap.empty()) {
    const size_t l = std::get<3>(heap.top());
    heap.pop();
    merged.push_back(lists[l][pos[l]]);
    if (++pos[l] < lists[l].size()) {
      const auto& h = lists[l][pos[l]];
      heap.emplace(h.distance, h.table_id, h.column_index, l);
    }
  }
  return merged;
}

std::vector<size_t> TableRanker::RankFromColumnHits(
    const std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>&
        per_column_hits,
    size_t exclude) {
  // Per candidate table: number of distinct query columns matched and the
  // sum of their min distances (RANK1 / RANK2).
  struct Candidate {
    size_t matched = 0;
    double distance_sum = 0.0;
  };
  std::unordered_map<size_t, Candidate> candidates;

  for (const auto& hits : per_column_hits) {
    // COLUMNNEARTABLES: min distance per table among this column's hits.
    std::unordered_map<size_t, float> near_tables;
    for (const auto& hit : hits) {
      if (hit.table_id == exclude) continue;
      auto it = near_tables.find(hit.table_id);
      if (it == near_tables.end() || hit.distance < it->second) {
        near_tables[hit.table_id] = hit.distance;
      }
    }
    for (const auto& [table, dist] : near_tables) {
      Candidate& c = candidates[table];
      c.matched += 1;
      c.distance_sum += dist;
    }
  }

  std::vector<std::pair<size_t, Candidate>> order(candidates.begin(),
                                                  candidates.end());
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second.matched != b.second.matched) {
      return a.second.matched > b.second.matched;  // RANK1
    }
    if (a.second.distance_sum != b.second.distance_sum) {
      return a.second.distance_sum < b.second.distance_sum;  // RANK2
    }
    return a.first < b.first;
  });

  std::vector<size_t> ranked;
  ranked.reserve(order.size());
  for (const auto& [table, c] : order) ranked.push_back(table);
  return ranked;
}

std::vector<size_t> TableRanker::RankFromSingleColumnHits(
    const std::vector<ColumnEmbeddingIndex::ColumnHit>& hits, size_t exclude) {
  std::unordered_map<size_t, float> near_tables;
  for (const auto& hit : hits) {
    if (hit.table_id == exclude) continue;
    auto it = near_tables.find(hit.table_id);
    if (it == near_tables.end() || hit.distance < it->second) {
      near_tables[hit.table_id] = hit.distance;
    }
  }
  std::vector<std::pair<size_t, float>> order(near_tables.begin(), near_tables.end());
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  std::vector<size_t> ranked;
  ranked.reserve(order.size());
  for (const auto& [table, dist] : order) ranked.push_back(table);
  return ranked;
}

std::vector<size_t> TableRanker::RankTables(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    size_t exclude) const {
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> per_column_hits;
  per_column_hits.reserve(query_columns.size());
  for (const auto& qcol : query_columns) {
    per_column_hits.push_back(index_->SearchColumns(qcol, k * 3));
  }
  return RankFromColumnHits(per_column_hits, exclude);
}

std::vector<size_t> TableRanker::RankTablesByColumn(
    const std::vector<float>& query_column, size_t k, size_t exclude) const {
  return RankFromSingleColumnHits(index_->SearchColumns(query_column, k * 3),
                                  exclude);
}

std::vector<std::vector<size_t>> TableRanker::RankTablesBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    const std::vector<size_t>& excludes, ThreadPool* pool) const {
  std::vector<std::vector<size_t>> results(queries.size());
  auto exclude_of = [&](size_t q) {
    return q < excludes.size() ? excludes[q] : SIZE_MAX;
  };
  // Flatten every query's columns into ONE column-search batch so the
  // whole coalesced group reaches the index's multi-query scan together —
  // batching per query would hand the kernel tiles of one or two columns.
  // Per-column hit lists are bit-identical to per-query SearchColumns
  // (SearchBatch guarantees it), so the per-query ranking is unchanged.
  std::vector<std::vector<float>> flat;
  std::vector<size_t> offset(queries.size() + 1, 0);
  for (size_t q = 0; q < queries.size(); ++q) {
    offset[q + 1] = offset[q] + queries[q].size();
  }
  flat.reserve(offset.back());
  for (const auto& query : queries) {
    flat.insert(flat.end(), query.begin(), query.end());
  }
  auto hits = index_->SearchColumnsBatch(flat, k * 3, pool);
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> per_column(
        std::make_move_iterator(hits.begin() + offset[q]),
        std::make_move_iterator(hits.begin() + offset[q + 1]));
    results[q] = RankFromColumnHits(per_column, exclude_of(q));
  }
  return results;
}

std::vector<std::vector<size_t>> TableRanker::RankTablesByColumnBatch(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    const std::vector<size_t>& excludes, ThreadPool* pool) const {
  std::vector<std::vector<size_t>> results(query_columns.size());
  auto exclude_of = [&](size_t q) {
    return q < excludes.size() ? excludes[q] : SIZE_MAX;
  };
  auto hits = index_->SearchColumnsBatch(query_columns, k * 3, pool);
  for (size_t q = 0; q < query_columns.size(); ++q) {
    results[q] = RankFromSingleColumnHits(hits[q], exclude_of(q));
  }
  return results;
}

}  // namespace tsfm::search
