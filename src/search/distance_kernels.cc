#include "search/distance_kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <queue>
#include <utility>

#include "search/quantizer.h"

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace tsfm::search {

namespace {

// ------------------------------------------------------------------ scalar
// The reference set. Four independent accumulators: deterministic,
// autovectorizer-friendly, and closer to the SIMD lane sums than a single
// serial accumulator, which keeps the 1e-4 agreement contract comfortable.

float DotScalar(const float* a, const float* b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

float L2SqScalar(const float* a, const float* b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

float CosineScalar(const float* a, const float* b, size_t n) {
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return CosineDistanceFromDot(dot, std::sqrt(na), std::sqrt(nb));
}

void DotManyScalar(const float* query, const float* rows, size_t num_rows,
                   size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = DotScalar(query, rows + r * dim, dim);
  }
}

void L2SqManyScalar(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = L2SqScalar(query, rows + r * dim, dim);
  }
}

// Asymmetric SQ8 references: float query, raw uint8 rows. Same
// four-accumulator shape as the float kernels so the SIMD agreement
// contract (1e-4 relative) carries over unchanged.

float DotSq8Scalar(const float* q, const uint8_t* row, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += q[i] * static_cast<float>(row[i]);
    s1 += q[i + 1] * static_cast<float>(row[i + 1]);
    s2 += q[i + 2] * static_cast<float>(row[i + 2]);
    s3 += q[i + 3] * static_cast<float>(row[i + 3]);
  }
  for (; i < n; ++i) s0 += q[i] * static_cast<float>(row[i]);
  return (s0 + s1) + (s2 + s3);
}

float L2SqSq8Scalar(const float* q, const uint8_t* row, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = q[i] - static_cast<float>(row[i]);
    const float d1 = q[i + 1] - static_cast<float>(row[i + 1]);
    const float d2 = q[i + 2] - static_cast<float>(row[i + 2]);
    const float d3 = q[i + 3] - static_cast<float>(row[i + 3]);
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const float d = q[i] - static_cast<float>(row[i]);
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

void DotManySq8Scalar(const float* query, const uint8_t* rows, size_t num_rows,
                      size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = DotSq8Scalar(query, rows + r * dim, dim);
  }
}

void L2SqManySq8Scalar(const float* query, const uint8_t* rows,
                       size_t num_rows, size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = L2SqSq8Scalar(query, rows + r * dim, dim);
  }
}

// Multi-query reference kernels. The tile walks a block of rows for every
// query before moving on, so the row block stays hot in L1 across the
// whole query batch; within a (query, row) pair the arithmetic is the
// exact pairwise kernel, which keeps every value bit-identical to the
// *_many kernels above (the contract ScanTopKMulti depends on).
constexpr size_t kMultiRowTile = 4;

void DotMultiScalar(const float* queries, size_t num_queries,
                    const float* rows, size_t num_rows, size_t dim,
                    float* out) {
  for (size_t base = 0; base < num_rows; base += kMultiRowTile) {
    const size_t end = std::min(num_rows, base + kMultiRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const float* query = queries + q * dim;
      for (size_t r = base; r < end; ++r) {
        out[q * num_rows + r] = DotScalar(query, rows + r * dim, dim);
      }
    }
  }
}

void L2SqMultiScalar(const float* queries, size_t num_queries,
                     const float* rows, size_t num_rows, size_t dim,
                     float* out) {
  for (size_t base = 0; base < num_rows; base += kMultiRowTile) {
    const size_t end = std::min(num_rows, base + kMultiRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const float* query = queries + q * dim;
      for (size_t r = base; r < end; ++r) {
        out[q * num_rows + r] = L2SqScalar(query, rows + r * dim, dim);
      }
    }
  }
}

void DotMultiSq8Scalar(const float* queries, size_t num_queries,
                       const uint8_t* rows, size_t num_rows, size_t dim,
                       float* out) {
  for (size_t base = 0; base < num_rows; base += kMultiRowTile) {
    const size_t end = std::min(num_rows, base + kMultiRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const float* query = queries + q * dim;
      for (size_t r = base; r < end; ++r) {
        out[q * num_rows + r] = DotSq8Scalar(query, rows + r * dim, dim);
      }
    }
  }
}

void L2SqMultiSq8Scalar(const float* queries, size_t num_queries,
                        const uint8_t* rows, size_t num_rows, size_t dim,
                        float* out) {
  for (size_t base = 0; base < num_rows; base += kMultiRowTile) {
    const size_t end = std::min(num_rows, base + kMultiRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const float* query = queries + q * dim;
      for (size_t r = base; r < end; ++r) {
        out[q * num_rows + r] = L2SqSq8Scalar(query, rows + r * dim, dim);
      }
    }
  }
}

constexpr KernelDispatch kScalarKernels = {
    "scalar",      DotScalar,        L2SqScalar,        CosineScalar,
    DotManyScalar, L2SqManyScalar,   DotManySq8Scalar,  L2SqManySq8Scalar,
    DotMultiScalar,    L2SqMultiScalar,
    DotMultiSq8Scalar, L2SqMultiSq8Scalar,
};

// -------------------------------------------------------------------- NEON
// aarch64 always has Advanced SIMD, so the kernels live in this TU behind
// the arch guard — no separate flags or runtime probe needed.
#if defined(__aarch64__)

float DotNeon(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  if (i + 4 <= n) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    i += 4;
  }
  float s = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

float L2SqNeon(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    const float32x4_t d1 = vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc0 = vfmaq_f32(acc0, d0, d0);
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  if (i + 4 <= n) {
    const float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d, d);
    i += 4;
  }
  float s = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float CosineNeon(const float* a, const float* b, size_t n) {
  float32x4_t dot = vdupq_n_f32(0.0f), na = vdupq_n_f32(0.0f),
              nb = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t va = vld1q_f32(a + i);
    const float32x4_t vb = vld1q_f32(b + i);
    dot = vfmaq_f32(dot, va, vb);
    na = vfmaq_f32(na, va, va);
    nb = vfmaq_f32(nb, vb, vb);
  }
  float sdot = vaddvq_f32(dot), sna = vaddvq_f32(na), snb = vaddvq_f32(nb);
  for (; i < n; ++i) {
    sdot += a[i] * b[i];
    sna += a[i] * a[i];
    snb += b[i] * b[i];
  }
  return CosineDistanceFromDot(sdot, std::sqrt(sna), std::sqrt(snb));
}

void DotManyNeon(const float* query, const float* rows, size_t num_rows,
                 size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = DotNeon(query, rows + r * dim, dim);
  }
}

void L2SqManyNeon(const float* query, const float* rows, size_t num_rows,
                  size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = L2SqNeon(query, rows + r * dim, dim);
  }
}

// The float multi kernels loop DotManyNeon/L2SqManyNeon per query instead
// of tiling queries into the NEON registers: a genuine register tile would
// change the per-pair accumulation order vs. DotNeon and break the
// bit-identity contract with per-query ScanTopK on aarch64. The sq8 multi
// kernels alias the scalar tile for the same reason the *_many_sq8 entries
// alias scalar below: per-pair values must match that dispatch's own
// single-query kernels.
void DotMultiNeon(const float* queries, size_t num_queries, const float* rows,
                  size_t num_rows, size_t dim, float* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    DotManyNeon(queries + q * dim, rows, num_rows, dim, out + q * num_rows);
  }
}

void L2SqMultiNeon(const float* queries, size_t num_queries,
                   const float* rows, size_t num_rows, size_t dim,
                   float* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    L2SqManyNeon(queries + q * dim, rows, num_rows, dim, out + q * num_rows);
  }
}

// The sq8 batch kernels reuse the scalar reference on NEON for now: the
// widening u8 -> f32 ladder costs most of what the float FMA saves at
// these dims, and the bandwidth win (4x smaller rows) is ISA-independent.
constexpr KernelDispatch kNeonKernels = {
    "neon",      DotNeon,      L2SqNeon,         CosineNeon,
    DotManyNeon, L2SqManyNeon, DotManySq8Scalar, L2SqManySq8Scalar,
    DotMultiNeon,      L2SqMultiNeon,
    DotMultiSq8Scalar, L2SqMultiSq8Scalar,
};

#endif  // __aarch64__

// --------------------------------------------------------------- selection

bool ForceScalarFromEnv() {
  const char* v = std::getenv("LAKS_FORCE_SCALAR");
  // Any non-empty value other than "0" forces scalar.
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const KernelDispatch* SelectKernels(bool force_scalar) {
  if (force_scalar) return &kScalarKernels;
#if defined(TSFM_HAVE_AVX2_KERNELS)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return internal::Avx2Kernels();
  }
#endif
#if defined(__aarch64__)
  return &kNeonKernels;
#else
  return &kScalarKernels;
#endif
}

std::atomic<const KernelDispatch*> g_active{nullptr};

}  // namespace

const KernelDispatch& Kernels() {
  const KernelDispatch* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    // Selection is deterministic, so a racing first call resolves to the
    // same set whichever store wins.
    const KernelDispatch* selected = SelectKernels(ForceScalarFromEnv());
    const KernelDispatch* expected = nullptr;
    g_active.compare_exchange_strong(expected, selected,
                                     std::memory_order_acq_rel);
    active = g_active.load(std::memory_order_acquire);
  }
  return *active;
}

const KernelDispatch& ScalarKernels() { return kScalarKernels; }

const KernelDispatch& BestKernels() {
  return *SelectKernels(/*force_scalar=*/false);
}

namespace internal {

void OverrideKernelsForTest(const KernelDispatch* kernels) {
  g_active.store(kernels != nullptr ? kernels
                                    : SelectKernels(ForceScalarFromEnv()),
                 std::memory_order_release);
}

bool ForceScalarFromEnvForTest() { return ForceScalarFromEnv(); }

}  // namespace internal

float Norm(const float* a, size_t n) {
  return std::sqrt(Kernels().dot(a, a, n));
}

std::vector<ScanHit> ScanTopK(const KernelDispatch& kernels, const float* query,
                              const float* rows, const float* row_norms,
                              size_t num_rows, size_t dim, Metric metric,
                              size_t k) {
  if (k == 0 || num_rows == 0) return {};
  const bool cosine = metric == Metric::kCosine;
  const float query_norm =
      cosine ? std::sqrt(kernels.dot(query, query, dim)) : 0.0f;

  // Distances are produced a block at a time so the row loop stays inside
  // the kernel TU; the heap keeps the best k as (distance, row) with the
  // worst kept candidate on top, ties resolved toward the lower row.
  using Entry = std::pair<float, size_t>;
  std::priority_queue<Entry> heap;
  constexpr size_t kBlockRows = 512;
  std::vector<float> block(std::min(num_rows, kBlockRows));
  for (size_t base = 0; base < num_rows; base += kBlockRows) {
    const size_t count = std::min(kBlockRows, num_rows - base);
    if (cosine) {
      kernels.dot_many(query, rows + base * dim, count, dim, block.data());
    } else {
      kernels.l2sq_many(query, rows + base * dim, count, dim, block.data());
    }
    for (size_t i = 0; i < count; ++i) {
      const size_t r = base + i;
      // L2 takes the root here, before the heap: candidates must be
      // selected and tie-broken on the distances we report, or two squared
      // values that round to the same float sqrt would order by row
      // inconsistently with the (distance, row) contract.
      const float dist =
          cosine ? CosineDistanceFromDot(block[i], row_norms[r], query_norm)
                 : std::sqrt(block[i]);
      if (heap.size() < k) {
        heap.emplace(dist, r);
      } else if (Entry(dist, r) < heap.top()) {
        heap.pop();
        heap.emplace(dist, r);
      }
    }
  }

  std::vector<ScanHit> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = {heap.top().first, heap.top().second};
    heap.pop();
  }
  return out;
}

std::vector<ScanHit> ScanTopK(const float* query, const float* rows,
                              const float* row_norms, size_t num_rows,
                              size_t dim, Metric metric, size_t k) {
  return ScanTopK(Kernels(), query, rows, row_norms, num_rows, dim, metric, k);
}

std::vector<ScanHit> ScanTopKSq8(const KernelDispatch& kernels,
                                 const float* query, const uint8_t* codes,
                                 const Sq8Codec& codec, const float* row_norms,
                                 size_t num_rows, Metric metric, size_t k) {
  if (k == 0 || num_rows == 0) return {};
  const size_t dim = codec.dim();
  const bool cosine = metric == Metric::kCosine;
  const float* scale = codec.scale().data();
  const float* offset = codec.offset().data();

  // Query pre-transform: fold the affine calibration out of the inner
  // loop so the u8 kernels stay codec-agnostic.
  //   kCosine: dot(q, decode(u)) = sum q_i*offset_i + sum (q_i*scale_i)*u_i
  //            -> prep = q (.) scale, bias added back per row; exact in
  //            decoded space up to float rounding.
  //   kL2:     prep_i = (q_i - offset_i) / scale_i makes the kernel's
  //            sum (prep_i - u_i)^2 a scale-weighted proxy for the decoded
  //            L2 — monotone enough to pick candidates, never reported
  //            (the rescore below replaces it with the exact distance).
  std::vector<float> prep(dim);
  float bias = 0.0f;
  if (cosine) {
    for (size_t i = 0; i < dim; ++i) {
      prep[i] = query[i] * scale[i];
      bias += query[i] * offset[i];
    }
  } else {
    for (size_t i = 0; i < dim; ++i) {
      prep[i] = (query[i] - offset[i]) / scale[i];
    }
  }
  const float query_norm =
      cosine ? std::sqrt(kernels.dot(query, query, dim)) : 0.0f;

  // Phase 1: scan the u8 rows into a top-C candidate heap. C over-selects
  // relative to k so quantization noise at the k boundary cannot evict a
  // true top-k row before the rescore sees it.
  const size_t candidates = std::min(num_rows, std::max<size_t>(4 * k, 64));
  using Entry = std::pair<float, size_t>;
  std::priority_queue<Entry> heap;
  constexpr size_t kBlockRows = 512;
  std::vector<float> block(std::min(num_rows, kBlockRows));
  for (size_t base = 0; base < num_rows; base += kBlockRows) {
    const size_t count = std::min(kBlockRows, num_rows - base);
    if (cosine) {
      kernels.dot_many_sq8(prep.data(), codes + base * dim, count, dim,
                           block.data());
    } else {
      kernels.l2sq_many_sq8(prep.data(), codes + base * dim, count, dim,
                            block.data());
    }
    for (size_t i = 0; i < count; ++i) {
      const size_t r = base + i;
      const float score =
          cosine ? CosineDistanceFromDot(bias + block[i], row_norms[r],
                                         query_norm)
                 : block[i];
      if (heap.size() < candidates) {
        heap.emplace(score, r);
      } else if (Entry(score, r) < heap.top()) {
        heap.pop();
        heap.emplace(score, r);
      }
    }
  }

  // Phase 2: exact rescore. Decode each candidate and rank it with the
  // float pairwise kernels, so the distances (and the (distance, row)
  // order) match a float ScanTopK over the decoded rows.
  std::vector<float> decoded(dim);
  std::vector<ScanHit> rescored;
  rescored.reserve(heap.size());
  while (!heap.empty()) {
    const size_t r = heap.top().second;
    heap.pop();
    codec.DecodeRow(codes + r * dim, decoded.data());
    const float dist =
        cosine ? CosineDistanceFromDot(kernels.dot(query, decoded.data(), dim),
                                       row_norms[r], query_norm)
               : std::sqrt(kernels.l2sq(query, decoded.data(), dim));
    rescored.push_back({dist, r});
  }
  std::sort(rescored.begin(), rescored.end(),
            [](const ScanHit& a, const ScanHit& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.row < b.row;
            });
  if (rescored.size() > k) rescored.resize(k);
  return rescored;
}

std::vector<ScanHit> ScanTopKSq8(const float* query, const uint8_t* codes,
                                 const Sq8Codec& codec, const float* row_norms,
                                 size_t num_rows, Metric metric, size_t k) {
  return ScanTopKSq8(Kernels(), query, codes, codec, row_norms, num_rows,
                     metric, k);
}

namespace {

// Shared heap scaffolding of the multi-query scans: one bounded
// (distance, row) max-heap per query, fed in ascending row order with the
// same insert/evict logic as the single-query scans — so given bit-equal
// block values the kept rows and tie-breaks are bit-equal too.
using HeapEntry = std::pair<float, size_t>;
using TopKHeap = std::priority_queue<HeapEntry>;

inline void HeapPush(TopKHeap& heap, size_t cap, float dist, size_t row) {
  if (heap.size() < cap) {
    heap.emplace(dist, row);
  } else if (HeapEntry(dist, row) < heap.top()) {
    heap.pop();
    heap.emplace(dist, row);
  }
}

std::vector<ScanHit> DrainHeapSorted(TopKHeap& heap) {
  std::vector<ScanHit> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = {heap.top().first, heap.top().second};
    heap.pop();
  }
  return out;
}

}  // namespace

std::vector<std::vector<ScanHit>> ScanTopKMulti(
    const KernelDispatch& kernels, const float* queries, size_t num_queries,
    const float* rows, const float* row_norms, size_t num_rows, size_t dim,
    Metric metric, size_t k) {
  std::vector<std::vector<ScanHit>> out(num_queries);
  if (num_queries == 0 || k == 0 || num_rows == 0) return out;
  const bool cosine = metric == Metric::kCosine;
  std::vector<float> query_norms(cosine ? num_queries : 0);
  if (cosine) {
    for (size_t q = 0; q < num_queries; ++q) {
      const float* query = queries + q * dim;
      query_norms[q] = std::sqrt(kernels.dot(query, query, dim));
    }
  }

  // Same 512-row blocking as ScanTopK — the block boundaries are part of
  // the bit-identity contract (they decide which rows share a kernel
  // call). Each block is loaded from memory once for all queries; the
  // heaps then consume it query-major, in ascending row order per query.
  std::vector<TopKHeap> heaps(num_queries);
  constexpr size_t kBlockRows = 512;
  std::vector<float> block(num_queries * std::min(num_rows, kBlockRows));
  for (size_t base = 0; base < num_rows; base += kBlockRows) {
    const size_t count = std::min(kBlockRows, num_rows - base);
    if (cosine) {
      kernels.dot_multi(queries, num_queries, rows + base * dim, count, dim,
                        block.data());
    } else {
      kernels.l2sq_multi(queries, num_queries, rows + base * dim, count, dim,
                         block.data());
    }
    for (size_t q = 0; q < num_queries; ++q) {
      const float* vals = block.data() + q * count;
      for (size_t i = 0; i < count; ++i) {
        const size_t r = base + i;
        const float dist =
            cosine ? CosineDistanceFromDot(vals[i], row_norms[r],
                                           query_norms[q])
                   : std::sqrt(vals[i]);
        HeapPush(heaps[q], k, dist, r);
      }
    }
  }

  for (size_t q = 0; q < num_queries; ++q) out[q] = DrainHeapSorted(heaps[q]);
  return out;
}

std::vector<std::vector<ScanHit>> ScanTopKMulti(
    const float* queries, size_t num_queries, const float* rows,
    const float* row_norms, size_t num_rows, size_t dim, Metric metric,
    size_t k) {
  return ScanTopKMulti(Kernels(), queries, num_queries, rows, row_norms,
                       num_rows, dim, metric, k);
}

std::vector<std::vector<ScanHit>> ScanTopKMultiSq8(
    const KernelDispatch& kernels, const float* queries, size_t num_queries,
    const uint8_t* codes, const Sq8Codec& codec, const float* row_norms,
    size_t num_rows, Metric metric, size_t k) {
  std::vector<std::vector<ScanHit>> out(num_queries);
  if (num_queries == 0 || k == 0 || num_rows == 0) return out;
  const size_t dim = codec.dim();
  const bool cosine = metric == Metric::kCosine;
  const float* scale = codec.scale().data();
  const float* offset = codec.offset().data();

  // Per-query pre-transform, packed row-major so the candidate scan can
  // stream all prepared queries through one multi kernel call per block.
  // The per-query arithmetic is exactly ScanTopKSq8's.
  std::vector<float> prep(num_queries * dim);
  std::vector<float> biases(cosine ? num_queries : 0, 0.0f);
  std::vector<float> query_norms(cosine ? num_queries : 0, 0.0f);
  for (size_t q = 0; q < num_queries; ++q) {
    const float* query = queries + q * dim;
    float* p = prep.data() + q * dim;
    if (cosine) {
      float bias = 0.0f;
      for (size_t i = 0; i < dim; ++i) {
        p[i] = query[i] * scale[i];
        bias += query[i] * offset[i];
      }
      biases[q] = bias;
      query_norms[q] = std::sqrt(kernels.dot(query, query, dim));
    } else {
      for (size_t i = 0; i < dim; ++i) {
        p[i] = (query[i] - offset[i]) / scale[i];
      }
    }
  }

  // Phase 1: one blocked pass over the u8 rows feeding a top-C candidate
  // heap per query (same C and tie-breaks as ScanTopKSq8).
  const size_t candidates = std::min(num_rows, std::max<size_t>(4 * k, 64));
  std::vector<TopKHeap> heaps(num_queries);
  constexpr size_t kBlockRows = 512;
  std::vector<float> block(num_queries * std::min(num_rows, kBlockRows));
  for (size_t base = 0; base < num_rows; base += kBlockRows) {
    const size_t count = std::min(kBlockRows, num_rows - base);
    if (cosine) {
      kernels.dot_multi_sq8(prep.data(), num_queries, codes + base * dim,
                            count, dim, block.data());
    } else {
      kernels.l2sq_multi_sq8(prep.data(), num_queries, codes + base * dim,
                             count, dim, block.data());
    }
    for (size_t q = 0; q < num_queries; ++q) {
      const float* vals = block.data() + q * count;
      for (size_t i = 0; i < count; ++i) {
        const size_t r = base + i;
        const float score =
            cosine ? CosineDistanceFromDot(biases[q] + vals[i], row_norms[r],
                                           query_norms[q])
                   : vals[i];
        HeapPush(heaps[q], candidates, score, r);
      }
    }
  }

  // Phase 2: per-query exact rescore, identical to ScanTopKSq8 — each
  // query decodes its own candidate set (the sets differ per query, so
  // there is nothing to share across the batch here).
  std::vector<float> decoded(dim);
  for (size_t q = 0; q < num_queries; ++q) {
    const float* query = queries + q * dim;
    TopKHeap& heap = heaps[q];
    std::vector<ScanHit> rescored;
    rescored.reserve(heap.size());
    while (!heap.empty()) {
      const size_t r = heap.top().second;
      heap.pop();
      codec.DecodeRow(codes + r * dim, decoded.data());
      const float dist =
          cosine ? CosineDistanceFromDot(
                       kernels.dot(query, decoded.data(), dim), row_norms[r],
                       query_norms[q])
                 : std::sqrt(kernels.l2sq(query, decoded.data(), dim));
      rescored.push_back({dist, r});
    }
    std::sort(rescored.begin(), rescored.end(),
              [](const ScanHit& a, const ScanHit& b) {
                return a.distance != b.distance ? a.distance < b.distance
                                                : a.row < b.row;
              });
    if (rescored.size() > k) rescored.resize(k);
    out[q] = std::move(rescored);
  }
  return out;
}

std::vector<std::vector<ScanHit>> ScanTopKMultiSq8(
    const float* queries, size_t num_queries, const uint8_t* codes,
    const Sq8Codec& codec, const float* row_norms, size_t num_rows,
    Metric metric, size_t k) {
  return ScanTopKMultiSq8(Kernels(), queries, num_queries, codes, codec,
                          row_norms, num_rows, metric, k);
}

}  // namespace tsfm::search
