#include "search/distance_kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <queue>
#include <utility>

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace tsfm::search {

namespace {

// ------------------------------------------------------------------ scalar
// The reference set. Four independent accumulators: deterministic,
// autovectorizer-friendly, and closer to the SIMD lane sums than a single
// serial accumulator, which keeps the 1e-4 agreement contract comfortable.

float DotScalar(const float* a, const float* b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

float L2SqScalar(const float* a, const float* b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

float CosineScalar(const float* a, const float* b, size_t n) {
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return CosineDistanceFromDot(dot, std::sqrt(na), std::sqrt(nb));
}

void DotManyScalar(const float* query, const float* rows, size_t num_rows,
                   size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = DotScalar(query, rows + r * dim, dim);
  }
}

void L2SqManyScalar(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = L2SqScalar(query, rows + r * dim, dim);
  }
}

constexpr KernelDispatch kScalarKernels = {
    "scalar", DotScalar, L2SqScalar, CosineScalar, DotManyScalar, L2SqManyScalar,
};

// -------------------------------------------------------------------- NEON
// aarch64 always has Advanced SIMD, so the kernels live in this TU behind
// the arch guard — no separate flags or runtime probe needed.
#if defined(__aarch64__)

float DotNeon(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  if (i + 4 <= n) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    i += 4;
  }
  float s = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

float L2SqNeon(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    const float32x4_t d1 = vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc0 = vfmaq_f32(acc0, d0, d0);
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  if (i + 4 <= n) {
    const float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d, d);
    i += 4;
  }
  float s = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float CosineNeon(const float* a, const float* b, size_t n) {
  float32x4_t dot = vdupq_n_f32(0.0f), na = vdupq_n_f32(0.0f),
              nb = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t va = vld1q_f32(a + i);
    const float32x4_t vb = vld1q_f32(b + i);
    dot = vfmaq_f32(dot, va, vb);
    na = vfmaq_f32(na, va, va);
    nb = vfmaq_f32(nb, vb, vb);
  }
  float sdot = vaddvq_f32(dot), sna = vaddvq_f32(na), snb = vaddvq_f32(nb);
  for (; i < n; ++i) {
    sdot += a[i] * b[i];
    sna += a[i] * a[i];
    snb += b[i] * b[i];
  }
  return CosineDistanceFromDot(sdot, std::sqrt(sna), std::sqrt(snb));
}

void DotManyNeon(const float* query, const float* rows, size_t num_rows,
                 size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = DotNeon(query, rows + r * dim, dim);
  }
}

void L2SqManyNeon(const float* query, const float* rows, size_t num_rows,
                  size_t dim, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = L2SqNeon(query, rows + r * dim, dim);
  }
}

constexpr KernelDispatch kNeonKernels = {
    "neon", DotNeon, L2SqNeon, CosineNeon, DotManyNeon, L2SqManyNeon,
};

#endif  // __aarch64__

// --------------------------------------------------------------- selection

bool ForceScalarFromEnv() {
  const char* v = std::getenv("LAKS_FORCE_SCALAR");
  // Any non-empty value other than "0" forces scalar.
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const KernelDispatch* SelectKernels(bool force_scalar) {
  if (force_scalar) return &kScalarKernels;
#if defined(TSFM_HAVE_AVX2_KERNELS)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return internal::Avx2Kernels();
  }
#endif
#if defined(__aarch64__)
  return &kNeonKernels;
#else
  return &kScalarKernels;
#endif
}

std::atomic<const KernelDispatch*> g_active{nullptr};

}  // namespace

const KernelDispatch& Kernels() {
  const KernelDispatch* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    // Selection is deterministic, so a racing first call resolves to the
    // same set whichever store wins.
    const KernelDispatch* selected = SelectKernels(ForceScalarFromEnv());
    const KernelDispatch* expected = nullptr;
    g_active.compare_exchange_strong(expected, selected,
                                     std::memory_order_acq_rel);
    active = g_active.load(std::memory_order_acquire);
  }
  return *active;
}

const KernelDispatch& ScalarKernels() { return kScalarKernels; }

const KernelDispatch& BestKernels() {
  return *SelectKernels(/*force_scalar=*/false);
}

namespace internal {

void OverrideKernelsForTest(const KernelDispatch* kernels) {
  g_active.store(kernels != nullptr ? kernels
                                    : SelectKernels(ForceScalarFromEnv()),
                 std::memory_order_release);
}

}  // namespace internal

float Norm(const float* a, size_t n) {
  return std::sqrt(Kernels().dot(a, a, n));
}

std::vector<ScanHit> ScanTopK(const KernelDispatch& kernels, const float* query,
                              const float* rows, const float* row_norms,
                              size_t num_rows, size_t dim, Metric metric,
                              size_t k) {
  if (k == 0 || num_rows == 0) return {};
  const bool cosine = metric == Metric::kCosine;
  const float query_norm =
      cosine ? std::sqrt(kernels.dot(query, query, dim)) : 0.0f;

  // Distances are produced a block at a time so the row loop stays inside
  // the kernel TU; the heap keeps the best k as (distance, row) with the
  // worst kept candidate on top, ties resolved toward the lower row.
  using Entry = std::pair<float, size_t>;
  std::priority_queue<Entry> heap;
  constexpr size_t kBlockRows = 512;
  std::vector<float> block(std::min(num_rows, kBlockRows));
  for (size_t base = 0; base < num_rows; base += kBlockRows) {
    const size_t count = std::min(kBlockRows, num_rows - base);
    if (cosine) {
      kernels.dot_many(query, rows + base * dim, count, dim, block.data());
    } else {
      kernels.l2sq_many(query, rows + base * dim, count, dim, block.data());
    }
    for (size_t i = 0; i < count; ++i) {
      const size_t r = base + i;
      // L2 takes the root here, before the heap: candidates must be
      // selected and tie-broken on the distances we report, or two squared
      // values that round to the same float sqrt would order by row
      // inconsistently with the (distance, row) contract.
      const float dist =
          cosine ? CosineDistanceFromDot(block[i], row_norms[r], query_norm)
                 : std::sqrt(block[i]);
      if (heap.size() < k) {
        heap.emplace(dist, r);
      } else if (Entry(dist, r) < heap.top()) {
        heap.pop();
        heap.emplace(dist, r);
      }
    }
  }

  std::vector<ScanHit> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = {heap.top().first, heap.top().second};
    heap.pop();
  }
  return out;
}

std::vector<ScanHit> ScanTopK(const float* query, const float* rows,
                              const float* row_norms, size_t num_rows,
                              size_t dim, Metric metric, size_t k) {
  return ScanTopK(Kernels(), query, rows, row_norms, num_rows, dim, metric, k);
}

}  // namespace tsfm::search
