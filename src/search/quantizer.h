// SQ8 scalar quantization: the row codec behind the kFlat backend's
// compressed storage option (IndexOptions::storage == Storage::kSq8).
//
// A codec is a per-dimension affine map trained from data: dimension i
// stores offset[i] (the calibration minimum) and scale[i] (range / 255),
// and a float row encodes as one byte per dimension,
//
//   code[i] = clamp(round((row[i] - offset[i]) / scale[i]), 0, 255)
//   decode(code)[i] = offset[i] + scale[i] * code[i]
//
// so rows shrink 4x and the round-trip error is at most scale[i] / 2 per
// dimension for values inside the calibrated range (values outside clamp
// to the range edge). A dimension with zero calibrated range (constant, or
// no training data) gets scale 1 so decode reproduces the offset exactly.
//
// The codec owns the affine map only; the asymmetric float-query x
// uint8-row kernels live in the DistanceKernel dispatch
// (distance_kernels.h: dot_many_sq8 / l2sq_many_sq8 and ScanTopKSq8), and
// the quantized index storage lives in KnnIndex. Persistence is a tagged
// "CSQ8" section embedded in the LAK2 / FSQ8 images so calibration
// survives save/load bit-exactly.
#ifndef TSFM_SEARCH_QUANTIZER_H_
#define TSFM_SEARCH_QUANTIZER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/status.h"

namespace tsfm::search {

/// \brief Per-dimension affine SQ8 codec (see file comment for the layout).
class Sq8Codec {
 public:
  /// Binary stream tag of a persisted codec section ("CSQ8").
  static constexpr uint32_t kSectionTag = 0x38515343;

  Sq8Codec() = default;

  /// \brief Calibrates a codec from `num_rows` row-major training rows.
  ///
  /// Per-dimension min/max over the data; zero rows (or a constant
  /// dimension) yields offset 0 (resp. the constant) with scale 1, so
  /// encode maps everything to code 0 and decode returns the offset.
  static Sq8Codec Train(const float* rows, size_t num_rows, size_t dim);

  /// Rebuilds a codec from persisted calibration arrays (sizes must match
  /// and every scale must be positive and finite).
  static Result<Sq8Codec> FromParts(std::vector<float> scale,
                                    std::vector<float> offset);

  bool trained() const { return !scale_.empty(); }
  size_t dim() const { return scale_.size(); }
  const std::vector<float>& scale() const { return scale_; }
  const std::vector<float>& offset() const { return offset_; }

  /// Encodes one row of dim() floats into dim() bytes.
  void EncodeRow(const float* row, uint8_t* code) const;

  /// Decodes one row of dim() bytes into dim() floats.
  void DecodeRow(const uint8_t* code, float* out) const;

  /// L2 norm of the decoded row — what the cosine scan caches per row.
  float DecodedNorm(const uint8_t* code) const;

  /// Writes the tagged calibration section (kSectionTag, dim, scale[],
  /// offset[]).
  Status Save(std::ostream& out) const;

  /// Reads a section written by Save; `expected_dim` guards against a
  /// codec that disagrees with the surrounding index image.
  static Result<Sq8Codec> Load(std::istream& in, size_t expected_dim);

 private:
  std::vector<float> scale_;   // per dimension, always > 0
  std::vector<float> offset_;  // per dimension
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_QUANTIZER_H_
