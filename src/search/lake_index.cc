#include "search/lake_index.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <utility>

#include "search/quantizer.h"
#include "search/stream_io.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tsfm::search {

using io::ReadPod;
using io::WritePod;

namespace {

constexpr uint32_t kMagicV1 = 0x4c414b45;  // "LAKE" — legacy headerless format
constexpr uint32_t kMagicV2 = 0x4c414b32;  // "LAK2" — versioned header
// Version 2: backend/metric/hnsw header. Version 3 adds a storage word to
// the header and an Sq8Codec calibration section ("CSQ8") before the table
// records. Version 4 adds a churn section (base table count + tombstone
// list) between the header and the table records, and is written only for
// lakes with pending deltas or tombstones. Float32 unchurned indexes still
// write version 2 — byte-identical to what older readers expect — and
// unchurned sq8 keeps writing version 3, so only files a pre-churn reader
// genuinely cannot represent demand version 4 (and old readers reject
// those with a clean "newer format version" Status rather than misparsing).
constexpr uint32_t kFormatVersion = 4;
constexpr uint32_t kSq8FormatVersion = 3;
constexpr uint32_t kFloat32FormatVersion = 2;

// The delta segment holds full-precision rows and is scanned exactly —
// tiny relative to the base, and exactness keeps pre-compaction float32
// results bit-identical to a from-scratch build.
IndexOptions DeltaOptions(const IndexOptions& base, Metric metric) {
  IndexOptions options;
  options.backend = IndexBackend::kFlat;
  options.storage = Storage::kFloat32;
  options.metric = metric;
  options.hnsw = base.hnsw;
  return options;
}

}  // namespace

LakeIndex::LakeIndex(size_t dim, const IndexOptions& options)
    : dim_(dim), index_(dim, options) {}

void LakeIndex::MoveFieldsFrom(LakeIndex&& other) {
  dim_ = other.dim_;
  table_ids_ = std::move(other.table_ids_);
  columns_ = std::move(other.columns_);
  index_ = std::move(other.index_);
  sealed_ = other.sealed_;
  base_tables_ = other.base_tables_;
  delta_ = std::move(other.delta_);
  dead_ = std::move(other.dead_);
  dead_tables_ = other.dead_tables_;
  dead_base_columns_ = other.dead_base_columns_;
  dead_delta_columns_ = other.dead_delta_columns_;
  compactions_ = other.compactions_;
  handles_by_id_ = std::move(other.handles_by_id_);
}

LakeIndex::LakeIndex(LakeIndex&& other) noexcept
    : dim_(other.dim_), index_(std::move(other.index_)) {
  // Locks are not movable and a move must not overlap any other operation
  // on either operand, so the new index simply re-arms fresh ones.
  table_ids_ = std::move(other.table_ids_);
  columns_ = std::move(other.columns_);
  sealed_ = other.sealed_;
  base_tables_ = other.base_tables_;
  delta_ = std::move(other.delta_);
  dead_ = std::move(other.dead_);
  dead_tables_ = other.dead_tables_;
  dead_base_columns_ = other.dead_base_columns_;
  dead_delta_columns_ = other.dead_delta_columns_;
  compactions_ = other.compactions_;
  handles_by_id_ = std::move(other.handles_by_id_);
}

LakeIndex& LakeIndex::operator=(LakeIndex&& other) noexcept {
  if (this != &other) MoveFieldsFrom(std::move(other));
  return *this;
}

size_t LakeIndex::AddTable(const std::string& table_id,
                           const std::vector<std::vector<float>>& column_embeddings) {
  for (const auto& col : column_embeddings) {
    TSFM_CHECK_EQ(col.size(), dim_);
  }
  MutexLock writer(&writer_mu_);
  WriterMutexLock lock(&mu_);
  size_t handle = table_ids_.size();
  table_ids_.push_back(table_id);
  columns_.push_back(column_embeddings);
  dead_.push_back(0);
  handles_by_id_[table_id].push_back(handle);
  if (!sealed_) {
    index_.AddTable(handle, column_embeddings);
    base_tables_ = handle + 1;
  } else {
    if (delta_ == nullptr) {
      delta_ = std::make_unique<ColumnEmbeddingIndex>(
          dim_, DeltaOptions(index_.options(), index_.options().metric));
    }
    delta_->AddTable(handle, column_embeddings);
  }
  return handle;
}

Status LakeIndex::RemoveTable(const std::string& table_id) {
  MutexLock writer(&writer_mu_);
  WriterMutexLock lock(&mu_);
  auto it = handles_by_id_.find(table_id);
  if (it != handles_by_id_.end()) {
    // Newest live handle wins; already-dead trailing handles are pruned so
    // repeated removes of a duplicated id stay O(removes).
    while (!it->second.empty() && dead_[it->second.back()] != 0) {
      it->second.pop_back();
    }
    if (!it->second.empty()) {
      const size_t handle = it->second.back();
      it->second.pop_back();
      dead_[handle] = 1;
      ++dead_tables_;
      const size_t cols = columns_[handle].size();
      if (handle < base_tables_) {
        dead_base_columns_ += cols;
      } else {
        dead_delta_columns_ += cols;
      }
      return Status::OK();
    }
  }
  return Status::NotFound("no live table with id \"" + table_id + "\"");
}

void LakeIndex::Seal() {
  MutexLock writer(&writer_mu_);
  WriterMutexLock lock(&mu_);
  sealed_ = true;
}

bool LakeIndex::WouldFoldInPlace(double hnsw_rebuild_threshold) const {
  ReaderMutexLock lock(&mu_);
  if (index_.options().backend != IndexBackend::kHnsw) return false;
  if (hnsw_rebuild_threshold <= 0.0) return false;
  if (table_ids_.empty()) return false;
  const double ratio = static_cast<double>(dead_tables_) /
                       static_cast<double>(table_ids_.size());
  return ratio <= hnsw_rebuild_threshold;
}

void LakeIndex::FoldDeltaInPlace() {
  MutexLock writer(&writer_mu_);
  WriterMutexLock lock(&mu_);
  for (size_t handle = base_tables_; handle < table_ids_.size(); ++handle) {
    index_.AddTable(handle, columns_[handle]);
  }
  base_tables_ = table_ids_.size();
  dead_base_columns_ += dead_delta_columns_;
  dead_delta_columns_ = 0;
  delta_.reset();
  sealed_ = true;
  ++compactions_;
}

LakeIndex::Compacted LakeIndex::BuildCompacted() const {
  // The caller excludes mutations (it holds this index's writer_mu_ via
  // Compact, or the sharded writer lock), so the shared lock taken here
  // never contends with an exclusive waiter — it exists to pin the fields
  // read below for the duration of the rebuild, same as any query.
  ReaderMutexLock lock(&mu_);
  Compacted out{LakeIndex(dim_, index_.options()),
                std::vector<size_t>(table_ids_.size(), SIZE_MAX)};
  for (size_t handle = 0; handle < table_ids_.size(); ++handle) {
    if (dead_[handle] != 0) continue;
    // Survivors keep their relative insertion order, so re-densified
    // handles tie-break Fig 6 ranks exactly like a from-scratch build.
    out.remap[handle] = out.index.AddTable(table_ids_[handle], columns_[handle]);
  }
  out.index.Seal();
  return out;
}

void LakeIndex::AdoptLocked(LakeIndex&& other) {
  const uint64_t done = compactions_ + 1;
  MoveFieldsFrom(std::move(other));
  compactions_ = done;
}

Status LakeIndex::Compact(double hnsw_rebuild_threshold) {
  {
    MutexLock writer(&writer_mu_);
    bool churned;
    {
      ReaderMutexLock lock(&mu_);
      churned = ChurnedLocked();
    }
    if (!churned) {
      // Nothing to fold; still seal (a compacted lake serves live churn)
      // and count the pass so callers can observe it completed.
      WriterMutexLock lock(&mu_);
      sealed_ = true;
      ++compactions_;
      return Status::OK();
    }
  }
  if (WouldFoldInPlace(hnsw_rebuild_threshold)) {
    FoldDeltaInPlace();
    return Status::OK();
  }
  MutexLock writer(&writer_mu_);
  // The expensive rebuild runs while queries continue against the old
  // segments; only the swap below excludes them.
  Compacted compacted = BuildCompacted();
  WriterMutexLock lock(&mu_);
  AdoptLocked(std::move(compacted.index));
  return Status::OK();
}

size_t LakeIndex::num_tables() const {
  ReaderMutexLock lock(&mu_);
  return table_ids_.size();
}

bool LakeIndex::churned() const {
  ReaderMutexLock lock(&mu_);
  return ChurnedLocked();
}

size_t LakeIndex::num_live_tables() const {
  ReaderMutexLock lock(&mu_);
  return table_ids_.size() - dead_tables_;
}

size_t LakeIndex::num_columns() const {
  ReaderMutexLock lock(&mu_);
  return index_.num_columns() + (delta_ != nullptr ? delta_->num_columns() : 0);
}

size_t LakeIndex::pending_delta_tables() const {
  ReaderMutexLock lock(&mu_);
  return table_ids_.size() - base_tables_;
}

size_t LakeIndex::pending_tombstones() const {
  ReaderMutexLock lock(&mu_);
  return dead_tables_;
}

uint64_t LakeIndex::compactions() const {
  ReaderMutexLock lock(&mu_);
  return compactions_;
}

std::vector<std::string> RankedTableIds(const std::vector<std::string>& table_ids,
                                        const std::vector<size_t>& handles,
                                        size_t k) {
  std::vector<std::string> out;
  out.reserve(std::min(k, handles.size()));
  for (size_t handle : handles) {
    if (out.size() >= k) break;
    out.push_back(table_ids[handle]);
  }
  return out;
}

void LakeIndex::FilterDeadLocked(
    std::vector<ColumnEmbeddingIndex::ColumnHit>* hits, size_t m) const {
  // Open-coded remove_if: a predicate lambda would read dead_ from a
  // function the thread-safety analysis treats as unlocked.
  size_t kept = 0;
  for (size_t i = 0; i < hits->size(); ++i) {
    if (dead_[(*hits)[i].table_id] != 0) continue;
    if (kept != i) (*hits)[kept] = std::move((*hits)[i]);
    ++kept;
  }
  hits->resize(std::min(kept, m));
}

std::vector<ColumnEmbeddingIndex::ColumnHit> LakeIndex::SearchColumnsLocked(
    const std::vector<float>& query, size_t m) const {
  if (!ChurnedLocked()) return index_.SearchColumns(query, m);
  // Over-fetch by the tombstoned-column count: at most that many of the
  // top slots can be dead, so filtering still leaves m live hits whenever
  // m live columns exist (exact for flat scans; HNSW is approximate
  // regardless, and the budget keeps its candidate frontier honest).
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> lists;
  lists.push_back(index_.SearchColumns(query, m + dead_base_columns_));
  FilterDeadLocked(&lists.back(), m);
  if (delta_ != nullptr) {
    lists.push_back(delta_->SearchColumns(query, m + dead_delta_columns_));
    FilterDeadLocked(&lists.back(), m);
  }
  // Base handles precede delta handles, and both lists are sorted by
  // (distance, table, column), so the merge equals one sorted scan over
  // all live columns — bit-identical to an unchurned flat index holding
  // the same live tables under the same handles.
  return TableRanker::MergeColumnHits(lists, m);
}

std::vector<ColumnEmbeddingIndex::ColumnHit> LakeIndex::SearchColumns(
    const std::vector<float>& query, size_t m) const {
  ReaderMutexLock lock(&mu_);
  return SearchColumnsLocked(query, m);
}

std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>
LakeIndex::SearchColumnsBatchLocked(
    const std::vector<std::vector<float>>& queries, size_t m,
    ThreadPool* pool) const {
  if (!ChurnedLocked()) return index_.SearchColumnsBatch(queries, m, pool);
  auto base = index_.SearchColumnsBatch(queries, m + dead_base_columns_, pool);
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> delta;
  if (delta_ != nullptr) {
    delta = delta_->SearchColumnsBatch(queries, m + dead_delta_columns_, pool);
  }
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> merged(
      queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> lists;
    lists.push_back(std::move(base[q]));
    FilterDeadLocked(&lists.back(), m);
    if (!delta.empty()) {
      lists.push_back(std::move(delta[q]));
      FilterDeadLocked(&lists.back(), m);
    }
    merged[q] = TableRanker::MergeColumnHits(lists, m);
  }
  return merged;
}

std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>
LakeIndex::SearchColumnsBatch(const std::vector<std::vector<float>>& queries,
                              size_t m, ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  return SearchColumnsBatchLocked(queries, m, pool);
}

std::vector<std::string> LakeIndex::QueryUnionable(
    const std::vector<std::vector<float>>& query_columns, size_t k) const {
  ReaderMutexLock lock(&mu_);
  if (!ChurnedLocked()) {
    TableRanker ranker(&index_);
    // SIZE_MAX: external queries are not part of the corpus; exclude nothing.
    return RankedTableIds(
        table_ids_, ranker.RankTables(query_columns, k, /*exclude=*/SIZE_MAX),
        k);
  }
  // Same k*3 over-retrieval and RANK1/RANK2 aggregation as the unchurned
  // path, with the churn-aware candidate search underneath.
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> per_column_hits;
  per_column_hits.reserve(query_columns.size());
  for (const auto& qcol : query_columns) {
    per_column_hits.push_back(SearchColumnsLocked(qcol, k * 3));
  }
  return RankedTableIds(
      table_ids_,
      TableRanker::RankFromColumnHits(per_column_hits, /*exclude=*/SIZE_MAX),
      k);
}

std::vector<std::string> LakeIndex::QueryJoinable(
    const std::vector<float>& query_column, size_t k) const {
  ReaderMutexLock lock(&mu_);
  if (!ChurnedLocked()) {
    TableRanker ranker(&index_);
    return RankedTableIds(
        table_ids_,
        ranker.RankTablesByColumn(query_column, k, /*exclude=*/SIZE_MAX), k);
  }
  return RankedTableIds(table_ids_,
                        TableRanker::RankFromSingleColumnHits(
                            SearchColumnsLocked(query_column, k * 3),
                            /*exclude=*/SIZE_MAX),
                        k);
}

std::vector<std::vector<std::string>> LakeIndex::QueryUnionableBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  if (!ChurnedLocked()) {
    TableRanker ranker(&index_);
    auto ranked = ranker.RankTablesBatch(queries, k, /*excludes=*/{}, pool);
    std::vector<std::vector<std::string>> out(ranked.size());
    for (size_t q = 0; q < ranked.size(); ++q) {
      out[q] = RankedTableIds(table_ids_, ranked[q], k);
    }
    return out;
  }
  // Flatten every query's columns into one batched candidate search (the
  // same shape ShardedLakeIndex uses), then aggregate per query.
  std::vector<size_t> offset(queries.size() + 1, 0);
  for (size_t q = 0; q < queries.size(); ++q) {
    offset[q + 1] = offset[q] + queries[q].size();
  }
  std::vector<std::vector<float>> flat;
  flat.reserve(offset.back());
  for (const auto& query : queries) {
    flat.insert(flat.end(), query.begin(), query.end());
  }
  auto hits = SearchColumnsBatchLocked(flat, k * 3, pool);
  std::vector<std::vector<std::string>> out(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> per_column(
        std::make_move_iterator(hits.begin() + offset[q]),
        std::make_move_iterator(hits.begin() + offset[q + 1]));
    out[q] = RankedTableIds(
        table_ids_,
        TableRanker::RankFromColumnHits(per_column, /*exclude=*/SIZE_MAX), k);
  }
  return out;
}

std::vector<std::vector<std::string>> LakeIndex::QueryJoinableBatch(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  if (!ChurnedLocked()) {
    TableRanker ranker(&index_);
    auto ranked =
        ranker.RankTablesByColumnBatch(query_columns, k, /*excludes=*/{}, pool);
    std::vector<std::vector<std::string>> out(ranked.size());
    for (size_t q = 0; q < ranked.size(); ++q) {
      out[q] = RankedTableIds(table_ids_, ranked[q], k);
    }
    return out;
  }
  auto hits = SearchColumnsBatchLocked(query_columns, k * 3, pool);
  std::vector<std::vector<std::string>> out(query_columns.size());
  for (size_t q = 0; q < query_columns.size(); ++q) {
    out[q] = RankedTableIds(table_ids_,
                            TableRanker::RankFromSingleColumnHits(
                                hits[q], /*exclude=*/SIZE_MAX),
                            k);
  }
  return out;
}

Status LakeIndex::Save(const std::string& path) const {
  ReaderMutexLock lock(&mu_);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const IndexOptions& opt = index_.options();
  const bool sq8 = opt.storage == Storage::kSq8;
  const bool churned = ChurnedLocked();
  const uint32_t version = churned ? kFormatVersion
                          : sq8    ? kSq8FormatVersion
                                   : kFloat32FormatVersion;
  WritePod(out, kMagicV2);
  WritePod(out, version);
  WritePod(out, static_cast<uint32_t>(opt.backend));
  WritePod(out, static_cast<uint32_t>(opt.metric));
  // Version >= 3 headers always carry the storage word (a churned float32
  // lake writes kFloat32 explicitly).
  if (version >= 3) WritePod(out, static_cast<uint32_t>(opt.storage));
  WritePod(out, static_cast<uint64_t>(opt.hnsw.m));
  WritePod(out, static_cast<uint64_t>(opt.hnsw.ef_construction));
  WritePod(out, static_cast<uint64_t>(opt.hnsw.ef_search));
  WritePod(out, opt.hnsw.seed);
  WritePod(out, static_cast<uint64_t>(dim_));
  if (sq8) {
    // Persist the live calibration (training it now if no search has yet),
    // so Load re-arms the index to encode exactly as this one does — even
    // for rows that were added after the codec was trained. Delta rows are
    // float on both sides, so the calibration describes the base only.
    const Sq8Codec* codec = index_.sq8_codec();
    TSFM_CHECK(codec != nullptr);
    if (Status s = codec->Save(out); !s.ok()) return s;
  }
  if (churned) {
    // Churn section: how many leading table records belong to the base
    // segment, then the tombstoned handles. Placed before the records so
    // Load can replay base and delta adds into the right segments.
    WritePod(out, static_cast<uint64_t>(base_tables_));
    WritePod(out, static_cast<uint64_t>(dead_tables_));
    for (size_t handle = 0; handle < dead_.size(); ++handle) {
      if (dead_[handle] != 0) WritePod(out, static_cast<uint64_t>(handle));
    }
  }
  WritePod(out, static_cast<uint64_t>(table_ids_.size()));
  for (size_t t = 0; t < table_ids_.size(); ++t) {
    uint64_t id_len = table_ids_[t].size();
    uint64_t num_cols = columns_[t].size();
    WritePod(out, id_len);
    out.write(table_ids_[t].data(), static_cast<std::streamsize>(id_len));
    WritePod(out, num_cols);
    for (const auto& col : columns_[t]) {
      out.write(reinterpret_cast<const char*>(col.data()),
                static_cast<std::streamsize>(col.size() * sizeof(float)));
    }
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<LakeIndex> LakeIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  if (!ReadPod(in, &magic)) return Status::IoError("truncated lake index " + path);

  IndexOptions options;  // legacy files predate backends: flat / cosine
  uint32_t version = 0;
  if (magic == kMagicV2) {
    uint32_t backend = 0, metric = 0, storage = 0;
    uint64_t m = 0, ef_construction = 0, ef_search = 0, seed = 0;
    if (!ReadPod(in, &version) || !ReadPod(in, &backend) ||
        !ReadPod(in, &metric)) {
      return Status::IoError("truncated lake-index header in " + path);
    }
    if (version > kFormatVersion) {
      return Status::ParseError("lake index " + path +
                                " written by a newer format version");
    }
    if (version >= 3 && !ReadPod(in, &storage)) {
      return Status::IoError("truncated lake-index header in " + path);
    }
    if (!ReadPod(in, &m) || !ReadPod(in, &ef_construction) ||
        !ReadPod(in, &ef_search) || !ReadPod(in, &seed)) {
      return Status::IoError("truncated lake-index header in " + path);
    }
    if (backend > static_cast<uint32_t>(IndexBackend::kHnsw) ||
        metric > static_cast<uint32_t>(Metric::kL2) ||
        storage > static_cast<uint32_t>(Storage::kSq8)) {
      return Status::ParseError("bad lake-index backend/metric in " + path);
    }
    options.backend = static_cast<IndexBackend>(backend);
    options.metric = static_cast<Metric>(metric);
    options.storage = static_cast<Storage>(storage);
    options.hnsw.m = static_cast<size_t>(m);
    options.hnsw.ef_construction = static_cast<size_t>(ef_construction);
    options.hnsw.ef_search = static_cast<size_t>(ef_search);
    options.hnsw.seed = seed;
  } else if (magic != kMagicV1) {
    return Status::ParseError("bad lake-index magic in " + path);
  }

  uint64_t dim = 0;
  if (!ReadPod(in, &dim)) {
    return Status::IoError("truncated lake index " + path);
  }
  if (dim == 0 || dim > (1u << 20)) return Status::ParseError("implausible dim");

  LakeIndex index(dim, options);
  if (version >= 3 && options.storage == Storage::kSq8) {
    auto codec = Sq8Codec::Load(in, dim);
    if (!codec.ok()) return codec.status();
    // Seed before the AddTable replay: every replayed (and future) row
    // encodes through the calibration the saved index used. `index` is
    // local and unshared, but its fields are lock-guarded, so the direct
    // write takes the (uncontended) lock to keep the checker honest.
    WriterMutexLock lock(&index.mu_);
    index.index_.SeedSq8Codec(std::move(codec).value());
  }

  uint64_t base_tables = UINT64_MAX;  // v4 seals mid-replay at this count
  std::vector<uint64_t> tombstones;
  if (version >= 4) {
    uint64_t num_dead = 0;
    if (!ReadPod(in, &base_tables) || !ReadPod(in, &num_dead)) {
      return Status::IoError("truncated lake-index churn section in " + path);
    }
    tombstones.reserve(std::min<uint64_t>(num_dead, 1024));
    for (uint64_t i = 0; i < num_dead; ++i) {
      uint64_t handle = 0;
      if (!ReadPod(in, &handle)) {
        return Status::IoError("truncated lake-index churn section in " + path);
      }
      tombstones.push_back(handle);
    }
  }

  uint64_t num_tables = 0;
  if (!ReadPod(in, &num_tables)) {
    return Status::IoError("truncated lake index " + path);
  }
  if (base_tables != UINT64_MAX && base_tables > num_tables) {
    return Status::ParseError("lake index " + path +
                              " claims more base tables than tables");
  }
  for (uint64_t t = 0; t < num_tables; ++t) {
    if (t == base_tables) index.Seal();
    uint64_t id_len = 0, num_cols = 0;
    if (!ReadPod(in, &id_len)) return Status::IoError("truncated lake index " + path);
    std::string id(id_len, '\0');
    in.read(id.data(), static_cast<std::streamsize>(id_len));
    if (!ReadPod(in, &num_cols)) {
      return Status::IoError("truncated lake index " + path);
    }
    std::vector<std::vector<float>> cols(num_cols, std::vector<float>(dim));
    for (auto& col : cols) {
      in.read(reinterpret_cast<char*>(col.data()),
              static_cast<std::streamsize>(dim * sizeof(float)));
    }
    if (!in) return Status::IoError("truncated lake index " + path);
    index.AddTable(id, cols);
  }
  // Replay the tombstones directly: RemoveTable's newest-live-first rule
  // must not reshuffle which of several same-id handles died. As above,
  // the lock is uncontended; it exists for the checker.
  {
    WriterMutexLock lock(&index.mu_);
    for (uint64_t handle : tombstones) {
      if (handle >= index.table_ids_.size() || index.dead_[handle] != 0) {
        return Status::ParseError("lake index " + path +
                                  " has an invalid or duplicate tombstone");
      }
      index.dead_[handle] = 1;
      ++index.dead_tables_;
      const size_t cols = index.columns_[handle].size();
      if (handle < index.base_tables_) {
        index.dead_base_columns_ += cols;
      } else {
        index.dead_delta_columns_ += cols;
      }
    }
  }
  // A loaded lake is a serving artifact: later AddTable calls are live
  // churn and belong in the delta segment.
  index.Seal();
  return index;
}

}  // namespace tsfm::search
