#include "search/lake_index.h"

#include <cstdint>
#include <fstream>
#include <utility>

#include "search/quantizer.h"
#include "search/stream_io.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tsfm::search {

using io::ReadPod;
using io::WritePod;

namespace {

constexpr uint32_t kMagicV1 = 0x4c414b45;  // "LAKE" — legacy headerless format
constexpr uint32_t kMagicV2 = 0x4c414b32;  // "LAK2" — versioned header
// Version 2: backend/metric/hnsw header. Version 3 adds a storage word to
// the header and an Sq8Codec calibration section ("CSQ8") before the table
// records. Float32 indexes still write version 2 — byte-identical to what
// older readers expect — so only genuinely quantized files demand a reader
// that understands them (and old readers reject those with a clean
// "newer format version" Status rather than misparsing).
constexpr uint32_t kFormatVersion = 3;
constexpr uint32_t kFloat32FormatVersion = 2;

}  // namespace

LakeIndex::LakeIndex(size_t dim, const IndexOptions& options)
    : dim_(dim), index_(dim, options) {}

size_t LakeIndex::AddTable(const std::string& table_id,
                           const std::vector<std::vector<float>>& column_embeddings) {
  for (const auto& col : column_embeddings) {
    TSFM_CHECK_EQ(col.size(), dim_);
  }
  size_t handle = table_ids_.size();
  table_ids_.push_back(table_id);
  columns_.push_back(column_embeddings);
  index_.AddTable(handle, column_embeddings);
  return handle;
}

std::vector<std::string> RankedTableIds(const std::vector<std::string>& table_ids,
                                        const std::vector<size_t>& handles,
                                        size_t k) {
  std::vector<std::string> out;
  out.reserve(std::min(k, handles.size()));
  for (size_t handle : handles) {
    if (out.size() >= k) break;
    out.push_back(table_ids[handle]);
  }
  return out;
}

std::vector<std::string> LakeIndex::QueryUnionable(
    const std::vector<std::vector<float>>& query_columns, size_t k) const {
  TableRanker ranker(&index_);
  // SIZE_MAX: external queries are not part of the corpus; exclude nothing.
  return RankedTableIds(table_ids_,
                        ranker.RankTables(query_columns, k, /*exclude=*/SIZE_MAX),
                        k);
}

std::vector<std::string> LakeIndex::QueryJoinable(
    const std::vector<float>& query_column, size_t k) const {
  TableRanker ranker(&index_);
  return RankedTableIds(
      table_ids_, ranker.RankTablesByColumn(query_column, k, /*exclude=*/SIZE_MAX),
      k);
}

std::vector<std::vector<std::string>> LakeIndex::QueryUnionableBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    ThreadPool* pool) const {
  TableRanker ranker(&index_);
  auto ranked = ranker.RankTablesBatch(queries, k, /*excludes=*/{}, pool);
  std::vector<std::vector<std::string>> out(ranked.size());
  for (size_t q = 0; q < ranked.size(); ++q) {
    out[q] = RankedTableIds(table_ids_, ranked[q], k);
  }
  return out;
}

std::vector<std::vector<std::string>> LakeIndex::QueryJoinableBatch(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    ThreadPool* pool) const {
  TableRanker ranker(&index_);
  auto ranked =
      ranker.RankTablesByColumnBatch(query_columns, k, /*excludes=*/{}, pool);
  std::vector<std::vector<std::string>> out(ranked.size());
  for (size_t q = 0; q < ranked.size(); ++q) {
    out[q] = RankedTableIds(table_ids_, ranked[q], k);
  }
  return out;
}

Status LakeIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const IndexOptions& opt = index_.options();
  const bool sq8 = opt.storage == Storage::kSq8;
  WritePod(out, kMagicV2);
  WritePod(out, sq8 ? kFormatVersion : kFloat32FormatVersion);
  WritePod(out, static_cast<uint32_t>(opt.backend));
  WritePod(out, static_cast<uint32_t>(opt.metric));
  if (sq8) WritePod(out, static_cast<uint32_t>(opt.storage));
  WritePod(out, static_cast<uint64_t>(opt.hnsw.m));
  WritePod(out, static_cast<uint64_t>(opt.hnsw.ef_construction));
  WritePod(out, static_cast<uint64_t>(opt.hnsw.ef_search));
  WritePod(out, opt.hnsw.seed);
  WritePod(out, static_cast<uint64_t>(dim_));
  if (sq8) {
    // Persist the live calibration (training it now if no search has yet),
    // so Load re-arms the index to encode exactly as this one does — even
    // for rows that were added after the codec was trained.
    const Sq8Codec* codec = index_.sq8_codec();
    TSFM_CHECK(codec != nullptr);
    if (Status s = codec->Save(out); !s.ok()) return s;
  }
  WritePod(out, static_cast<uint64_t>(table_ids_.size()));
  for (size_t t = 0; t < table_ids_.size(); ++t) {
    uint64_t id_len = table_ids_[t].size();
    uint64_t num_cols = columns_[t].size();
    WritePod(out, id_len);
    out.write(table_ids_[t].data(), static_cast<std::streamsize>(id_len));
    WritePod(out, num_cols);
    for (const auto& col : columns_[t]) {
      out.write(reinterpret_cast<const char*>(col.data()),
                static_cast<std::streamsize>(col.size() * sizeof(float)));
    }
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<LakeIndex> LakeIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  if (!ReadPod(in, &magic)) return Status::IoError("truncated lake index " + path);

  IndexOptions options;  // legacy files predate backends: flat / cosine
  uint32_t version = 0;
  if (magic == kMagicV2) {
    uint32_t backend = 0, metric = 0, storage = 0;
    uint64_t m = 0, ef_construction = 0, ef_search = 0, seed = 0;
    if (!ReadPod(in, &version) || !ReadPod(in, &backend) ||
        !ReadPod(in, &metric)) {
      return Status::IoError("truncated lake-index header in " + path);
    }
    if (version > kFormatVersion) {
      return Status::ParseError("lake index " + path +
                                " written by a newer format version");
    }
    if (version >= 3 && !ReadPod(in, &storage)) {
      return Status::IoError("truncated lake-index header in " + path);
    }
    if (!ReadPod(in, &m) || !ReadPod(in, &ef_construction) ||
        !ReadPod(in, &ef_search) || !ReadPod(in, &seed)) {
      return Status::IoError("truncated lake-index header in " + path);
    }
    if (backend > static_cast<uint32_t>(IndexBackend::kHnsw) ||
        metric > static_cast<uint32_t>(Metric::kL2) ||
        storage > static_cast<uint32_t>(Storage::kSq8)) {
      return Status::ParseError("bad lake-index backend/metric in " + path);
    }
    options.backend = static_cast<IndexBackend>(backend);
    options.metric = static_cast<Metric>(metric);
    options.storage = static_cast<Storage>(storage);
    options.hnsw.m = static_cast<size_t>(m);
    options.hnsw.ef_construction = static_cast<size_t>(ef_construction);
    options.hnsw.ef_search = static_cast<size_t>(ef_search);
    options.hnsw.seed = seed;
  } else if (magic != kMagicV1) {
    return Status::ParseError("bad lake-index magic in " + path);
  }

  uint64_t dim = 0;
  if (!ReadPod(in, &dim)) {
    return Status::IoError("truncated lake index " + path);
  }
  if (dim == 0 || dim > (1u << 20)) return Status::ParseError("implausible dim");

  LakeIndex index(dim, options);
  if (version >= 3 && options.storage == Storage::kSq8) {
    auto codec = Sq8Codec::Load(in, dim);
    if (!codec.ok()) return codec.status();
    // Seed before the AddTable replay: every replayed (and future) row
    // encodes through the calibration the saved index used.
    index.index_.SeedSq8Codec(std::move(codec).value());
  }

  uint64_t num_tables = 0;
  if (!ReadPod(in, &num_tables)) {
    return Status::IoError("truncated lake index " + path);
  }
  for (uint64_t t = 0; t < num_tables; ++t) {
    uint64_t id_len = 0, num_cols = 0;
    if (!ReadPod(in, &id_len)) return Status::IoError("truncated lake index " + path);
    std::string id(id_len, '\0');
    in.read(id.data(), static_cast<std::streamsize>(id_len));
    if (!ReadPod(in, &num_cols)) {
      return Status::IoError("truncated lake index " + path);
    }
    std::vector<std::vector<float>> cols(num_cols, std::vector<float>(dim));
    for (auto& col : cols) {
      in.read(reinterpret_cast<char*>(col.data()),
              static_cast<std::streamsize>(dim * sizeof(float)));
    }
    if (!in) return Status::IoError("truncated lake index " + path);
    index.AddTable(id, cols);
  }
  return index;
}

}  // namespace tsfm::search
