#include "search/lake_index.h"

#include <cstdint>
#include <fstream>

#include "util/logging.h"

namespace tsfm::search {

namespace {
constexpr uint32_t kMagic = 0x4c414b45;  // "LAKE"
}  // namespace

LakeIndex::LakeIndex(size_t dim) : dim_(dim), index_(dim) {}

size_t LakeIndex::AddTable(const std::string& table_id,
                           const std::vector<std::vector<float>>& column_embeddings) {
  for (const auto& col : column_embeddings) {
    TSFM_CHECK_EQ(col.size(), dim_);
  }
  size_t handle = table_ids_.size();
  table_ids_.push_back(table_id);
  columns_.push_back(column_embeddings);
  index_.AddTable(handle, column_embeddings);
  return handle;
}

std::vector<std::string> LakeIndex::QueryUnionable(
    const std::vector<std::vector<float>>& query_columns, size_t k) const {
  TableRanker ranker(&index_);
  std::vector<std::string> out;
  // SIZE_MAX: external queries are not part of the corpus; exclude nothing.
  for (size_t handle : ranker.RankTables(query_columns, k, /*exclude=*/SIZE_MAX)) {
    out.push_back(table_ids_[handle]);
    if (out.size() >= k) break;
  }
  return out;
}

std::vector<std::string> LakeIndex::QueryJoinable(
    const std::vector<float>& query_column, size_t k) const {
  TableRanker ranker(&index_);
  std::vector<std::string> out;
  for (size_t handle :
       ranker.RankTablesByColumn(query_column, k, /*exclude=*/SIZE_MAX)) {
    out.push_back(table_ids_[handle]);
    if (out.size() >= k) break;
  }
  return out;
}

Status LakeIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  uint32_t magic = kMagic;
  uint64_t dim = dim_;
  uint64_t num_tables = table_ids_.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(&num_tables), sizeof(num_tables));
  for (size_t t = 0; t < table_ids_.size(); ++t) {
    uint64_t id_len = table_ids_[t].size();
    uint64_t num_cols = columns_[t].size();
    out.write(reinterpret_cast<const char*>(&id_len), sizeof(id_len));
    out.write(table_ids_[t].data(), static_cast<std::streamsize>(id_len));
    out.write(reinterpret_cast<const char*>(&num_cols), sizeof(num_cols));
    for (const auto& col : columns_[t]) {
      out.write(reinterpret_cast<const char*>(col.data()),
                static_cast<std::streamsize>(col.size() * sizeof(float)));
    }
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<LakeIndex> LakeIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  uint64_t dim = 0, num_tables = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kMagic) return Status::ParseError("bad lake-index magic in " + path);
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  in.read(reinterpret_cast<char*>(&num_tables), sizeof(num_tables));
  if (dim == 0 || dim > (1u << 20)) return Status::ParseError("implausible dim");

  LakeIndex index(dim);
  for (uint64_t t = 0; t < num_tables; ++t) {
    uint64_t id_len = 0, num_cols = 0;
    in.read(reinterpret_cast<char*>(&id_len), sizeof(id_len));
    std::string id(id_len, '\0');
    in.read(id.data(), static_cast<std::streamsize>(id_len));
    in.read(reinterpret_cast<char*>(&num_cols), sizeof(num_cols));
    std::vector<std::vector<float>> cols(num_cols, std::vector<float>(dim));
    for (auto& col : cols) {
      in.read(reinterpret_cast<char*>(col.data()),
              static_cast<std::streamsize>(dim * sizeof(float)));
    }
    if (!in) return Status::IoError("truncated lake index " + path);
    index.AddTable(id, cols);
  }
  return index;
}

}  // namespace tsfm::search
