// Exact k-nearest-neighbour index over dense vectors.
//
// The paper indexes embeddings offline and answers queries in embedding
// space; the flat backend is a brute-force scan with a bounded top-k heap —
// exact, cache-friendly, and the recall reference every approximate backend
// is tested against.
#ifndef TSFM_SEARCH_KNN_INDEX_H_
#define TSFM_SEARCH_KNN_INDEX_H_

#include <cstddef>
#include <iosfwd>
#include <utility>
#include <vector>

#include "search/vector_index.h"

namespace tsfm::search {

/// \brief Brute-force exact kNN with payload ids (the kFlat backend).
class KnnIndex : public VectorIndex {
 public:
  /// Binary stream tag written by Save ("FLAT").
  static constexpr uint32_t kFormatTag = 0x464c4154;

  explicit KnnIndex(size_t dim, Metric metric = Metric::kCosine);

  /// Adds a vector with an opaque payload id. Vector size must equal dim.
  void Add(size_t payload, const std::vector<float>& vec) override;

  /// \brief Top-k (payload, distance) pairs, nearest first.
  ///
  /// Cosine distance = 1 - cos(a, b); a zero vector has no direction, so
  /// it (or a zero query) scores kMaxCosineDistance and ranks after every
  /// vector that has one. k == 0 or a query of the wrong dimension returns
  /// an empty list. The scan runs through the process's selected distance
  /// kernels (see distance_kernels.h).
  std::vector<std::pair<size_t, float>> Search(const std::vector<float>& query,
                                               size_t k) const override;

  size_t size() const override { return payloads_.size(); }
  size_t dim() const override { return dim_; }
  IndexBackend backend() const override { return IndexBackend::kFlat; }
  Metric metric() const override { return metric_; }

  Status Save(std::ostream& out) const override;

  /// Restores an index whose kFormatTag has already been consumed (see
  /// LoadVectorIndex for the tagged entry point).
  static Result<KnnIndex> Load(std::istream& in);

 private:
  size_t dim_;
  Metric metric_;
  std::vector<float> data_;      // row-major, one row per item
  std::vector<size_t> payloads_;
  std::vector<float> norms_;     // cached L2 norms for cosine
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_KNN_INDEX_H_
