// Exact k-nearest-neighbour index over dense vectors.
//
// The paper indexes embeddings offline and answers queries in embedding
// space; at repo scale a brute-force scan with cosine distance is exact and
// fast enough, and serves as the reference the LSH indexes are tested
// against.
#ifndef TSFM_SEARCH_KNN_INDEX_H_
#define TSFM_SEARCH_KNN_INDEX_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace tsfm::search {

/// Distance metrics.
enum class Metric { kCosine, kL2 };

/// \brief Brute-force exact kNN with payload ids.
class KnnIndex {
 public:
  explicit KnnIndex(size_t dim, Metric metric = Metric::kCosine);

  /// Adds a vector with an opaque payload id. Vector size must equal dim.
  void Add(size_t payload, const std::vector<float>& vec);

  /// \brief Top-k (payload, distance) pairs, nearest first.
  ///
  /// Cosine distance = 1 - cos(a, b); zero vectors compare as distance 1.
  std::vector<std::pair<size_t, float>> Search(const std::vector<float>& query,
                                               size_t k) const;

  size_t size() const { return payloads_.size(); }
  size_t dim() const { return dim_; }

 private:
  float Distance(const float* a, const std::vector<float>& b) const;

  size_t dim_;
  Metric metric_;
  std::vector<float> data_;      // row-major, one row per item
  std::vector<size_t> payloads_;
  std::vector<float> norms_;     // cached L2 norms for cosine
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_KNN_INDEX_H_
