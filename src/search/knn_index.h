// Exact k-nearest-neighbour index over dense vectors.
//
// The paper indexes embeddings offline and answers queries in embedding
// space; the flat backend is a brute-force scan with a bounded top-k heap —
// exact, cache-friendly, and the recall reference every approximate backend
// is tested against.
//
// With Storage::kSq8 the rows live as scalar-quantized bytes instead of
// floats (4x smaller; see quantizer.h). Quantization is lazy: Add keeps
// accumulating float rows, and the first Search/Save calibrates the codec
// over everything added so far, encodes the rows, and drops the float
// copies. An index restored from disk (or seeded via SeedSq8Codec) keeps
// the persisted calibration and encodes later Adds directly, so a
// save/load round-trip is faithful byte-for-byte.
#ifndef TSFM_SEARCH_KNN_INDEX_H_
#define TSFM_SEARCH_KNN_INDEX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "search/quantizer.h"
#include "search/vector_index.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tsfm::search {

/// \brief Brute-force exact kNN with payload ids (the kFlat backend).
class KnnIndex : public VectorIndex {
 public:
  /// Binary stream tag written by Save for float32 storage ("FLAT").
  static constexpr uint32_t kFormatTag = 0x464c4154;

  /// Binary stream tag written by Save for SQ8 storage ("FSQ8").
  static constexpr uint32_t kSq8FormatTag = 0x38515346;

  explicit KnnIndex(size_t dim, Metric metric = Metric::kCosine,
                    Storage storage = Storage::kFloat32);

  // The quantization mutex pins the defaults; moves carry every field and
  // re-arm a fresh mutex (no search may overlap a move, same as Add).
  KnnIndex(KnnIndex&& other) noexcept;
  KnnIndex& operator=(KnnIndex&& other) noexcept;

  /// Adds a vector with an opaque payload id. Vector size must equal dim.
  void Add(size_t payload, const std::vector<float>& vec) override;

  /// \brief Top-k (payload, distance) pairs, nearest first.
  ///
  /// Cosine distance = 1 - cos(a, b); a zero vector has no direction, so
  /// it (or a zero query) scores kMaxCosineDistance and ranks after every
  /// vector that has one. k == 0 or a query of the wrong dimension returns
  /// an empty list. The scan runs through the process's selected distance
  /// kernels (see distance_kernels.h); under kSq8 it is the asymmetric
  /// int8 scan with exact rescore (ScanTopKSq8), reporting distances in
  /// decoded space.
  std::vector<std::pair<size_t, float>> Search(const std::vector<float>& query,
                                               size_t k) const override;

  /// \brief Batched search through the multi-query ("mini-GEMM") scan.
  ///
  /// Overrides the default per-query fan-out: queries are packed into
  /// chunks and each chunk makes ONE streaming pass over the rows
  /// (ScanTopKMulti / ScanTopKMultiSq8), so row loads amortize across the
  /// batch. Results are bit-identical to calling Search per query — the
  /// multi scan guarantees it per kernel set — including the degenerate
  /// cases (k == 0 or a wrong-dimension query yields that query an empty
  /// list). With a non-null `pool` the chunks fan out over it.
  std::vector<std::vector<std::pair<size_t, float>>> SearchBatch(
      const std::vector<std::vector<float>>& queries, size_t k,
      ThreadPool* pool = nullptr) const override;

  size_t size() const override { return payloads_.size(); }
  size_t dim() const override { return dim_; }
  IndexBackend backend() const override { return IndexBackend::kFlat; }
  Metric metric() const override { return metric_; }
  Storage storage() const { return storage_; }

  /// \brief Installs a pre-trained codec on an empty kSq8 index.
  ///
  /// Every subsequent Add encodes through this calibration instead of
  /// re-training — how LakeIndex::Load keeps a restored index encoding
  /// exactly as the saved one did. Check-fails on a non-empty or
  /// non-kSq8 index.
  void SeedSq8Codec(Sq8Codec codec);

  /// The trained codec (calibrating first if needed), or nullptr on a
  /// float32 index.
  const Sq8Codec* sq8_codec() const;

  Status Save(std::ostream& out) const override;

  /// Restores a float32 index whose kFormatTag has already been consumed
  /// (see LoadVectorIndex for the tagged entry point).
  static Result<KnnIndex> Load(std::istream& in);

  /// Restores an SQ8 index whose kSq8FormatTag has already been consumed.
  static Result<KnnIndex> LoadSq8(std::istream& in);

 private:
  // Calibrates + encodes the pending float rows on first use (kSq8 only).
  // Const because it is reached from Search: double-checked on quantized_
  // so the steady state is one relaxed-ish atomic load.
  void EnsureQuantized() const;

  size_t dim_;
  Metric metric_;
  Storage storage_;
  // data_/norms_/codec_/codes_ are deliberately NOT lock-annotated: they
  // follow the double-checked publication protocol on quantized_, not a
  // mutex. Writers hold quantize_mu_ while encoding, then publish with a
  // release store of quantized_; readers that observed quantized_ == true
  // (acquire) read them lock-free. That protocol is outside what the
  // static analysis can express — TSan (which sees the acquire/release
  // edge) is the checker of record here. Adds may not overlap searches on
  // the same index by the VectorIndex contract, which is what makes the
  // pre-publication float reads in EnsureQuantized safe.
  mutable std::vector<float> data_;  // row-major float rows; under kSq8,
                                     // only the not-yet-encoded pending rows
  std::vector<size_t> payloads_;
  mutable std::vector<float> norms_;  // L2 norms for cosine; decoded norms
                                      // once rows are quantized
  mutable Sq8Codec codec_;            // trained calibration (kSq8)
  mutable std::vector<uint8_t> codes_;  // row-major SQ8 rows (kSq8)
  mutable std::atomic<bool> quantized_{false};
  mutable Mutex quantize_mu_;
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_KNN_INDEX_H_
