// AVX2+FMA kernel set. This TU is the only one compiled with
// -mavx2 -mfma (see CMakeLists.txt), and is only reached through the
// runtime CPU check in Kernels() — so nothing here may be called, and no
// header inline function may be instantiated, from this TU in a way that
// could be linked into the portable path (a scalar-looking inline compiled
// here still carries VEX encodings). Everything below is file-local except
// internal::Avx2Kernels().
//
// When the build does not enable the kernels (non-x86 target, or a
// compiler without -mavx2 -mfma) TSFM_HAVE_AVX2_KERNELS is undefined and
// this TU compiles empty — the dispatch never references it then.
#ifdef TSFM_HAVE_AVX2_KERNELS

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "search/distance_kernels.h"

namespace tsfm::search {
namespace {

// Mask whose first `tail` (1..7) lanes are set — maskload zeroes the rest,
// so sub-8 tails contribute exact values without reading past the row.
inline __m256i TailMask(size_t tail) {
  alignas(32) static constexpr int32_t kMaskSource[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskSource + 8 - tail));
}

inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

// Local copy of CosineDistanceFromDot: the header inline must not be
// instantiated in this TU (see the file comment).
inline float CosineFromDot(float dot, float norm_a, float norm_b) {
  const float denom = norm_a * norm_b;
  return denom > kNormProductEps ? 1.0f - dot / denom : kMaxCosineDistance;
}

float DotAvx2(const float* a, const float* b, size_t n) {
  // Four independent 8-wide accumulators: enough FMA chains in flight to
  // hide the FMA latency and run at the load-port limit.
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    acc1 = _mm256_fmadd_ps(_mm256_maskload_ps(a + i, mask),
                           _mm256_maskload_ps(b + i, mask), acc1);
  }
  return HorizontalSum(
      _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
}

float L2SqAvx2(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    const __m256 d2 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 16), _mm256_loadu_ps(b + i + 16));
    const __m256 d3 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 24), _mm256_loadu_ps(b + i + 24));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
    acc2 = _mm256_fmadd_ps(d2, d2, acc2);
    acc3 = _mm256_fmadd_ps(d3, d3, acc3);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    // Masked-off lanes are 0 - 0 = 0 and contribute nothing.
    const __m256 d = _mm256_sub_ps(_mm256_maskload_ps(a + i, mask),
                                   _mm256_maskload_ps(b + i, mask));
    acc1 = _mm256_fmadd_ps(d, d, acc1);
  }
  return HorizontalSum(
      _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
}

float CosineAvx2(const float* a, const float* b, size_t n) {
  __m256 dot = _mm256_setzero_ps(), na = _mm256_setzero_ps(),
         nb = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    dot = _mm256_fmadd_ps(va, vb, dot);
    na = _mm256_fmadd_ps(va, va, na);
    nb = _mm256_fmadd_ps(vb, vb, nb);
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    const __m256 va = _mm256_maskload_ps(a + i, mask);
    const __m256 vb = _mm256_maskload_ps(b + i, mask);
    dot = _mm256_fmadd_ps(va, vb, dot);
    na = _mm256_fmadd_ps(va, va, na);
    nb = _mm256_fmadd_ps(vb, vb, nb);
  }
  return CosineFromDot(HorizontalSum(dot), std::sqrt(HorizontalSum(na)),
                       std::sqrt(HorizontalSum(nb)));
}

// The batch variants walk four rows abreast so each 8-wide query load is
// shared by four FMAs — ~40% fewer loads than row-at-a-time, and four
// independent accumulator chains keep the FMA units busy while the row
// streams come out of L2.
void DotManyAvx2(const float* query, const float* rows, size_t num_rows,
                 size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const float* r0 = rows + r * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 q = _mm256_loadu_ps(query + i);
      acc0 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r0 + i), acc0);
      acc1 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r1 + i), acc1);
      acc2 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r2 + i), acc2);
      acc3 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r3 + i), acc3);
    }
    if (i < dim) {
      const __m256i mask = TailMask(dim - i);
      const __m256 q = _mm256_maskload_ps(query + i, mask);
      acc0 = _mm256_fmadd_ps(q, _mm256_maskload_ps(r0 + i, mask), acc0);
      acc1 = _mm256_fmadd_ps(q, _mm256_maskload_ps(r1 + i, mask), acc1);
      acc2 = _mm256_fmadd_ps(q, _mm256_maskload_ps(r2 + i, mask), acc2);
      acc3 = _mm256_fmadd_ps(q, _mm256_maskload_ps(r3 + i, mask), acc3);
    }
    out[r] = HorizontalSum(acc0);
    out[r + 1] = HorizontalSum(acc1);
    out[r + 2] = HorizontalSum(acc2);
    out[r + 3] = HorizontalSum(acc3);
  }
  for (; r < num_rows; ++r) {
    out[r] = DotAvx2(query, rows + r * dim, dim);
  }
}

void L2SqManyAvx2(const float* query, const float* rows, size_t num_rows,
                  size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const float* r0 = rows + r * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 q = _mm256_loadu_ps(query + i);
      const __m256 d0 = _mm256_sub_ps(q, _mm256_loadu_ps(r0 + i));
      const __m256 d1 = _mm256_sub_ps(q, _mm256_loadu_ps(r1 + i));
      const __m256 d2 = _mm256_sub_ps(q, _mm256_loadu_ps(r2 + i));
      const __m256 d3 = _mm256_sub_ps(q, _mm256_loadu_ps(r3 + i));
      acc0 = _mm256_fmadd_ps(d0, d0, acc0);
      acc1 = _mm256_fmadd_ps(d1, d1, acc1);
      acc2 = _mm256_fmadd_ps(d2, d2, acc2);
      acc3 = _mm256_fmadd_ps(d3, d3, acc3);
    }
    if (i < dim) {
      const __m256i mask = TailMask(dim - i);
      const __m256 q = _mm256_maskload_ps(query + i, mask);
      const __m256 d0 = _mm256_sub_ps(q, _mm256_maskload_ps(r0 + i, mask));
      const __m256 d1 = _mm256_sub_ps(q, _mm256_maskload_ps(r1 + i, mask));
      const __m256 d2 = _mm256_sub_ps(q, _mm256_maskload_ps(r2 + i, mask));
      const __m256 d3 = _mm256_sub_ps(q, _mm256_maskload_ps(r3 + i, mask));
      acc0 = _mm256_fmadd_ps(d0, d0, acc0);
      acc1 = _mm256_fmadd_ps(d1, d1, acc1);
      acc2 = _mm256_fmadd_ps(d2, d2, acc2);
      acc3 = _mm256_fmadd_ps(d3, d3, acc3);
    }
    out[r] = HorizontalSum(acc0);
    out[r + 1] = HorizontalSum(acc1);
    out[r + 2] = HorizontalSum(acc2);
    out[r + 3] = HorizontalSum(acc3);
  }
  for (; r < num_rows; ++r) {
    out[r] = L2SqAvx2(query, rows + r * dim, dim);
  }
}

// Widens 8 uint8 codes to an 8-lane float vector. cvtepu8 + cvtepi32 is
// the cheapest correct ladder here: every code is exactly representable in
// float, so the asymmetric kernels stay bit-deterministic per ISA.
inline __m256 LoadU8x8(const uint8_t* p) {
  const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
}

float DotSq8Avx2(const float* q, const uint8_t* row, size_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), LoadU8x8(row + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i + 8), LoadU8x8(row + i + 8),
                           acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), LoadU8x8(row + i), acc0);
  }
  float s = HorizontalSum(_mm256_add_ps(acc0, acc1));
  // No masked u8 load exists; the sub-8 tail stays scalar.
  for (; i < n; ++i) s += q[i] * static_cast<float>(row[i]);
  return s;
}

float L2SqSq8Avx2(const float* q, const uint8_t* row, size_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q + i), LoadU8x8(row + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(q + i + 8), LoadU8x8(row + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(q + i), LoadU8x8(row + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float s = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    const float d = q[i] - static_cast<float>(row[i]);
    s += d * d;
  }
  return s;
}

// Same four-rows-abreast shape as the float batch kernels: one query load
// feeds four FMA chains while the u8 row streams cost a quarter of the
// float bandwidth — which is the whole point of the sq8 scan.
void DotManySq8Avx2(const float* query, const uint8_t* rows, size_t num_rows,
                    size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const uint8_t* r0 = rows + r * dim;
    const uint8_t* r1 = r0 + dim;
    const uint8_t* r2 = r1 + dim;
    const uint8_t* r3 = r2 + dim;
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 q = _mm256_loadu_ps(query + i);
      acc0 = _mm256_fmadd_ps(q, LoadU8x8(r0 + i), acc0);
      acc1 = _mm256_fmadd_ps(q, LoadU8x8(r1 + i), acc1);
      acc2 = _mm256_fmadd_ps(q, LoadU8x8(r2 + i), acc2);
      acc3 = _mm256_fmadd_ps(q, LoadU8x8(r3 + i), acc3);
    }
    float s0 = HorizontalSum(acc0), s1 = HorizontalSum(acc1);
    float s2 = HorizontalSum(acc2), s3 = HorizontalSum(acc3);
    for (; i < dim; ++i) {
      const float q = query[i];
      s0 += q * static_cast<float>(r0[i]);
      s1 += q * static_cast<float>(r1[i]);
      s2 += q * static_cast<float>(r2[i]);
      s3 += q * static_cast<float>(r3[i]);
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < num_rows; ++r) {
    out[r] = DotSq8Avx2(query, rows + r * dim, dim);
  }
}

void L2SqManySq8Avx2(const float* query, const uint8_t* rows, size_t num_rows,
                     size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const uint8_t* r0 = rows + r * dim;
    const uint8_t* r1 = r0 + dim;
    const uint8_t* r2 = r1 + dim;
    const uint8_t* r3 = r2 + dim;
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 q = _mm256_loadu_ps(query + i);
      const __m256 d0 = _mm256_sub_ps(q, LoadU8x8(r0 + i));
      const __m256 d1 = _mm256_sub_ps(q, LoadU8x8(r1 + i));
      const __m256 d2 = _mm256_sub_ps(q, LoadU8x8(r2 + i));
      const __m256 d3 = _mm256_sub_ps(q, LoadU8x8(r3 + i));
      acc0 = _mm256_fmadd_ps(d0, d0, acc0);
      acc1 = _mm256_fmadd_ps(d1, d1, acc1);
      acc2 = _mm256_fmadd_ps(d2, d2, acc2);
      acc3 = _mm256_fmadd_ps(d3, d3, acc3);
    }
    float s0 = HorizontalSum(acc0), s1 = HorizontalSum(acc1);
    float s2 = HorizontalSum(acc2), s3 = HorizontalSum(acc3);
    for (; i < dim; ++i) {
      const float q = query[i];
      const float d0 = q - static_cast<float>(r0[i]);
      const float d1 = q - static_cast<float>(r1[i]);
      const float d2 = q - static_cast<float>(r2[i]);
      const float d3 = q - static_cast<float>(r3[i]);
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < num_rows; ++r) {
    out[r] = L2SqSq8Avx2(query, rows + r * dim, dim);
  }
}

// ----------------------------------------------------- multi-query tiles
// Register-tiled mini-GEMM: 2 queries × 4 rows abreast, so each of the
// four row loads per step feeds two FMAs and each of the two query loads
// feeds four — 8 accumulators + 2 query registers + 4 row registers stays
// inside the 16 ymm budget (a 4×4 tile would need 24 and spill).
//
// Bit-identity contract (distance_kernels.h): every (query, row) pair
// accumulates exactly like DotManyAvx2 / L2SqManyAvx2 would for that row —
// one 8-wide FMA chain over dim with a masked tail inside full groups of 4
// rows, the pairwise kernel for the < 4 remainder rows. The query tiling
// only reorders *which* pair runs when, never the ops within a pair, so
// ScanTopKMulti returns bit-identical hits to per-query ScanTopK.

void DotMultiAvx2(const float* queries, size_t num_queries, const float* rows,
                  size_t num_rows, size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const float* r0 = rows + r * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    size_t q = 0;
    for (; q + 2 <= num_queries; q += 2) {
      const float* qa = queries + q * dim;
      const float* qb = qa + dim;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
      __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
      size_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 va = _mm256_loadu_ps(qa + i);
        const __m256 vb = _mm256_loadu_ps(qb + i);
        const __m256 m0 = _mm256_loadu_ps(r0 + i);
        const __m256 m1 = _mm256_loadu_ps(r1 + i);
        const __m256 m2 = _mm256_loadu_ps(r2 + i);
        const __m256 m3 = _mm256_loadu_ps(r3 + i);
        a0 = _mm256_fmadd_ps(va, m0, a0);
        a1 = _mm256_fmadd_ps(va, m1, a1);
        a2 = _mm256_fmadd_ps(va, m2, a2);
        a3 = _mm256_fmadd_ps(va, m3, a3);
        b0 = _mm256_fmadd_ps(vb, m0, b0);
        b1 = _mm256_fmadd_ps(vb, m1, b1);
        b2 = _mm256_fmadd_ps(vb, m2, b2);
        b3 = _mm256_fmadd_ps(vb, m3, b3);
      }
      if (i < dim) {
        const __m256i mask = TailMask(dim - i);
        const __m256 va = _mm256_maskload_ps(qa + i, mask);
        const __m256 vb = _mm256_maskload_ps(qb + i, mask);
        const __m256 m0 = _mm256_maskload_ps(r0 + i, mask);
        const __m256 m1 = _mm256_maskload_ps(r1 + i, mask);
        const __m256 m2 = _mm256_maskload_ps(r2 + i, mask);
        const __m256 m3 = _mm256_maskload_ps(r3 + i, mask);
        a0 = _mm256_fmadd_ps(va, m0, a0);
        a1 = _mm256_fmadd_ps(va, m1, a1);
        a2 = _mm256_fmadd_ps(va, m2, a2);
        a3 = _mm256_fmadd_ps(va, m3, a3);
        b0 = _mm256_fmadd_ps(vb, m0, b0);
        b1 = _mm256_fmadd_ps(vb, m1, b1);
        b2 = _mm256_fmadd_ps(vb, m2, b2);
        b3 = _mm256_fmadd_ps(vb, m3, b3);
      }
      float* oa = out + q * num_rows + r;
      float* ob = oa + num_rows;
      oa[0] = HorizontalSum(a0);
      oa[1] = HorizontalSum(a1);
      oa[2] = HorizontalSum(a2);
      oa[3] = HorizontalSum(a3);
      ob[0] = HorizontalSum(b0);
      ob[1] = HorizontalSum(b1);
      ob[2] = HorizontalSum(b2);
      ob[3] = HorizontalSum(b3);
    }
    if (q < num_queries) {
      // Odd query out: same group-of-4 body DotManyAvx2 uses.
      const float* qa = queries + q * dim;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      size_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 va = _mm256_loadu_ps(qa + i);
        a0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(r0 + i), a0);
        a1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(r1 + i), a1);
        a2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(r2 + i), a2);
        a3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(r3 + i), a3);
      }
      if (i < dim) {
        const __m256i mask = TailMask(dim - i);
        const __m256 va = _mm256_maskload_ps(qa + i, mask);
        a0 = _mm256_fmadd_ps(va, _mm256_maskload_ps(r0 + i, mask), a0);
        a1 = _mm256_fmadd_ps(va, _mm256_maskload_ps(r1 + i, mask), a1);
        a2 = _mm256_fmadd_ps(va, _mm256_maskload_ps(r2 + i, mask), a2);
        a3 = _mm256_fmadd_ps(va, _mm256_maskload_ps(r3 + i, mask), a3);
      }
      float* oa = out + q * num_rows + r;
      oa[0] = HorizontalSum(a0);
      oa[1] = HorizontalSum(a1);
      oa[2] = HorizontalSum(a2);
      oa[3] = HorizontalSum(a3);
    }
  }
  // Remainder rows: pairwise kernel per (query, row), exactly how the
  // single-query batch kernel finishes its tail rows.
  for (; r < num_rows; ++r) {
    for (size_t q = 0; q < num_queries; ++q) {
      out[q * num_rows + r] = DotAvx2(queries + q * dim, rows + r * dim, dim);
    }
  }
}

void L2SqMultiAvx2(const float* queries, size_t num_queries,
                   const float* rows, size_t num_rows, size_t dim,
                   float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const float* r0 = rows + r * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    size_t q = 0;
    for (; q + 2 <= num_queries; q += 2) {
      const float* qa = queries + q * dim;
      const float* qb = qa + dim;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
      __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
      size_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 va = _mm256_loadu_ps(qa + i);
        const __m256 vb = _mm256_loadu_ps(qb + i);
        const __m256 m0 = _mm256_loadu_ps(r0 + i);
        const __m256 m1 = _mm256_loadu_ps(r1 + i);
        const __m256 m2 = _mm256_loadu_ps(r2 + i);
        const __m256 m3 = _mm256_loadu_ps(r3 + i);
        const __m256 da0 = _mm256_sub_ps(va, m0);
        const __m256 da1 = _mm256_sub_ps(va, m1);
        const __m256 da2 = _mm256_sub_ps(va, m2);
        const __m256 da3 = _mm256_sub_ps(va, m3);
        a0 = _mm256_fmadd_ps(da0, da0, a0);
        a1 = _mm256_fmadd_ps(da1, da1, a1);
        a2 = _mm256_fmadd_ps(da2, da2, a2);
        a3 = _mm256_fmadd_ps(da3, da3, a3);
        const __m256 db0 = _mm256_sub_ps(vb, m0);
        const __m256 db1 = _mm256_sub_ps(vb, m1);
        const __m256 db2 = _mm256_sub_ps(vb, m2);
        const __m256 db3 = _mm256_sub_ps(vb, m3);
        b0 = _mm256_fmadd_ps(db0, db0, b0);
        b1 = _mm256_fmadd_ps(db1, db1, b1);
        b2 = _mm256_fmadd_ps(db2, db2, b2);
        b3 = _mm256_fmadd_ps(db3, db3, b3);
      }
      if (i < dim) {
        const __m256i mask = TailMask(dim - i);
        const __m256 va = _mm256_maskload_ps(qa + i, mask);
        const __m256 vb = _mm256_maskload_ps(qb + i, mask);
        const __m256 m0 = _mm256_maskload_ps(r0 + i, mask);
        const __m256 m1 = _mm256_maskload_ps(r1 + i, mask);
        const __m256 m2 = _mm256_maskload_ps(r2 + i, mask);
        const __m256 m3 = _mm256_maskload_ps(r3 + i, mask);
        const __m256 da0 = _mm256_sub_ps(va, m0);
        const __m256 da1 = _mm256_sub_ps(va, m1);
        const __m256 da2 = _mm256_sub_ps(va, m2);
        const __m256 da3 = _mm256_sub_ps(va, m3);
        a0 = _mm256_fmadd_ps(da0, da0, a0);
        a1 = _mm256_fmadd_ps(da1, da1, a1);
        a2 = _mm256_fmadd_ps(da2, da2, a2);
        a3 = _mm256_fmadd_ps(da3, da3, a3);
        const __m256 db0 = _mm256_sub_ps(vb, m0);
        const __m256 db1 = _mm256_sub_ps(vb, m1);
        const __m256 db2 = _mm256_sub_ps(vb, m2);
        const __m256 db3 = _mm256_sub_ps(vb, m3);
        b0 = _mm256_fmadd_ps(db0, db0, b0);
        b1 = _mm256_fmadd_ps(db1, db1, b1);
        b2 = _mm256_fmadd_ps(db2, db2, b2);
        b3 = _mm256_fmadd_ps(db3, db3, b3);
      }
      float* oa = out + q * num_rows + r;
      float* ob = oa + num_rows;
      oa[0] = HorizontalSum(a0);
      oa[1] = HorizontalSum(a1);
      oa[2] = HorizontalSum(a2);
      oa[3] = HorizontalSum(a3);
      ob[0] = HorizontalSum(b0);
      ob[1] = HorizontalSum(b1);
      ob[2] = HorizontalSum(b2);
      ob[3] = HorizontalSum(b3);
    }
    if (q < num_queries) {
      const float* qa = queries + q * dim;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      size_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 va = _mm256_loadu_ps(qa + i);
        const __m256 d0 = _mm256_sub_ps(va, _mm256_loadu_ps(r0 + i));
        const __m256 d1 = _mm256_sub_ps(va, _mm256_loadu_ps(r1 + i));
        const __m256 d2 = _mm256_sub_ps(va, _mm256_loadu_ps(r2 + i));
        const __m256 d3 = _mm256_sub_ps(va, _mm256_loadu_ps(r3 + i));
        a0 = _mm256_fmadd_ps(d0, d0, a0);
        a1 = _mm256_fmadd_ps(d1, d1, a1);
        a2 = _mm256_fmadd_ps(d2, d2, a2);
        a3 = _mm256_fmadd_ps(d3, d3, a3);
      }
      if (i < dim) {
        const __m256i mask = TailMask(dim - i);
        const __m256 va = _mm256_maskload_ps(qa + i, mask);
        const __m256 d0 = _mm256_sub_ps(va, _mm256_maskload_ps(r0 + i, mask));
        const __m256 d1 = _mm256_sub_ps(va, _mm256_maskload_ps(r1 + i, mask));
        const __m256 d2 = _mm256_sub_ps(va, _mm256_maskload_ps(r2 + i, mask));
        const __m256 d3 = _mm256_sub_ps(va, _mm256_maskload_ps(r3 + i, mask));
        a0 = _mm256_fmadd_ps(d0, d0, a0);
        a1 = _mm256_fmadd_ps(d1, d1, a1);
        a2 = _mm256_fmadd_ps(d2, d2, a2);
        a3 = _mm256_fmadd_ps(d3, d3, a3);
      }
      float* oa = out + q * num_rows + r;
      oa[0] = HorizontalSum(a0);
      oa[1] = HorizontalSum(a1);
      oa[2] = HorizontalSum(a2);
      oa[3] = HorizontalSum(a3);
    }
  }
  for (; r < num_rows; ++r) {
    for (size_t q = 0; q < num_queries; ++q) {
      out[q * num_rows + r] = L2SqAvx2(queries + q * dim, rows + r * dim, dim);
    }
  }
}

// Sq8 multi tiles: same 2×4 shape; the u8 widening (LoadU8x8) is shared
// by both queries of the tile. Tail handling must mirror DotManySq8Avx2
// exactly — horizontal-sum the vector accumulators FIRST, then add the
// sub-8 scalar tail — or the float rounding order (and bit-identity)
// would differ.
void DotMultiSq8Avx2(const float* queries, size_t num_queries,
                     const uint8_t* rows, size_t num_rows, size_t dim,
                     float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const uint8_t* r0 = rows + r * dim;
    const uint8_t* r1 = r0 + dim;
    const uint8_t* r2 = r1 + dim;
    const uint8_t* r3 = r2 + dim;
    size_t q = 0;
    for (; q + 2 <= num_queries; q += 2) {
      const float* qa = queries + q * dim;
      const float* qb = qa + dim;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
      __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
      size_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 va = _mm256_loadu_ps(qa + i);
        const __m256 vb = _mm256_loadu_ps(qb + i);
        const __m256 m0 = LoadU8x8(r0 + i);
        const __m256 m1 = LoadU8x8(r1 + i);
        const __m256 m2 = LoadU8x8(r2 + i);
        const __m256 m3 = LoadU8x8(r3 + i);
        a0 = _mm256_fmadd_ps(va, m0, a0);
        a1 = _mm256_fmadd_ps(va, m1, a1);
        a2 = _mm256_fmadd_ps(va, m2, a2);
        a3 = _mm256_fmadd_ps(va, m3, a3);
        b0 = _mm256_fmadd_ps(vb, m0, b0);
        b1 = _mm256_fmadd_ps(vb, m1, b1);
        b2 = _mm256_fmadd_ps(vb, m2, b2);
        b3 = _mm256_fmadd_ps(vb, m3, b3);
      }
      float sa0 = HorizontalSum(a0), sa1 = HorizontalSum(a1);
      float sa2 = HorizontalSum(a2), sa3 = HorizontalSum(a3);
      float sb0 = HorizontalSum(b0), sb1 = HorizontalSum(b1);
      float sb2 = HorizontalSum(b2), sb3 = HorizontalSum(b3);
      for (; i < dim; ++i) {
        const float fa = qa[i];
        const float fb = qb[i];
        const float u0 = static_cast<float>(r0[i]);
        const float u1 = static_cast<float>(r1[i]);
        const float u2 = static_cast<float>(r2[i]);
        const float u3 = static_cast<float>(r3[i]);
        sa0 += fa * u0;
        sa1 += fa * u1;
        sa2 += fa * u2;
        sa3 += fa * u3;
        sb0 += fb * u0;
        sb1 += fb * u1;
        sb2 += fb * u2;
        sb3 += fb * u3;
      }
      float* oa = out + q * num_rows + r;
      float* ob = oa + num_rows;
      oa[0] = sa0;
      oa[1] = sa1;
      oa[2] = sa2;
      oa[3] = sa3;
      ob[0] = sb0;
      ob[1] = sb1;
      ob[2] = sb2;
      ob[3] = sb3;
    }
    if (q < num_queries) {
      const float* qa = queries + q * dim;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      size_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 va = _mm256_loadu_ps(qa + i);
        a0 = _mm256_fmadd_ps(va, LoadU8x8(r0 + i), a0);
        a1 = _mm256_fmadd_ps(va, LoadU8x8(r1 + i), a1);
        a2 = _mm256_fmadd_ps(va, LoadU8x8(r2 + i), a2);
        a3 = _mm256_fmadd_ps(va, LoadU8x8(r3 + i), a3);
      }
      float s0 = HorizontalSum(a0), s1 = HorizontalSum(a1);
      float s2 = HorizontalSum(a2), s3 = HorizontalSum(a3);
      for (; i < dim; ++i) {
        const float fa = qa[i];
        s0 += fa * static_cast<float>(r0[i]);
        s1 += fa * static_cast<float>(r1[i]);
        s2 += fa * static_cast<float>(r2[i]);
        s3 += fa * static_cast<float>(r3[i]);
      }
      float* oa = out + q * num_rows + r;
      oa[0] = s0;
      oa[1] = s1;
      oa[2] = s2;
      oa[3] = s3;
    }
  }
  for (; r < num_rows; ++r) {
    for (size_t q = 0; q < num_queries; ++q) {
      out[q * num_rows + r] =
          DotSq8Avx2(queries + q * dim, rows + r * dim, dim);
    }
  }
}

void L2SqMultiSq8Avx2(const float* queries, size_t num_queries,
                      const uint8_t* rows, size_t num_rows, size_t dim,
                      float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const uint8_t* r0 = rows + r * dim;
    const uint8_t* r1 = r0 + dim;
    const uint8_t* r2 = r1 + dim;
    const uint8_t* r3 = r2 + dim;
    size_t q = 0;
    for (; q + 2 <= num_queries; q += 2) {
      const float* qa = queries + q * dim;
      const float* qb = qa + dim;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
      __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
      size_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 va = _mm256_loadu_ps(qa + i);
        const __m256 vb = _mm256_loadu_ps(qb + i);
        const __m256 m0 = LoadU8x8(r0 + i);
        const __m256 m1 = LoadU8x8(r1 + i);
        const __m256 m2 = LoadU8x8(r2 + i);
        const __m256 m3 = LoadU8x8(r3 + i);
        const __m256 da0 = _mm256_sub_ps(va, m0);
        const __m256 da1 = _mm256_sub_ps(va, m1);
        const __m256 da2 = _mm256_sub_ps(va, m2);
        const __m256 da3 = _mm256_sub_ps(va, m3);
        a0 = _mm256_fmadd_ps(da0, da0, a0);
        a1 = _mm256_fmadd_ps(da1, da1, a1);
        a2 = _mm256_fmadd_ps(da2, da2, a2);
        a3 = _mm256_fmadd_ps(da3, da3, a3);
        const __m256 db0 = _mm256_sub_ps(vb, m0);
        const __m256 db1 = _mm256_sub_ps(vb, m1);
        const __m256 db2 = _mm256_sub_ps(vb, m2);
        const __m256 db3 = _mm256_sub_ps(vb, m3);
        b0 = _mm256_fmadd_ps(db0, db0, b0);
        b1 = _mm256_fmadd_ps(db1, db1, b1);
        b2 = _mm256_fmadd_ps(db2, db2, b2);
        b3 = _mm256_fmadd_ps(db3, db3, b3);
      }
      float sa0 = HorizontalSum(a0), sa1 = HorizontalSum(a1);
      float sa2 = HorizontalSum(a2), sa3 = HorizontalSum(a3);
      float sb0 = HorizontalSum(b0), sb1 = HorizontalSum(b1);
      float sb2 = HorizontalSum(b2), sb3 = HorizontalSum(b3);
      for (; i < dim; ++i) {
        const float fa = qa[i];
        const float fb = qb[i];
        const float u0 = static_cast<float>(r0[i]);
        const float u1 = static_cast<float>(r1[i]);
        const float u2 = static_cast<float>(r2[i]);
        const float u3 = static_cast<float>(r3[i]);
        const float da0 = fa - u0;
        const float da1 = fa - u1;
        const float da2 = fa - u2;
        const float da3 = fa - u3;
        sa0 += da0 * da0;
        sa1 += da1 * da1;
        sa2 += da2 * da2;
        sa3 += da3 * da3;
        const float db0 = fb - u0;
        const float db1 = fb - u1;
        const float db2 = fb - u2;
        const float db3 = fb - u3;
        sb0 += db0 * db0;
        sb1 += db1 * db1;
        sb2 += db2 * db2;
        sb3 += db3 * db3;
      }
      float* oa = out + q * num_rows + r;
      float* ob = oa + num_rows;
      oa[0] = sa0;
      oa[1] = sa1;
      oa[2] = sa2;
      oa[3] = sa3;
      ob[0] = sb0;
      ob[1] = sb1;
      ob[2] = sb2;
      ob[3] = sb3;
    }
    if (q < num_queries) {
      const float* qa = queries + q * dim;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      size_t i = 0;
      for (; i + 8 <= dim; i += 8) {
        const __m256 va = _mm256_loadu_ps(qa + i);
        const __m256 d0 = _mm256_sub_ps(va, LoadU8x8(r0 + i));
        const __m256 d1 = _mm256_sub_ps(va, LoadU8x8(r1 + i));
        const __m256 d2 = _mm256_sub_ps(va, LoadU8x8(r2 + i));
        const __m256 d3 = _mm256_sub_ps(va, LoadU8x8(r3 + i));
        a0 = _mm256_fmadd_ps(d0, d0, a0);
        a1 = _mm256_fmadd_ps(d1, d1, a1);
        a2 = _mm256_fmadd_ps(d2, d2, a2);
        a3 = _mm256_fmadd_ps(d3, d3, a3);
      }
      float s0 = HorizontalSum(a0), s1 = HorizontalSum(a1);
      float s2 = HorizontalSum(a2), s3 = HorizontalSum(a3);
      for (; i < dim; ++i) {
        const float fa = qa[i];
        const float d0 = fa - static_cast<float>(r0[i]);
        const float d1 = fa - static_cast<float>(r1[i]);
        const float d2 = fa - static_cast<float>(r2[i]);
        const float d3 = fa - static_cast<float>(r3[i]);
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
      }
      float* oa = out + q * num_rows + r;
      oa[0] = s0;
      oa[1] = s1;
      oa[2] = s2;
      oa[3] = s3;
    }
  }
  for (; r < num_rows; ++r) {
    for (size_t q = 0; q < num_queries; ++q) {
      out[q * num_rows + r] =
          L2SqSq8Avx2(queries + q * dim, rows + r * dim, dim);
    }
  }
}

constexpr KernelDispatch kAvx2Kernels = {
    "avx2-fma",  DotAvx2,      L2SqAvx2,       CosineAvx2,
    DotManyAvx2, L2SqManyAvx2, DotManySq8Avx2, L2SqManySq8Avx2,
    DotMultiAvx2,    L2SqMultiAvx2,
    DotMultiSq8Avx2, L2SqMultiSq8Avx2,
};

}  // namespace

namespace internal {

const KernelDispatch* Avx2Kernels() { return &kAvx2Kernels; }

}  // namespace internal

}  // namespace tsfm::search

#endif  // TSFM_HAVE_AVX2_KERNELS
