// AVX2+FMA kernel set. This TU is the only one compiled with
// -mavx2 -mfma (see CMakeLists.txt), and is only reached through the
// runtime CPU check in Kernels() — so nothing here may be called, and no
// header inline function may be instantiated, from this TU in a way that
// could be linked into the portable path (a scalar-looking inline compiled
// here still carries VEX encodings). Everything below is file-local except
// internal::Avx2Kernels().
//
// When the build does not enable the kernels (non-x86 target, or a
// compiler without -mavx2 -mfma) TSFM_HAVE_AVX2_KERNELS is undefined and
// this TU compiles empty — the dispatch never references it then.
#ifdef TSFM_HAVE_AVX2_KERNELS

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "search/distance_kernels.h"

namespace tsfm::search {
namespace {

// Mask whose first `tail` (1..7) lanes are set — maskload zeroes the rest,
// so sub-8 tails contribute exact values without reading past the row.
inline __m256i TailMask(size_t tail) {
  alignas(32) static constexpr int32_t kMaskSource[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskSource + 8 - tail));
}

inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

// Local copy of CosineDistanceFromDot: the header inline must not be
// instantiated in this TU (see the file comment).
inline float CosineFromDot(float dot, float norm_a, float norm_b) {
  const float denom = norm_a * norm_b;
  return denom > kNormProductEps ? 1.0f - dot / denom : kMaxCosineDistance;
}

float DotAvx2(const float* a, const float* b, size_t n) {
  // Four independent 8-wide accumulators: enough FMA chains in flight to
  // hide the FMA latency and run at the load-port limit.
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    acc1 = _mm256_fmadd_ps(_mm256_maskload_ps(a + i, mask),
                           _mm256_maskload_ps(b + i, mask), acc1);
  }
  return HorizontalSum(
      _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
}

float L2SqAvx2(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    const __m256 d2 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 16), _mm256_loadu_ps(b + i + 16));
    const __m256 d3 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 24), _mm256_loadu_ps(b + i + 24));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
    acc2 = _mm256_fmadd_ps(d2, d2, acc2);
    acc3 = _mm256_fmadd_ps(d3, d3, acc3);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    // Masked-off lanes are 0 - 0 = 0 and contribute nothing.
    const __m256 d = _mm256_sub_ps(_mm256_maskload_ps(a + i, mask),
                                   _mm256_maskload_ps(b + i, mask));
    acc1 = _mm256_fmadd_ps(d, d, acc1);
  }
  return HorizontalSum(
      _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
}

float CosineAvx2(const float* a, const float* b, size_t n) {
  __m256 dot = _mm256_setzero_ps(), na = _mm256_setzero_ps(),
         nb = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    dot = _mm256_fmadd_ps(va, vb, dot);
    na = _mm256_fmadd_ps(va, va, na);
    nb = _mm256_fmadd_ps(vb, vb, nb);
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    const __m256 va = _mm256_maskload_ps(a + i, mask);
    const __m256 vb = _mm256_maskload_ps(b + i, mask);
    dot = _mm256_fmadd_ps(va, vb, dot);
    na = _mm256_fmadd_ps(va, va, na);
    nb = _mm256_fmadd_ps(vb, vb, nb);
  }
  return CosineFromDot(HorizontalSum(dot), std::sqrt(HorizontalSum(na)),
                       std::sqrt(HorizontalSum(nb)));
}

// The batch variants walk four rows abreast so each 8-wide query load is
// shared by four FMAs — ~40% fewer loads than row-at-a-time, and four
// independent accumulator chains keep the FMA units busy while the row
// streams come out of L2.
void DotManyAvx2(const float* query, const float* rows, size_t num_rows,
                 size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const float* r0 = rows + r * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 q = _mm256_loadu_ps(query + i);
      acc0 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r0 + i), acc0);
      acc1 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r1 + i), acc1);
      acc2 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r2 + i), acc2);
      acc3 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r3 + i), acc3);
    }
    if (i < dim) {
      const __m256i mask = TailMask(dim - i);
      const __m256 q = _mm256_maskload_ps(query + i, mask);
      acc0 = _mm256_fmadd_ps(q, _mm256_maskload_ps(r0 + i, mask), acc0);
      acc1 = _mm256_fmadd_ps(q, _mm256_maskload_ps(r1 + i, mask), acc1);
      acc2 = _mm256_fmadd_ps(q, _mm256_maskload_ps(r2 + i, mask), acc2);
      acc3 = _mm256_fmadd_ps(q, _mm256_maskload_ps(r3 + i, mask), acc3);
    }
    out[r] = HorizontalSum(acc0);
    out[r + 1] = HorizontalSum(acc1);
    out[r + 2] = HorizontalSum(acc2);
    out[r + 3] = HorizontalSum(acc3);
  }
  for (; r < num_rows; ++r) {
    out[r] = DotAvx2(query, rows + r * dim, dim);
  }
}

void L2SqManyAvx2(const float* query, const float* rows, size_t num_rows,
                  size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const float* r0 = rows + r * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 q = _mm256_loadu_ps(query + i);
      const __m256 d0 = _mm256_sub_ps(q, _mm256_loadu_ps(r0 + i));
      const __m256 d1 = _mm256_sub_ps(q, _mm256_loadu_ps(r1 + i));
      const __m256 d2 = _mm256_sub_ps(q, _mm256_loadu_ps(r2 + i));
      const __m256 d3 = _mm256_sub_ps(q, _mm256_loadu_ps(r3 + i));
      acc0 = _mm256_fmadd_ps(d0, d0, acc0);
      acc1 = _mm256_fmadd_ps(d1, d1, acc1);
      acc2 = _mm256_fmadd_ps(d2, d2, acc2);
      acc3 = _mm256_fmadd_ps(d3, d3, acc3);
    }
    if (i < dim) {
      const __m256i mask = TailMask(dim - i);
      const __m256 q = _mm256_maskload_ps(query + i, mask);
      const __m256 d0 = _mm256_sub_ps(q, _mm256_maskload_ps(r0 + i, mask));
      const __m256 d1 = _mm256_sub_ps(q, _mm256_maskload_ps(r1 + i, mask));
      const __m256 d2 = _mm256_sub_ps(q, _mm256_maskload_ps(r2 + i, mask));
      const __m256 d3 = _mm256_sub_ps(q, _mm256_maskload_ps(r3 + i, mask));
      acc0 = _mm256_fmadd_ps(d0, d0, acc0);
      acc1 = _mm256_fmadd_ps(d1, d1, acc1);
      acc2 = _mm256_fmadd_ps(d2, d2, acc2);
      acc3 = _mm256_fmadd_ps(d3, d3, acc3);
    }
    out[r] = HorizontalSum(acc0);
    out[r + 1] = HorizontalSum(acc1);
    out[r + 2] = HorizontalSum(acc2);
    out[r + 3] = HorizontalSum(acc3);
  }
  for (; r < num_rows; ++r) {
    out[r] = L2SqAvx2(query, rows + r * dim, dim);
  }
}

// Widens 8 uint8 codes to an 8-lane float vector. cvtepu8 + cvtepi32 is
// the cheapest correct ladder here: every code is exactly representable in
// float, so the asymmetric kernels stay bit-deterministic per ISA.
inline __m256 LoadU8x8(const uint8_t* p) {
  const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
}

float DotSq8Avx2(const float* q, const uint8_t* row, size_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), LoadU8x8(row + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i + 8), LoadU8x8(row + i + 8),
                           acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), LoadU8x8(row + i), acc0);
  }
  float s = HorizontalSum(_mm256_add_ps(acc0, acc1));
  // No masked u8 load exists; the sub-8 tail stays scalar.
  for (; i < n; ++i) s += q[i] * static_cast<float>(row[i]);
  return s;
}

float L2SqSq8Avx2(const float* q, const uint8_t* row, size_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q + i), LoadU8x8(row + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(q + i + 8), LoadU8x8(row + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(q + i), LoadU8x8(row + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float s = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    const float d = q[i] - static_cast<float>(row[i]);
    s += d * d;
  }
  return s;
}

// Same four-rows-abreast shape as the float batch kernels: one query load
// feeds four FMA chains while the u8 row streams cost a quarter of the
// float bandwidth — which is the whole point of the sq8 scan.
void DotManySq8Avx2(const float* query, const uint8_t* rows, size_t num_rows,
                    size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const uint8_t* r0 = rows + r * dim;
    const uint8_t* r1 = r0 + dim;
    const uint8_t* r2 = r1 + dim;
    const uint8_t* r3 = r2 + dim;
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 q = _mm256_loadu_ps(query + i);
      acc0 = _mm256_fmadd_ps(q, LoadU8x8(r0 + i), acc0);
      acc1 = _mm256_fmadd_ps(q, LoadU8x8(r1 + i), acc1);
      acc2 = _mm256_fmadd_ps(q, LoadU8x8(r2 + i), acc2);
      acc3 = _mm256_fmadd_ps(q, LoadU8x8(r3 + i), acc3);
    }
    float s0 = HorizontalSum(acc0), s1 = HorizontalSum(acc1);
    float s2 = HorizontalSum(acc2), s3 = HorizontalSum(acc3);
    for (; i < dim; ++i) {
      const float q = query[i];
      s0 += q * static_cast<float>(r0[i]);
      s1 += q * static_cast<float>(r1[i]);
      s2 += q * static_cast<float>(r2[i]);
      s3 += q * static_cast<float>(r3[i]);
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < num_rows; ++r) {
    out[r] = DotSq8Avx2(query, rows + r * dim, dim);
  }
}

void L2SqManySq8Avx2(const float* query, const uint8_t* rows, size_t num_rows,
                     size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const uint8_t* r0 = rows + r * dim;
    const uint8_t* r1 = r0 + dim;
    const uint8_t* r2 = r1 + dim;
    const uint8_t* r3 = r2 + dim;
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 q = _mm256_loadu_ps(query + i);
      const __m256 d0 = _mm256_sub_ps(q, LoadU8x8(r0 + i));
      const __m256 d1 = _mm256_sub_ps(q, LoadU8x8(r1 + i));
      const __m256 d2 = _mm256_sub_ps(q, LoadU8x8(r2 + i));
      const __m256 d3 = _mm256_sub_ps(q, LoadU8x8(r3 + i));
      acc0 = _mm256_fmadd_ps(d0, d0, acc0);
      acc1 = _mm256_fmadd_ps(d1, d1, acc1);
      acc2 = _mm256_fmadd_ps(d2, d2, acc2);
      acc3 = _mm256_fmadd_ps(d3, d3, acc3);
    }
    float s0 = HorizontalSum(acc0), s1 = HorizontalSum(acc1);
    float s2 = HorizontalSum(acc2), s3 = HorizontalSum(acc3);
    for (; i < dim; ++i) {
      const float q = query[i];
      const float d0 = q - static_cast<float>(r0[i]);
      const float d1 = q - static_cast<float>(r1[i]);
      const float d2 = q - static_cast<float>(r2[i]);
      const float d3 = q - static_cast<float>(r3[i]);
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < num_rows; ++r) {
    out[r] = L2SqSq8Avx2(query, rows + r * dim, dim);
  }
}

constexpr KernelDispatch kAvx2Kernels = {
    "avx2-fma",  DotAvx2,      L2SqAvx2,       CosineAvx2,
    DotManyAvx2, L2SqManyAvx2, DotManySq8Avx2, L2SqManySq8Avx2,
};

}  // namespace

namespace internal {

const KernelDispatch* Avx2Kernels() { return &kAvx2Kernels; }

}  // namespace internal

}  // namespace tsfm::search

#endif  // TSFM_HAVE_AVX2_KERNELS
