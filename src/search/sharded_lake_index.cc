#include "search/sharded_lake_index.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>

#include "search/lake_manifest.h"
#include "search/table_ranker.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tsfm::search {


namespace {

// Mirror ColumnEmbeddingIndex's normalization: the HNSW backend stores
// floats whatever the storage knob says, and the manifest must describe
// what the shard files actually contain.
IndexOptions NormalizeShardStorage(IndexOptions options) {
  if (options.backend == IndexBackend::kHnsw) {
    options.storage = Storage::kFloat32;
  }
  return options;
}

}  // namespace

ShardedLakeIndex::ShardedLakeIndex(size_t dim, size_t num_shards,
                                   const IndexOptions& options)
    : dim_(dim), options_(NormalizeShardStorage(options)) {
  num_shards = std::max<size_t>(1, num_shards);
  shards_.reserve(num_shards);
  to_global_.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) shards_.emplace_back(dim, options_);
}

ShardedLakeIndex::ShardedLakeIndex(size_t dim, const IndexOptions& options)
    : dim_(dim), options_(NormalizeShardStorage(options)) {}

void ShardedLakeIndex::MoveFieldsFrom(ShardedLakeIndex&& other) {
  dim_ = other.dim_;
  options_ = other.options_;
  shards_ = std::move(other.shards_);
  global_ids_ = std::move(other.global_ids_);
  locator_ = std::move(other.locator_);
  to_global_ = std::move(other.to_global_);
  compactions_ = other.compactions_;
}

ShardedLakeIndex::ShardedLakeIndex(ShardedLakeIndex&& other) noexcept
    : dim_(other.dim_), options_(other.options_) {
  MoveFieldsFrom(std::move(other));
}

ShardedLakeIndex& ShardedLakeIndex::operator=(
    ShardedLakeIndex&& other) noexcept {
  if (this != &other) MoveFieldsFrom(std::move(other));
  return *this;
}

ShardedLakeIndex ShardedLakeIndex::FromSingle(LakeIndex&& shard) {
  ShardedLakeIndex index(shard.dim(), shard.options());
  {
    // `index` is not visible to any other thread yet; the lock is
    // uncontended and exists for the checker.
    WriterMutexLock lock(&index.mu_);
    index.shards_.push_back(std::move(shard));
    index.to_global_.resize(1);
    index.IndexShardTables(0);
  }
  return index;
}

void ShardedLakeIndex::IndexShardTables(size_t s) {
  const LakeIndex& shard = shards_[s];
  for (size_t local = to_global_[s].size(); local < shard.num_tables(); ++local) {
    size_t handle = global_ids_.size();
    global_ids_.push_back(shard.table_id(local));
    locator_.emplace_back(s, local);
    to_global_[s].push_back(handle);
  }
}

size_t ShardedLakeIndex::ShardOfLocked(const std::string& table_id) const {
  return StableShard(table_id, shards_.size());
}

size_t ShardedLakeIndex::shard_of(const std::string& table_id) const {
  ReaderMutexLock lock(&mu_);
  return ShardOfLocked(table_id);
}

size_t ShardedLakeIndex::AddTable(
    const std::string& table_id,
    const std::vector<std::vector<float>>& column_embeddings) {
  MutexLock writer(&writer_mu_);
  // The shard add and the global-map append publish together under one
  // exclusive section, so an in-flight query (which pins the maps with a
  // shared lock for its whole scatter) can never see a shard hit whose
  // local handle lacks a to_global_ entry.
  WriterMutexLock lock(&mu_);
  const size_t s = ShardOfLocked(table_id);
  const size_t local = shards_[s].AddTable(table_id, column_embeddings);
  const size_t handle = global_ids_.size();
  global_ids_.push_back(table_id);
  locator_.emplace_back(s, local);
  TSFM_CHECK_EQ(to_global_[s].size(), local);
  to_global_[s].push_back(handle);
  return handle;
}

Status ShardedLakeIndex::RemoveTable(const std::string& table_id) {
  MutexLock writer(&writer_mu_);
  // A tombstone changes no global maps (the handle stays allocated until
  // the next full compaction), so the shard's own locking suffices for
  // query consistency — a shared lock here keeps the shard set pinned.
  ReaderMutexLock lock(&mu_);
  return shards_[ShardOfLocked(table_id)].RemoveTable(table_id);
}

void ShardedLakeIndex::Seal() {
  MutexLock writer(&writer_mu_);
  ReaderMutexLock lock(&mu_);
  for (LakeIndex& shard : shards_) shard.Seal();
}

Status ShardedLakeIndex::Compact(double hnsw_rebuild_threshold,
                                 ThreadPool* pool) {
  MutexLock writer(&writer_mu_);

  // Phase A, shared-lock: queries keep running against the old epoch while
  // every churned shard that needs a full rebuild builds its compacted
  // image (survivors re-added in insertion order — the churn-parity
  // contract). writer_mu_ excludes mutations, so the shard state read
  // here cannot move underneath; the shared lock makes that visible to
  // the checker and costs nothing (readers never block readers).
  std::vector<std::optional<LakeIndex::Compacted>> built;
  {
    ReaderMutexLock lock(&mu_);
    built.resize(shards_.size());
    // The build lambda runs on pool threads, where the analysis cannot see
    // this frame's shared lock; bind the guarded field to a plain alias
    // under the lock and capture that instead.
    const std::vector<LakeIndex>& shards = shards_;
    auto build_shard = [&](size_t s) {
      if (shards[s].churned() &&
          !shards[s].WouldFoldInPlace(hnsw_rebuild_threshold)) {
        built[s] = shards[s].BuildCompacted();
      }
    };
    if (pool != nullptr && shards.size() > 1) {
      ParallelFor(pool, 0, shards.size(), build_shard);
    } else {
      for (size_t s = 0; s < shards.size(); ++s) build_shard(s);
    }
  }

  // Phase B, exclusive: swap rebuilt shards, fold the rest in place, and
  // re-densify the global handle maps — one atomic epoch change.
  WriterMutexLock lock(&mu_);
  std::vector<std::string> new_ids;
  std::vector<std::pair<size_t, size_t>> new_locator;
  std::vector<std::vector<size_t>> new_to_global(shards_.size());
  new_ids.reserve(global_ids_.size());
  new_locator.reserve(global_ids_.size());
  for (size_t h = 0; h < global_ids_.size(); ++h) {
    const auto [s, local] = locator_[h];
    size_t new_local = local;
    if (built[s].has_value()) {
      new_local = built[s]->remap[local];
      if (new_local == SIZE_MAX) continue;  // tombstoned; handle retired
    }
    // Surviving locals keep their relative order, so the new maps stay
    // dense per shard and global order matches a from-scratch build.
    TSFM_CHECK_EQ(new_to_global[s].size(), new_local);
    new_to_global[s].push_back(new_ids.size());
    new_locator.emplace_back(s, new_local);
    new_ids.push_back(std::move(global_ids_[h]));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (built[s].has_value()) {
      shards_[s] = std::move(built[s]->index);
    } else if (shards_[s].churned()) {
      // HNSW under the rebuild threshold: insert deltas into the existing
      // graph; tombstoned handles stay in the maps and stay filtered.
      shards_[s].FoldDeltaInPlace();
    } else {
      shards_[s].Seal();
    }
  }
  global_ids_ = std::move(new_ids);
  locator_ = std::move(new_locator);
  to_global_ = std::move(new_to_global);
  ++compactions_;
  return Status::OK();
}

size_t ShardedLakeIndex::num_tables() const {
  ReaderMutexLock lock(&mu_);
  return global_ids_.size();
}

size_t ShardedLakeIndex::num_live_tables() const {
  ReaderMutexLock lock(&mu_);
  size_t total = 0;
  for (const LakeIndex& shard : shards_) total += shard.num_live_tables();
  return total;
}

size_t ShardedLakeIndex::num_columns() const {
  ReaderMutexLock lock(&mu_);
  size_t total = 0;
  for (const LakeIndex& shard : shards_) total += shard.num_columns();
  return total;
}

std::string ShardedLakeIndex::table_id(size_t handle) const {
  ReaderMutexLock lock(&mu_);
  return global_ids_[handle];
}

size_t ShardedLakeIndex::pending_delta_tables() const {
  ReaderMutexLock lock(&mu_);
  size_t total = 0;
  for (const LakeIndex& shard : shards_) total += shard.pending_delta_tables();
  return total;
}

size_t ShardedLakeIndex::pending_tombstones() const {
  ReaderMutexLock lock(&mu_);
  size_t total = 0;
  for (const LakeIndex& shard : shards_) total += shard.pending_tombstones();
  return total;
}

uint64_t ShardedLakeIndex::compactions() const {
  ReaderMutexLock lock(&mu_);
  return compactions_;
}

bool ShardedLakeIndex::churned() const {
  ReaderMutexLock lock(&mu_);
  for (const LakeIndex& shard : shards_) {
    if (shard.churned()) return true;
  }
  return false;
}

std::vector<ColumnEmbeddingIndex::ColumnHit>
ShardedLakeIndex::SearchColumnHitsLocked(const std::vector<float>& query,
                                         size_t m, ThreadPool* pool) const {
  // The search lambda runs on pool threads, invisible to this frame's
  // shared lock; bind the guarded fields to aliases under the lock and
  // capture those (see the concurrency contract in docs/architecture.md).
  const std::vector<LakeIndex>& shards = shards_;
  const std::vector<std::vector<size_t>>& to_global = to_global_;
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> per_shard(
      shards.size());
  auto search_shard = [&](size_t s) {
    // Churn-aware shard search: covers base + delta, filters tombstones.
    auto hits = shards[s].SearchColumns(query, m);
    // Remap shard-local table handles to global handles. Local handles are
    // assigned in insertion order, so the remap is monotone and each list
    // stays sorted by (distance, table, column).
    for (auto& hit : hits) hit.table_id = to_global[s][hit.table_id];
    per_shard[s] = std::move(hits);
  };
  if (pool != nullptr && shards.size() > 1) {
    ParallelFor(pool, 0, shards.size(), search_shard);
  } else {
    for (size_t s = 0; s < shards.size(); ++s) search_shard(s);
  }
  return TableRanker::MergeColumnHits(per_shard, m);
}

std::vector<ColumnEmbeddingIndex::ColumnHit> ShardedLakeIndex::SearchColumnHits(
    const std::vector<float>& query, size_t m, ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  return SearchColumnHitsLocked(query, m, pool);
}

std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>
ShardedLakeIndex::SearchColumnHitsBatchLocked(
    const std::vector<std::vector<float>>& queries, size_t m,
    ThreadPool* pool) const {
  // Scatter the WHOLE batch to each shard (one SearchColumnsBatch call per
  // shard, which reaches the flat backend's multi-query scan), remap local
  // table handles to global, then k-way-merge per query. ParallelFor is
  // nest-safe (util/thread_pool.h), so the shard fan-out and the
  // per-shard query-chunk fan-out share one pool.
  // Aliases bound under the shared lock for the pool-dispatched lambda.
  const std::vector<LakeIndex>& shards = shards_;
  const std::vector<std::vector<size_t>>& to_global = to_global_;
  std::vector<std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>>
      per_shard(shards.size());
  auto search_shard = [&](size_t s, ThreadPool* inner) {
    auto lists = shards[s].SearchColumnsBatch(queries, m, inner);
    for (auto& hits : lists) {
      for (auto& hit : hits) hit.table_id = to_global[s][hit.table_id];
    }
    per_shard[s] = std::move(lists);
  };
  if (pool != nullptr && shards.size() > 1) {
    ParallelFor(pool, 0, shards.size(),
                [&](size_t s) { search_shard(s, pool); });
  } else {
    for (size_t s = 0; s < shards.size(); ++s) search_shard(s, pool);
  }

  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> merged(
      queries.size());
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> lists(
      shards.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    for (size_t s = 0; s < shards.size(); ++s) {
      lists[s] = std::move(per_shard[s][q]);
    }
    merged[q] = TableRanker::MergeColumnHits(lists, m);
  }
  return merged;
}

std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>
ShardedLakeIndex::SearchColumnHitsBatch(
    const std::vector<std::vector<float>>& queries, size_t m,
    ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  return SearchColumnHitsBatchLocked(queries, m, pool);
}

std::vector<size_t> ShardedLakeIndex::RankUnionableLocked(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    size_t exclude, ThreadPool* pool) const {
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> per_column_hits;
  per_column_hits.reserve(query_columns.size());
  for (const auto& qcol : query_columns) {
    per_column_hits.push_back(SearchColumnHitsLocked(qcol, k * 3, pool));
  }
  return TableRanker::RankFromColumnHits(per_column_hits, exclude);
}

std::vector<size_t> ShardedLakeIndex::RankUnionable(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    size_t exclude, ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  return RankUnionableLocked(query_columns, k, exclude, pool);
}

std::vector<size_t> ShardedLakeIndex::RankJoinable(
    const std::vector<float>& query_column, size_t k, size_t exclude,
    ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  return TableRanker::RankFromSingleColumnHits(
      SearchColumnHitsLocked(query_column, k * 3, pool), exclude);
}

std::vector<std::vector<size_t>> ShardedLakeIndex::RankUnionableBatchLocked(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    const std::vector<size_t>& excludes, ThreadPool* pool) const {
  std::vector<std::vector<size_t>> results(queries.size());
  auto exclude_of = [&](size_t q) {
    return q < excludes.size() ? excludes[q] : SIZE_MAX;
  };
  // Flatten every query's columns into one batched scatter so each shard
  // streams its rows once for the whole coalesced group (the multi-query
  // scan), instead of once per query column. Hit lists are identical to
  // per-query SearchColumnHits, so the Fig 6 ranking is unchanged.
  std::vector<std::vector<float>> flat;
  std::vector<size_t> offset(queries.size() + 1, 0);
  for (size_t q = 0; q < queries.size(); ++q) {
    offset[q + 1] = offset[q] + queries[q].size();
  }
  flat.reserve(offset.back());
  for (const auto& query : queries) {
    flat.insert(flat.end(), query.begin(), query.end());
  }
  auto hits = SearchColumnHitsBatchLocked(flat, k * 3, pool);
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> per_column(
        std::make_move_iterator(hits.begin() + offset[q]),
        std::make_move_iterator(hits.begin() + offset[q + 1]));
    results[q] = TableRanker::RankFromColumnHits(per_column, exclude_of(q));
  }
  return results;
}

std::vector<std::vector<size_t>> ShardedLakeIndex::RankUnionableBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    const std::vector<size_t>& excludes, ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  return RankUnionableBatchLocked(queries, k, excludes, pool);
}

std::vector<std::vector<size_t>> ShardedLakeIndex::RankJoinableBatchLocked(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    const std::vector<size_t>& excludes, ThreadPool* pool) const {
  std::vector<std::vector<size_t>> results(query_columns.size());
  auto exclude_of = [&](size_t q) {
    return q < excludes.size() ? excludes[q] : SIZE_MAX;
  };
  auto hits = SearchColumnHitsBatchLocked(query_columns, k * 3, pool);
  for (size_t q = 0; q < query_columns.size(); ++q) {
    results[q] = TableRanker::RankFromSingleColumnHits(hits[q], exclude_of(q));
  }
  return results;
}

std::vector<std::vector<size_t>> ShardedLakeIndex::RankJoinableBatch(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    const std::vector<size_t>& excludes, ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  return RankJoinableBatchLocked(query_columns, k, excludes, pool);
}

std::vector<std::string> ShardedLakeIndex::QueryUnionable(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  return RankedTableIds(
      global_ids_,
      RankUnionableLocked(query_columns, k, /*exclude=*/SIZE_MAX, pool), k);
}

std::vector<std::string> ShardedLakeIndex::QueryJoinable(
    const std::vector<float>& query_column, size_t k, ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  return RankedTableIds(global_ids_,
                        TableRanker::RankFromSingleColumnHits(
                            SearchColumnHitsLocked(query_column, k * 3, pool),
                            /*exclude=*/SIZE_MAX),
                        k);
}

std::vector<std::vector<std::string>> ShardedLakeIndex::QueryUnionableBatch(
    const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
    ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  auto ranked = RankUnionableBatchLocked(queries, k, /*excludes=*/{}, pool);
  std::vector<std::vector<std::string>> out(ranked.size());
  for (size_t q = 0; q < ranked.size(); ++q) {
    out[q] = RankedTableIds(global_ids_, ranked[q], k);
  }
  return out;
}

std::vector<std::vector<std::string>> ShardedLakeIndex::QueryJoinableBatch(
    const std::vector<std::vector<float>>& query_columns, size_t k,
    ThreadPool* pool) const {
  ReaderMutexLock lock(&mu_);
  auto ranked =
      RankJoinableBatchLocked(query_columns, k, /*excludes=*/{}, pool);
  std::vector<std::vector<std::string>> out(ranked.size());
  for (size_t q = 0; q < ranked.size(); ++q) {
    out[q] = RankedTableIds(global_ids_, ranked[q], k);
  }
  return out;
}

Status ShardedLakeIndex::Save(const std::string& path, ThreadPool* pool) const {
  namespace fs = std::filesystem;
  const fs::path manifest_path(path);
  const std::string basename = manifest_path.filename().string();
  const fs::path dir = manifest_path.parent_path();

  // Exclude mutations (writer_mu_) but not queries for the whole save, so
  // the manifest and the shard files describe one epoch.
  MutexLock writer(&writer_mu_);
  ReaderMutexLock lock(&mu_);
  // Alias bound under the shared lock for the pool-dispatched save lambda.
  const std::vector<LakeIndex>& shards = shards_;

  // Shard files first, in parallel: each one is an independent LakeIndex
  // ("LAK2") image, so a crash mid-save never leaves a manifest pointing at
  // files that were not yet written.
  std::vector<Status> statuses(shards.size());
  auto save_shard = [&](size_t s) {
    statuses[s] =
        shards[s].Save((dir / LakeShardFileName(basename, s)).string());
  };
  if (pool != nullptr && shards.size() > 1) {
    ParallelFor(pool, 0, shards.size(), save_shard);
  } else {
    for (size_t s = 0; s < shards.size(); ++s) save_shard(s);
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }

  LakeManifest manifest;
  manifest.backend = options_.backend;
  manifest.metric = options_.metric;
  manifest.storage = options_.storage;
  manifest.dim = dim_;
  size_t live = 0;
  for (const LakeIndex& shard : shards_) {
    if (shard.churned()) manifest.churned = true;
    live += shard.num_live_tables();
  }
  manifest.live_tables = live;
  manifest.shard_files.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    manifest.shard_files.push_back(LakeShardFileName(basename, s));
  }
  // Global handle space: (shard, local) per handle in insertion order —
  // tombstoned handles included, matching the shard files' churn sections —
  // so handles assigned by AddTable stay valid across a save/load round
  // trip (until the next full compaction re-densifies them).
  manifest.locator.reserve(locator_.size());
  for (const auto& [shard, local] : locator_) {
    manifest.locator.emplace_back(static_cast<uint32_t>(shard),
                                  static_cast<uint64_t>(local));
  }
  return SaveLakeManifest(manifest, path);
}

Result<ShardedLakeIndex> ShardedLakeIndex::Load(const std::string& path,
                                                ThreadPool* pool) {
  namespace fs = std::filesystem;
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return Status::IoError("cannot open " + path);
  }
  if (!IsLakeManifestFile(path)) {
    // Legacy single-file formats ("LAK2" / "LAKE"): wrap as one shard.
    auto single = LakeIndex::Load(path);
    if (!single.ok()) return single.status();
    return FromSingle(std::move(single).value());
  }

  Result<LakeManifest> parsed = LoadLakeManifest(path);
  if (!parsed.ok()) return parsed.status();
  const LakeManifest manifest = std::move(parsed).value();
  const size_t num_shards = manifest.num_shards();
  const uint64_t dim = manifest.dim;
  const std::vector<std::string>& shard_files = manifest.shard_files;
  const auto& locator = manifest.locator;
  const uint64_t num_tables = manifest.num_tables();

  // Load the shard files in parallel; each is a self-contained LakeIndex.
  const fs::path dir = fs::path(path).parent_path();
  std::vector<std::optional<Result<LakeIndex>>> loaded(num_shards);
  auto load_shard = [&](size_t s) {
    loaded[s] = LakeIndex::Load((dir / shard_files[s]).string());
  };
  if (pool != nullptr && num_shards > 1) {
    ParallelFor(pool, 0, num_shards, load_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) load_shard(s);
  }

  IndexOptions options;
  options.backend = manifest.backend;
  options.metric = manifest.metric;
  options.storage = manifest.storage;
  ShardedLakeIndex index(static_cast<size_t>(dim), options);
  {
    // `index` is not visible to any other thread yet; the lock is
    // uncontended and exists for the checker. Error paths return while it is
    // held, which is fine — the guard unwinds first. The scope ends before
    // the success return so the move out of `index` happens unlocked.
    WriterMutexLock lock(&index.mu_);
    index.shards_.reserve(num_shards);
    uint64_t total_shard_tables = 0;
    uint64_t total_live_tables = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      if (!loaded[s]->ok()) return loaded[s]->status();
      LakeIndex shard = std::move(*loaded[s]).value();
      if (shard.dim() != dim) {
        return Status::ParseError("shard " + shard_files[s] +
                                  " dim disagrees with manifest " + path);
      }
      if (shard.options().backend != options.backend ||
          shard.options().metric != options.metric) {
        return Status::ParseError("shard " + shard_files[s] +
                                  " backend/metric disagrees with manifest " +
                                  path);
      }
      if (shard.options().storage != options.storage) {
        // A float shard merged into an sq8 lake (or vice versa) would rank
        // with distances from two different spaces; refuse loudly.
        return Status::ParseError(
            "shard " + shard_files[s] + " storage (" +
            (shard.options().storage == Storage::kSq8 ? "sq8" : "float32") +
            ") disagrees with manifest " + path + " (" +
            (options.storage == Storage::kSq8 ? "sq8" : "float32") + ")");
      }
      total_shard_tables += shard.num_tables();
      total_live_tables += shard.num_live_tables();
      index.shards_.push_back(std::move(shard));
    }
    // Rebuild the global handle space in its original insertion order from
    // the manifest's locator records; every shard table must be claimed by
    // exactly one record.
    if (total_shard_tables != num_tables) {
      return Status::ParseError("lake manifest " + path +
                                " table count disagrees with shard files");
    }
    // Churned manifests also pin the live count, catching a manifest paired
    // with shard files from a different compaction epoch.
    if (total_live_tables != manifest.live_tables) {
      return Status::ParseError("lake manifest " + path +
                                " live-table count disagrees with shard files");
    }
    index.to_global_.resize(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      index.to_global_[s].assign(index.shards_[s].num_tables(), SIZE_MAX);
    }
    index.global_ids_.reserve(num_tables);
    index.locator_.reserve(num_tables);
    for (const auto& [shard, local] : locator) {
      if (local >= index.to_global_[shard].size() ||
          index.to_global_[shard][local] != SIZE_MAX) {
        return Status::ParseError("lake manifest " + path +
                                  " has an invalid or duplicate table record");
      }
      index.to_global_[shard][local] = index.global_ids_.size();
      index.global_ids_.push_back(index.shards_[shard].table_id(local));
      index.locator_.emplace_back(shard, local);
    }
    // The shard files carry the HNSW knobs; mirror shard 0's so options()
    // reports what the shards actually use.
    index.options_.hnsw = index.shards_[0].options().hnsw;
  }
  return index;
}

}  // namespace tsfm::search
