#include "search/knn_index.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "search/distance_kernels.h"
#include "search/stream_io.h"
#include "util/logging.h"

namespace tsfm::search {

using io::ReadPod;
using io::WritePod;

KnnIndex::KnnIndex(size_t dim, Metric metric) : dim_(dim), metric_(metric) {}

void KnnIndex::Add(size_t payload, const std::vector<float>& vec) {
  TSFM_CHECK_EQ(vec.size(), dim_);
  data_.insert(data_.end(), vec.begin(), vec.end());
  payloads_.push_back(payload);
  norms_.push_back(Norm(vec.data(), dim_));
}

std::vector<std::pair<size_t, float>> KnnIndex::Search(const std::vector<float>& query,
                                                       size_t k) const {
  if (k == 0 || query.size() != dim_ || payloads_.empty()) return {};
  // The scan streams rows through the selected SIMD kernels; cosine
  // normalization (and the zero-norm -> kMaxCosineDistance rule) lives in
  // the kernel seam, not here.
  auto hits = ScanTopK(query.data(), data_.data(), norms_.data(),
                       payloads_.size(), dim_, metric_, k);
  std::vector<std::pair<size_t, float>> out(hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    out[i] = {payloads_[hits[i].row], hits[i].distance};
  }
  return out;
}

Status KnnIndex::Save(std::ostream& out) const {
  WritePod(out, kFormatTag);
  WritePod(out, static_cast<uint32_t>(metric_));
  WritePod(out, static_cast<uint64_t>(dim_));
  WritePod(out, static_cast<uint64_t>(payloads_.size()));
  for (size_t p : payloads_) WritePod(out, static_cast<uint64_t>(p));
  out.write(reinterpret_cast<const char*>(data_.data()),
            static_cast<std::streamsize>(data_.size() * sizeof(float)));
  if (!out) return Status::IoError("flat index write failed");
  return Status::OK();
}

Result<KnnIndex> KnnIndex::Load(std::istream& in) {
  uint32_t metric = 0;
  uint64_t dim = 0, n = 0;
  if (!ReadPod(in, &metric) || !ReadPod(in, &dim) || !ReadPod(in, &n)) {
    return Status::IoError("truncated flat index header");
  }
  if (metric > static_cast<uint32_t>(Metric::kL2) || dim == 0 ||
      dim > (1u << 20) || n > (1ull << 32)) {
    return Status::ParseError("implausible flat index header");
  }
  KnnIndex index(dim, static_cast<Metric>(metric));
  index.payloads_.resize(n);
  for (auto& p : index.payloads_) {
    uint64_t v = 0;
    if (!ReadPod(in, &v)) return Status::IoError("truncated flat payloads");
    p = static_cast<size_t>(v);
  }
  index.data_.resize(n * dim);
  in.read(reinterpret_cast<char*>(index.data_.data()),
          static_cast<std::streamsize>(index.data_.size() * sizeof(float)));
  if (!in) return Status::IoError("truncated flat vectors");
  index.norms_.reserve(n);
  for (uint64_t r = 0; r < n; ++r) {
    index.norms_.push_back(Norm(index.data_.data() + r * dim, dim));
  }
  return index;
}

}  // namespace tsfm::search
