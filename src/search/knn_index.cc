#include "search/knn_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tsfm::search {

KnnIndex::KnnIndex(size_t dim, Metric metric) : dim_(dim), metric_(metric) {}

void KnnIndex::Add(size_t payload, const std::vector<float>& vec) {
  TSFM_CHECK_EQ(vec.size(), dim_);
  data_.insert(data_.end(), vec.begin(), vec.end());
  payloads_.push_back(payload);
  double n = 0.0;
  for (float v : vec) n += static_cast<double>(v) * v;
  norms_.push_back(static_cast<float>(std::sqrt(n)));
}

float KnnIndex::Distance(const float* a, const std::vector<float>& b) const {
  if (metric_ == Metric::kL2) {
    double s = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      double d = static_cast<double>(a[i]) - b[i];
      s += d * d;
    }
    return static_cast<float>(std::sqrt(s));
  }
  double dot = 0.0;
  for (size_t i = 0; i < dim_; ++i) dot += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(dot);  // caller divides by norms
}

std::vector<std::pair<size_t, float>> KnnIndex::Search(const std::vector<float>& query,
                                                       size_t k) const {
  TSFM_CHECK_EQ(query.size(), dim_);
  double qn = 0.0;
  for (float v : query) qn += static_cast<double>(v) * v;
  const float qnorm = static_cast<float>(std::sqrt(qn));

  std::vector<std::pair<size_t, float>> scored;  // (row, distance)
  scored.reserve(payloads_.size());
  for (size_t r = 0; r < payloads_.size(); ++r) {
    const float* row = data_.data() + r * dim_;
    float dist;
    if (metric_ == Metric::kL2) {
      dist = Distance(row, query);
    } else {
      float denom = norms_[r] * qnorm;
      dist = denom > 1e-12f ? 1.0f - Distance(row, query) / denom : 1.0f;
    }
    scored.emplace_back(r, dist);
  }
  const size_t top = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + top, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second < b.second;
                      return a.first < b.first;  // deterministic ties
                    });
  scored.resize(top);
  for (auto& [row, dist] : scored) row = payloads_[row];
  return scored;
}

}  // namespace tsfm::search
