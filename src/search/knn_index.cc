#include "search/knn_index.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "search/distance_kernels.h"
#include "search/stream_io.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tsfm::search {

using io::ReadPod;
using io::WritePod;

KnnIndex::KnnIndex(size_t dim, Metric metric, Storage storage)
    : dim_(dim), metric_(metric), storage_(storage) {}

KnnIndex::KnnIndex(KnnIndex&& other) noexcept
    : dim_(other.dim_),
      metric_(other.metric_),
      storage_(other.storage_),
      data_(std::move(other.data_)),
      payloads_(std::move(other.payloads_)),
      norms_(std::move(other.norms_)),
      codec_(std::move(other.codec_)),
      codes_(std::move(other.codes_)),
      quantized_(other.quantized_.load(std::memory_order_acquire)) {}

KnnIndex& KnnIndex::operator=(KnnIndex&& other) noexcept {
  if (this == &other) return *this;
  dim_ = other.dim_;
  metric_ = other.metric_;
  storage_ = other.storage_;
  data_ = std::move(other.data_);
  payloads_ = std::move(other.payloads_);
  norms_ = std::move(other.norms_);
  codec_ = std::move(other.codec_);
  codes_ = std::move(other.codes_);
  quantized_.store(other.quantized_.load(std::memory_order_acquire),
                   std::memory_order_release);
  return *this;
}

void KnnIndex::Add(size_t payload, const std::vector<float>& vec) {
  TSFM_CHECK_EQ(vec.size(), dim_);
  payloads_.push_back(payload);
  if (storage_ == Storage::kSq8 &&
      quantized_.load(std::memory_order_acquire)) {
    // The codec is already pinned (trained, loaded, or seeded): encode
    // straight through it so the row joins the quantized scan.
    codes_.resize(codes_.size() + dim_);
    uint8_t* code = codes_.data() + codes_.size() - dim_;
    codec_.EncodeRow(vec.data(), code);
    norms_.push_back(codec_.DecodedNorm(code));
    return;
  }
  data_.insert(data_.end(), vec.begin(), vec.end());
  norms_.push_back(Norm(vec.data(), dim_));
}

void KnnIndex::EnsureQuantized() const {
  if (quantized_.load(std::memory_order_acquire)) return;
  MutexLock lock(&quantize_mu_);
  if (quantized_.load(std::memory_order_relaxed)) return;
  const size_t n = payloads_.size();
  codec_ = Sq8Codec::Train(data_.data(), n, dim_);
  codes_.resize(n * dim_);
  for (size_t r = 0; r < n; ++r) {
    uint8_t* code = codes_.data() + r * dim_;
    codec_.EncodeRow(data_.data() + r * dim_, code);
    // Cosine ranks against the norms of what the scan actually sees — the
    // decoded rows — not the original floats.
    norms_[r] = codec_.DecodedNorm(code);
  }
  data_.clear();
  data_.shrink_to_fit();
  quantized_.store(true, std::memory_order_release);
}

void KnnIndex::SeedSq8Codec(Sq8Codec codec) {
  TSFM_CHECK(storage_ == Storage::kSq8);
  TSFM_CHECK(payloads_.empty());
  TSFM_CHECK_EQ(codec.dim(), dim_);
  codec_ = std::move(codec);
  quantized_.store(true, std::memory_order_release);
}

const Sq8Codec* KnnIndex::sq8_codec() const {
  if (storage_ != Storage::kSq8) return nullptr;
  EnsureQuantized();
  return &codec_;
}

std::vector<std::pair<size_t, float>> KnnIndex::Search(const std::vector<float>& query,
                                                       size_t k) const {
  if (k == 0 || query.size() != dim_ || payloads_.empty()) return {};
  // The scan streams rows through the selected SIMD kernels; cosine
  // normalization (and the zero-norm -> kMaxCosineDistance rule) lives in
  // the kernel seam, not here.
  std::vector<ScanHit> hits;
  if (storage_ == Storage::kSq8) {
    EnsureQuantized();
    hits = ScanTopKSq8(query.data(), codes_.data(), codec_, norms_.data(),
                       payloads_.size(), metric_, k);
  } else {
    hits = ScanTopK(query.data(), data_.data(), norms_.data(),
                    payloads_.size(), dim_, metric_, k);
  }
  std::vector<std::pair<size_t, float>> out(hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    out[i] = {payloads_[hits[i].row], hits[i].distance};
  }
  return out;
}

std::vector<std::vector<std::pair<size_t, float>>> KnnIndex::SearchBatch(
    const std::vector<std::vector<float>>& queries, size_t k,
    ThreadPool* pool) const {
  std::vector<std::vector<std::pair<size_t, float>>> results(queries.size());
  if (k == 0 || payloads_.empty()) return results;
  // Wrong-dimension queries keep their (empty) slot, matching Search.
  std::vector<size_t> valid;
  valid.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].size() == dim_) valid.push_back(i);
  }
  if (valid.empty()) return results;
  const bool sq8 = storage_ == Storage::kSq8;
  if (sq8) EnsureQuantized();

  // Pack queries into chunks of up to kChunkQueries and give each chunk
  // one multi-query pass over the rows. The chunk bounds the scan's block
  // buffer (512 rows x chunk floats) and is the unit of pool parallelism;
  // per-query results do not depend on which chunk a query lands in (the
  // multi kernels' per-pair values are batch-size-invariant), so chunked,
  // pooled, and serial execution all return bit-identical hits.
  constexpr size_t kChunkQueries = 8;
  const size_t num_chunks = (valid.size() + kChunkQueries - 1) / kChunkQueries;
  auto run_chunk = [&](size_t c) {
    const size_t lo = c * kChunkQueries;
    const size_t hi = std::min(valid.size(), lo + kChunkQueries);
    const size_t count = hi - lo;
    std::vector<float> packed(count * dim_);
    for (size_t j = 0; j < count; ++j) {
      const std::vector<float>& query = queries[valid[lo + j]];
      std::copy(query.begin(), query.end(), packed.begin() + j * dim_);
    }
    std::vector<std::vector<ScanHit>> hits =
        sq8 ? ScanTopKMultiSq8(packed.data(), count, codes_.data(), codec_,
                               norms_.data(), payloads_.size(), metric_, k)
            : ScanTopKMulti(packed.data(), count, data_.data(), norms_.data(),
                            payloads_.size(), dim_, metric_, k);
    for (size_t j = 0; j < count; ++j) {
      auto& out = results[valid[lo + j]];
      out.resize(hits[j].size());
      for (size_t h = 0; h < hits[j].size(); ++h) {
        out[h] = {payloads_[hits[j][h].row], hits[j][h].distance};
      }
    }
  };
  if (pool != nullptr && num_chunks > 1) {
    ParallelFor(pool, 0, num_chunks, run_chunk);
  } else {
    for (size_t c = 0; c < num_chunks; ++c) run_chunk(c);
  }
  return results;
}

Status KnnIndex::Save(std::ostream& out) const {
  if (storage_ == Storage::kSq8) {
    EnsureQuantized();
    WritePod(out, kSq8FormatTag);
    WritePod(out, static_cast<uint32_t>(metric_));
    WritePod(out, static_cast<uint64_t>(dim_));
    WritePod(out, static_cast<uint64_t>(payloads_.size()));
    for (size_t p : payloads_) WritePod(out, static_cast<uint64_t>(p));
    if (Status s = codec_.Save(out); !s.ok()) return s;
    out.write(reinterpret_cast<const char*>(codes_.data()),
              static_cast<std::streamsize>(codes_.size()));
    if (!out) return Status::IoError("sq8 flat index write failed");
    return Status::OK();
  }
  WritePod(out, kFormatTag);
  WritePod(out, static_cast<uint32_t>(metric_));
  WritePod(out, static_cast<uint64_t>(dim_));
  WritePod(out, static_cast<uint64_t>(payloads_.size()));
  for (size_t p : payloads_) WritePod(out, static_cast<uint64_t>(p));
  out.write(reinterpret_cast<const char*>(data_.data()),
            static_cast<std::streamsize>(data_.size() * sizeof(float)));
  if (!out) return Status::IoError("flat index write failed");
  return Status::OK();
}

namespace {

struct FlatHeader {
  uint32_t metric = 0;
  uint64_t dim = 0;
  uint64_t n = 0;
};

// Shared header + payload prefix of both flat layouts (tag already
// consumed by the caller).
Status ReadFlatPrefix(std::istream& in, FlatHeader* header,
                      std::vector<size_t>* payloads) {
  if (!ReadPod(in, &header->metric) || !ReadPod(in, &header->dim) ||
      !ReadPod(in, &header->n)) {
    return Status::IoError("truncated flat index header");
  }
  if (header->metric > static_cast<uint32_t>(Metric::kL2) ||
      header->dim == 0 || header->dim > (1u << 20) ||
      header->n > (1ull << 32)) {
    return Status::ParseError("implausible flat index header");
  }
  payloads->resize(header->n);
  for (auto& p : *payloads) {
    uint64_t v = 0;
    if (!ReadPod(in, &v)) return Status::IoError("truncated flat payloads");
    p = static_cast<size_t>(v);
  }
  return Status::OK();
}

}  // namespace

Result<KnnIndex> KnnIndex::Load(std::istream& in) {
  FlatHeader header;
  std::vector<size_t> payloads;
  if (Status s = ReadFlatPrefix(in, &header, &payloads); !s.ok()) return s;
  KnnIndex index(header.dim, static_cast<Metric>(header.metric));
  index.payloads_ = std::move(payloads);
  index.data_.resize(header.n * header.dim);
  in.read(reinterpret_cast<char*>(index.data_.data()),
          static_cast<std::streamsize>(index.data_.size() * sizeof(float)));
  if (!in) return Status::IoError("truncated flat vectors");
  index.norms_.reserve(header.n);
  for (uint64_t r = 0; r < header.n; ++r) {
    index.norms_.push_back(Norm(index.data_.data() + r * header.dim,
                                header.dim));
  }
  return index;
}

Result<KnnIndex> KnnIndex::LoadSq8(std::istream& in) {
  FlatHeader header;
  std::vector<size_t> payloads;
  if (Status s = ReadFlatPrefix(in, &header, &payloads); !s.ok()) return s;
  auto codec = Sq8Codec::Load(in, header.dim);
  if (!codec.ok()) return codec.status();
  KnnIndex index(header.dim, static_cast<Metric>(header.metric),
                 Storage::kSq8);
  index.payloads_ = std::move(payloads);
  index.codes_.resize(header.n * header.dim);
  in.read(reinterpret_cast<char*>(index.codes_.data()),
          static_cast<std::streamsize>(index.codes_.size()));
  if (!in) return Status::IoError("truncated sq8 rows");
  index.codec_ = std::move(codec).value();
  index.norms_.reserve(header.n);
  for (uint64_t r = 0; r < header.n; ++r) {
    index.norms_.push_back(
        index.codec_.DecodedNorm(index.codes_.data() + r * header.dim));
  }
  index.quantized_.store(true, std::memory_order_release);
  return index;
}

}  // namespace tsfm::search
