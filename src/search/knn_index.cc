#include "search/knn_index.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <queue>

#include "search/stream_io.h"
#include "util/logging.h"

namespace tsfm::search {

using io::ReadPod;
using io::WritePod;

KnnIndex::KnnIndex(size_t dim, Metric metric) : dim_(dim), metric_(metric) {}

void KnnIndex::Add(size_t payload, const std::vector<float>& vec) {
  TSFM_CHECK_EQ(vec.size(), dim_);
  data_.insert(data_.end(), vec.begin(), vec.end());
  payloads_.push_back(payload);
  double n = 0.0;
  for (float v : vec) n += static_cast<double>(v) * v;
  norms_.push_back(static_cast<float>(std::sqrt(n)));
}

float KnnIndex::Distance(const float* a, const std::vector<float>& b) const {
  if (metric_ == Metric::kL2) {
    double s = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      double d = static_cast<double>(a[i]) - b[i];
      s += d * d;
    }
    return static_cast<float>(std::sqrt(s));
  }
  double dot = 0.0;
  for (size_t i = 0; i < dim_; ++i) dot += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(dot);  // caller divides by norms
}

std::vector<std::pair<size_t, float>> KnnIndex::Search(const std::vector<float>& query,
                                                       size_t k) const {
  if (k == 0 || query.size() != dim_ || payloads_.empty()) return {};
  double qn = 0.0;
  for (float v : query) qn += static_cast<double>(v) * v;
  const float qnorm = static_cast<float>(std::sqrt(qn));

  // Bounded max-heap of the best k rows: top is the worst kept candidate,
  // ordered by (distance, row) so ties stay deterministic.
  using Entry = std::pair<float, size_t>;  // (distance, row)
  std::priority_queue<Entry> heap;
  for (size_t r = 0; r < payloads_.size(); ++r) {
    const float* row = data_.data() + r * dim_;
    float dist;
    if (metric_ == Metric::kL2) {
      dist = Distance(row, query);
    } else {
      float denom = norms_[r] * qnorm;
      dist = denom > 1e-12f ? 1.0f - Distance(row, query) / denom : 1.0f;
    }
    if (heap.size() < k) {
      heap.emplace(dist, r);
    } else if (Entry(dist, r) < heap.top()) {
      heap.pop();
      heap.emplace(dist, r);
    }
  }

  std::vector<std::pair<size_t, float>> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    const auto& [dist, row] = heap.top();
    out[i] = {payloads_[row], dist};
    heap.pop();
  }
  return out;
}

Status KnnIndex::Save(std::ostream& out) const {
  WritePod(out, kFormatTag);
  WritePod(out, static_cast<uint32_t>(metric_));
  WritePod(out, static_cast<uint64_t>(dim_));
  WritePod(out, static_cast<uint64_t>(payloads_.size()));
  for (size_t p : payloads_) WritePod(out, static_cast<uint64_t>(p));
  out.write(reinterpret_cast<const char*>(data_.data()),
            static_cast<std::streamsize>(data_.size() * sizeof(float)));
  if (!out) return Status::IoError("flat index write failed");
  return Status::OK();
}

Result<KnnIndex> KnnIndex::Load(std::istream& in) {
  uint32_t metric = 0;
  uint64_t dim = 0, n = 0;
  if (!ReadPod(in, &metric) || !ReadPod(in, &dim) || !ReadPod(in, &n)) {
    return Status::IoError("truncated flat index header");
  }
  if (metric > static_cast<uint32_t>(Metric::kL2) || dim == 0 ||
      dim > (1u << 20) || n > (1ull << 32)) {
    return Status::ParseError("implausible flat index header");
  }
  KnnIndex index(dim, static_cast<Metric>(metric));
  index.payloads_.resize(n);
  for (auto& p : index.payloads_) {
    uint64_t v = 0;
    if (!ReadPod(in, &v)) return Status::IoError("truncated flat payloads");
    p = static_cast<size_t>(v);
  }
  index.data_.resize(n * dim);
  in.read(reinterpret_cast<char*>(index.data_.data()),
          static_cast<std::streamsize>(index.data_.size() * sizeof(float)));
  if (!in) return Status::IoError("truncated flat vectors");
  index.norms_.reserve(n);
  for (uint64_t r = 0; r < n; ++r) {
    double norm = 0.0;
    const float* row = index.data_.data() + r * dim;
    for (uint64_t i = 0; i < dim; ++i) {
      norm += static_cast<double>(row[i]) * row[i];
    }
    index.norms_.push_back(static_cast<float>(std::sqrt(norm)));
  }
  return index;
}

}  // namespace tsfm::search
