// SIMD distance kernels — the lowest layer of the search stack.
//
// Every query in the repo bottoms out in inner-product / L2 scans
// (KnnIndex::Search) or HNSW neighbour expansion (HnswIndex::Distance).
// This module owns those loops: a kernel set (dot, squared L2, cosine
// distance, and one-query-many-rows batch variants) is selected once per
// process by runtime CPU detection — AVX2+FMA when the CPU has both, NEON
// on aarch64, portable scalar otherwise — and exposed as plain function
// pointers so the indexes above never carry their own arithmetic.
//
// Semantics the seam guarantees (so callers cannot diverge):
//   - Cosine normalization lives HERE. CosineDistanceFromDot folds the
//     norm division and the zero-norm guard into the kernel layer; no
//     caller divides by norms itself.
//   - A zero-norm vector has no direction, so wherever norms are known
//     (the cosine kernel, CosineDistanceFromDot, and therefore the flat
//     scan) its cosine distance is kMaxCosineDistance (+inf): it ranks
//     strictly after every vector with a direction instead of
//     masquerading as "orthogonal". HnswIndex is the one exception: it
//     normalizes on insert, so a zero-norm input degrades to the zero
//     vector at distance 1.0 — see hnsw.h.
//   - Accumulation is in float on every path (the SIMD lanes are float;
//     the scalar reference matches). Kernel sets agree within 1e-4
//     relative on random vectors (property-tested in
//     tests/distance_kernels_test.cc) but are NOT bit-identical — never
//     compare distances across kernel sets with ==. The same contract
//     covers the batch (*_many) kernels against their pairwise
//     counterparts: row blocking changes the accumulation order.
//
// Setting LAKS_FORCE_SCALAR=1 in the environment forces the scalar set
// regardless of CPU, so SIMD/scalar parity is testable on any machine
// (CI runs the whole tier-1 suite once per mode).
#ifndef TSFM_SEARCH_DISTANCE_KERNELS_H_
#define TSFM_SEARCH_DISTANCE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace tsfm::search {

/// Distance metrics understood by every index backend.
enum class Metric { kCosine, kL2 };

/// Cosine distance reported for a zero-norm vector (no direction — it must
/// rank after everything that has one).
inline constexpr float kMaxCosineDistance =
    std::numeric_limits<float>::infinity();

/// Norm-product guard below which cosine is treated as undefined.
inline constexpr float kNormProductEps = 1e-12f;

/// Pairwise kernel: one value from two length-`n` vectors.
using PairKernelFn = float (*)(const float* a, const float* b, size_t n);

/// Batch kernel: `query` against `num_rows` contiguous row-major rows of
/// length `dim`, one output per row. This is what the flat scan streams
/// through — no per-row indirect call, the row loop lives inside the
/// selected ISA's translation unit.
using BatchKernelFn = void (*)(const float* query, const float* rows,
                               size_t num_rows, size_t dim, float* out);

/// Asymmetric batch kernel: float query against `num_rows` row-major
/// uint8 SQ8 code rows. The kernels are codec-agnostic — they treat each
/// byte as the number it is (dot: sum q_i * u_i; l2sq: sum (q_i - u_i)^2)
/// and ScanTopKSq8 pre-transforms the query per metric so the affine
/// calibration never enters the inner loop.
using BatchKernelSq8Fn = void (*)(const float* query, const uint8_t* rows,
                                  size_t num_rows, size_t dim, float* out);

/// \brief Multi-query batch ("mini-GEMM") kernel: `num_queries` row-major
/// queries of length `dim` against `num_rows` row-major rows, writing
/// out[q * num_rows + r].
///
/// This is the batched-server hot loop: the register tile walks several
/// queries and rows abreast so each row load from memory is shared by the
/// whole query tile instead of being re-fetched per query. Contract: the
/// value produced for every (q, r) pair is bit-identical to what the SAME
/// dispatch's single-query batch kernel (dot_many / l2sq_many) produces
/// for that row — the tile may reorder which pair is computed when, but
/// never the accumulation order within a pair. ScanTopKMulti relies on
/// this to return exactly what per-query ScanTopK calls would.
using MultiBatchKernelFn = void (*)(const float* queries, size_t num_queries,
                                    const float* rows, size_t num_rows,
                                    size_t dim, float* out);

/// Multi-query variant of BatchKernelSq8Fn, same layout and bit-identity
/// contract as MultiBatchKernelFn (vs. dot_many_sq8 / l2sq_many_sq8).
using MultiBatchKernelSq8Fn = void (*)(const float* queries,
                                       size_t num_queries,
                                       const uint8_t* rows, size_t num_rows,
                                       size_t dim, float* out);

/// \brief One ISA's kernel set. Instances are immutable process-lifetime
/// statics; Kernels() picks one at first use.
struct KernelDispatch {
  const char* name;        ///< "scalar", "avx2-fma", or "neon"
  PairKernelFn dot;        ///< inner product
  PairKernelFn l2sq;       ///< squared Euclidean distance
  PairKernelFn cosine;     ///< 1 - cos(a, b); zero norm -> kMaxCosineDistance
  BatchKernelFn dot_many;  ///< dot of query vs each row
  BatchKernelFn l2sq_many; ///< squared L2 of query vs each row
  BatchKernelSq8Fn dot_many_sq8;   ///< dot of float query vs each u8 row
  BatchKernelSq8Fn l2sq_many_sq8;  ///< squared L2 of float query vs each u8 row
  MultiBatchKernelFn dot_multi;    ///< dot of each query vs each row
  MultiBatchKernelFn l2sq_multi;   ///< squared L2 of each query vs each row
  MultiBatchKernelSq8Fn dot_multi_sq8;   ///< multi-query dot vs u8 rows
  MultiBatchKernelSq8Fn l2sq_multi_sq8;  ///< multi-query sq L2 vs u8 rows
};

/// \brief The kernel set this process uses, selected once at first call.
///
/// AVX2+FMA when compiled in and the CPU supports both, NEON on aarch64,
/// scalar otherwise; LAKS_FORCE_SCALAR=1 in the environment forces scalar.
const KernelDispatch& Kernels();

/// The portable scalar reference set (always available).
const KernelDispatch& ScalarKernels();

/// The best set for this CPU, ignoring the LAKS_FORCE_SCALAR override.
/// Lets parity tests and benches compare scalar vs SIMD in one process
/// even when the process-wide selection was forced scalar.
const KernelDispatch& BestKernels();

namespace internal {
/// Replaces the process-wide selection (nullptr restores the automatic
/// choice). Test-only: lets one process run the same queries under two
/// kernel sets. Not safe while searches run on other threads.
void OverrideKernelsForTest(const KernelDispatch* kernels);

/// Whether LAKS_FORCE_SCALAR currently forces the scalar set. Test-only:
/// lets the env-override test restore whatever selection the surrounding
/// process was launched with.
bool ForceScalarFromEnvForTest();

/// The AVX2+FMA set. Defined in distance_kernels_avx2.cc, which CMake
/// compiles (with -mavx2 -mfma) only on x86-64; referenced only under
/// TSFM_HAVE_AVX2_KERNELS and behind a runtime CPU check.
const KernelDispatch* Avx2Kernels();
}  // namespace internal

/// Inner product via the selected kernels.
inline float Dot(const float* a, const float* b, size_t n) {
  return Kernels().dot(a, b, n);
}

/// Squared Euclidean distance via the selected kernels.
inline float L2Sq(const float* a, const float* b, size_t n) {
  return Kernels().l2sq(a, b, n);
}

/// Full cosine distance (norms computed internally) via the selected
/// kernels. Prefer CosineDistanceFromDot when norms are cached.
inline float CosineDistance(const float* a, const float* b, size_t n) {
  return Kernels().cosine(a, b, n);
}

/// \brief Cosine distance from a precomputed dot product and norms.
///
/// The one place cosine normalization happens: 1 - dot / (|a||b|), with
/// zero-norm inputs mapped to kMaxCosineDistance. Callers with cached
/// norms (the flat index) use this instead of dividing themselves.
inline float CosineDistanceFromDot(float dot, float norm_a, float norm_b) {
  const float denom = norm_a * norm_b;
  return denom > kNormProductEps ? 1.0f - dot / denom : kMaxCosineDistance;
}

/// L2 norm of `a` via the selected kernels.
float Norm(const float* a, size_t n);

/// One row of a ScanTopK result.
struct ScanHit {
  float distance;
  size_t row;
};

/// \brief One-query-many-rows top-k scan: the flat backend's hot loop.
///
/// Streams `num_rows` row-major rows through the batch kernels in blocks
/// and keeps a bounded (distance, row) max-heap, so the inner loop is pure
/// SIMD with no per-row virtual or indirect dispatch. Returns up to `k`
/// hits sorted ascending by (distance, row). Under kCosine, `row_norms`
/// must hold the rows' L2 norms (the query's norm is computed internally;
/// zero norms yield kMaxCosineDistance). Under kL2, `row_norms` is ignored
/// and distances are Euclidean (square-rooted).
std::vector<ScanHit> ScanTopK(const float* query, const float* rows,
                              const float* row_norms, size_t num_rows,
                              size_t dim, Metric metric, size_t k);

/// ScanTopK pinned to an explicit kernel set (parity tests, benches).
std::vector<ScanHit> ScanTopK(const KernelDispatch& kernels, const float* query,
                              const float* rows, const float* row_norms,
                              size_t num_rows, size_t dim, Metric metric,
                              size_t k);

class Sq8Codec;

/// \brief Quantized flat scan: SQ8 code rows in, exact-in-decoded-space
/// top-k out.
///
/// Two phases. (1) Candidate scan: the query is pre-transformed per metric
/// (kCosine folds the codec's scale into the query and its offset into a
/// scalar bias, so the u8 dot is the decoded dot exactly; kL2 scans a
/// scale-weighted proxy in quantized units) and streamed through the
/// *_many_sq8 batch kernels into a top-C heap with C = max(4k, 64). (2)
/// Exact rescore: each surviving candidate row is decoded to float and
/// re-ranked with the pairwise float kernels, so the returned hits carry
/// the same distances a float scan over the decoded rows would — the L2
/// proxy's scale weighting never reaches the caller. Under kCosine,
/// `row_norms` must hold the *decoded* rows' L2 norms; under kL2 it is
/// ignored. Returns up to k hits sorted ascending by (distance, row).
std::vector<ScanHit> ScanTopKSq8(const float* query, const uint8_t* codes,
                                 const Sq8Codec& codec, const float* row_norms,
                                 size_t num_rows, Metric metric, size_t k);

/// ScanTopKSq8 pinned to an explicit kernel set (parity tests, benches).
std::vector<ScanHit> ScanTopKSq8(const KernelDispatch& kernels,
                                 const float* query, const uint8_t* codes,
                                 const Sq8Codec& codec, const float* row_norms,
                                 size_t num_rows, Metric metric, size_t k);

/// \brief Multi-query top-k scan: one streaming pass over the rows for a
/// whole batch of queries ("mini-GEMM" scan).
///
/// `queries` holds `num_queries` row-major queries of length `dim`. The
/// rows stream through the dot_multi / l2sq_multi kernels block by block
/// while one bounded top-k heap per query tracks that query's best rows —
/// so each block of rows is loaded from memory once for the whole batch
/// instead of once per query. Result q is BIT-IDENTICAL to
/// ScanTopK(query q, ...) under the same kernel set (same distances, same
/// rows, same tie-breaks): the multi kernels preserve each (query, row)
/// pair's accumulation order, and the heap logic is the same. Semantics
/// of `row_norms`, metric handling, and degenerate inputs match ScanTopK.
std::vector<std::vector<ScanHit>> ScanTopKMulti(
    const float* queries, size_t num_queries, const float* rows,
    const float* row_norms, size_t num_rows, size_t dim, Metric metric,
    size_t k);

/// ScanTopKMulti pinned to an explicit kernel set (parity tests, benches).
std::vector<std::vector<ScanHit>> ScanTopKMulti(
    const KernelDispatch& kernels, const float* queries, size_t num_queries,
    const float* rows, const float* row_norms, size_t num_rows, size_t dim,
    Metric metric, size_t k);

/// \brief Multi-query ScanTopKSq8: one candidate-scan pass over the u8
/// rows for the whole batch, then the usual per-query exact rescore.
///
/// Per query the result is bit-identical to ScanTopKSq8 under the same
/// kernel set: the per-query pre-transform, candidate count C, heap
/// tie-breaks, and decode-and-rescore phase are the same code paths; only
/// the candidate scan is blocked across queries (through dot_multi_sq8 /
/// l2sq_multi_sq8, which preserve per-pair accumulation order).
std::vector<std::vector<ScanHit>> ScanTopKMultiSq8(
    const float* queries, size_t num_queries, const uint8_t* codes,
    const Sq8Codec& codec, const float* row_norms, size_t num_rows,
    Metric metric, size_t k);

/// ScanTopKMultiSq8 pinned to an explicit kernel set.
std::vector<std::vector<ScanHit>> ScanTopKMultiSq8(
    const KernelDispatch& kernels, const float* queries, size_t num_queries,
    const uint8_t* codes, const Sq8Codec& codec, const float* row_norms,
    size_t num_rows, Metric metric, size_t k);

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_DISTANCE_KERNELS_H_
