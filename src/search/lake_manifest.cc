#include "search/lake_manifest.h"

#include <fstream>

#include "search/stream_io.h"

namespace tsfm::search {

using io::ReadPod;
using io::WritePod;

std::string LakeShardFileName(const std::string& manifest_basename,
                              size_t shard) {
  return manifest_basename + ".shard-" + std::to_string(shard);
}

bool IsLakeManifestFile(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return false;
  uint32_t magic = 0;
  return ReadPod(probe, &magic) && magic == kLakeManifestMagic;
}

Status SaveLakeManifest(const LakeManifest& manifest, const std::string& path) {
  if (manifest.dim == 0) {
    return Status::InvalidArgument("lake manifest dim must be nonzero");
  }
  if (manifest.shard_files.empty() ||
      manifest.shard_files.size() > kMaxLakeShards) {
    return Status::InvalidArgument("lake manifest shard count out of range");
  }
  for (const auto& [shard, local] : manifest.locator) {
    if (shard >= manifest.shard_files.size()) {
      return Status::InvalidArgument(
          "lake manifest locator routes a table to a nonexistent shard");
    }
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const bool sq8 = manifest.storage == Storage::kSq8;
  // Lowest version that can represent the manifest, so unchurned lakes
  // keep their historical bytes: 3 = churned (live-table count), 2 = sq8
  // storage word, 1 = the original float32 shape.
  const uint32_t version = manifest.churned ? kLakeManifestVersion
                           : sq8            ? uint32_t{2}
                                            : uint32_t{1};
  WritePod(out, kLakeManifestMagic);
  WritePod(out, version);
  WritePod(out, static_cast<uint32_t>(manifest.backend));
  WritePod(out, static_cast<uint32_t>(manifest.metric));
  if (version >= 2) WritePod(out, static_cast<uint32_t>(manifest.storage));
  WritePod(out, manifest.dim);
  if (version >= 3) WritePod(out, manifest.live_tables);
  WritePod(out, static_cast<uint64_t>(manifest.shard_files.size()));
  for (const std::string& name : manifest.shard_files) {
    WritePod(out, static_cast<uint64_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  WritePod(out, static_cast<uint64_t>(manifest.locator.size()));
  for (const auto& [shard, local] : manifest.locator) {
    WritePod(out, shard);
    WritePod(out, local);
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<LakeManifest> LoadLakeManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint32_t magic = 0, version = 0, backend = 0, metric = 0, storage = 0;
  uint64_t dim = 0, num_shards = 0;
  if (!ReadPod(in, &magic)) {
    return Status::IoError("truncated lake manifest " + path);
  }
  if (magic != kLakeManifestMagic) {
    return Status::ParseError(path + " is not a lake manifest");
  }
  if (!ReadPod(in, &version) || !ReadPod(in, &backend) ||
      !ReadPod(in, &metric)) {
    return Status::IoError("truncated lake manifest " + path);
  }
  if (version > kLakeManifestVersion) {
    return Status::ParseError("lake manifest " + path +
                              " written by a newer format version");
  }
  if (version >= 2 && !ReadPod(in, &storage)) {
    return Status::IoError("truncated lake manifest " + path);
  }
  if (!ReadPod(in, &dim)) {
    return Status::IoError("truncated lake manifest " + path);
  }
  uint64_t live_tables = 0;
  if (version >= 3 && !ReadPod(in, &live_tables)) {
    return Status::IoError("truncated lake manifest " + path);
  }
  if (!ReadPod(in, &num_shards)) {
    return Status::IoError("truncated lake manifest " + path);
  }
  if (backend > static_cast<uint32_t>(IndexBackend::kHnsw) ||
      metric > static_cast<uint32_t>(Metric::kL2) ||
      storage > static_cast<uint32_t>(Storage::kSq8)) {
    return Status::ParseError("bad lake-manifest backend/metric in " + path);
  }
  if (dim == 0 || dim > (1u << 20) || num_shards == 0 ||
      num_shards > kMaxLakeShards) {
    return Status::ParseError("implausible lake manifest " + path);
  }

  LakeManifest manifest;
  manifest.backend = static_cast<IndexBackend>(backend);
  manifest.metric = static_cast<Metric>(metric);
  manifest.storage = static_cast<Storage>(storage);
  manifest.dim = dim;
  manifest.churned = version >= 3;
  manifest.live_tables = live_tables;
  manifest.shard_files.resize(num_shards);
  for (auto& name : manifest.shard_files) {
    uint64_t len = 0;
    if (!ReadPod(in, &len) || len > (1u << 16)) {
      return Status::IoError("truncated lake manifest " + path);
    }
    name.resize(len);
    in.read(name.data(), static_cast<std::streamsize>(len));
    if (!in) return Status::IoError("truncated lake manifest " + path);
  }
  uint64_t num_tables = 0;
  if (!ReadPod(in, &num_tables) || num_tables > (1ull << 32)) {
    return Status::IoError("truncated lake manifest " + path);
  }
  manifest.locator.resize(num_tables);
  for (auto& [shard, local] : manifest.locator) {
    if (!ReadPod(in, &shard) || !ReadPod(in, &local)) {
      return Status::IoError("truncated lake manifest " + path);
    }
    if (shard >= num_shards) {
      return Status::ParseError("lake manifest " + path +
                                " routes a table to a nonexistent shard");
    }
  }
  if (manifest.churned) {
    if (manifest.live_tables > num_tables) {
      return Status::ParseError("lake manifest " + path +
                                " claims more live tables than tables");
    }
  } else {
    manifest.live_tables = num_tables;  // pre-churn manifests: all live
  }
  return manifest;
}

}  // namespace tsfm::search
