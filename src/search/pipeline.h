// End-to-end search evaluation: index a corpus of column embeddings, run
// every benchmark query, and score against gold (paper Sec IV-C).
#ifndef TSFM_SEARCH_PIPELINE_H_
#define TSFM_SEARCH_PIPELINE_H_

#include <functional>
#include <vector>

#include "lakebench/search_benchmarks.h"
#include "search/metrics.h"
#include "search/table_ranker.h"

namespace tsfm::search {

/// Produces the column embeddings of corpus table `i`.
/// Must return one vector per column, all of equal dimension.
using ColumnEmbedFn =
    std::function<std::vector<std::vector<float>>(size_t table_index)>;

/// \brief Knobs for a search evaluation run.
struct SearchRunOptions {
  IndexOptions index;      ///< ANN backend for the column index
  size_t num_threads = 0;  ///< query fan-out width; 0 = hardware concurrency
  /// Shard count for the column index. 1 (the default) keeps the single
  /// unsharded index; > 1 routes the corpus through ShardedLakeIndex with
  /// scatter/gather ranking. Flat-backend results are identical either way.
  size_t shards = 1;
};

/// \brief Runs a full search evaluation for one embedding method.
///
/// For join queries (column_index >= 0) tables are ranked by nearest column
/// to the query column; for union/subset queries the Fig 6 multi-column
/// ranking is used. All queries are answered through the batch ranking API,
/// fanned out over a ThreadPool. Returns ranked lists, one per query.
std::vector<std::vector<size_t>> RunSearch(const lakebench::SearchBenchmark& bench,
                                           const ColumnEmbedFn& embed, size_t k,
                                           const SearchRunOptions& options = {});

/// Convenience: RunSearch + EvaluateSearch.
SearchReport EvaluateEmbeddingSearch(const lakebench::SearchBenchmark& bench,
                                     const ColumnEmbedFn& embed, size_t k_max,
                                     const SearchRunOptions& options = {});

/// Evaluates pre-computed ranked lists (for non-embedding baselines such as
/// Josie or LSH-Forest).
SearchReport EvaluateRankedLists(const lakebench::SearchBenchmark& bench,
                                 const std::vector<std::vector<size_t>>& ranked,
                                 size_t k_max);

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_PIPELINE_H_
