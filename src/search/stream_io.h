// POD binary stream helpers shared by the search-layer serializers
// (KnnIndex, HnswIndex, LakeIndex). Little-endian host layout, matching the
// rest of the on-disk formats.
#ifndef TSFM_SEARCH_STREAM_IO_H_
#define TSFM_SEARCH_STREAM_IO_H_

#include <istream>
#include <ostream>

namespace tsfm::search::io {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

}  // namespace tsfm::search::io

#endif  // TSFM_SEARCH_STREAM_IO_H_
