#include "search/quantizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "search/stream_io.h"

namespace tsfm::search {

Sq8Codec Sq8Codec::Train(const float* rows, size_t num_rows, size_t dim) {
  Sq8Codec codec;
  codec.scale_.assign(dim, 1.0f);
  codec.offset_.assign(dim, 0.0f);
  if (num_rows == 0 || dim == 0) return codec;

  std::vector<float> lo(dim, std::numeric_limits<float>::infinity());
  std::vector<float> hi(dim, -std::numeric_limits<float>::infinity());
  for (size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * dim;
    for (size_t i = 0; i < dim; ++i) {
      lo[i] = std::min(lo[i], row[i]);
      hi[i] = std::max(hi[i], row[i]);
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    codec.offset_[i] = lo[i];
    const float range = hi[i] - lo[i];
    // A constant dimension carries no information: scale 1 keeps decode
    // exact (offset + 0) and keeps every scale strictly positive so the
    // encode divide is always well-defined.
    codec.scale_[i] = range > 0 ? range / 255.0f : 1.0f;
  }
  return codec;
}

Result<Sq8Codec> Sq8Codec::FromParts(std::vector<float> scale,
                                     std::vector<float> offset) {
  if (scale.size() != offset.size()) {
    return Status::InvalidArgument("sq8 codec scale/offset size mismatch");
  }
  for (size_t i = 0; i < scale.size(); ++i) {
    if (!(scale[i] > 0) || !std::isfinite(scale[i]) ||
        !std::isfinite(offset[i])) {
      return Status::ParseError("sq8 codec has non-finite or non-positive "
                                "calibration at dim " +
                                std::to_string(i));
    }
  }
  Sq8Codec codec;
  codec.scale_ = std::move(scale);
  codec.offset_ = std::move(offset);
  return codec;
}

void Sq8Codec::EncodeRow(const float* row, uint8_t* code) const {
  const size_t dim = scale_.size();
  for (size_t i = 0; i < dim; ++i) {
    const float q = std::round((row[i] - offset_[i]) / scale_[i]);
    code[i] = static_cast<uint8_t>(std::clamp(q, 0.0f, 255.0f));
  }
}

void Sq8Codec::DecodeRow(const uint8_t* code, float* out) const {
  const size_t dim = scale_.size();
  for (size_t i = 0; i < dim; ++i) {
    out[i] = offset_[i] + scale_[i] * static_cast<float>(code[i]);
  }
}

float Sq8Codec::DecodedNorm(const uint8_t* code) const {
  const size_t dim = scale_.size();
  double sum = 0;
  for (size_t i = 0; i < dim; ++i) {
    const float v = offset_[i] + scale_[i] * static_cast<float>(code[i]);
    sum += static_cast<double>(v) * v;
  }
  return static_cast<float>(std::sqrt(sum));
}

Status Sq8Codec::Save(std::ostream& out) const {
  io::WritePod(out, kSectionTag);
  io::WritePod(out, static_cast<uint64_t>(scale_.size()));
  out.write(reinterpret_cast<const char*>(scale_.data()),
            static_cast<std::streamsize>(scale_.size() * sizeof(float)));
  out.write(reinterpret_cast<const char*>(offset_.data()),
            static_cast<std::streamsize>(offset_.size() * sizeof(float)));
  if (!out) return Status::IoError("writing sq8 codec section");
  return Status::OK();
}

Result<Sq8Codec> Sq8Codec::Load(std::istream& in, size_t expected_dim) {
  uint32_t tag = 0;
  uint64_t dim = 0;
  if (!io::ReadPod(in, &tag) || tag != kSectionTag) {
    return Status::ParseError("missing sq8 codec section tag");
  }
  if (!io::ReadPod(in, &dim) || dim != expected_dim) {
    return Status::ParseError("sq8 codec dim " + std::to_string(dim) +
                              " does not match index dim " +
                              std::to_string(expected_dim));
  }
  std::vector<float> scale(dim), offset(dim);
  in.read(reinterpret_cast<char*>(scale.data()),
          static_cast<std::streamsize>(dim * sizeof(float)));
  in.read(reinterpret_cast<char*>(offset.data()),
          static_cast<std::streamsize>(dim * sizeof(float)));
  if (!in) return Status::ParseError("truncated sq8 codec section");
  return FromParts(std::move(scale), std::move(offset));
}

}  // namespace tsfm::search
