#include "search/hnsw.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <queue>
#include <unordered_set>

#include "search/distance_kernels.h"
#include "search/stream_io.h"
#include "util/logging.h"

namespace tsfm::search {

using io::ReadPod;
using io::WritePod;

HnswIndex::HnswIndex(size_t dim, HnswOptions options, Metric metric)
    : dim_(dim), options_(options), metric_(metric), level_rng_(options.seed) {}

float HnswIndex::Distance(const float* a, const float* b) const {
  if (metric_ == Metric::kL2) return std::sqrt(L2Sq(a, b, dim_));
  return 1.0f - Dot(a, b, dim_);  // vectors are unit-norm under cosine
}

std::vector<std::pair<float, uint32_t>> HnswIndex::SearchLayer(const float* query,
                                                               uint32_t entry,
                                                               size_t ef,
                                                               int layer) const {
  std::unordered_set<uint32_t> visited{entry};
  // Max-heap of current results (worst on top), min-heap of candidates.
  std::priority_queue<std::pair<float, uint32_t>> results;
  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, std::greater<>>
      candidates;
  float d0 = Distance(query, VectorOf(entry));
  results.emplace(d0, entry);
  candidates.emplace(d0, entry);

  while (!candidates.empty()) {
    auto [dist, node] = candidates.top();
    if (dist > results.top().first && results.size() >= ef) break;
    candidates.pop();
    const auto& nbrs = nodes_[node].neighbours[layer];
    for (uint32_t nb : nbrs) {
      if (!visited.insert(nb).second) continue;
      float d = Distance(query, VectorOf(nb));
      if (results.size() < ef || d < results.top().first) {
        results.emplace(d, nb);
        candidates.emplace(d, nb);
        if (results.size() > ef) results.pop();
      }
    }
  }
  std::vector<std::pair<float, uint32_t>> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(results.top());
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // nearest first
  return out;
}

void HnswIndex::SelectNeighbours(std::vector<std::pair<float, uint32_t>>* candidates,
                                 size_t m) const {
  std::sort(candidates->begin(), candidates->end());
  if (candidates->size() > m) candidates->resize(m);
}

void HnswIndex::Add(size_t payload, const std::vector<float>& vec) {
  TSFM_CHECK_EQ(vec.size(), dim_);
  if (metric_ == Metric::kL2) {
    data_.insert(data_.end(), vec.begin(), vec.end());
  } else {
    // Normalize so inner product equals cosine similarity.
    const float norm = Norm(vec.data(), dim_);
    const float inv = norm > 1e-12f ? 1.0f / norm : 0.0f;
    for (float v : vec) data_.push_back(v * inv);
  }
  payloads_.push_back(payload);

  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  // Geometric level assignment: P(level >= l) = (1/2)^l.
  int level = 0;
  while (level_rng_.Bernoulli(0.5) && level < 16) ++level;
  Node node;
  node.level = level;
  node.neighbours.resize(level + 1);
  nodes_.push_back(std::move(node));

  if (id == 0) {
    max_level_ = level;
    entry_point_ = 0;
    return;
  }

  const float* q = VectorOf(id);
  uint32_t entry = entry_point_;
  // Greedy descent through layers above the new node's level.
  for (int l = max_level_; l > level; --l) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (uint32_t nb : nodes_[entry].neighbours[l]) {
        if (Distance(q, VectorOf(nb)) < Distance(q, VectorOf(entry))) {
          entry = nb;
          improved = true;
        }
      }
    }
  }
  // Insert with beam search on each layer from min(level, max_level_) down.
  for (int l = std::min(level, max_level_); l >= 0; --l) {
    auto found = SearchLayer(q, entry, options_.ef_construction, l);
    auto selected = found;
    SelectNeighbours(&selected, options_.m);
    for (auto& [d, nb] : selected) {
      nodes_[id].neighbours[l].push_back(nb);
      nodes_[nb].neighbours[l].push_back(id);
      // Prune over-full neighbour lists.
      auto& list = nodes_[nb].neighbours[l];
      if (list.size() > options_.m * 2) {
        std::vector<std::pair<float, uint32_t>> scored;
        const float* nbvec = VectorOf(nb);
        scored.reserve(list.size());
        for (uint32_t x : list) scored.emplace_back(Distance(nbvec, VectorOf(x)), x);
        SelectNeighbours(&scored, options_.m);
        list.clear();
        for (auto& [dd, x] : scored) list.push_back(x);
      }
    }
    if (!found.empty()) entry = found.front().second;
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = id;
  }
}

std::vector<std::pair<size_t, float>> HnswIndex::Search(
    const std::vector<float>& query, size_t k) const {
  if (k == 0 || query.size() != dim_ || nodes_.empty()) return {};
  std::vector<float> q = query;
  if (metric_ != Metric::kL2) {
    const float norm = Norm(q.data(), dim_);
    if (norm > 1e-12f) {
      for (auto& v : q) v /= norm;
    }
  }

  uint32_t entry = entry_point_;
  for (int l = max_level_; l > 0; --l) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (uint32_t nb : nodes_[entry].neighbours[l]) {
        if (Distance(q.data(), VectorOf(nb)) < Distance(q.data(), VectorOf(entry))) {
          entry = nb;
          improved = true;
        }
      }
    }
  }
  auto found =
      SearchLayer(q.data(), entry, std::max(options_.ef_search, k), /*layer=*/0);
  std::vector<std::pair<size_t, float>> out;
  out.reserve(std::min(k, found.size()));
  for (size_t i = 0; i < found.size() && i < k; ++i) {
    out.emplace_back(payloads_[found[i].second], found[i].first);
  }
  return out;
}

Status HnswIndex::Save(std::ostream& out) const {
  WritePod(out, kFormatTag);
  WritePod(out, static_cast<uint32_t>(metric_));
  WritePod(out, static_cast<uint64_t>(options_.m));
  WritePod(out, static_cast<uint64_t>(options_.ef_construction));
  WritePod(out, static_cast<uint64_t>(options_.ef_search));
  WritePod(out, options_.seed);
  WritePod(out, static_cast<uint64_t>(dim_));
  WritePod(out, static_cast<uint64_t>(payloads_.size()));
  WritePod(out, static_cast<int32_t>(max_level_));
  WritePod(out, entry_point_);
  for (size_t p : payloads_) WritePod(out, static_cast<uint64_t>(p));
  out.write(reinterpret_cast<const char*>(data_.data()),
            static_cast<std::streamsize>(data_.size() * sizeof(float)));
  for (const Node& node : nodes_) {
    WritePod(out, static_cast<int32_t>(node.level));
    for (const auto& layer : node.neighbours) {
      WritePod(out, static_cast<uint64_t>(layer.size()));
      out.write(reinterpret_cast<const char*>(layer.data()),
                static_cast<std::streamsize>(layer.size() * sizeof(uint32_t)));
    }
  }
  if (!out) return Status::IoError("hnsw index write failed");
  return Status::OK();
}

Result<HnswIndex> HnswIndex::Load(std::istream& in, bool legacy) {
  uint32_t metric = static_cast<uint32_t>(Metric::kCosine);
  uint64_t m = 0, ef_construction = 0, ef_search = 0, seed = 0;
  uint64_t dim = 0, n = 0;
  int32_t max_level = -1;
  uint32_t entry_point = 0;
  if (!legacy && !ReadPod(in, &metric)) {
    return Status::IoError("truncated hnsw header");
  }
  if (!ReadPod(in, &m) || !ReadPod(in, &ef_construction) ||
      !ReadPod(in, &ef_search) || !ReadPod(in, &seed) || !ReadPod(in, &dim) ||
      !ReadPod(in, &n) || !ReadPod(in, &max_level) ||
      !ReadPod(in, &entry_point)) {
    return Status::IoError("truncated hnsw header");
  }
  if (metric > static_cast<uint32_t>(Metric::kL2) || dim == 0 ||
      dim > (1u << 20) || m == 0 || m > (1u << 16) || n > (1ull << 32)) {
    return Status::ParseError("implausible hnsw header");
  }
  HnswOptions options;
  options.m = static_cast<size_t>(m);
  options.ef_construction = static_cast<size_t>(ef_construction);
  options.ef_search = static_cast<size_t>(ef_search);
  options.seed = seed;
  HnswIndex index(dim, options, static_cast<Metric>(metric));
  index.max_level_ = max_level;
  index.entry_point_ = entry_point;
  index.payloads_.resize(n);
  for (auto& p : index.payloads_) {
    uint64_t v = 0;
    if (!ReadPod(in, &v)) return Status::IoError("truncated hnsw payloads");
    p = static_cast<size_t>(v);
  }
  index.data_.resize(n * dim);
  in.read(reinterpret_cast<char*>(index.data_.data()),
          static_cast<std::streamsize>(index.data_.size() * sizeof(float)));
  if (!in) return Status::IoError("truncated hnsw vectors");
  index.nodes_.resize(n);
  for (Node& node : index.nodes_) {
    int32_t level = 0;
    if (!ReadPod(in, &level)) return Status::IoError("truncated hnsw graph");
    if (level < 0 || level > 64) return Status::ParseError("implausible hnsw level");
    node.level = level;
    node.neighbours.resize(static_cast<size_t>(level) + 1);
    for (auto& layer : node.neighbours) {
      uint64_t count = 0;
      if (!ReadPod(in, &count) || count > n) {
        return Status::IoError("truncated hnsw neighbour list");
      }
      layer.resize(count);
      in.read(reinterpret_cast<char*>(layer.data()),
              static_cast<std::streamsize>(count * sizeof(uint32_t)));
      if (!in) return Status::IoError("truncated hnsw neighbour list");
      for (uint32_t nb : layer) {
        if (nb >= n) return Status::ParseError("hnsw neighbour out of range");
      }
    }
  }
  // Graph invariants Search relies on for safe indexing: the entry point
  // exists and carries the top level, and a node listed as a neighbour at
  // layer l has a neighbour list for layer l itself.
  if (n > 0) {
    if (index.entry_point_ >= n ||
        index.nodes_[index.entry_point_].level != index.max_level_) {
      return Status::ParseError("hnsw entry point inconsistent with graph");
    }
    for (const Node& node : index.nodes_) {
      for (size_t l = 0; l < node.neighbours.size(); ++l) {
        for (uint32_t nb : node.neighbours[l]) {
          if (index.nodes_[nb].level < static_cast<int>(l)) {
            return Status::ParseError("hnsw neighbour below its layer");
          }
        }
      }
    }
  } else if (index.max_level_ != -1) {
    return Status::ParseError("hnsw entry point inconsistent with graph");
  }
  return index;
}

}  // namespace tsfm::search
