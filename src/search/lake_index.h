// Persistent data-lake index — the paper's recommended deployment (Sec V):
// embed and index the lake offline; at query time embed only the query
// table and search in embedding space.
//
// The ANN backend (exact flat scan or HNSW) is chosen at construction and
// recorded in the on-disk format, so the online half reopens the index with
// the same behaviour the offline half built it with.
//
// Mutability (ROADMAP "Mutable lakes"): a lake is built in two phases.
// Before Seal(), AddTable appends straight into the base segment — the
// offline bulk build, byte-identical to what this class always did. After
// Seal() (Load seals automatically: a loaded lake is a serving artifact),
// AddTable appends to a small float32 *delta segment* scanned exactly, and
// RemoveTable only marks a *tombstone* — queries filter tombstoned hits
// and merge base + delta candidates, so mutations are visible immediately
// without touching the base storage (whose SQ8 calibration or HNSW graph
// would otherwise degrade under incremental writes). Compact() folds
// deltas + tombstones back into a fresh base; the churn-parity contract is
// that a compacted lake ranks bit-identically (flat backends) to the same
// surviving tables added from scratch in their original order.
//
// Concurrency: queries hold a shared lock for their full duration (they
// pin one epoch of the segment state), AddTable/RemoveTable take brief
// exclusive locks, and Compact rebuilds off-lock — writers excluded by a
// separate writer mutex — then swaps the new segments in under one
// exclusive lock, so a query never observes a half-compacted lake.
#ifndef TSFM_SEARCH_LAKE_INDEX_H_
#define TSFM_SEARCH_LAKE_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/embedder.h"
#include "search/table_ranker.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::search {

/// Maps ranked table handles to their string ids, truncated to `k`.
/// Shared by LakeIndex and ShardedLakeIndex so the two query surfaces
/// cannot drift.
std::vector<std::string> RankedTableIds(const std::vector<std::string>& table_ids,
                                        const std::vector<size_t>& handles,
                                        size_t k);

/// \brief An offline index of column embeddings for a corpus of tables.
///
/// Build once with AddTable (or from an Embedder over sketches), then
/// answer join / union / subset queries — one at a time or in parallel
/// batches. The index serializes to a compact binary file so the offline
/// and online halves can run in different processes. After Seal() the lake
/// also accepts live AddTable/RemoveTable churn concurrently with queries
/// (see the file comment for the delta/tombstone/compaction lifecycle).
class LakeIndex {
 public:
  explicit LakeIndex(size_t dim, const IndexOptions& options = {});

  /// Moves must not overlap any other operation on either operand (the
  /// same contract as KnnIndex: a moved index re-arms fresh locks).
  LakeIndex(LakeIndex&& other) noexcept;
  LakeIndex& operator=(LakeIndex&& other) noexcept;
  LakeIndex(const LakeIndex&) = delete;
  LakeIndex& operator=(const LakeIndex&) = delete;

  /// Registers a table's column embeddings under a stable string id.
  /// Returns the table's dense index handle. Before Seal() the table joins
  /// the base segment; after, the delta segment. Safe to call concurrently
  /// with queries (not with other mutations of the same sharded wrapper —
  /// ShardedLakeIndex serializes its writers itself).
  size_t AddTable(const std::string& table_id,
                  const std::vector<std::vector<float>>& column_embeddings)
      LAKS_EXCLUDES(writer_mu_, mu_);

  /// \brief Tombstones the most recently added live table named `table_id`.
  ///
  /// The handle stays allocated (handles are never reused between
  /// compactions) but the table vanishes from every query immediately.
  /// kNotFound when no live table has that id.
  Status RemoveTable(const std::string& table_id)
      LAKS_EXCLUDES(writer_mu_, mu_);

  /// \brief Ends the bulk-build phase: later AddTable calls go to the
  /// delta segment. Idempotent; Load() and Compact() seal automatically.
  void Seal() LAKS_EXCLUDES(writer_mu_, mu_);

  /// \brief Folds delta tables and tombstones into a fresh base segment.
  ///
  /// Flat backends (float32 and sq8) always rebuild the base from the
  /// surviving tables in insertion order — for sq8 that retrains the codec
  /// over exactly the rows a from-scratch build would see, which is what
  /// makes post-compaction rankings bit-identical to a rebuild. An HNSW
  /// lake whose tombstone fraction is at most `hnsw_rebuild_threshold`
  /// instead folds in place: delta tables are inserted into the existing
  /// graph and tombstones remain (still filtered at query time), deferring
  /// the expensive graph rebuild until the ratio crosses the threshold.
  /// The default threshold 0 always rebuilds. The heavy rebuild runs
  /// without blocking queries; only the final swap excludes them.
  Status Compact(double hnsw_rebuild_threshold = 0.0)
      LAKS_EXCLUDES(writer_mu_, mu_);

  /// A full from-scratch compaction image plus the old->new handle remap
  /// (SIZE_MAX for tombstoned handles). Used by ShardedLakeIndex, which
  /// rebuilds every shard off-lock and swaps them together with its global
  /// handle maps under one exclusive section. Callers must exclude
  /// concurrent mutations (queries may continue). Defined after the class
  /// (it holds a LakeIndex by value).
  struct Compacted;
  Compacted BuildCompacted() const LAKS_EXCLUDES(mu_);

  /// True when Compact(`hnsw_rebuild_threshold`) would fold in place
  /// instead of rebuilding (HNSW under the tombstone threshold).
  bool WouldFoldInPlace(double hnsw_rebuild_threshold) const
      LAKS_EXCLUDES(mu_);

  /// The in-place half of Compact for HNSW shards under the rebuild
  /// threshold: inserts delta tables into the existing graph, keeps
  /// tombstones. ShardedLakeIndex calls this under its own exclusive lock.
  void FoldDeltaInPlace() LAKS_EXCLUDES(writer_mu_, mu_);

  /// Ranked table ids for a union/subset query (Fig 6 multi-column rank).
  std::vector<std::string> QueryUnionable(
      const std::vector<std::vector<float>>& query_columns, size_t k) const
      LAKS_EXCLUDES(mu_);

  /// Ranked table ids for a join query on a single column.
  std::vector<std::string> QueryJoinable(const std::vector<float>& query_column,
                                         size_t k) const LAKS_EXCLUDES(mu_);

  /// One QueryUnionable result per query, fanned out over `pool` when given.
  std::vector<std::vector<std::string>> QueryUnionableBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      ThreadPool* pool = nullptr) const LAKS_EXCLUDES(mu_);

  /// One QueryJoinable result per query column, fanned out over `pool`.
  std::vector<std::vector<std::string>> QueryJoinableBatch(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      ThreadPool* pool = nullptr) const LAKS_EXCLUDES(mu_);

  /// \brief Top-`m` live column hits for one query, merged across the base
  /// and delta segments with tombstoned columns filtered out.
  ///
  /// The churn-aware replacement for column_index().SearchColumns: on an
  /// unchurned lake it is exactly that call; on a churned one the base is
  /// over-fetched by the tombstoned-column count so filtering can never
  /// starve the result, and the delta's exact float hits are k-way merged
  /// in by (distance, table, column).
  std::vector<ColumnEmbeddingIndex::ColumnHit> SearchColumns(
      const std::vector<float>& query, size_t m) const LAKS_EXCLUDES(mu_);

  /// Batched SearchColumns; one result list per query, identical to the
  /// serial loop. Fans over `pool` when given.
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>> SearchColumnsBatch(
      const std::vector<std::vector<float>>& queries, size_t m,
      ThreadPool* pool = nullptr) const LAKS_EXCLUDES(mu_);

  /// Persists the index: versioned header (backend, metric, HNSW knobs),
  /// table ids, per-table embeddings. A churned lake (pending deltas or
  /// tombstones) writes format version 4 with a churn section; unchurned
  /// lakes keep writing version 2 (float32) / 3 (sq8) byte-identically.
  Status Save(const std::string& path) const LAKS_EXCLUDES(mu_);

  /// Loads an index written by Save and seals it. Files from before the
  /// versioned header (magic "LAKE") still load and default to the flat
  /// backend; pre-v4 readers reject churned (v4) files with a clean
  /// "newer format version" Status rather than misparsing them.
  static Result<LakeIndex> Load(const std::string& path);

  /// Handle-space size: live + tombstoned tables (handles stay dense and
  /// allocated until a full compaction re-densifies them).
  size_t num_tables() const LAKS_EXCLUDES(mu_);
  /// True when the lake carries pending deltas or tombstones (the states a
  /// pre-churn on-disk format cannot represent).
  bool churned() const LAKS_EXCLUDES(mu_);
  /// Tables a query can still return.
  size_t num_live_tables() const LAKS_EXCLUDES(mu_);
  /// Columns indexed across base + delta (the ceiling on SearchColumns
  /// results before tombstone filtering).
  size_t num_columns() const LAKS_EXCLUDES(mu_);
  size_t dim() const { return dim_; }
  /// By value: the backing index can be swapped by a concurrent Compact,
  /// so a reference would dangle the moment the shared lock dropped.
  IndexOptions options() const LAKS_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return index_.options();
  }
  std::string table_id(size_t handle) const LAKS_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return table_ids_[handle];
  }
  bool is_live(size_t handle) const LAKS_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return dead_[handle] == 0;
  }

  /// Tables waiting in the delta segment for the next compaction.
  size_t pending_delta_tables() const LAKS_EXCLUDES(mu_);
  /// Tombstoned-but-not-yet-compacted tables.
  size_t pending_tombstones() const LAKS_EXCLUDES(mu_);
  /// Completed Compact calls (in-place folds included).
  uint64_t compactions() const LAKS_EXCLUDES(mu_);

  /// The base-segment column index, keyed by dense table handles. Exposed
  /// for tests and benchmarks; churn-aware callers (ShardedLakeIndex) use
  /// SearchColumns, which also covers the delta segment and tombstones.
  /// The reference is only stable while the caller excludes Compact (which
  /// swaps the backing index) — tests and benches are single-threaded here.
  const ColumnEmbeddingIndex& column_index() const LAKS_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return index_;
  }

 private:
  bool ChurnedLocked() const LAKS_REQUIRES_SHARED(mu_) {
    return dead_tables_ > 0 || table_ids_.size() > base_tables_;
  }
  std::vector<ColumnEmbeddingIndex::ColumnHit> SearchColumnsLocked(
      const std::vector<float>& query, size_t m) const
      LAKS_REQUIRES_SHARED(mu_);
  std::vector<std::vector<ColumnEmbeddingIndex::ColumnHit>>
  SearchColumnsBatchLocked(const std::vector<std::vector<float>>& queries,
                           size_t m, ThreadPool* pool) const
      LAKS_REQUIRES_SHARED(mu_);
  /// Drops tombstoned hits and truncates to `m` (in place).
  void FilterDeadLocked(std::vector<ColumnEmbeddingIndex::ColumnHit>* hits,
                        size_t m) const LAKS_REQUIRES_SHARED(mu_);
  /// Moves `other`'s segment state into this index under the caller's
  /// exclusive lock, preserving this index's compaction counter.
  void AdoptLocked(LakeIndex&& other) LAKS_REQUIRES(mu_);
  /// Unanalyzed on purpose: moves must not overlap any other operation on
  /// either operand (the documented move contract), so no lock is held —
  /// there is no lock the analysis could be told about.
  void MoveFieldsFrom(LakeIndex&& other) LAKS_NO_THREAD_SAFETY_ANALYSIS;

  // Lock order: writer_mu_ before mu_. Queries take mu_ shared for their
  // whole duration; mutations take writer_mu_, then mu_ exclusive for the
  // (brief) state change; Compact holds writer_mu_ across its off-lock
  // rebuild so the state it reads without mu_ cannot change under it.
  Mutex writer_mu_;
  mutable SharedMutex mu_ LAKS_ACQUIRED_AFTER(writer_mu_);

  size_t dim_;  // immutable after construction (moves excepted)
  std::vector<std::string> table_ids_ LAKS_GUARDED_BY(mu_);
  // Per-table embeddings.
  std::vector<std::vector<std::vector<float>>> columns_ LAKS_GUARDED_BY(mu_);
  // Base segment: handles [0, base_tables_).
  ColumnEmbeddingIndex index_ LAKS_GUARDED_BY(mu_);

  bool sealed_ LAKS_GUARDED_BY(mu_) = false;
  size_t base_tables_ LAKS_GUARDED_BY(mu_) = 0;
  // Delta segment: float32 flat, by handle.
  std::unique_ptr<ColumnEmbeddingIndex> delta_ LAKS_GUARDED_BY(mu_);
  // Tombstones, by handle.
  std::vector<uint8_t> dead_ LAKS_GUARDED_BY(mu_);
  size_t dead_tables_ LAKS_GUARDED_BY(mu_) = 0;
  // Over-fetch budget for base searches.
  size_t dead_base_columns_ LAKS_GUARDED_BY(mu_) = 0;
  size_t dead_delta_columns_ LAKS_GUARDED_BY(mu_) = 0;
  uint64_t compactions_ LAKS_GUARDED_BY(mu_) = 0;
  // id -> handles bearing it, oldest first (RemoveTable kills the newest
  // live one; duplicate ids are legal, as they always were in AddTable).
  std::unordered_map<std::string, std::vector<size_t>> handles_by_id_
      LAKS_GUARDED_BY(mu_);
};

struct LakeIndex::Compacted {
  LakeIndex index;
  std::vector<size_t> remap;
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_LAKE_INDEX_H_
