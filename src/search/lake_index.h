// Persistent data-lake index — the paper's recommended deployment (Sec V):
// embed and index the lake offline; at query time embed only the query
// table and search in embedding space.
//
// The ANN backend (exact flat scan or HNSW) is chosen at construction and
// recorded in the on-disk format, so the online half reopens the index with
// the same behaviour the offline half built it with.
#ifndef TSFM_SEARCH_LAKE_INDEX_H_
#define TSFM_SEARCH_LAKE_INDEX_H_

#include <string>
#include <vector>

#include "core/embedder.h"
#include "search/table_ranker.h"
#include "util/status.h"

namespace tsfm {
class ThreadPool;
}  // namespace tsfm

namespace tsfm::search {

/// Maps ranked table handles to their string ids, truncated to `k`.
/// Shared by LakeIndex and ShardedLakeIndex so the two query surfaces
/// cannot drift.
std::vector<std::string> RankedTableIds(const std::vector<std::string>& table_ids,
                                        const std::vector<size_t>& handles,
                                        size_t k);

/// \brief An offline index of column embeddings for a corpus of tables.
///
/// Build once with AddTable (or from an Embedder over sketches), then
/// answer join / union / subset queries — one at a time or in parallel
/// batches. The index serializes to a compact binary file so the offline
/// and online halves can run in different processes.
class LakeIndex {
 public:
  explicit LakeIndex(size_t dim, const IndexOptions& options = {});

  /// Registers a table's column embeddings under a stable string id.
  /// Returns the table's dense index handle.
  size_t AddTable(const std::string& table_id,
                  const std::vector<std::vector<float>>& column_embeddings);

  /// Ranked table ids for a union/subset query (Fig 6 multi-column rank).
  std::vector<std::string> QueryUnionable(
      const std::vector<std::vector<float>>& query_columns, size_t k) const;

  /// Ranked table ids for a join query on a single column.
  std::vector<std::string> QueryJoinable(const std::vector<float>& query_column,
                                         size_t k) const;

  /// One QueryUnionable result per query, fanned out over `pool` when given.
  std::vector<std::vector<std::string>> QueryUnionableBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      ThreadPool* pool = nullptr) const;

  /// One QueryJoinable result per query column, fanned out over `pool`.
  std::vector<std::vector<std::string>> QueryJoinableBatch(
      const std::vector<std::vector<float>>& query_columns, size_t k,
      ThreadPool* pool = nullptr) const;

  /// Persists the index: versioned header (backend, metric, HNSW knobs),
  /// table ids, per-table embeddings.
  Status Save(const std::string& path) const;

  /// Loads an index written by Save. Files from before the versioned header
  /// (magic "LAKE") still load and default to the flat backend.
  static Result<LakeIndex> Load(const std::string& path);

  size_t num_tables() const { return table_ids_.size(); }
  size_t dim() const { return dim_; }
  const IndexOptions& options() const { return index_.options(); }
  const std::string& table_id(size_t handle) const { return table_ids_[handle]; }

  /// The underlying column index, keyed by dense table handles. Exposed so
  /// ShardedLakeIndex can scatter raw column searches across shards and
  /// gather them through TableRanker's merge.
  const ColumnEmbeddingIndex& column_index() const { return index_; }

 private:
  size_t dim_;
  std::vector<std::string> table_ids_;
  std::vector<std::vector<std::vector<float>>> columns_;  // per table
  ColumnEmbeddingIndex index_;
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_LAKE_INDEX_H_
