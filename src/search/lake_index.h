// Persistent data-lake index — the paper's recommended deployment (Sec V):
// embed and index the lake offline; at query time embed only the query
// table and search in embedding space.
#ifndef TSFM_SEARCH_LAKE_INDEX_H_
#define TSFM_SEARCH_LAKE_INDEX_H_

#include <string>
#include <vector>

#include "core/embedder.h"
#include "search/table_ranker.h"
#include "util/status.h"

namespace tsfm::search {

/// \brief An offline index of column embeddings for a corpus of tables.
///
/// Build once with AddTable (or from an Embedder over sketches), then
/// answer join / union / subset queries. The index serializes to a compact
/// binary file so the offline and online halves can run in different
/// processes.
class LakeIndex {
 public:
  explicit LakeIndex(size_t dim);

  /// Registers a table's column embeddings under a stable string id.
  /// Returns the table's dense index handle.
  size_t AddTable(const std::string& table_id,
                  const std::vector<std::vector<float>>& column_embeddings);

  /// Ranked table ids for a union/subset query (Fig 6 multi-column rank).
  std::vector<std::string> QueryUnionable(
      const std::vector<std::vector<float>>& query_columns, size_t k) const;

  /// Ranked table ids for a join query on a single column.
  std::vector<std::string> QueryJoinable(const std::vector<float>& query_column,
                                         size_t k) const;

  /// Persists the index (dim, table ids, per-table embeddings).
  Status Save(const std::string& path) const;

  /// Loads an index written by Save.
  static Result<LakeIndex> Load(const std::string& path);

  size_t num_tables() const { return table_ids_.size(); }
  size_t dim() const { return dim_; }
  const std::string& table_id(size_t handle) const { return table_ids_[handle]; }

 private:
  void Reindex();

  size_t dim_;
  std::vector<std::string> table_ids_;
  std::vector<std::vector<std::vector<float>>> columns_;  // per table
  ColumnEmbeddingIndex index_;
};

}  // namespace tsfm::search

#endif  // TSFM_SEARCH_LAKE_INDEX_H_
