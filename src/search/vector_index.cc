#include "search/vector_index.h"

#include <istream>

#include "search/hnsw.h"
#include "search/knn_index.h"
#include "util/thread_pool.h"

namespace tsfm::search {

std::vector<std::vector<std::pair<size_t, float>>> VectorIndex::SearchBatch(
    const std::vector<std::vector<float>>& queries, size_t k,
    ThreadPool* pool) const {
  std::vector<std::vector<std::pair<size_t, float>>> results(queries.size());
  if (pool != nullptr && queries.size() > 1) {
    ParallelFor(pool, 0, queries.size(),
                [&](size_t q) { results[q] = Search(queries[q], k); });
  } else {
    for (size_t q = 0; q < queries.size(); ++q) {
      results[q] = Search(queries[q], k);
    }
  }
  return results;
}

std::unique_ptr<VectorIndex> MakeVectorIndex(size_t dim,
                                             const IndexOptions& options) {
  if (options.backend == IndexBackend::kHnsw) {
    return std::make_unique<HnswIndex>(dim, options.hnsw, options.metric);
  }
  return std::make_unique<KnnIndex>(dim, options.metric, options.storage);
}

Result<std::unique_ptr<VectorIndex>> LoadVectorIndex(std::istream& in) {
  uint32_t tag = 0;
  in.read(reinterpret_cast<char*>(&tag), sizeof(tag));
  if (!in) return Status::IoError("truncated vector-index stream");
  if (tag == KnnIndex::kFormatTag) {
    auto loaded = KnnIndex::Load(in);
    if (!loaded.ok()) return loaded.status();
    return std::unique_ptr<VectorIndex>(
        std::make_unique<KnnIndex>(std::move(loaded).value()));
  }
  if (tag == KnnIndex::kSq8FormatTag) {
    auto loaded = KnnIndex::LoadSq8(in);
    if (!loaded.ok()) return loaded.status();
    return std::unique_ptr<VectorIndex>(
        std::make_unique<KnnIndex>(std::move(loaded).value()));
  }
  if (tag == HnswIndex::kFormatTag || tag == HnswIndex::kLegacyFormatTag) {
    auto loaded =
        HnswIndex::Load(in, /*legacy=*/tag == HnswIndex::kLegacyFormatTag);
    if (!loaded.ok()) return loaded.status();
    return std::unique_ptr<VectorIndex>(
        std::make_unique<HnswIndex>(std::move(loaded).value()));
  }
  return Status::ParseError("unknown vector-index backend tag");
}

}  // namespace tsfm::search
