#include "baselines/tiny_bert.h"

#include <algorithm>

#include "nn/ops.h"
#include "util/logging.h"

namespace tsfm::baselines {

TinyBert::TinyBert(const TinyBertConfig& config, Rng* rng) : config_(config) {
  TSFM_CHECK_GT(config.vocab_size, 0u);
  const size_t h = config.encoder.hidden;
  token_emb_ = std::make_unique<nn::Embedding>(config.vocab_size, h, rng);
  pos_emb_ = std::make_unique<nn::Embedding>(config.max_seq_len, h, rng);
  segment_emb_ = std::make_unique<nn::Embedding>(2, h, rng);
  input_norm_ = std::make_unique<nn::LayerNormModule>(h);
  encoder_ = std::make_unique<nn::TransformerEncoder>(config.encoder, rng);
  pooler_ = std::make_unique<nn::Linear>(h, h, rng);
}

nn::Var TinyBert::Encode(const std::vector<int>& ids,
                         const std::vector<int>& segments, bool training,
                         Rng* rng) const {
  std::vector<int> toks = ids;
  if (toks.size() > config_.max_seq_len) toks.resize(config_.max_seq_len);
  TSFM_CHECK(!toks.empty());
  std::vector<int> segs = segments;
  if (segs.size() > toks.size()) segs.resize(toks.size());
  if (segs.size() < toks.size()) segs.resize(toks.size(), 0);
  std::vector<int> pos(toks.size());
  for (size_t i = 0; i < pos.size(); ++i) pos[i] = static_cast<int>(i);

  nn::Var sum = nn::Add(nn::Add(token_emb_->Forward(toks), pos_emb_->Forward(pos)),
                        segment_emb_->Forward(segs));
  nn::Var normed = input_norm_->Forward(sum);
  normed = nn::Dropout(normed, config_.encoder.dropout, training, rng);
  return encoder_->Forward(normed, training, rng);
}

nn::Var TinyBert::Pool(const nn::Var& hidden) const {
  return nn::Tanh(pooler_->Forward(nn::SelectRow(hidden, 0)));
}

std::vector<float> TinyBert::EmbedText(const text::Tokenizer& tokenizer,
                                       const std::string& text) const {
  std::vector<int> ids;
  ids.push_back(text::kClsId);
  auto body = tokenizer.Encode(text);
  ids.insert(ids.end(), body.begin(), body.end());
  ids.push_back(text::kSepId);
  Rng rng(0);
  nn::Var hidden = Encode(ids, {}, /*training=*/false, &rng);
  nn::Var pooled = Pool(hidden);
  return pooled->value().flat();
}

void TinyBert::CollectParams(const std::string& prefix,
                             std::vector<nn::NamedParam>* out) const {
  token_emb_->CollectParams(prefix + ".token_emb", out);
  pos_emb_->CollectParams(prefix + ".pos_emb", out);
  segment_emb_->CollectParams(prefix + ".segment_emb", out);
  input_norm_->CollectParams(prefix + ".input_norm", out);
  encoder_->CollectParams(prefix + ".encoder", out);
  pooler_->CollectParams(prefix + ".pooler", out);
}

}  // namespace tsfm::baselines
