// Generic training loop for table-pair models (TabSketchFM cross-encoders
// and every neural baseline share it, so Table II compares like with like).
#ifndef TSFM_BASELINES_PAIR_TRAINER_H_
#define TSFM_BASELINES_PAIR_TRAINER_H_

#include <functional>
#include <vector>

#include "core/dataset.h"
#include "nn/module.h"
#include "util/random.h"

namespace tsfm::baselines {

/// Hyper-parameters shared by every pair-model fine-tune.
struct PairTrainOptions {
  size_t epochs = 12;
  size_t batch_size = 8;
  float lr = 2e-4f;
  size_t patience = 5;
  uint64_t seed = 0;
  size_t max_train_examples = 0;  ///< 0 = all
  bool verbose = false;
};

/// Builds the scalar loss Var of one example (training mode flag + rng for
/// dropout).
using PairLossFn = std::function<nn::Var(const core::PairExample&, bool training,
                                         Rng* rng)>;

/// Training curve of a pair-model run.
struct PairTrainResult {
  std::vector<float> train_losses;
  std::vector<float> val_losses;
  size_t epochs_run = 0;
};

/// Trains `params` with AdamW on `dataset.train`, early-stopping on
/// `dataset.val` loss with the configured patience.
PairTrainResult TrainPairModel(const core::PairDataset& dataset,
                               const PairTrainOptions& options,
                               const PairLossFn& loss_fn,
                               std::vector<nn::NamedParam> params);

}  // namespace tsfm::baselines

#endif  // TSFM_BASELINES_PAIR_TRAINER_H_
