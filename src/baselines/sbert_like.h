// Frozen off-the-shelf sentence encoder standing in for SBERT
// all-MiniLM-L12-v2 (paper Sec IV-C.1; substitution documented in
// DESIGN.md).
//
// Embedding = L2-normalized sum of deterministic pseudo-random Gaussian
// vectors hashed from each word and each character trigram. Shared words
// and shared subword shapes across two texts yield high cosine similarity —
// the two signals (lexical value overlap, token-level semantics) the paper
// attributes to SBERT — with zero task supervision.
#ifndef TSFM_BASELINES_SBERT_LIKE_H_
#define TSFM_BASELINES_SBERT_LIKE_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace tsfm::baselines {

/// \brief Deterministic hashing sentence encoder.
class SbertLikeEncoder {
 public:
  explicit SbertLikeEncoder(size_t dim = 64, uint64_t seed = 1234)
      : dim_(dim), seed_(seed) {}

  /// Sentence embedding of `text` (L2-normalized, `dim()` wide).
  std::vector<float> Embed(const std::string& text) const;

  /// Column embedding: top-100 distinct values as one sentence (the paper's
  /// simple-but-strong SBERT baseline).
  std::vector<float> EmbedColumn(const Table& table, size_t column) const;

  /// All column embeddings of a table.
  std::vector<std::vector<float>> EmbedColumns(const Table& table) const;

  size_t dim() const { return dim_; }

 private:
  // Adds the pseudo-random Gaussian vector of feature hash `h`, scaled.
  void AddFeature(uint64_t h, float scale, std::vector<float>* acc) const;

  size_t dim_;
  uint64_t seed_;
};

}  // namespace tsfm::baselines

#endif  // TSFM_BASELINES_SBERT_LIKE_H_
