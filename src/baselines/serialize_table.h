// Table-to-text serialization used by the value-based baseline models
// (paper Sec IV-A.1): row-wise (TAPAS/TABBIE style), column-wise
// (TaBERT style), header-only (Vanilla BERT) and DeepJoin's column text.
#ifndef TSFM_BASELINES_SERIALIZE_TABLE_H_
#define TSFM_BASELINES_SERIALIZE_TABLE_H_

#include <string>

#include "table/table.h"

namespace tsfm::baselines {

/// "col1 | col2 | ..." — the Vanilla BERT input.
std::string SerializeHeaders(const Table& table);

/// Row-major: "h1 h2 ... ; r1c1 r1c2 ... ; r2c1 ..." capped at `max_rows`.
std::string SerializeRows(const Table& table, size_t max_rows);

/// Column-major: "h1 : v1 v2 v3 ; h2 : v1 v2 ..." with `values_per_column`
/// sampled from the top of each column.
std::string SerializeColumns(const Table& table, size_t values_per_column);

/// DeepJoin-style column text: table name, column name, distinct values and
/// simple character-length statistics.
std::string DeepJoinColumnText(const Table& table, size_t column,
                               size_t max_values = 30);

/// SBERT baseline column text: the top `max_values` distinct values joined
/// into one sentence (paper Sec IV-C.1).
std::string SbertColumnText(const Table& table, size_t column,
                            size_t max_values = 100);

}  // namespace tsfm::baselines

#endif  // TSFM_BASELINES_SERIALIZE_TABLE_H_
