// Dual-encoder adaptations of the four value-based tabular foundation
// models the paper compares against (Sec IV-A.1):
//
//   TaBERT-like  trainable encoder, column-wise serialization, mean of
//                context + column pooling
//   TUTA-like    trainable encoder, 256-token truncated table sequence,
//                table-level embedding
//   TAPAS-like   frozen encoder, row serialization (empty NL query),
//                trainable 2-layer MLP on top
//   TABBIE-like  frozen encoder, per-row embeddings mean-pooled, trainable
//                MLP on top
//
// Both tables are encoded with the shared encoder; the two embeddings are
// concatenated and passed through a two-layer MLP (the paper's adaptation).
#ifndef TSFM_BASELINES_VALUE_DUAL_ENCODER_H_
#define TSFM_BASELINES_VALUE_DUAL_ENCODER_H_

#include <memory>

#include "baselines/tiny_bert.h"
#include "core/dataset.h"

namespace tsfm::baselines {

/// Which published model's adaptation regime to mimic.
enum class DualEncoderMode { kTabertLike, kTutaLike, kTapasLike, kTabbieLike };

const char* DualEncoderModeName(DualEncoderMode mode);

/// \brief Shared-encoder dual tower + MLP head.
class ValueDualEncoder : public nn::Module {
 public:
  ValueDualEncoder(const TinyBertConfig& config, DualEncoderMode mode,
                   core::TaskType task, size_t num_outputs,
                   const text::Tokenizer* tokenizer, Rng* rng);

  nn::Var Loss(const core::PairDataset& dataset, const core::PairExample& example,
               bool training, Rng* rng) const;

  std::vector<float> Predict(const core::PairDataset& dataset,
                             const core::PairExample& example) const;

  /// Parameters updated during fine-tuning: everything for the trainable
  /// modes; only the MLP head for the frozen (TAPAS/TABBIE) modes.
  std::vector<nn::NamedParam> TrainableParams() const;

  /// Embeds a single table (used for *-FT search baselines).
  std::vector<float> EmbedTable(const Table& table) const;

  /// Embeds one column via its serialized text (TaBERT-FT search baseline).
  std::vector<float> EmbedColumn(const Table& table, size_t column) const;

  void CollectParams(const std::string& prefix,
                     std::vector<nn::NamedParam>* out) const override;

  DualEncoderMode mode() const { return mode_; }

 private:
  /// Serializes `table` according to the mode.
  std::string Serialize(const Table& table) const;

  /// Encoder tower output [1, hidden] for one table.
  nn::Var Tower(const Table& table, bool training, Rng* rng) const;

  nn::Var Logits(const core::PairDataset& dataset, const core::PairExample& example,
                 bool training, Rng* rng) const;

  DualEncoderMode mode_;
  core::TaskType task_;
  bool frozen_encoder_;
  const text::Tokenizer* tokenizer_;
  std::unique_ptr<TinyBert> bert_;
  std::unique_ptr<nn::Linear> mlp1_;
  std::unique_ptr<nn::Linear> mlp2_;
};

}  // namespace tsfm::baselines

#endif  // TSFM_BASELINES_VALUE_DUAL_ENCODER_H_
