// Vanilla BERT baseline (paper Sec IV-A.1): column headers of the two
// tables as two sentences into a text cross-encoder. Measures how much of a
// task is solvable from schema alone.
#ifndef TSFM_BASELINES_VANILLA_BERT_H_
#define TSFM_BASELINES_VANILLA_BERT_H_

#include <memory>

#include "baselines/tiny_bert.h"
#include "core/dataset.h"

namespace tsfm::baselines {

/// \brief Header-only cross-encoder.
class VanillaBertBaseline : public nn::Module {
 public:
  VanillaBertBaseline(const TinyBertConfig& config, core::TaskType task,
                      size_t num_outputs, const text::Tokenizer* tokenizer,
                      Rng* rng);

  /// Loss for a pair example drawn from `dataset`.
  nn::Var Loss(const core::PairDataset& dataset, const core::PairExample& example,
               bool training, Rng* rng) const;

  /// Prediction (same contract as core::CrossEncoder::Predict).
  std::vector<float> Predict(const core::PairDataset& dataset,
                             const core::PairExample& example) const;

  void CollectParams(const std::string& prefix,
                     std::vector<nn::NamedParam>* out) const override;

 private:
  nn::Var Logits(const core::PairDataset& dataset, const core::PairExample& example,
                 bool training, Rng* rng) const;

  core::TaskType task_;
  const text::Tokenizer* tokenizer_;
  std::unique_ptr<TinyBert> bert_;
  std::unique_ptr<nn::Linear> head_;
};

/// Shared head logic: converts logits to the per-task prediction vector.
std::vector<float> PredictFromLogits(core::TaskType task, const nn::Tensor& logits);

/// Shared head logic: builds the per-task loss from logits.
nn::Var LossFromLogits(core::TaskType task, const nn::Var& logits,
                       const core::PairExample& example);

}  // namespace tsfm::baselines

#endif  // TSFM_BASELINES_VANILLA_BERT_H_
