#include "baselines/sbert_like.h"

#include <cmath>

#include "baselines/serialize_table.h"
#include "text/tokenizer.h"
#include "util/hash.h"

namespace tsfm::baselines {

namespace {
constexpr uint64_t kTrigramSalt = 0x7261676972743335ULL;
}  // namespace

void SbertLikeEncoder::AddFeature(uint64_t h, float scale,
                                  std::vector<float>* acc) const {
  // Cheap deterministic ~N(0,1) per dimension: sum of two uniforms, centred.
  uint64_t state = SplitMix64(h ^ seed_);
  for (size_t i = 0; i < dim_; ++i) {
    state = SplitMix64(state + i + 1);
    float u1 = static_cast<float>(state >> 40) / static_cast<float>(1 << 24);
    float u2 = static_cast<float>((state >> 16) & 0xffffff) / static_cast<float>(1 << 24);
    (*acc)[i] += scale * (u1 + u2 - 1.0f) * 1.73f;  // var ~= 1
  }
}

std::vector<float> SbertLikeEncoder::Embed(const std::string& text) const {
  std::vector<float> acc(dim_, 0.0f);
  for (const auto& word : text::BasicTokenize(text)) {
    AddFeature(Fnv1a64(word), 1.0f, &acc);
    // Character trigrams capture subword shape (FastText-style).
    if (word.size() >= 3) {
      for (size_t i = 0; i + 3 <= word.size(); ++i) {
        AddFeature(Fnv1a64(word.substr(i, 3)) ^ kTrigramSalt, 0.3f, &acc);
      }
    }
  }
  double norm = 0.0;
  for (float v : acc) norm += static_cast<double>(v) * v;
  norm = std::sqrt(norm);
  if (norm > 1e-9) {
    for (auto& v : acc) v = static_cast<float>(v / norm);
  }
  return acc;
}

std::vector<float> SbertLikeEncoder::EmbedColumn(const Table& table,
                                                 size_t column) const {
  return Embed(SbertColumnText(table, column, /*max_values=*/100));
}

std::vector<std::vector<float>> SbertLikeEncoder::EmbedColumns(
    const Table& table) const {
  std::vector<std::vector<float>> out;
  out.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    out.push_back(EmbedColumn(table, c));
  }
  return out;
}

}  // namespace tsfm::baselines
