#include "baselines/value_dual_encoder.h"

#include "baselines/serialize_table.h"
#include "baselines/vanilla_bert.h"
#include "nn/ops.h"
#include "util/logging.h"

namespace tsfm::baselines {

const char* DualEncoderModeName(DualEncoderMode mode) {
  switch (mode) {
    case DualEncoderMode::kTabertLike:
      return "TaBERT";
    case DualEncoderMode::kTutaLike:
      return "TUTA";
    case DualEncoderMode::kTapasLike:
      return "TAPAS";
    case DualEncoderMode::kTabbieLike:
      return "TABBIE";
  }
  return "?";
}

ValueDualEncoder::ValueDualEncoder(const TinyBertConfig& config, DualEncoderMode mode,
                                   core::TaskType task, size_t num_outputs,
                                   const text::Tokenizer* tokenizer, Rng* rng)
    : mode_(mode),
      task_(task),
      frozen_encoder_(mode == DualEncoderMode::kTapasLike ||
                      mode == DualEncoderMode::kTabbieLike),
      tokenizer_(tokenizer),
      bert_(std::make_unique<TinyBert>(config, rng)),
      mlp1_(std::make_unique<nn::Linear>(2 * config.encoder.hidden,
                                         config.encoder.hidden, rng)),
      mlp2_(std::make_unique<nn::Linear>(config.encoder.hidden, num_outputs, rng)) {}

std::string ValueDualEncoder::Serialize(const Table& table) const {
  switch (mode_) {
    case DualEncoderMode::kTabertLike:
      return SerializeColumns(table, /*values_per_column=*/6);
    case DualEncoderMode::kTutaLike:
      // TUTA truncates aggressively (first 256 tokens of the sequence);
      // our budget is the encoder max_seq_len, applied in Encode().
      return SerializeRows(table, /*max_rows=*/8);
    case DualEncoderMode::kTapasLike:
      // Empty NL query + 512-token row serialization.
      return SerializeRows(table, /*max_rows=*/12);
    case DualEncoderMode::kTabbieLike:
      return SerializeRows(table, /*max_rows=*/8);
  }
  return "";
}

nn::Var ValueDualEncoder::Tower(const Table& table, bool training, Rng* rng) const {
  std::vector<int> ids = {text::kClsId};
  auto body = tokenizer_->Encode(Serialize(table));
  ids.insert(ids.end(), body.begin(), body.end());
  ids.push_back(text::kSepId);

  // Frozen modes never see gradients or dropout in the encoder.
  const bool encoder_training = training && !frozen_encoder_;
  nn::Var hidden = bert_->Encode(ids, {}, encoder_training, rng);

  nn::Var emb;
  switch (mode_) {
    case DualEncoderMode::kTabertLike:
      // Mean-pooled "context + column" embeddings ~ mean over all states.
      emb = nn::MeanRows(hidden);
      break;
    case DualEncoderMode::kTutaLike:
      emb = bert_->Pool(hidden);
      break;
    case DualEncoderMode::kTapasLike:
      emb = bert_->Pool(hidden);
      break;
    case DualEncoderMode::kTabbieLike:
      // Row embeddings combined by mean ~ mean over token states.
      emb = nn::MeanRows(hidden);
      break;
  }
  if (frozen_encoder_) {
    // Detach: re-wrap the value as a constant leaf.
    emb = nn::MakeLeaf(emb->value(), /*requires_grad=*/false);
  }
  return emb;
}

nn::Var ValueDualEncoder::Logits(const core::PairDataset& dataset,
                                 const core::PairExample& example, bool training,
                                 Rng* rng) const {
  nn::Var ea = Tower(dataset.tables[example.a], training, rng);
  nn::Var eb = Tower(dataset.tables[example.b], training, rng);
  nn::Var cat = nn::ConcatCols({ea, eb});
  nn::Var h = nn::Relu(mlp1_->Forward(cat));
  h = nn::Dropout(h, bert_->config().encoder.dropout, training, rng);
  return mlp2_->Forward(h);
}

nn::Var ValueDualEncoder::Loss(const core::PairDataset& dataset,
                               const core::PairExample& example, bool training,
                               Rng* rng) const {
  return LossFromLogits(task_, Logits(dataset, example, training, rng), example);
}

std::vector<float> ValueDualEncoder::Predict(const core::PairDataset& dataset,
                                             const core::PairExample& example) const {
  Rng rng(0);
  nn::Var logits = Logits(dataset, example, /*training=*/false, &rng);
  return PredictFromLogits(task_, logits->value());
}

std::vector<nn::NamedParam> ValueDualEncoder::TrainableParams() const {
  std::vector<nn::NamedParam> out;
  if (!frozen_encoder_) bert_->CollectParams("vde.bert", &out);
  mlp1_->CollectParams("vde.mlp1", &out);
  mlp2_->CollectParams("vde.mlp2", &out);
  return out;
}

std::vector<float> ValueDualEncoder::EmbedTable(const Table& table) const {
  Rng rng(0);
  nn::Var emb = Tower(table, /*training=*/false, &rng);
  return emb->value().flat();
}

std::vector<float> ValueDualEncoder::EmbedColumn(const Table& table,
                                                 size_t column) const {
  std::vector<int> ids = {text::kClsId};
  auto body = tokenizer_->Encode(table.column(column).name + " : " +
                                 SbertColumnText(table, column, /*max_values=*/20));
  ids.insert(ids.end(), body.begin(), body.end());
  ids.push_back(text::kSepId);
  Rng rng(0);
  nn::Var hidden = bert_->Encode(ids, {}, /*training=*/false, &rng);
  nn::Var emb = nn::MeanRows(hidden);
  return emb->value().flat();
}

void ValueDualEncoder::CollectParams(const std::string& prefix,
                                     std::vector<nn::NamedParam>* out) const {
  bert_->CollectParams(prefix + ".bert", out);
  mlp1_->CollectParams(prefix + ".mlp1", out);
  mlp2_->CollectParams(prefix + ".mlp2", out);
}

}  // namespace tsfm::baselines
