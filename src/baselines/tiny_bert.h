// A plain text BERT encoder (token + position + segment embeddings) used by
// the value-serialization baselines. Identical transformer substrate to
// TabSketchFM minus the sketch inputs — the controlled comparison the paper
// makes.
#ifndef TSFM_BASELINES_TINY_BERT_H_
#define TSFM_BASELINES_TINY_BERT_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/embedding.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/transformer.h"
#include "text/tokenizer.h"

namespace tsfm::baselines {

/// TinyBert hyper-parameters.
struct TinyBertConfig {
  nn::TransformerConfig encoder;
  size_t vocab_size = 0;
  size_t max_seq_len = 96;
};

/// \brief Text-only BERT encoder with pooler.
class TinyBert : public nn::Module {
 public:
  TinyBert(const TinyBertConfig& config, Rng* rng);

  /// Encodes token ids (with optional per-token segment ids; empty = all 0).
  /// Sequences are truncated to max_seq_len. A [CLS] id must already be
  /// present if the caller wants a pooled output.
  nn::Var Encode(const std::vector<int>& ids, const std::vector<int>& segments,
                 bool training, Rng* rng) const;

  /// tanh(Linear(h[0])).
  nn::Var Pool(const nn::Var& hidden) const;

  /// Convenience: tokenize `text` with [CLS] ... [SEP] framing and encode;
  /// returns the pooled embedding values.
  std::vector<float> EmbedText(const text::Tokenizer& tokenizer,
                               const std::string& text) const;

  void CollectParams(const std::string& prefix,
                     std::vector<nn::NamedParam>* out) const override;

  const TinyBertConfig& config() const { return config_; }

 private:
  TinyBertConfig config_;
  std::unique_ptr<nn::Embedding> token_emb_;
  std::unique_ptr<nn::Embedding> pos_emb_;
  std::unique_ptr<nn::Embedding> segment_emb_;
  std::unique_ptr<nn::LayerNormModule> input_norm_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::unique_ptr<nn::Linear> pooler_;
};

}  // namespace tsfm::baselines

#endif  // TSFM_BASELINES_TINY_BERT_H_
