#include "baselines/josie.h"

#include <algorithm>
#include <unordered_set>

#include "sketch/table_sketch.h"

namespace tsfm::baselines {

void JosieIndex::AddColumn(size_t table_id, size_t column,
                           const std::vector<std::string>& values) {
  const size_t column_id = column_of_.size();
  column_of_.emplace_back(table_id, column);
  std::unordered_set<std::string> distinct(values.begin(), values.end());
  column_sizes_.push_back(distinct.size());
  for (const auto& v : distinct) {
    postings_[v].push_back(column_id);
  }
}

void JosieIndex::AddTable(size_t table_id, const Table& table) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    AddColumn(table_id, c, DistinctCells(table.column(c)));
  }
}

std::vector<size_t> JosieIndex::Search(const std::vector<std::string>& query_values,
                                       size_t k, size_t exclude) const {
  std::unordered_set<std::string> query(query_values.begin(), query_values.end());
  if (query.empty()) return {};

  // Merge posting lists: overlap count per candidate column.
  std::unordered_map<size_t, size_t> overlap;
  for (const auto& v : query) {
    auto it = postings_.find(v);
    if (it == postings_.end()) continue;
    for (size_t column_id : it->second) ++overlap[column_id];
  }

  // Best containment per table.
  std::unordered_map<size_t, double> table_score;
  for (const auto& [column_id, inter] : overlap) {
    size_t table = column_of_[column_id].first;
    if (table == exclude) continue;
    double containment = static_cast<double>(inter) / static_cast<double>(query.size());
    auto it = table_score.find(table);
    if (it == table_score.end() || containment > it->second) {
      table_score[table] = containment;
    }
  }

  std::vector<std::pair<size_t, double>> order(table_score.begin(), table_score.end());
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<size_t> ranked;
  for (const auto& [table, score] : order) {
    ranked.push_back(table);
    if (ranked.size() >= k * 3) break;  // plenty for any k sweep
  }
  return ranked;
}

}  // namespace tsfm::baselines
