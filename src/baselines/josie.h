// JOSIE (Zhu et al., SIGMOD'19): exact top-k overlap set similarity search
// for joinable tables. Reimplemented with an inverted index over distinct
// column values; ranking is by exact set containment of the query column.
#ifndef TSFM_BASELINES_JOSIE_H_
#define TSFM_BASELINES_JOSIE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "table/table.h"

namespace tsfm::baselines {

/// \brief Exact set-containment join search index.
class JosieIndex {
 public:
  /// Indexes one column's distinct values under (table_id, column).
  void AddColumn(size_t table_id, size_t column, const std::vector<std::string>& values);

  /// Indexes every column of `table`.
  void AddTable(size_t table_id, const Table& table);

  /// \brief Top tables for a query value set.
  ///
  /// Scores each candidate column by |Q ∩ C| / |Q| (containment of the
  /// query in the candidate); a table's score is its best column. Tables
  /// are returned best-first; `exclude` is dropped.
  std::vector<size_t> Search(const std::vector<std::string>& query_values, size_t k,
                             size_t exclude) const;

  size_t num_columns() const { return column_sizes_.size(); }

 private:
  // value -> posting list of column ids.
  std::unordered_map<std::string, std::vector<size_t>> postings_;
  std::vector<std::pair<size_t, size_t>> column_of_;  // column id -> (table, col)
  std::vector<size_t> column_sizes_;
};

}  // namespace tsfm::baselines

#endif  // TSFM_BASELINES_JOSIE_H_
