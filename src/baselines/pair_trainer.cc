#include "baselines/pair_trainer.h"

#include <limits>

#include "nn/autograd.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace tsfm::baselines {

PairTrainResult TrainPairModel(const core::PairDataset& dataset,
                               const PairTrainOptions& options,
                               const PairLossFn& loss_fn,
                               std::vector<nn::NamedParam> params) {
  Rng rng(options.seed);
  std::vector<core::PairExample> train = dataset.train;
  if (options.max_train_examples > 0 && train.size() > options.max_train_examples) {
    rng.Shuffle(&train);
    train.resize(options.max_train_examples);
  }

  nn::AdamW::Options opt_options;
  opt_options.lr = options.lr;
  nn::AdamW optimizer(std::move(params), opt_options);

  PairTrainResult result;
  float best_val = std::numeric_limits<float>::max();
  size_t since_best = 0;

  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    optimizer.ZeroGrad();
    double epoch_loss = 0.0;
    size_t in_batch = 0;
    for (size_t idx : order) {
      nn::Var loss = loss_fn(train[idx], /*training=*/true, &rng);
      nn::Backward(loss);
      epoch_loss += loss->value()[0];
      if (++in_batch >= options.batch_size) {
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.Step();
      optimizer.ZeroGrad();
    }

    double val_sum = 0.0;
    for (const auto& ex : dataset.val) {
      val_sum += loss_fn(ex, /*training=*/false, &rng)->value()[0];
    }
    float train_loss =
        train.empty() ? 0.0f : static_cast<float>(epoch_loss / train.size());
    float val_loss = dataset.val.empty()
                         ? train_loss
                         : static_cast<float>(val_sum / dataset.val.size());
    result.train_losses.push_back(train_loss);
    result.val_losses.push_back(val_loss);
    result.epochs_run = epoch + 1;
    if (options.verbose) {
      TSFM_LOG(Info) << dataset.name << " epoch " << epoch << " train=" << train_loss
                     << " val=" << val_loss;
    }
    if (val_loss < best_val - 1e-5f) {
      best_val = val_loss;
      since_best = 0;
    } else if (++since_best >= options.patience) {
      break;
    }
  }
  return result;
}

}  // namespace tsfm::baselines
