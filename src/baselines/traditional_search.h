// Traditional (non-neural) search baselines from the paper's evaluation:
//
//   LSH-Forest   MinHash LSH-Forest join search (Table V)
//   D3L          five-evidence union search (Bogatu et al., ICDE'20)
//   SANTOS       relationship-semantics union search (Khatiwada et al.'23)
//   Starmie      contextualized-column union search (Fan et al., VLDB'23),
//                greedy bipartite matching over column embeddings
//   WarpGate     SimHash-LSH semantic join search (Cong et al., CIDR'23)
//   DeepJoin     column-to-text embedding join search (Dong et al., VLDB'23)
//
// Each class ranks corpus tables for a query; the bench harness evaluates
// the rankings with the shared metrics.
#ifndef TSFM_BASELINES_TRADITIONAL_SEARCH_H_
#define TSFM_BASELINES_TRADITIONAL_SEARCH_H_

#include <memory>

#include "baselines/sbert_like.h"
#include "lakebench/search_benchmarks.h"
#include "search/hnsw.h"
#include "sketch/minhash_lsh.h"
#include "sketch/simhash.h"

namespace tsfm::baselines {

/// \brief MinHash LSH-Forest join search over column cell signatures.
class LshForestJoinSearch {
 public:
  LshForestJoinSearch(const lakebench::SearchBenchmark* bench, size_t num_perm = 64,
                      size_t num_trees = 8, size_t max_depth = 8);

  /// Ranked tables for query column (tables of candidate columns, most
  /// selective prefix first).
  std::vector<size_t> Rank(size_t query_table, size_t query_column, size_t k) const;

 private:
  const lakebench::SearchBenchmark* bench_;
  size_t num_perm_;
  std::unique_ptr<LshForest> forest_;
  std::vector<MinHash> query_minhashes_;  // per corpus table: column-0 signature
};

/// \brief D3L union search: evidence from values, word semantics, headers,
/// numeric distributions, and cell formats, averaged per best-matching
/// column pair.
class D3lUnionSearch {
 public:
  D3lUnionSearch(const lakebench::SearchBenchmark* bench,
                 const SbertLikeEncoder* encoder);

  std::vector<size_t> Rank(size_t query_table, size_t k) const;

 private:
  struct ColumnFeatures {
    MinHash values{32};
    std::vector<float> semantics;   // sbert embedding of values
    std::vector<std::string> header_tokens;
    std::vector<float> numeric_profile;  // compressed percentiles
    float avg_width = 0;
    int type = 0;
  };
  double ColumnScore(const ColumnFeatures& a, const ColumnFeatures& b) const;

  const lakebench::SearchBenchmark* bench_;
  std::vector<std::vector<ColumnFeatures>> features_;
};

/// \brief SANTOS-style union search: tables match when their column-pair
/// relationship signatures overlap.
class SantosUnionSearch {
 public:
  SantosUnionSearch(const lakebench::SearchBenchmark* bench,
                    const SbertLikeEncoder* encoder);

  std::vector<size_t> Rank(size_t query_table, size_t k) const;

 private:
  // Per table: the set of relationship signatures between column pairs.
  std::vector<std::vector<uint64_t>> relationship_sets_;
};

/// \brief Starmie-style union search: per-column contextualized embeddings
/// (value embedding mixed with the table context), scored by greedy
/// bipartite matching.
class StarmieUnionSearch {
 public:
  StarmieUnionSearch(const lakebench::SearchBenchmark* bench,
                     const SbertLikeEncoder* encoder, float context_weight = 0.35f);

  std::vector<size_t> Rank(size_t query_table, size_t k) const;

  /// Contextualized column embeddings of one table (exposed for reuse).
  const std::vector<std::vector<float>>& columns(size_t table) const {
    return contextual_[table];
  }

 private:
  const lakebench::SearchBenchmark* bench_;
  std::vector<std::vector<std::vector<float>>> contextual_;
};

/// \brief WarpGate-style join search: value embeddings indexed by SimHash.
class WarpGateJoinSearch {
 public:
  WarpGateJoinSearch(const lakebench::SearchBenchmark* bench,
                     const SbertLikeEncoder* encoder, size_t num_bits = 48);

  std::vector<size_t> Rank(size_t query_table, size_t query_column, size_t k) const;

 private:
  const lakebench::SearchBenchmark* bench_;
  std::unique_ptr<SimHasher> hasher_;
  std::vector<std::vector<float>> embeddings_;       // per (table, col 0)
  std::vector<uint64_t> codes_;
  std::vector<std::pair<size_t, size_t>> column_of_;
};

/// \brief DeepJoin-style join search: column-to-text embeddings indexed
/// with HNSW (as in Dong et al.'s system).
class DeepJoinSearch {
 public:
  DeepJoinSearch(const lakebench::SearchBenchmark* bench,
                 const SbertLikeEncoder* encoder);

  std::vector<size_t> Rank(size_t query_table, size_t query_column, size_t k) const;

 private:
  const lakebench::SearchBenchmark* bench_;
  const SbertLikeEncoder* encoder_;
  std::unique_ptr<search::HnswIndex> index_;
  std::vector<std::pair<size_t, size_t>> column_of_;
};

}  // namespace tsfm::baselines

#endif  // TSFM_BASELINES_TRADITIONAL_SEARCH_H_
