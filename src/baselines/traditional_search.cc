#include "baselines/traditional_search.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "baselines/serialize_table.h"
#include "sketch/numerical_sketch.h"
#include "text/tokenizer.h"
#include "util/hash.h"
#include "util/logging.h"

namespace tsfm::baselines {

namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  TSFM_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<size_t> RankMapDescending(
    const std::unordered_map<size_t, double>& scores, size_t exclude) {
  std::vector<std::pair<size_t, double>> order;
  order.reserve(scores.size());
  for (const auto& [t, s] : scores) {
    if (t != exclude) order.emplace_back(t, s);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<size_t> ranked;
  ranked.reserve(order.size());
  for (const auto& [t, s] : order) ranked.push_back(t);
  return ranked;
}

}  // namespace

// ---------------------------------------------------------------- LSH-Forest

LshForestJoinSearch::LshForestJoinSearch(const lakebench::SearchBenchmark* bench,
                                         size_t num_perm, size_t num_trees,
                                         size_t max_depth)
    : bench_(bench), num_perm_(num_perm) {
  forest_ = std::make_unique<LshForest>(num_perm, num_trees, max_depth);
  query_minhashes_.reserve(bench->tables.size());
  for (size_t t = 0; t < bench->tables.size(); ++t) {
    // Join benchmarks key on column 0; index every column regardless.
    const Table& table = bench->tables[t];
    MinHash first(num_perm);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      MinHash mh = MinHashOfSet(DistinctCells(table.column(c)), num_perm);
      if (c == 0) first = mh;
      forest_->Insert(std::to_string(t) + ":" + std::to_string(c), mh);
    }
    query_minhashes_.push_back(first);
  }
}

std::vector<size_t> LshForestJoinSearch::Rank(size_t query_table, size_t query_column,
                                              size_t k) const {
  MinHash mh =
      query_column == 0
          ? query_minhashes_[query_table]
          : MinHashOfSet(
                DistinctCells(bench_->tables[query_table].column(query_column)),
                num_perm_);
  std::vector<size_t> ranked;
  std::unordered_set<size_t> seen;
  for (const auto& key : forest_->Query(mh, k * 6)) {
    size_t table = std::stoul(key.substr(0, key.find(':')));
    if (table == query_table) continue;
    if (seen.insert(table).second) ranked.push_back(table);
  }
  return ranked;
}

// ----------------------------------------------------------------------- D3L

D3lUnionSearch::D3lUnionSearch(const lakebench::SearchBenchmark* bench,
                               const SbertLikeEncoder* encoder)
    : bench_(bench) {
  features_.resize(bench->tables.size());
  for (size_t t = 0; t < bench->tables.size(); ++t) {
    const Table& table = bench->tables[t];
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      ColumnFeatures f;
      f.values = MinHashOfSet(DistinctCells(col), 32);
      f.semantics = encoder->EmbedColumn(table, c);
      f.header_tokens = text::BasicTokenize(col.name);
      NumericalSketch ns = MakeNumericalSketch(col);
      f.numeric_profile.assign(ns.values.begin() + 3, ns.values.end());
      f.avg_width = ns.values[2];
      f.type = static_cast<int>(col.type);
      features_[t].push_back(std::move(f));
    }
  }
}

double D3lUnionSearch::ColumnScore(const ColumnFeatures& a,
                                   const ColumnFeatures& b) const {
  // Evidence 1: value overlap.
  double value_sim = a.values.EstimateJaccard(b.values);
  // Evidence 2: word-embedding similarity of values.
  double sem_sim = std::max(0.0, Cosine(a.semantics, b.semantics));
  // Evidence 3: header token overlap.
  std::unordered_set<std::string> ha(a.header_tokens.begin(), a.header_tokens.end());
  size_t inter = 0;
  std::unordered_set<std::string> hb(b.header_tokens.begin(), b.header_tokens.end());
  for (const auto& w : hb) {
    if (ha.count(w)) ++inter;
  }
  size_t uni = ha.size() + hb.size() - inter;
  double header_sim = uni > 0 ? static_cast<double>(inter) / uni : 0.0;
  // Evidence 4: numeric distribution similarity.
  double dist_sim = 0.0;
  if (a.type != 1 && b.type != 1) {
    dist_sim = std::max(0.0, Cosine(a.numeric_profile, b.numeric_profile));
  }
  // Evidence 5: format similarity (type match + cell width closeness).
  double format_sim = (a.type == b.type ? 0.5 : 0.0) +
                      0.5 / (1.0 + std::fabs(a.avg_width - b.avg_width));
  return (value_sim + sem_sim + header_sim + dist_sim + format_sim) / 5.0;
}

std::vector<size_t> D3lUnionSearch::Rank(size_t query_table, size_t k) const {
  (void)k;
  const auto& qcols = features_[query_table];
  std::unordered_map<size_t, double> scores;
  for (size_t t = 0; t < features_.size(); ++t) {
    if (t == query_table) continue;
    // Best match per query column, averaged.
    double total = 0.0;
    for (const auto& qc : qcols) {
      double best = 0.0;
      for (const auto& cc : features_[t]) {
        best = std::max(best, ColumnScore(qc, cc));
      }
      total += best;
    }
    scores[t] = qcols.empty() ? 0.0 : total / static_cast<double>(qcols.size());
  }
  return RankMapDescending(scores, query_table);
}

// -------------------------------------------------------------------- SANTOS

SantosUnionSearch::SantosUnionSearch(const lakebench::SearchBenchmark* bench,
                                     const SbertLikeEncoder* encoder) {
  (void)encoder;
  // Column semantic label: header hash plus a bottom-k sketch of the
  // distinct values. Bottom-k hashes are stable under row subsetting, which
  // is what lets SANTOS recognize slices of the same table as unionable.
  constexpr size_t kBottom = 4;
  relationship_sets_.resize(bench->tables.size());
  for (size_t t = 0; t < bench->tables.size(); ++t) {
    const Table& table = bench->tables[t];
    std::vector<uint64_t> header_hash;
    std::vector<std::vector<uint64_t>> bottoms;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      header_hash.push_back(Fnv1a64(table.column(c).name));
      std::vector<uint64_t> hashes;
      for (const auto& cell : DistinctCells(table.column(c))) {
        hashes.push_back(Fnv1a64(cell));
      }
      std::sort(hashes.begin(), hashes.end());
      hashes.resize(std::min(hashes.size(), kBottom));
      bottoms.push_back(std::move(hashes));
    }
    // One relationship signature per column pair and bottom-slot.
    for (size_t i = 0; i < header_hash.size(); ++i) {
      for (size_t j = i + 1; j < header_hash.size(); ++j) {
        uint64_t pair_base = HashCombine(header_hash[i], header_hash[j]);
        size_t slots = std::min(bottoms[i].size(), bottoms[j].size());
        for (size_t s = 0; s < slots; ++s) {
          relationship_sets_[t].push_back(
              HashCombine(pair_base, HashCombine(bottoms[i][s], bottoms[j][s])));
        }
        if (slots == 0) relationship_sets_[t].push_back(pair_base);
      }
    }
    std::sort(relationship_sets_[t].begin(), relationship_sets_[t].end());
  }
}

std::vector<size_t> SantosUnionSearch::Rank(size_t query_table, size_t k) const {
  (void)k;
  const auto& q = relationship_sets_[query_table];
  std::unordered_map<size_t, double> scores;
  for (size_t t = 0; t < relationship_sets_.size(); ++t) {
    if (t == query_table) continue;
    const auto& r = relationship_sets_[t];
    // Sorted-set intersection.
    size_t i = 0, j = 0, inter = 0;
    while (i < q.size() && j < r.size()) {
      if (q[i] == r[j]) {
        ++inter;
        ++i;
        ++j;
      } else if (q[i] < r[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    size_t uni = q.size() + r.size() - inter;
    scores[t] = uni > 0 ? static_cast<double>(inter) / uni : 0.0;
  }
  return RankMapDescending(scores, query_table);
}

// ------------------------------------------------------------------- Starmie

StarmieUnionSearch::StarmieUnionSearch(const lakebench::SearchBenchmark* bench,
                                       const SbertLikeEncoder* encoder,
                                       float context_weight)
    : bench_(bench) {
  contextual_.resize(bench->tables.size());
  for (size_t t = 0; t < bench->tables.size(); ++t) {
    const Table& table = bench->tables[t];
    auto base = encoder->EmbedColumns(table);
    if (base.empty()) continue;
    // Table context = mean of the column embeddings.
    std::vector<float> context(encoder->dim(), 0.0f);
    for (const auto& col : base) {
      for (size_t i = 0; i < context.size(); ++i) context[i] += col[i];
    }
    for (auto& v : context) v /= static_cast<float>(base.size());
    // Contextualize: column + context mix (the "whole-table context"
    // property of Starmie's contrastive encoder).
    for (auto& col : base) {
      for (size_t i = 0; i < col.size(); ++i) {
        col[i] = (1.0f - context_weight) * col[i] + context_weight * context[i];
      }
    }
    contextual_[t] = std::move(base);
  }
}

std::vector<size_t> StarmieUnionSearch::Rank(size_t query_table, size_t k) const {
  (void)k;
  const auto& qcols = contextual_[query_table];
  std::unordered_map<size_t, double> scores;
  for (size_t t = 0; t < contextual_.size(); ++t) {
    if (t == query_table) continue;
    const auto& cols = contextual_[t];
    if (cols.empty() || qcols.empty()) continue;
    // Greedy bipartite matching on cosine similarity.
    std::vector<std::pair<double, std::pair<size_t, size_t>>> edges;
    for (size_t i = 0; i < qcols.size(); ++i) {
      for (size_t j = 0; j < cols.size(); ++j) {
        edges.push_back({Cosine(qcols[i], cols[j]), {i, j}});
      }
    }
    std::sort(edges.begin(), edges.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::unordered_set<size_t> used_q, used_c;
    double total = 0.0;
    for (const auto& [sim, pair] : edges) {
      if (used_q.count(pair.first) || used_c.count(pair.second)) continue;
      used_q.insert(pair.first);
      used_c.insert(pair.second);
      total += sim;
    }
    scores[t] = total / static_cast<double>(qcols.size());
  }
  return RankMapDescending(scores, query_table);
}

// ------------------------------------------------------------------ WarpGate

WarpGateJoinSearch::WarpGateJoinSearch(const lakebench::SearchBenchmark* bench,
                                       const SbertLikeEncoder* encoder,
                                       size_t num_bits)
    : bench_(bench) {
  hasher_ = std::make_unique<SimHasher>(encoder->dim(), num_bits, /*seed=*/99);
  for (size_t t = 0; t < bench->tables.size(); ++t) {
    const Table& table = bench->tables[t];
    for (size_t c = 0; c < table.num_columns(); ++c) {
      embeddings_.push_back(encoder->EmbedColumn(table, c));
      codes_.push_back(hasher_->Hash(embeddings_.back()));
      column_of_.emplace_back(t, c);
    }
  }
}

std::vector<size_t> WarpGateJoinSearch::Rank(size_t query_table, size_t query_column,
                                             size_t k) const {
  // Find the query column's embedding in the precomputed store.
  std::vector<float> qemb;
  for (size_t i = 0; i < column_of_.size(); ++i) {
    if (column_of_[i] == std::make_pair(query_table, query_column)) {
      qemb = embeddings_[i];
      break;
    }
  }
  TSFM_CHECK(!qemb.empty());
  uint64_t qcode = hasher_->Hash(qemb);

  // SimHash LSH: shortlist by Hamming distance, refine by cosine.
  std::vector<std::pair<int, size_t>> shortlist;  // (hamming, column idx)
  for (size_t i = 0; i < codes_.size(); ++i) {
    if (column_of_[i].first == query_table) continue;
    shortlist.emplace_back(hasher_->HammingDistance(qcode, codes_[i]), i);
  }
  std::sort(shortlist.begin(), shortlist.end());
  if (shortlist.size() > k * 12) shortlist.resize(k * 12);

  std::unordered_map<size_t, double> scores;
  for (const auto& [ham, i] : shortlist) {
    double sim = Cosine(qemb, embeddings_[i]);
    size_t table = column_of_[i].first;
    auto it = scores.find(table);
    if (it == scores.end() || sim > it->second) scores[table] = sim;
  }
  return RankMapDescending(scores, query_table);
}

// ------------------------------------------------------------------ DeepJoin

DeepJoinSearch::DeepJoinSearch(const lakebench::SearchBenchmark* bench,
                               const SbertLikeEncoder* encoder)
    : bench_(bench), encoder_(encoder) {
  index_ = std::make_unique<search::HnswIndex>(encoder->dim());
  for (size_t t = 0; t < bench->tables.size(); ++t) {
    const Table& table = bench->tables[t];
    for (size_t c = 0; c < table.num_columns(); ++c) {
      index_->Add(column_of_.size(), encoder->Embed(DeepJoinColumnText(table, c)));
      column_of_.emplace_back(t, c);
    }
  }
}

std::vector<size_t> DeepJoinSearch::Rank(size_t query_table, size_t query_column,
                                         size_t k) const {
  std::vector<float> qemb =
      encoder_->Embed(DeepJoinColumnText(bench_->tables[query_table], query_column));
  // Over-retrieve columns so collapsing to tables still yields >= k results.
  std::unordered_map<size_t, double> scores;
  for (const auto& [column_id, dist] : index_->Search(qemb, k * 8)) {
    size_t table = column_of_[column_id].first;
    if (table == query_table) continue;
    double sim = 1.0 - dist;
    auto it = scores.find(table);
    if (it == scores.end() || sim > it->second) scores[table] = sim;
  }
  return RankMapDescending(scores, query_table);
}

}  // namespace tsfm::baselines
