#include "baselines/serialize_table.h"

#include <algorithm>
#include <unordered_set>

#include "util/string_util.h"

namespace tsfm::baselines {

std::string SerializeHeaders(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += " | ";
    out += table.column(c).name;
  }
  return out;
}

std::string SerializeRows(const Table& table, size_t max_rows) {
  std::string out = SerializeHeaders(table);
  const size_t rows = std::min(table.num_rows(), max_rows);
  for (size_t r = 0; r < rows; ++r) {
    out += " ; ";
    out += table.RowString(r);
  }
  return out;
}

std::string SerializeColumns(const Table& table, size_t values_per_column) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += " ; ";
    out += table.column(c).name;
    out += " :";
    std::unordered_set<std::string> seen;
    size_t taken = 0;
    for (const auto& cell : table.column(c).cells) {
      if (taken >= values_per_column) break;
      if (IsNullToken(cell) || !seen.insert(cell).second) continue;
      out += " " + cell;
      ++taken;
    }
  }
  return out;
}

std::string DeepJoinColumnText(const Table& table, size_t column,
                               size_t max_values) {
  const Column& col = table.column(column);
  std::string out = table.id() + " . " + col.name + " contains " +
                    std::to_string(col.cells.size()) + " values :";
  std::unordered_set<std::string> seen;
  size_t taken = 0;
  size_t min_len = SIZE_MAX, max_len = 0, total_len = 0, non_null = 0;
  for (const auto& cell : col.cells) {
    if (IsNullToken(cell)) continue;
    ++non_null;
    min_len = std::min(min_len, cell.size());
    max_len = std::max(max_len, cell.size());
    total_len += cell.size();
    if (taken < max_values && seen.insert(cell).second) {
      out += " " + cell;
      ++taken;
    }
  }
  if (non_null > 0) {
    out += " , max " + std::to_string(max_len) + " min " + std::to_string(min_len) +
           " avg " + std::to_string(total_len / non_null);
  }
  return out;
}

std::string SbertColumnText(const Table& table, size_t column, size_t max_values) {
  const Column& col = table.column(column);
  std::string out;
  std::unordered_set<std::string> seen;
  size_t taken = 0;
  for (const auto& cell : col.cells) {
    if (taken >= max_values) break;
    if (IsNullToken(cell) || !seen.insert(cell).second) continue;
    if (!out.empty()) out += " ";
    out += cell;
    ++taken;
  }
  return out;
}

}  // namespace tsfm::baselines
