#include "baselines/vanilla_bert.h"

#include <cmath>

#include "baselines/serialize_table.h"
#include "nn/ops.h"
#include "util/logging.h"

namespace tsfm::baselines {

std::vector<float> PredictFromLogits(core::TaskType task, const nn::Tensor& logits) {
  std::vector<float> out;
  switch (task) {
    case core::TaskType::kBinaryClassification: {
      float mx = std::max(logits[0], logits[1]);
      float e0 = std::exp(logits[0] - mx), e1 = std::exp(logits[1] - mx);
      out.push_back(e1 / (e0 + e1));
      break;
    }
    case core::TaskType::kRegression:
      out.push_back(logits[0]);
      break;
    case core::TaskType::kMultiLabel:
      for (size_t i = 0; i < logits.size(); ++i) {
        out.push_back(1.0f / (1.0f + std::exp(-logits[i])));
      }
      break;
  }
  return out;
}

nn::Var LossFromLogits(core::TaskType task, const nn::Var& logits,
                       const core::PairExample& example) {
  switch (task) {
    case core::TaskType::kBinaryClassification:
      return nn::CrossEntropyLoss(logits, {example.label});
    case core::TaskType::kRegression:
      return nn::MseLoss(logits, {example.target});
    case core::TaskType::kMultiLabel:
      return nn::BceWithLogitsLoss(logits, example.multi_labels);
  }
  TSFM_CHECK(false) << "unreachable";
  return nn::Var();
}

VanillaBertBaseline::VanillaBertBaseline(const TinyBertConfig& config,
                                         core::TaskType task, size_t num_outputs,
                                         const text::Tokenizer* tokenizer, Rng* rng)
    : task_(task),
      tokenizer_(tokenizer),
      bert_(std::make_unique<TinyBert>(config, rng)),
      head_(std::make_unique<nn::Linear>(config.encoder.hidden, num_outputs, rng)) {}

nn::Var VanillaBertBaseline::Logits(const core::PairDataset& dataset,
                                    const core::PairExample& example, bool training,
                                    Rng* rng) const {
  // [CLS] headers-A [SEP] headers-B [SEP] with segment ids 0/1.
  std::vector<int> ids = {text::kClsId};
  std::vector<int> segs = {0};
  auto a = tokenizer_->Encode(SerializeHeaders(dataset.tables[example.a]));
  auto b = tokenizer_->Encode(SerializeHeaders(dataset.tables[example.b]));
  const size_t budget = bert_->config().max_seq_len;
  const size_t half = budget / 2;
  if (a.size() > half - 2) a.resize(half - 2);
  for (int id : a) {
    ids.push_back(id);
    segs.push_back(0);
  }
  ids.push_back(text::kSepId);
  segs.push_back(0);
  for (int id : b) {
    if (ids.size() + 1 >= budget) break;
    ids.push_back(id);
    segs.push_back(1);
  }
  ids.push_back(text::kSepId);
  segs.push_back(1);

  nn::Var hidden = bert_->Encode(ids, segs, training, rng);
  nn::Var pooled = bert_->Pool(hidden);
  pooled = nn::Dropout(pooled, bert_->config().encoder.dropout, training, rng);
  return head_->Forward(pooled);
}

nn::Var VanillaBertBaseline::Loss(const core::PairDataset& dataset,
                                  const core::PairExample& example, bool training,
                                  Rng* rng) const {
  return LossFromLogits(task_, Logits(dataset, example, training, rng), example);
}

std::vector<float> VanillaBertBaseline::Predict(
    const core::PairDataset& dataset, const core::PairExample& example) const {
  Rng rng(0);
  nn::Var logits = Logits(dataset, example, /*training=*/false, &rng);
  return PredictFromLogits(task_, logits->value());
}

void VanillaBertBaseline::CollectParams(const std::string& prefix,
                                        std::vector<nn::NamedParam>* out) const {
  bert_->CollectParams(prefix + ".bert", out);
  head_->CollectParams(prefix + ".head", out);
}

}  // namespace tsfm::baselines
