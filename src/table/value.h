// Cell values and the column type system.
//
// Paper Sec III-B.4: columns are typed as string, date, integer, or float,
// inferred by best-effort parsing of the first values; types are encoded as
// integers 1..4 in the column-type embedding.
#ifndef TSFM_TABLE_VALUE_H_
#define TSFM_TABLE_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tsfm {

/// Column data type, numbered exactly as the paper's type embedding.
enum class ColumnType : int {
  kString = 1,
  kInteger = 2,
  kFloat = 3,
  kDate = 4,
};

/// Human-readable name ("string", "int", "float", "date").
const char* ColumnTypeName(ColumnType type);

/// Attempts to parse `s` as a 64-bit integer (strict: no trailing junk).
std::optional<int64_t> ParseInt(std::string_view s);

/// Attempts to parse `s` as a double (strict).
std::optional<double> ParseFloat(std::string_view s);

/// \brief Attempts to parse `s` as a date, returning a UNIX-style timestamp
/// in days since 1970-01-01 (may be negative).
///
/// Accepted formats: YYYY-MM-DD, YYYY/MM/DD, DD/MM/YYYY, MM-DD-YYYY and
/// bare years 1000..2999. Mirrors the paper's "convert date columns to
/// timestamps and treat as numeric" rule.
std::optional<int64_t> ParseDateToDays(std::string_view s);

/// True when the cell should be treated as missing (empty, "na", "nan",
/// "null", "none", "-", case-insensitive).
bool IsNullToken(std::string_view s);

/// \brief Numeric view of a cell under a column type.
///
/// Returns the value used by numerical sketches: the parsed number for
/// int/float columns, days-since-epoch for dates, and std::nullopt for
/// strings or unparseable cells.
std::optional<double> NumericValue(std::string_view cell, ColumnType type);

}  // namespace tsfm

#endif  // TSFM_TABLE_VALUE_H_
