// In-memory relational table model.
//
// Cells are stored as strings (the universal representation coming out of
// CSV files and the synthetic generators); column types are inferred lazily
// with the paper's first-10-values rule (Sec III-B.4).
#ifndef TSFM_TABLE_TABLE_H_
#define TSFM_TABLE_TABLE_H_

#include <string>
#include <vector>

#include "table/value.h"

namespace tsfm {

/// \brief A named, typed column of string cells.
struct Column {
  std::string name;
  std::vector<std::string> cells;
  ColumnType type = ColumnType::kString;
};

/// \brief A table: id, human description, and columns of equal length.
class Table {
 public:
  Table() = default;
  Table(std::string id, std::string description)
      : id_(std::move(id)), description_(std::move(description)) {}

  const std::string& id() const { return id_; }
  const std::string& description() const { return description_; }
  void set_id(std::string id) { id_ = std::move(id); }
  void set_description(std::string d) { description_ = std::move(d); }

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].cells.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Appends a column; all columns must end up with equal row counts
  /// (validated by Validate()).
  void AddColumn(Column column) { columns_.push_back(std::move(column)); }
  void AddColumn(std::string name, std::vector<std::string> cells);

  /// Index of the column named `name`, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Cell accessor (row-major view over columnar storage).
  const std::string& cell(size_t row, size_t col) const {
    return columns_[col].cells[row];
  }

  /// Renders row `r` as a single space-joined string (used by the content
  /// snapshot sketch).
  std::string RowString(size_t row) const;

  /// Runs type inference (paper Sec III-B.4) on every column: parse the
  /// first `probe` non-null values as date, then int, then float; default
  /// to string.
  void InferTypes(size_t probe = 10);

  /// Returns a copy with columns reordered by `perm` (a permutation of
  /// column indices).
  Table WithColumnOrder(const std::vector<size_t>& perm) const;

  /// Returns a copy with rows reordered by `perm`.
  Table WithRowOrder(const std::vector<size_t>& perm) const;

  /// Returns a copy keeping only `row_idx` rows and `col_idx` columns
  /// (both in given order).
  Table Slice(const std::vector<size_t>& row_idx,
              const std::vector<size_t>& col_idx) const;

  /// True when all columns have the same number of rows.
  bool Validate() const;

 private:
  std::string id_;
  std::string description_;
  std::vector<Column> columns_;
};

/// Infers the type of a single column by probing its first values.
ColumnType InferColumnType(const std::vector<std::string>& cells, size_t probe = 10);

}  // namespace tsfm

#endif  // TSFM_TABLE_TABLE_H_
