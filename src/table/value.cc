#include "table/value.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/string_util.h"

namespace tsfm {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kString:
      return "string";
    case ColumnType::kInteger:
      return "int";
    case ColumnType::kFloat:
      return "float";
    case ColumnType::kDate:
      return "date";
  }
  return "?";
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> ParseFloat(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is not universally available; use strtod with
  // a bounded copy.
  std::string buf(s);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

namespace {

bool IsLeapYear(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeapYear(y)) return 29;
  return kDays[m - 1];
}

// Days since 1970-01-01 for a valid (y, m, d).
int64_t CivilToDays(int y, int m, int d) {
  // Howard Hinnant's algorithm.
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
}

bool ValidDate(int y, int m, int d) {
  return y >= 1 && y <= 9999 && m >= 1 && m <= 12 && d >= 1 && d <= DaysInMonth(y, m);
}

}  // namespace

std::optional<int64_t> ParseDateToDays(std::string_view s) {
  s = Trim(s);
  if (s.empty() || s.size() > 10) return std::nullopt;

  auto try_parts = [](const std::vector<std::string>& parts,
                      bool year_first) -> std::optional<int64_t> {
    if (parts.size() != 3) return std::nullopt;
    for (const auto& p : parts) {
      if (!IsDigits(p)) return std::nullopt;
    }
    int a = std::atoi(parts[0].c_str());
    int b = std::atoi(parts[1].c_str());
    int c = std::atoi(parts[2].c_str());
    int y, m, d;
    if (year_first) {
      y = a;
      m = b;
      d = c;
    } else {
      d = a;
      m = b;
      y = c;
      if (!ValidDate(y, m, d) && ValidDate(c, a, b)) {
        // Fall back to MM-DD-YYYY.
        y = c;
        m = a;
        d = b;
      }
    }
    if (!ValidDate(y, m, d)) return std::nullopt;
    return CivilToDays(y, m, d);
  };

  if (s.find('-') != std::string_view::npos) {
    auto parts = Split(s, '-');
    if (parts.size() == 3 && parts[0].size() == 4) return try_parts(parts, true);
    if (parts.size() == 3) return try_parts(parts, false);
    return std::nullopt;
  }
  if (s.find('/') != std::string_view::npos) {
    auto parts = Split(s, '/');
    if (parts.size() == 3 && parts[0].size() == 4) return try_parts(parts, true);
    if (parts.size() == 3) return try_parts(parts, false);
    return std::nullopt;
  }
  // Bare year.
  if (IsDigits(s) && s.size() == 4) {
    int y = std::atoi(std::string(s).c_str());
    if (y >= 1000 && y <= 2999) return CivilToDays(y, 1, 1);
  }
  return std::nullopt;
}

bool IsNullToken(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return true;
  std::string lower = ToLower(s);
  return lower == "na" || lower == "nan" || lower == "null" || lower == "none" ||
         lower == "n/a" || lower == "-";
}

std::optional<double> NumericValue(std::string_view cell, ColumnType type) {
  if (IsNullToken(cell)) return std::nullopt;
  switch (type) {
    case ColumnType::kInteger: {
      auto v = ParseInt(cell);
      if (v) return static_cast<double>(*v);
      auto f = ParseFloat(cell);
      if (f) return *f;
      return std::nullopt;
    }
    case ColumnType::kFloat: {
      auto f = ParseFloat(cell);
      if (f) return *f;
      return std::nullopt;
    }
    case ColumnType::kDate: {
      auto d = ParseDateToDays(cell);
      if (d) return static_cast<double>(*d);
      return std::nullopt;
    }
    case ColumnType::kString:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace tsfm
