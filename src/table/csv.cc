#include "table/csv.h"

#include <fstream>
#include <sstream>

namespace tsfm {

namespace {

// Parses CSV into records of fields. Handles quoted fields per RFC 4180.
Result<std::vector<std::vector<std::string>>> ParseRecords(std::string_view text,
                                                           char delim) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  const size_t n = text.size();

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
      continue;
    }
    if (c == delim) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\r') {
      ++i;  // swallow; \n handles record end
      continue;
    }
    if (c == '\n') {
      end_record();
      ++i;
      continue;
    }
    field.push_back(c);
    field_started = true;
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field");
  }
  if (!field.empty() || !record.empty()) end_record();
  return records;
}

bool NeedsQuoting(const std::string& s, char delim) {
  return s.find(delim) != std::string::npos || s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos || s.find('\r') != std::string::npos;
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<Table> ParseCsv(std::string_view text, char delim) {
  auto records_result = ParseRecords(text, delim);
  if (!records_result.ok()) return records_result.status();
  const auto& records = records_result.value();
  if (records.empty()) return Status::ParseError("empty CSV input");

  const auto& header = records[0];
  Table table;
  for (const auto& name : header) {
    table.AddColumn(name, {});
  }
  for (size_t r = 1; r < records.size(); ++r) {
    const auto& row = records[r];
    if (row.size() > header.size()) {
      return Status::ParseError("row " + std::to_string(r) + " has " +
                                std::to_string(row.size()) + " fields, header has " +
                                std::to_string(header.size()));
    }
    for (size_t c = 0; c < header.size(); ++c) {
      table.column(c).cells.push_back(c < row.size() ? row[c] : std::string());
    }
  }
  table.InferTypes();
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, char delim) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto result = ParseCsv(buf.str(), delim);
  if (result.ok()) {
    result.value().set_id(path);
  }
  return result;
}

std::string WriteCsv(const Table& table, char delim) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back(delim);
    const std::string& name = table.column(c).name;
    if (NeedsQuoting(name, delim)) {
      AppendQuoted(&out, name);
    } else {
      out += name;
    }
  }
  out.push_back('\n');
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(delim);
      const std::string& cell = table.cell(r, c);
      if (NeedsQuoting(cell, delim)) {
        AppendQuoted(&out, cell);
      } else {
        out += cell;
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path, char delim) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsv(table, delim);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace tsfm
