// RFC-4180-style CSV reading and writing.
//
// Supports quoted fields with embedded delimiters, quotes ("" escaping) and
// newlines. The first record is the header row (column names).
#ifndef TSFM_TABLE_CSV_H_
#define TSFM_TABLE_CSV_H_

#include <string>
#include <string_view>

#include "table/table.h"
#include "util/status.h"

namespace tsfm {

/// Parses CSV text into a Table. The first record is the header. Rows with
/// fewer fields than the header are padded with empty cells; rows with more
/// are an error.
Result<Table> ParseCsv(std::string_view text, char delim = ',');

/// Reads and parses a CSV file.
Result<Table> ReadCsvFile(const std::string& path, char delim = ',');

/// Serializes a table as CSV (header + rows), quoting when needed.
std::string WriteCsv(const Table& table, char delim = ',');

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path, char delim = ',');

}  // namespace tsfm

#endif  // TSFM_TABLE_CSV_H_
