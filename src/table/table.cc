#include "table/table.h"

#include "util/logging.h"

namespace tsfm {

void Table::AddColumn(std::string name, std::vector<std::string> cells) {
  Column c;
  c.name = std::move(name);
  c.cells = std::move(cells);
  columns_.push_back(std::move(c));
}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Table::RowString(size_t row) const {
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out.push_back(' ');
    out += columns_[c].cells[row];
  }
  return out;
}

ColumnType InferColumnType(const std::vector<std::string>& cells, size_t probe) {
  size_t seen = 0;
  size_t as_date = 0, as_int = 0, as_float = 0;
  for (const auto& cell : cells) {
    if (seen >= probe) break;
    if (IsNullToken(cell)) continue;
    ++seen;
    if (ParseDateToDays(cell) && !ParseInt(cell)) ++as_date;
    if (ParseInt(cell)) ++as_int;
    if (ParseFloat(cell)) ++as_float;
  }
  if (seen == 0) return ColumnType::kString;
  // Best-effort rule from the paper: all probed values must agree on a type;
  // otherwise fall back to string. Date wins over numeric formats because a
  // date string never parses as int/float in full.
  if (as_date == seen) return ColumnType::kDate;
  if (as_int == seen) return ColumnType::kInteger;
  if (as_float == seen) return ColumnType::kFloat;
  return ColumnType::kString;
}

void Table::InferTypes(size_t probe) {
  for (auto& col : columns_) {
    col.type = InferColumnType(col.cells, probe);
  }
}

Table Table::WithColumnOrder(const std::vector<size_t>& perm) const {
  Table out(id_, description_);
  for (size_t p : perm) {
    TSFM_CHECK_LT(p, columns_.size());
    out.AddColumn(columns_[p]);
  }
  return out;
}

Table Table::WithRowOrder(const std::vector<size_t>& perm) const {
  Table out(id_, description_);
  for (const auto& col : columns_) {
    Column c;
    c.name = col.name;
    c.type = col.type;
    c.cells.reserve(perm.size());
    for (size_t p : perm) {
      TSFM_CHECK_LT(p, col.cells.size());
      c.cells.push_back(col.cells[p]);
    }
    out.AddColumn(std::move(c));
  }
  return out;
}

Table Table::Slice(const std::vector<size_t>& row_idx,
                   const std::vector<size_t>& col_idx) const {
  Table out(id_, description_);
  for (size_t ci : col_idx) {
    TSFM_CHECK_LT(ci, columns_.size());
    const Column& src = columns_[ci];
    Column c;
    c.name = src.name;
    c.type = src.type;
    c.cells.reserve(row_idx.size());
    for (size_t ri : row_idx) {
      TSFM_CHECK_LT(ri, src.cells.size());
      c.cells.push_back(src.cells[ri]);
    }
    out.AddColumn(std::move(c));
  }
  return out;
}

bool Table::Validate() const {
  if (columns_.empty()) return true;
  size_t rows = columns_[0].cells.size();
  for (const auto& col : columns_) {
    if (col.cells.size() != rows) return false;
  }
  return true;
}

}  // namespace tsfm
