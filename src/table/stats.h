// Column statistics feeding the numerical sketch (paper Sec III-A).
#ifndef TSFM_TABLE_STATS_H_
#define TSFM_TABLE_STATS_H_

#include <cstddef>
#include <vector>

#include "table/table.h"

namespace tsfm {

/// \brief Statistical profile of one column.
///
/// The fields mirror the paper's numerical sketch layout: unique and NaN
/// counts normalized by row count, average cell width in bytes, and for
/// numeric/date columns the deciles, mean, standard deviation, min and max.
struct ColumnStats {
  double unique_fraction = 0.0;   ///< distinct values / rows
  double nan_fraction = 0.0;      ///< null cells / rows
  double avg_cell_width = 0.0;    ///< mean byte length of non-null cells
  bool has_numeric = false;       ///< numeric stats below are meaningful
  double percentiles[9] = {0};    ///< p10..p90
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes statistics for `column` (its `type` decides numeric handling).
ColumnStats ComputeColumnStats(const Column& column);

/// Linear-interpolated percentile of sorted data, q in [0, 1].
double Percentile(const std::vector<double>& sorted, double q);

}  // namespace tsfm

#endif  // TSFM_TABLE_STATS_H_
