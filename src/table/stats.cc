#include "table/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace tsfm {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

ColumnStats ComputeColumnStats(const Column& column) {
  ColumnStats stats;
  const size_t rows = column.cells.size();
  if (rows == 0) return stats;

  std::unordered_set<std::string> uniques;
  size_t nulls = 0;
  size_t non_null = 0;
  double width_sum = 0.0;
  std::vector<double> numeric;
  numeric.reserve(rows);

  for (const auto& cell : column.cells) {
    if (IsNullToken(cell)) {
      ++nulls;
      continue;
    }
    ++non_null;
    uniques.insert(cell);
    width_sum += static_cast<double>(cell.size());
    if (column.type != ColumnType::kString) {
      auto v = NumericValue(cell, column.type);
      if (v) numeric.push_back(*v);
    }
  }

  stats.unique_fraction = static_cast<double>(uniques.size()) / static_cast<double>(rows);
  stats.nan_fraction = static_cast<double>(nulls) / static_cast<double>(rows);
  stats.avg_cell_width = non_null > 0 ? width_sum / static_cast<double>(non_null) : 0.0;

  if (!numeric.empty()) {
    stats.has_numeric = true;
    std::sort(numeric.begin(), numeric.end());
    for (int i = 0; i < 9; ++i) {
      stats.percentiles[i] = Percentile(numeric, 0.1 * (i + 1));
    }
    double sum = 0.0;
    for (double v : numeric) sum += v;
    stats.mean = sum / static_cast<double>(numeric.size());
    double var = 0.0;
    for (double v : numeric) var += (v - stats.mean) * (v - stats.mean);
    stats.stddev = std::sqrt(var / static_cast<double>(numeric.size()));
    stats.min = numeric.front();
    stats.max = numeric.back();
  }
  return stats;
}

}  // namespace tsfm
