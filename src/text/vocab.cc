#include "text/vocab.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace tsfm::text {

Vocab::Vocab() {
  AddToken(kPadToken);
  AddToken(kUnkToken);
  AddToken(kClsToken);
  AddToken(kSepToken);
  AddToken(kMaskToken);
}

int Vocab::AddToken(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  ids_.emplace(token, id);
  return id;
}

int Vocab::Id(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kUnkId : it->second;
}

bool Vocab::Contains(const std::string& token) const {
  return ids_.find(token) != ids_.end();
}

const std::string& Vocab::TokenOf(int id) const {
  TSFM_CHECK_GE(id, 0);
  TSFM_CHECK_LT(static_cast<size_t>(id), tokens_.size());
  return tokens_[static_cast<size_t>(id)];
}

Vocab Vocab::Build(const std::vector<std::string>& words, size_t min_count,
                   size_t max_size) {
  std::map<std::string, size_t> counts;  // ordered map keeps builds deterministic
  for (const auto& w : words) ++counts[w];

  // Frequency-sorted (desc), ties broken lexicographically.
  std::vector<std::pair<std::string, size_t>> sorted(counts.begin(), counts.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });

  Vocab vocab;
  for (const auto& [word, count] : sorted) {
    if (count < min_count) break;
    if (vocab.size() >= max_size) break;
    vocab.AddToken(word);
    // Suffix pieces allow decomposition of unseen compounds.
    if (word.size() >= 4) {
      for (size_t cut = 1; cut + 2 <= word.size() && vocab.size() < max_size; ++cut) {
        vocab.AddToken("##" + word.substr(cut));
      }
    }
  }
  // Single characters as a last-resort decomposition layer.
  for (char c = 'a'; c <= 'z' && vocab.size() < max_size; ++c) {
    vocab.AddToken(std::string(1, c));
    vocab.AddToken("##" + std::string(1, c));
  }
  for (char c = '0'; c <= '9' && vocab.size() < max_size; ++c) {
    vocab.AddToken(std::string(1, c));
    vocab.AddToken("##" + std::string(1, c));
  }
  return vocab;
}

}  // namespace tsfm::text
