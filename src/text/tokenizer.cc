#include "text/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace tsfm::text {

std::vector<std::string> BasicTokenize(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (std::isspace(c)) {
      flush();
    } else {
      flush();
      out.emplace_back(1, static_cast<char>(c));  // punctuation as its own token
    }
  }
  flush();
  return out;
}

std::vector<int> Tokenizer::WordPieceIds(const std::string& word) const {
  if (vocab_->Contains(word)) return {vocab_->Id(word)};
  std::vector<int> pieces;
  size_t start = 0;
  const size_t n = word.size();
  while (start < n) {
    size_t end = n;
    int found = -1;
    while (end > start) {
      std::string piece = word.substr(start, end - start);
      if (start > 0) piece = "##" + piece;
      if (vocab_->Contains(piece)) {
        found = vocab_->Id(piece);
        break;
      }
      --end;
    }
    if (found < 0) return {kUnkId};  // undecomposable
    pieces.push_back(found);
    start = end;
  }
  return pieces;
}

std::vector<int> Tokenizer::Encode(std::string_view text) const {
  std::vector<int> ids;
  for (const auto& word : BasicTokenize(text)) {
    auto pieces = WordPieceIds(word);
    ids.insert(ids.end(), pieces.begin(), pieces.end());
  }
  return ids;
}

std::string Tokenizer::Decode(const std::vector<int>& ids) const {
  std::string out;
  for (int id : ids) {
    const std::string& token = vocab_->TokenOf(id);
    if (StartsWith(token, "##")) {
      out += token.substr(2);
    } else {
      if (!out.empty()) out.push_back(' ');
      out += token;
    }
  }
  return out;
}

}  // namespace tsfm::text
