// WordPiece-style tokenizer (greedy longest-match-first subwords).
#ifndef TSFM_TEXT_TOKENIZER_H_
#define TSFM_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/vocab.h"

namespace tsfm::text {

/// Lower-cases and splits text into word tokens: letter/digit runs, with
/// punctuation emitted as single-character tokens (BERT basic tokenizer).
std::vector<std::string> BasicTokenize(std::string_view text);

/// \brief Greedy WordPiece tokenizer over a fixed vocabulary.
class Tokenizer {
 public:
  explicit Tokenizer(const Vocab* vocab) : vocab_(vocab) {}

  /// Splits one word into vocabulary pieces ("street" -> ["str", "##eet"]).
  /// Falls back to [UNK] when no decomposition exists.
  std::vector<int> WordPieceIds(const std::string& word) const;

  /// Full pipeline: basic tokenize then WordPiece each word.
  std::vector<int> Encode(std::string_view text) const;

  /// Decodes ids back to a readable string ("##" pieces merged).
  std::string Decode(const std::vector<int>& ids) const;

  const Vocab& vocab() const { return *vocab_; }

 private:
  const Vocab* vocab_;
};

}  // namespace tsfm::text

#endif  // TSFM_TEXT_TOKENIZER_H_
