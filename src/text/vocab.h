// Vocabulary with BERT-style special tokens.
#ifndef TSFM_TEXT_VOCAB_H_
#define TSFM_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace tsfm::text {

/// Special-token ids are fixed at the front of every vocabulary.
inline constexpr int kPadId = 0;
inline constexpr int kUnkId = 1;
inline constexpr int kClsId = 2;
inline constexpr int kSepId = 3;
inline constexpr int kMaskId = 4;
inline constexpr int kNumSpecialTokens = 5;

inline constexpr const char* kPadToken = "[PAD]";
inline constexpr const char* kUnkToken = "[UNK]";
inline constexpr const char* kClsToken = "[CLS]";
inline constexpr const char* kSepToken = "[SEP]";
inline constexpr const char* kMaskToken = "[MASK]";

/// \brief Token string <-> id mapping.
class Vocab {
 public:
  /// Creates a vocabulary holding only the special tokens.
  Vocab();

  /// Adds a token if absent; returns its id either way.
  int AddToken(const std::string& token);

  /// Id of `token`, or kUnkId when absent.
  int Id(const std::string& token) const;

  /// True when `token` is known.
  bool Contains(const std::string& token) const;

  /// Token string for `id` (checked).
  const std::string& TokenOf(int id) const;

  size_t size() const { return tokens_.size(); }

  /// \brief Builds a vocabulary from a corpus of whole words.
  ///
  /// Words with frequency >= min_count enter as full tokens; additionally
  /// every "##"-prefixed suffix piece of length >= 2 of frequent words is
  /// added so the tokenizer can decompose unseen words (WordPiece-style).
  static Vocab Build(const std::vector<std::string>& words, size_t min_count = 1,
                     size_t max_size = 30000);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace tsfm::text

#endif  // TSFM_TEXT_VOCAB_H_
