// Non-cryptographic hash functions used by the sketching layer.
//
// MinHash needs a family of independent hash functions over strings; we use
// MurmurHash3 (x86 32-bit finalization) with per-function seeds, plus
// FNV-1a and SplitMix64 for lightweight integer mixing.
#ifndef TSFM_UTIL_HASH_H_
#define TSFM_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace tsfm {

/// MurmurHash3 x86 32-bit of `data` with `seed`.
uint32_t Murmur3_32(std::string_view data, uint32_t seed);

/// 64-bit FNV-1a of `data`.
uint64_t Fnv1a64(std::string_view data);

/// SplitMix64 finalizer — turns a 64-bit value into a well-mixed 64-bit hash.
uint64_t SplitMix64(uint64_t x);

/// Combines two hash values (boost::hash_combine style, 64-bit).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// \brief Stable shard assignment for a string id.
///
/// Routes `id` to one of `num_shards` buckets by a well-mixed hash
/// (FNV-1a + SplitMix64). The mapping depends only on the id bytes and the
/// shard count, so it is identical across processes and rebuilds — the
/// property ShardedLakeIndex relies on to keep a table in one shard.
/// `num_shards == 0` maps everything to shard 0.
size_t StableShard(std::string_view id, size_t num_shards);

}  // namespace tsfm

#endif  // TSFM_UTIL_HASH_H_
