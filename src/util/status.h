// Status and Result types for recoverable-error reporting.
//
// Mirrors the Status idiom used by Arrow/RocksDB: cheap to pass by value,
// carries a code and a human-readable message, and composes with Result<T>
// for functions that either produce a value or fail.
#ifndef TSFM_UTIL_STATUS_H_
#define TSFM_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace tsfm {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kParseError,
  kInternal,
  kUnimplemented,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation that can fail without a payload.
///
/// A default-constructed Status is OK. Failed statuses carry a code and a
/// message. The class is cheap to copy and is intended to be returned by
/// value.
///
/// [[nodiscard]]: silently dropping a Status is a compile error. The rare
/// genuinely-ignorable error is consumed with a `(void)` cast carrying a
/// comment that says why it is ignorable.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Constructs an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Accessors check-fail (abort) when used on the wrong alternative, which
/// turns misuse into a loud deterministic failure rather than UB.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(implicit)
  Result(Status status) : status_(std::move(status)) {}    // NOLINT(implicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace tsfm

#endif  // TSFM_UTIL_STATUS_H_
