// Small string helpers shared across the library.
#ifndef TSFM_UTIL_STRING_UTIL_H_
#define TSFM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tsfm {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True when every character is an ASCII digit (and s is non-empty).
bool IsDigits(std::string_view s);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double v, int precision);

/// Left-pads `s` with spaces to `width` (no-op when already wider).
std::string PadLeft(std::string_view s, size_t width);

/// Right-pads `s` with spaces to `width`.
std::string PadRight(std::string_view s, size_t width);

}  // namespace tsfm

#endif  // TSFM_UTIL_STRING_UTIL_H_
