#include "util/logging.h"

#include <atomic>

namespace tsfm {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_level.load()) {
    std::cerr << stream_.str() << std::endl;
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace tsfm
