#include "util/logging.h"

#include <atomic>
#include <string>

#include "util/mutex.h"

namespace tsfm {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

// Serializes log emission so concurrent loggers (pool workers, connection
// handlers, the accept thread) never interleave characters within a line.
//
// Deliberately leaked: loggers can still be running during static
// destruction (a detached thread draining after main returns, a TSFM_LOG
// in some other object's static destructor), and a namespace-scope Mutex
// would be destroyed out from under them — a use-after-destruction TSan
// flags at exit. A function-local leaked instance is constructed on first
// use and never dies.
Mutex& SinkMutex() {
  static Mutex* mu = new Mutex;
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_level.load()) {
    // Format outside the lock; hold it only for the single write+flush.
    const std::string text = stream_.str();
    MutexLock lock(&SinkMutex());
    std::cerr << text << std::endl;
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr << " ";
}

FatalMessage::~FatalMessage() {
  const std::string text = stream_.str();
  {
    MutexLock lock(&SinkMutex());
    std::cerr << text << std::endl;
  }
  // Abort after releasing the lock so other threads' final messages can
  // still drain while the process comes down.
  std::abort();
}

}  // namespace internal
}  // namespace tsfm
