#include "util/hash.h"

#include <cstring>

namespace tsfm {

namespace {

inline uint32_t Rotl32(uint32_t x, int8_t r) { return (x << r) | (x >> (32 - r)); }

inline uint32_t Fmix32(uint32_t h) {
  h ^= h >> 16;
  h *= 0x85ebca6b;
  h ^= h >> 13;
  h *= 0xc2b2ae35;
  h ^= h >> 16;
  return h;
}

}  // namespace

uint32_t Murmur3_32(std::string_view data, uint32_t seed) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());
  const size_t len = data.size();
  const size_t nblocks = len / 4;

  uint32_t h1 = seed;
  const uint32_t c1 = 0xcc9e2d51;
  const uint32_t c2 = 0x1b873593;

  for (size_t i = 0; i < nblocks; ++i) {
    uint32_t k1;
    std::memcpy(&k1, bytes + i * 4, 4);
    k1 *= c1;
    k1 = Rotl32(k1, 15);
    k1 *= c2;
    h1 ^= k1;
    h1 = Rotl32(h1, 13);
    h1 = h1 * 5 + 0xe6546b64;
  }

  const uint8_t* tail = bytes + nblocks * 4;
  uint32_t k1 = 0;
  switch (len & 3) {
    case 3:
      k1 ^= static_cast<uint32_t>(tail[2]) << 16;
      [[fallthrough]];
    case 2:
      k1 ^= static_cast<uint32_t>(tail[1]) << 8;
      [[fallthrough]];
    case 1:
      k1 ^= tail[0];
      k1 *= c1;
      k1 = Rotl32(k1, 15);
      k1 *= c2;
      h1 ^= k1;
  }

  h1 ^= static_cast<uint32_t>(len);
  return Fmix32(h1);
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

size_t StableShard(std::string_view id, size_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<size_t>(SplitMix64(Fnv1a64(id)) % num_shards);
}

}  // namespace tsfm
