// Clang Thread Safety Analysis macros (LAKS_GUARDED_BY and friends).
//
// These expand to Clang's thread-safety attributes when the compiler
// supports them and to nothing elsewhere (GCC compiles them away), so the
// annotations cost nothing at runtime and nothing on the GCC pipeline.
// Building any TU with `clang++ -Wthread-safety -Werror=thread-safety`
// turns every locking comment in this repo ("guarded by mu_", "caller
// holds the epoch lock") into a compile-time proof obligation.
//
// The vocabulary mirrors abseil's thread_annotations.h:
//   LAKS_GUARDED_BY(mu)        field may only be touched while mu is held
//   LAKS_REQUIRES(mu)          function must be called with mu held
//   LAKS_REQUIRES_SHARED(mu)   ... held at least shared
//   LAKS_EXCLUDES(mu)          function must be called with mu NOT held
//   LAKS_ACQUIRE / LAKS_RELEASE (+ _SHARED)  lock-transferring functions
//   LAKS_CAPABILITY / LAKS_SCOPED_CAPABILITY lockable / RAII-guard types
//   LAKS_NO_THREAD_SAFETY_ANALYSIS escape hatch; every use carries a
//                                  comment explaining why it is sound
//
// Known analysis limits this codebase designs around (see
// docs/architecture.md "Concurrency contract"):
//   - constructors/destructors are not analyzed, so initializing guarded
//     fields of a freshly constructed object is fine *in the constructor*
//     but factory functions (Load and friends) must lock explicitly;
//   - lambdas are analyzed as separate unannotated functions, so code
//     that captures guarded fields into a pool-dispatched lambda binds
//     local references under the lock and captures those instead;
//   - condition_variable predicate overloads hide the guarded reads in a
//     lambda, so all waits are written as explicit `while (!cond) Wait()`
//     loops.
#ifndef TSFM_UTIL_THREAD_ANNOTATIONS_H_
#define TSFM_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LAKS_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef LAKS_THREAD_ANNOTATION_
#define LAKS_THREAD_ANNOTATION_(x)  // expands to nothing on GCC
#endif

#define LAKS_CAPABILITY(x) LAKS_THREAD_ANNOTATION_(capability(x))
#define LAKS_SCOPED_CAPABILITY LAKS_THREAD_ANNOTATION_(scoped_lockable)

#define LAKS_GUARDED_BY(x) LAKS_THREAD_ANNOTATION_(guarded_by(x))
#define LAKS_PT_GUARDED_BY(x) LAKS_THREAD_ANNOTATION_(pt_guarded_by(x))

#define LAKS_ACQUIRED_BEFORE(...) \
  LAKS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define LAKS_ACQUIRED_AFTER(...) \
  LAKS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define LAKS_REQUIRES(...) \
  LAKS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define LAKS_REQUIRES_SHARED(...) \
  LAKS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define LAKS_ACQUIRE(...) \
  LAKS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define LAKS_ACQUIRE_SHARED(...) \
  LAKS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define LAKS_RELEASE(...) \
  LAKS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define LAKS_RELEASE_SHARED(...) \
  LAKS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define LAKS_RELEASE_GENERIC(...) \
  LAKS_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define LAKS_TRY_ACQUIRE(...) \
  LAKS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define LAKS_TRY_ACQUIRE_SHARED(...) \
  LAKS_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define LAKS_EXCLUDES(...) LAKS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define LAKS_ASSERT_CAPABILITY(x) \
  LAKS_THREAD_ANNOTATION_(assert_capability(x))
#define LAKS_ASSERT_SHARED_CAPABILITY(x) \
  LAKS_THREAD_ANNOTATION_(assert_shared_capability(x))

#define LAKS_RETURN_CAPABILITY(x) LAKS_THREAD_ANNOTATION_(lock_returned(x))

#define LAKS_NO_THREAD_SAFETY_ANALYSIS \
  LAKS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // TSFM_UTIL_THREAD_ANNOTATIONS_H_
