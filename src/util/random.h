// Deterministic pseudo-random number generation.
//
// All randomized components in the library (data generators, weight
// initialization, MLM masking, dropout) draw from Rng so that every
// experiment is reproducible from a single seed.
#ifndef TSFM_UTIL_RANDOM_H_
#define TSFM_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsfm {

/// \brief PCG32 pseudo-random generator (O'Neill 2014).
///
/// Small, fast, statistically strong enough for simulation workloads, and
/// fully deterministic across platforms — unlike std::mt19937 whose
/// distributions are implementation-defined.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Next raw 32-bit draw.
  uint32_t NextU32();

  /// Next raw 64-bit draw (two 32-bit draws).
  uint64_t NextU64();

  /// Uniform integer in [0, bound), bias-free via rejection sampling.
  /// `bound` must be > 0.
  uint32_t Uniform(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal draw via Box-Muller.
  double Normal();

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw: true with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = Uniform(static_cast<uint32_t>(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Picks a uniformly random element; `items` must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[Uniform(static_cast<uint32_t>(items.size()))];
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  /// When k >= n, returns all n indices (shuffled).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace tsfm

#endif  // TSFM_UTIL_RANDOM_H_
