#include "util/random.h"

#include <cmath>
#include <numeric>

namespace tsfm {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

uint32_t Rng::Uniform(uint32_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = -bound % bound;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // For spans that fit in 32 bits use the unbiased path; otherwise accept the
  // negligible bias of a 64-bit modulo.
  if (span <= 0xffffffffULL) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint32_t>(span)));
  }
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::UniformDouble() {
  return (NextU64() >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-12) u1 = UniformDouble();
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  if (k >= n) {
    Shuffle(&all);
    return all;
  }
  // Partial Fisher-Yates: shuffle the first k slots only.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Uniform(static_cast<uint32_t>(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace tsfm
