// Fixed-size thread pool with a ParallelFor convenience wrapper.
//
// Used to parallelize embarrassingly-parallel evaluation loops (sketching a
// corpus, embedding queries). Training loops stay single-threaded for
// determinism.
#ifndef TSFM_UTIL_THREAD_POOL_H_
#define TSFM_UTIL_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tsfm {

/// \brief A fixed pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task for execution.
  ///
  /// Returns true if the task was accepted. Once Shutdown() has begun the
  /// task is rejected (returns false) and will never run — accepting it
  /// could strand a task no worker will pick up, wedging Wait() forever.
  bool Submit(std::function<void()> task) LAKS_EXCLUDES(mu_);

  /// Blocks until every accepted task has finished.
  void Wait() LAKS_EXCLUDES(mu_);

  /// \brief Drains every queued task, then joins the workers.
  ///
  /// Idempotent and safe to call concurrently with Submit and with other
  /// Shutdown calls: tasks accepted before shutdown all run to completion,
  /// tasks submitted after are rejected, and a racing second Shutdown
  /// blocks until the first finishes. The destructor calls Shutdown().
  void Shutdown() LAKS_EXCLUDES(shutdown_mu_, mu_);

  size_t num_threads() const { return num_threads_; }

 private:
  void WorkerLoop() LAKS_EXCLUDES(mu_);

  size_t num_threads_ = 0;  // set once in the constructor, then read-only

  // Lock order: shutdown_mu_ before mu_ (Shutdown holds both).
  Mutex shutdown_mu_;  // serializes Shutdown
  Mutex mu_ LAKS_ACQUIRED_AFTER(shutdown_mu_);

  // Written by the constructor (unanalyzed) and by Shutdown under
  // shutdown_mu_; the join loop never races a concurrent teardown.
  std::vector<std::thread> workers_ LAKS_GUARDED_BY(shutdown_mu_);

  std::queue<std::function<void()>> tasks_ LAKS_GUARDED_BY(mu_);
  size_t in_flight_ LAKS_GUARDED_BY(mu_) = 0;
  bool stop_ LAKS_GUARDED_BY(mu_) = false;
  CondVar task_cv_;
  CondVar done_cv_;
};

/// \brief Runs body(i) for i in [begin, end) across `pool`, blocking until
/// done. Work is chunked to limit queue overhead; the calling thread
/// participates, claiming chunks from the same shared cursor as the
/// pool's helper tasks.
///
/// Nesting contract: safe to call from a task already running ON `pool`
/// (the QueryBatcher dispatches batch groups onto the query pool, and the
/// backend's batch call fans out over the same pool). Because the caller
/// drains chunks itself and only ever waits on chunks a *running* thread
/// has claimed, a saturated or wedged queue degrades to running the loop
/// inline on the caller — it cannot deadlock waiting on a task that is
/// queued behind it. The wait is per-call, not pool-global, so concurrent
/// ParallelFor callers never block on each other's unrelated tasks.
///
/// Shutdown contract: ParallelFor NEVER silently drops work. If the pool
/// has been shut down — or shuts down mid-loop, rejecting helper tasks —
/// the calling thread drains every remaining chunk inline, serially. Each
/// index still executes exactly once. Callers rely on this: the server's
/// drain path (QueryBatcher::RunGroup, ShardedLakeIndex batch queries on
/// the query pool) may issue a ParallelFor that races Stop()'s pool
/// teardown, and a dropped range there would mean a client request
/// silently answered with partial results. The fallback trades parallelism
/// for completeness — correct, just slower — and is pinned by
/// ThreadPoolTest.ParallelForOnShutDownPoolRunsRejectedWorkInlineExactlyOnce.
///
/// `body` must therefore be safe to run on the calling thread (it already
/// must be: the pool's workers are arbitrary threads), and must not assume
/// it is ever actually parallel.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

}  // namespace tsfm

#endif  // TSFM_UTIL_THREAD_POOL_H_
