// Fixed-size thread pool with a ParallelFor convenience wrapper.
//
// Used to parallelize embarrassingly-parallel evaluation loops (sketching a
// corpus, embedding queries). Training loops stay single-threaded for
// determinism.
#ifndef TSFM_UTIL_THREAD_POOL_H_
#define TSFM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tsfm {

/// \brief A fixed pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [begin, end) across `pool`, blocking until done.
/// Work is chunked to limit queue overhead.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

}  // namespace tsfm

#endif  // TSFM_UTIL_THREAD_POOL_H_
