// Minimal leveled logging and check macros.
//
// TSFM_CHECK aborts with a message on contract violations — used for
// programmer errors (shape mismatches, index bounds), never for data errors,
// which go through Status.
#ifndef TSFM_UTIL_LOGGING_H_
#define TSFM_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tsfm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tsfm

#define TSFM_LOG(level) \
  ::tsfm::internal::LogMessage(::tsfm::LogLevel::k##level, __FILE__, __LINE__)

#define TSFM_CHECK(expr)                                              \
  if (!(expr)) ::tsfm::internal::FatalMessage(__FILE__, __LINE__, #expr)

#define TSFM_CHECK_EQ(a, b) TSFM_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define TSFM_CHECK_LT(a, b) TSFM_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define TSFM_CHECK_LE(a, b) TSFM_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define TSFM_CHECK_GT(a, b) TSFM_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define TSFM_CHECK_GE(a, b) TSFM_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // TSFM_UTIL_LOGGING_H_
