// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::shared_mutex / std::condition_variable that carry the Clang
// thread-safety capability attributes from util/thread_annotations.h.
//
// Every mutex member in src/util, src/server and src/search is one of
// these types, never a raw std::mutex — that is what lets
// `clang++ -Werror=thread-safety` prove the locking contracts instead of
// trusting the comments. The wrappers are zero-overhead: each is exactly
// its std counterpart plus attributes that compile away.
//
// CondVar pairs with Mutex only (the repo's condition waits are all on
// plain mutexes). There is no predicate-taking Wait on purpose: the
// analysis cannot see into a predicate lambda, so waits are written as
//   MutexLock lock(&mu_);
//   while (!cond) cv_.Wait(mu_);
// which keeps every guarded read visible to the checker.
#ifndef TSFM_UTIL_MUTEX_H_
#define TSFM_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace tsfm {

class CondVar;

/// \brief An exclusive mutex carrying the "mutex" capability.
class LAKS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LAKS_ACQUIRE() { mu_.lock(); }
  void Unlock() LAKS_RELEASE() { mu_.unlock(); }
  bool TryLock() LAKS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief A reader/writer mutex: exclusive for mutations, shared for the
/// epoch-pinning query snapshots.
class LAKS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() LAKS_ACQUIRE() { mu_.lock(); }
  void Unlock() LAKS_RELEASE() { mu_.unlock(); }
  void LockShared() LAKS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() LAKS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive lock on a Mutex.
class LAKS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LAKS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() LAKS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief RAII exclusive (writer) lock on a SharedMutex.
class LAKS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) LAKS_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() LAKS_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief RAII shared (reader) lock on a SharedMutex. Queries hold one of
/// these for their whole scatter -> merge -> rank pass to pin one epoch.
class LAKS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) LAKS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  // Scoped-capability destructors use the generic release form: the
  // analysis tracks the *guard* object, which it knows holds mu_ shared.
  ~ReaderMutexLock() LAKS_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Condition variable waiting on a Mutex.
///
/// Wait atomically releases `mu`, sleeps, and reacquires before returning
/// — so from the checker's point of view the capability is held across
/// the call, which is exactly the REQUIRES annotation.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) LAKS_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait, then
    // release the unique_lock without unlocking: ownership stays with the
    // caller's MutexLock. Zero overhead vs. condition_variable_any.
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Returns false on timeout (the lock is reacquired either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      LAKS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const bool signaled = cv_.wait_for(lk, timeout) == std::cv_status::no_timeout;
    lk.release();
    return signaled;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tsfm

#endif  // TSFM_UTIL_MUTEX_H_
