#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace tsfm {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string PadLeft(std::string_view s, size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string PadRight(std::string_view s, size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

}  // namespace tsfm
