// Wall-clock timing helper for benchmark harnesses.
#ifndef TSFM_UTIL_TIMER_H_
#define TSFM_UTIL_TIMER_H_

#include <chrono>

namespace tsfm {

/// \brief Measures elapsed wall-clock time since construction or Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds as a double.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds as a double.
  double Millis() const { return Seconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tsfm

#endif  // TSFM_UTIL_TIMER_H_
