#include "util/thread_pool.h"

#include <algorithm>

namespace tsfm {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, pool->num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    size_t lo = begin + c * chunk_size;
    size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    pool->Submit([lo, hi, &body] {
      for (size_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool->Wait();
}

}  // namespace tsfm
