#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace tsfm {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads_ = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    // After stop_ the workers may already have exited; a task enqueued now
    // would never run but still count in in_flight_, wedging Wait().
    if (stop_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) done_cv_.Wait(mu_);
}

void ThreadPool::Shutdown() {
  // Serialized so concurrent Shutdown calls (an explicit one racing the
  // destructor's, say) cannot double-join the workers; a late caller
  // blocks until the first teardown completes, then finds nothing to do.
  MutexLock shutdown_lock(&shutdown_mu_);
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && tasks_.empty()) task_cv_.Wait(mu_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, pool->num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;

  // Chunks are claimed from a shared atomic cursor by the calling thread
  // AND by helper tasks on the pool ("caller participates"). This is what
  // makes ParallelFor safe to call from a pool worker of the same pool: a
  // chunk is only ever owned by a thread that is actively running, so the
  // caller's wait below can only be on chunks that are finishing — never
  // on a task stuck behind it in the queue. (The old implementation
  // blocked on the pool's global in-flight count, which deadlocked under
  // nesting — the caller's own task never leaves flight — and stalled on
  // unrelated concurrent submitters.) The state lives on the heap so a
  // helper that wakes up after all chunks are done — when the caller may
  // already have returned — touches only the cursor, never `body`.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    Mutex mu;
    CondVar cv;
  };
  auto state = std::make_shared<State>();
  auto drain = [state, begin, end, chunk_size, chunks, &body] {
    for (;;) {
      const size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const size_t lo = begin + c * chunk_size;
      const size_t hi = std::min(end, lo + chunk_size);
      for (size_t i = lo; i < hi; ++i) body(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        // Taking mu around the notify pairs with the caller's locked wait
        // loop below, so the final wake cannot slip between its predicate
        // check and its sleep.
        State& s = *state;
        MutexLock lock(&s.mu);
        s.cv.NotifyAll();
      }
    }
  };

  // One looping helper per worker is enough (each drains chunks until the
  // cursor runs dry). A rejected Submit means the pool is shutting down —
  // the caller's own drain below still covers every chunk exactly once,
  // which is the never-drop-work contract.
  const size_t helpers = std::min(chunks - 1, pool->num_threads());
  for (size_t h = 0; h < helpers; ++h) {
    if (!pool->Submit(drain)) break;
  }
  drain();
  State& s = *state;
  MutexLock lock(&s.mu);
  while (s.done.load(std::memory_order_acquire) != chunks) {
    s.cv.Wait(s.mu);
  }
}

}  // namespace tsfm
