#include "util/thread_pool.h"

#include <algorithm>

namespace tsfm {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads_ = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // After stop_ the workers may already have exited; a task enqueued now
    // would never run but still count in in_flight_, wedging Wait().
    if (stop_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::Shutdown() {
  // Serialized so concurrent Shutdown calls (an explicit one racing the
  // destructor's, say) cannot double-join the workers; a late caller
  // blocks until the first teardown completes, then finds nothing to do.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, pool->num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  size_t accepted_hi = begin;
  for (size_t c = 0; c < chunks; ++c) {
    size_t lo = begin + c * chunk_size;
    size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    if (!pool->Submit([lo, hi, &body] {
          for (size_t i = lo; i < hi; ++i) body(i);
        })) {
      break;  // pool shut down mid-loop; run the tail inline below
    }
    accepted_hi = hi;
  }
  pool->Wait();
  // A shutdown pool rejects tasks rather than stranding them; honour the
  // ParallelFor contract by covering the rejected range on this thread.
  for (size_t i = accepted_hi; i < end; ++i) body(i);
}

}  // namespace tsfm
