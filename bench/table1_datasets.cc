// Regenerates paper Table I: cardinality and type statistics of every
// LakeBench-style fine-tuning benchmark plus the two generated search
// benchmarks (Eurostat subset, Wiki join).
#include <cstdio>
#include <map>

#include "bench_common.h"

namespace tsfm::bench {
namespace {

struct TypeDist {
  double pct[4] = {0, 0, 0, 0};  // string, int, float, date
};

TypeDist TypeDistribution(const std::vector<Table>& tables) {
  TypeDist dist;
  size_t total = 0;
  for (const auto& t : tables) {
    for (const auto& c : t.columns()) {
      ++dist.pct[static_cast<int>(c.type) - 1];
      ++total;
    }
  }
  if (total > 0) {
    for (double& p : dist.pct) p = 100.0 * p / static_cast<double>(total);
  }
  return dist;
}

void PrintDatasetRow(const std::string& name, const std::string& task,
                     const std::vector<Table>& tables, size_t train, size_t test,
                     size_t val) {
  double rows = 0, cols = 0;
  for (const auto& t : tables) {
    rows += static_cast<double>(t.num_rows());
    cols += static_cast<double>(t.num_columns());
  }
  rows /= static_cast<double>(tables.size());
  cols /= static_cast<double>(tables.size());
  TypeDist dist = TypeDistribution(tables);
  std::printf(
      "%-18s %-24s %7zu %9.1f %8.1f %8zu %7zu %7zu   %5.1f %5.1f %5.1f %5.1f\n",
      name.c_str(), task.c_str(), tables.size(), rows, cols, train, test, val,
      dist.pct[0], dist.pct[1], dist.pct[2], dist.pct[3]);
}

void Run() {
  PrintHeader("Table I: dataset cardinalities (repo scale; paper uses full lakes)");
  std::printf(
      "%-18s %-24s %7s %9s %8s %8s %7s %7s   %5s %5s %5s %5s\n", "Benchmark", "Task",
      "#Tables", "AvgRows", "AvgCols", "Train", "Test", "Valid", "Str%", "Int%",
      "Flt%", "Date%");

  lakebench::DomainCatalog catalog(42, 200);
  lakebench::BenchScale scale;
  scale.num_pairs = 160;
  scale.rows = 48;

  auto all = lakebench::MakeAllFinetuneBenchmarks(catalog, scale, 42);
  const char* tasks[] = {"Binary Classification", "Binary Classification",
                         "Regression",            "Regression",
                         "Regression",            "Binary Classification",
                         "Multi-label Class.",    "Binary Classification"};
  for (size_t i = 0; i < all.size(); ++i) {
    PrintDatasetRow(all[i].name, tasks[i], all[i].tables, all[i].train.size(),
                    all[i].test.size(), all[i].val.size());
  }

  lakebench::EurostatScale escale;
  escale.num_seeds = 40;
  auto eurostat = lakebench::MakeEurostatSubsetSearch(catalog, escale, 43);
  PrintDatasetRow("Eurostat Subset", "Search", eurostat.tables, 0, 0, 0);

  lakebench::WikiJoinScale wscale;
  auto wikijoin = lakebench::MakeWikiJoinSearch(wscale, 44);
  PrintDatasetRow("Wikijoin", "Search", wikijoin.tables, 0, 0, 0);

  std::printf(
      "\nPaper reference (Table I): TUS-SANTOS 1127 tables / 77.9%% string; "
      "CKAN Subset 36545 tables / 46.1%% float;\n"
      "Eurostat Subset 38904 tables / 64.6%% string; Wikijoin 46521 tables. "
      "The repo regenerates the same task mix, split scheme\n"
      "and type skew at laptop scale (see DESIGN.md substitutions).\n");
}

}  // namespace
}  // namespace tsfm::bench

int main() {
  tsfm::bench::Run();
  return 0;
}
