// Regenerates paper Table IV: TabSketchFM with one sketch type removed.
#include <cstdio>

#include "bench_common.h"

namespace tsfm::bench {
namespace {

struct PaperRow {
  double no_minhash, no_numerical, no_snapshot, full;
};
// Paper Table IV (7 tasks).
const PaperRow kPaper[7] = {
    {0.933, 0.927, 0.931, 0.940},  // Wiki Union (F1)
    {0.770, 0.872, 0.897, 0.897},  // ECB Union (R2)
    {0.425, 0.565, 0.519, 0.577},  // Wiki Jaccard (R2)
    {0.358, 0.598, 0.559, 0.586},  // Wiki Containment (R2)
    {0.814, 0.851, 0.847, 0.831},  // Spider-OpenData (F1)
    {0.812, 0.855, 0.846, 0.855},  // ECB Join (F1)
    {0.431, 0.431, 0.980, 0.986},  // CKAN Subset (F1)
};

core::SketchAblation Without(bool minhash, bool numerical, bool snapshot) {
  core::SketchAblation a;
  a.use_minhash = !minhash;
  a.use_numerical = !numerical;
  a.use_snapshot = !snapshot;
  return a;
}

void Run() {
  BenchConfig bconfig;
  auto datasets = lakebench::MakeAllFinetuneBenchmarks(
      lakebench::DomainCatalog(bconfig.seed, 200), bconfig.scale, bconfig.seed);
  std::vector<Table> all_tables;
  for (auto& ds : datasets) {
    ds.BuildSketches({.num_perm = bconfig.num_perm});
    all_tables.insert(all_tables.end(), ds.tables.begin(), ds.tables.end());
  }
  auto ctx = MakeContext(bconfig, all_tables);

  PrintHeader("Table IV: removing one sketch type (measured | paper)");
  PrintRow("Task", {"-MinHash", "-Numerical", "-Snapshot", "Everything"});

  const core::SketchAblation variants[4] = {
      Without(true, false, false),   // remove MinHash sketches
      Without(false, true, false),   // remove numerical sketches
      Without(false, false, true),   // remove content snapshot
      Without(false, false, false),  // full model
  };

  for (size_t d = 1; d < datasets.size(); ++d) {
    const auto& ds = datasets[d];
    double measured[4];
    for (int v = 0; v < 4; ++v) {
      auto encoder =
          FinetuneTabSketchFM(ctx.get(), ds, bconfig.seed + 13, variants[v]);
      measured[v] = EvalTabSketchFM(ctx.get(), encoder.get(), ds, variants[v]);
      std::fprintf(stderr, "[bench] %s variant %d done\n", ds.name.c_str(), v);
    }
    const PaperRow& paper = kPaper[d - 1];
    const double paper_vals[4] = {paper.no_minhash, paper.no_numerical,
                                  paper.no_snapshot, paper.full};
    std::vector<std::string> cells;
    for (int v = 0; v < 4; ++v) {
      cells.push_back(Measured(measured[v]) + "|" + Measured(paper_vals[v]));
    }
    PrintRow(ds.name, cells);
  }
  std::printf(
      "\nShape check vs paper: removing MinHash hurts join tasks and CKAN\n"
      "Subset most; removing the snapshot or numerical sketches is mild on\n"
      "most tasks.\n");
}

}  // namespace
}  // namespace tsfm::bench

int main() {
  tsfm::bench::Run();
  return 0;
}
