// Shared machinery for the paper-reproduction bench binaries.
//
// Every bench regenerates its data from seeds, trains the models it needs,
// and prints a paper-vs-measured table. The helpers here hold the pieces
// all benches share: the pretrained TabSketchFM context, per-task model
// training/eval, and fixed-width table printing.
#ifndef TSFM_BENCH_BENCH_COMMON_H_
#define TSFM_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/sbert_like.h"
#include "baselines/value_dual_encoder.h"
#include "core/cross_encoder.h"
#include "core/embedder.h"
#include "core/finetuner.h"
#include "core/pretrainer.h"
#include "lakebench/corpus.h"
#include "lakebench/finetune_benchmarks.h"
#include "lakebench/search_benchmarks.h"
#include "search/metrics.h"
#include "search/pipeline.h"

namespace tsfm::bench {

/// Bench-wide knobs (small enough for CPU minutes, big enough for signal).
struct BenchConfig {
  uint64_t seed = 42;
  size_t hidden = 32;
  size_t layers = 2;
  size_t heads = 2;
  size_t ffn = 64;
  size_t max_seq_len = 128;
  size_t num_perm = 16;
  size_t pretrain_tables = 24;
  size_t pretrain_epochs = 3;
  size_t finetune_epochs = 24;
  size_t finetune_patience = 8;
  size_t max_train_pairs = 110;
  lakebench::BenchScale scale;  ///< finetune benchmark scale
};

/// \brief Everything a bench needs to build and train TabSketchFM models.
struct BenchContext {
  BenchConfig bench_config;
  lakebench::DomainCatalog catalog;
  text::Vocab vocab;
  core::TabSketchFMConfig config;
  std::unique_ptr<text::Tokenizer> tokenizer;
  std::unique_ptr<core::InputEncoder> input_encoder;
  std::unique_ptr<core::TabSketchFM> pretrained;
  SketchOptions sketch_options;

  BenchContext() : catalog(42, 200) {}
};

/// Builds the context: synthesizes the pretraining corpus, builds the
/// vocabulary over corpus + `extra_tables` (cell words included so value
/// baselines can read), constructs the model, and runs MLM pretraining.
std::unique_ptr<BenchContext> MakeContext(const BenchConfig& config,
                                          const std::vector<Table>& extra_tables);

/// Fine-tunes a TabSketchFM cross-encoder (initialized from the pretrained
/// weights) on `dataset` and returns it.
std::unique_ptr<core::CrossEncoder> FinetuneTabSketchFM(
    BenchContext* ctx, const core::PairDataset& dataset, uint64_t seed,
    const core::SketchAblation& ablation = {});

/// Test-split metric of a trained TabSketchFM cross-encoder:
/// weighted F1 (binary), R2 (regression) or micro F1 (multi-label).
double EvalTabSketchFM(BenchContext* ctx, core::CrossEncoder* encoder,
                       const core::PairDataset& dataset,
                       const core::SketchAblation& ablation = {});

/// Computes the task metric from raw predictions.
double MetricFromPredictions(const core::PairDataset& dataset,
                             const std::vector<core::PairExample>& examples,
                             const std::vector<std::vector<float>>& predictions);

/// Prints a fixed-width table row; the first cell is left-aligned, the rest
/// right-aligned at width 12.
void PrintRow(const std::string& name, const std::vector<std::string>& cells,
              size_t name_width = 24);

/// Formats "measured (paper X)" cells.
std::string Measured(double value, int precision = 2);

/// A titled section separator on stdout.
void PrintHeader(const std::string& title);

}  // namespace tsfm::bench

#endif  // TSFM_BENCH_BENCH_COMMON_H_
