// Regenerates paper Fig 8 (a-d): transfer across tasks and domains.
// Cross-encoders fine-tuned on one task (join / union / subset, each on a
// different synthetic "domain") are applied to all four search benchmarks;
// the paper's finding is that F1 curves stay close regardless of the
// fine-tuning source.
#include <cstdio>

#include "search_common.h"

namespace tsfm::bench {
namespace {

void Run() {
  BenchConfig bconfig;
  bconfig.scale.num_pairs = 120;
  lakebench::DomainCatalog catalog(bconfig.seed, 200);

  // Search benchmarks (the four Fig 8 panels).
  lakebench::WikiJoinScale wscale;
  wscale.num_tables = 140;
  wscale.num_queries = 20;
  auto join_bench = lakebench::MakeWikiJoinSearch(wscale, bconfig.seed + 84);
  lakebench::UnionSearchScale sscale;
  sscale.num_seeds = 8;
  sscale.variants_per_seed = 10;
  sscale.num_queries = 20;
  auto santos_bench =
      lakebench::MakeUnionSearch(catalog, sscale, bconfig.seed + 85, "SANTOS");
  lakebench::UnionSearchScale tscale;
  tscale.num_seeds = 4;
  tscale.variants_per_seed = 40;
  tscale.num_queries = 12;
  auto tus_bench =
      lakebench::MakeUnionSearch(catalog, tscale, bconfig.seed + 86, "TUS");
  lakebench::EurostatScale escale;
  escale.num_seeds = 16;
  auto subset_bench =
      lakebench::MakeEurostatSubsetSearch(catalog, escale, bconfig.seed + 87);

  SketchOptions sopt{.num_perm = bconfig.num_perm};
  join_bench.BuildSketches(sopt);
  santos_bench.BuildSketches(sopt);
  tus_bench.BuildSketches(sopt);
  subset_bench.BuildSketches(sopt);

  // Fine-tuning sources spanning tasks AND domains.
  auto containment =
      lakebench::MakeWikiContainment(catalog, bconfig.scale, bconfig.seed + 4);
  auto tus_task = lakebench::MakeTusSantos(catalog, bconfig.scale, bconfig.seed + 1);
  auto ecb_union = lakebench::MakeEcbUnion(catalog, bconfig.scale, bconfig.seed + 3);
  auto ckan = lakebench::MakeCkanSubset(catalog, bconfig.scale, bconfig.seed + 8);
  for (auto* d : {&containment, &tus_task, &ecb_union, &ckan}) {
    d->BuildSketches(sopt);
  }

  std::vector<Table> extra;
  for (const auto* b : {&join_bench, &santos_bench, &tus_bench, &subset_bench}) {
    extra.insert(extra.end(), b->tables.begin(), b->tables.end());
  }
  for (const auto* d : {&containment, &tus_task, &ecb_union, &ckan}) {
    extra.insert(extra.end(), d->tables.begin(), d->tables.end());
  }
  auto ctx = MakeContext(bconfig, extra);
  baselines::SbertLikeEncoder sbert(64);

  // Fine-tune one model per source task.
  struct Source {
    const char* name;
    const core::PairDataset* task;
  };
  const Source sources[4] = {
      {"FT:wiki-containment", &containment},
      {"FT:tus-santos", &tus_task},
      {"FT:ecb-union", &ecb_union},
      {"FT:ckan-subset", &ckan},
  };
  std::vector<std::unique_ptr<core::CrossEncoder>> models;
  for (const auto& src : sources) {
    models.push_back(
        FinetuneTabSketchFM(ctx.get(), *src.task, bconfig.seed + 95));
    std::fprintf(stderr, "[bench] fine-tuned %s\n", src.name);
  }

  struct Panel {
    const char* title;
    const lakebench::SearchBenchmark* bench;
    size_t k_max;
  };
  const Panel panels[4] = {
      {"Fig 8a: transfer to Wiki join search", &join_bench, 10},
      {"Fig 8b: transfer to SANTOS union search", &santos_bench, 10},
      {"Fig 8c: transfer to TUS union search", &tus_bench, 40},
      {"Fig 8d: transfer to Eurostat subset search", &subset_bench, 11},
  };

  for (const auto& panel : panels) {
    PrintHeader(panel.title);
    std::printf("%-22s %8s %8s %8s\n", "fine-tuned on", "MeanF1", "P@k", "R@k");
    double best = 0, worst = 1;
    for (size_t s = 0; s < 4; ++s) {
      // All transfer models use the SBERT value concatenation, as in the
      // paper's Fig 8 ("models that include the value embeddings").
      auto report =
          EvalTabSketchFMSearch(ctx.get(), models[s]->model(), *panel.bench,
                                panel.k_max, /*concat_sbert=*/true, &sbert);
      std::printf("%-22s %8.2f %8.2f %8.2f\n", sources[s].name,
                  100.0 * report.mean_f1, report.PrecisionAt(panel.k_max),
                  report.RecallAt(panel.k_max));
      best = std::max(best, report.mean_f1);
      worst = std::min(worst, report.mean_f1);
    }
    std::printf("spread (best - worst MeanF1): %.2f\n", 100.0 * (best - worst));
  }
  std::printf(
      "\nShape check vs paper Fig 8: the four curves per panel stay close —\n"
      "models fine-tuned on one task/domain transfer to the others.\n");
}

}  // namespace
}  // namespace tsfm::bench

int main() {
  tsfm::bench::Run();
  return 0;
}
