// google-benchmark micro-benchmarks for the performance-critical substrates:
// sketching throughput, tokenizer, attention forward/backward, kNN search.
// These are the ablation benches for DESIGN.md's design choices (MinHash K,
// tensor-granularity autograd, brute-force kNN).
#include <benchmark/benchmark.h>

#include "lakebench/corpus.h"
#include "lakebench/datagen.h"
#include "nn/attention.h"
#include "nn/ops.h"
#include "search/hnsw.h"
#include "search/knn_index.h"
#include "sketch/minhash.h"
#include "sketch/table_sketch.h"
#include "text/tokenizer.h"

namespace tsfm {
namespace {

void BM_MinHashUpdate(benchmark::State& state) {
  const size_t num_perm = static_cast<size_t>(state.range(0));
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back("value_" + std::to_string(i));
  for (auto _ : state) {
    MinHash mh(num_perm);
    mh.UpdateAll(values);
    benchmark::DoNotOptimize(mh.signature().data());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MinHashUpdate)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MinHashJaccard(benchmark::State& state) {
  std::vector<std::string> a, b;
  for (int i = 0; i < 500; ++i) a.push_back("a" + std::to_string(i));
  for (int i = 250; i < 750; ++i) b.push_back("a" + std::to_string(i));
  MinHash ma = MinHashOfSet(a, 128), mb = MinHashOfSet(b, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ma.EstimateJaccard(mb));
  }
}
BENCHMARK(BM_MinHashJaccard);

void BM_TableSketch(benchmark::State& state) {
  lakebench::DomainCatalog catalog(1, 100);
  Rng rng(2);
  Table table =
      lakebench::GenerateDomainTable(catalog.domain(0), "t", state.range(0), &rng);
  for (auto _ : state) {
    TableSketch sketch = BuildTableSketch(table);
    benchmark::DoNotOptimize(sketch.columns.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableSketch)->Arg(64)->Arg(256)->Arg(1024);

void BM_Tokenizer(benchmark::State& state) {
  text::Vocab vocab = text::Vocab::Build(
      {"residential", "properties", "reference", "area", "population", "street"});
  text::Tokenizer tokenizer(&vocab);
  const std::string input =
      "residential properties reference area population street unknownword";
  for (auto _ : state) {
    auto ids = tokenizer.Encode(input);
    benchmark::DoNotOptimize(ids.data());
  }
}
BENCHMARK(BM_Tokenizer);

void BM_AttentionForward(benchmark::State& state) {
  const size_t seq = static_cast<size_t>(state.range(0));
  const size_t hidden = 64;
  Rng rng(3);
  nn::MultiHeadAttention attn(hidden, 4, 0.0f, &rng);
  nn::Tensor x(seq, hidden);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.UniformDouble(-1, 1));
  }
  for (auto _ : state) {
    nn::Var input = nn::MakeLeaf(x, false);
    nn::Var out = attn.Forward(input, false, &rng);
    benchmark::DoNotOptimize(out->value().data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(32)->Arg(64)->Arg(128);

void BM_AttentionBackward(benchmark::State& state) {
  const size_t seq = static_cast<size_t>(state.range(0));
  const size_t hidden = 64;
  Rng rng(4);
  nn::MultiHeadAttention attn(hidden, 4, 0.0f, &rng);
  nn::Tensor x(seq, hidden);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.UniformDouble(-1, 1));
  }
  for (auto _ : state) {
    attn.ZeroGrad();
    nn::Var input = nn::MakeLeaf(x, true);
    nn::Var loss = nn::MeanAll(attn.Forward(input, false, &rng));
    nn::Backward(loss);
    benchmark::DoNotOptimize(input->grad().data());
  }
}
BENCHMARK(BM_AttentionBackward)->Arg(32)->Arg(64);

void BM_KnnSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  Rng rng(5);
  search::KnnIndex index(dim);
  std::vector<float> query(dim);
  for (auto& v : query) v = static_cast<float>(rng.Normal());
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> vec(dim);
    for (auto& v : vec) v = static_cast<float>(rng.Normal());
    index.Add(i, vec);
  }
  for (auto _ : state) {
    auto hits = index.Search(query, 10);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KnnSearch)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_HnswSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  Rng rng(7);
  search::HnswIndex index(dim);
  std::vector<float> query(dim);
  for (auto& v : query) v = static_cast<float>(rng.Normal());
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> vec(dim);
    for (auto& v : vec) v = static_cast<float>(rng.Normal());
    index.Add(i, vec);
  }
  for (auto _ : state) {
    auto hits = index.Search(query, 10);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HnswSearch)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  nn::Tensor a(n, n), b(n, n);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.UniformDouble(-1, 1));
    b[i] = static_cast<float>(rng.UniformDouble(-1, 1));
  }
  for (auto _ : state) {
    nn::Var va = nn::MakeLeaf(a, false);
    nn::Var vb = nn::MakeLeaf(b, false);
    nn::Var c = nn::MatMul(va, vb);
    benchmark::DoNotOptimize(c->value().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace tsfm

BENCHMARK_MAIN();
