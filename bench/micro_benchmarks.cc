// google-benchmark micro-benchmarks for the performance-critical substrates:
// sketching throughput, tokenizer, attention forward/backward, ANN search
// (flat vs HNSW build/query/recall, serial vs pooled batch). These are the
// ablation benches for DESIGN.md's design choices (MinHash K,
// tensor-granularity autograd, pluggable VectorIndex backends).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "lakebench/corpus.h"
#include "lakebench/datagen.h"
#include "nn/attention.h"
#include "nn/ops.h"
#include "search/distance_kernels.h"
#include "search/hnsw.h"
#include "search/knn_index.h"
#include "search/quantizer.h"
#include "search/sharded_lake_index.h"
#include "search/vector_index.h"
#include "server/distributed_lake_index.h"
#include "server/lake_client.h"
#include "server/lake_server.h"
#include "server/shard_worker.h"
#include "sketch/minhash.h"
#include "sketch/table_sketch.h"
#include "text/tokenizer.h"
#include "util/thread_pool.h"

namespace tsfm {
namespace {

constexpr size_t kAnnDim = 64;

// Deterministic random corpus + query set shared by the ANN benchmarks,
// cached so index build cost is paid once per size, not per iteration.
struct AnnFixture {
  std::vector<std::vector<float>> corpus;
  std::vector<std::vector<float>> queries;
  std::unique_ptr<search::VectorIndex> flat;
  std::unique_ptr<search::VectorIndex> hnsw;
};

const AnnFixture& GetAnnFixture(size_t n) {
  static std::map<size_t, AnnFixture> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  AnnFixture& f = cache[n];
  Rng rng(11);
  auto random_vec = [&] {
    std::vector<float> v(kAnnDim);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    return v;
  };
  f.corpus.reserve(n);
  for (size_t i = 0; i < n; ++i) f.corpus.push_back(random_vec());
  for (size_t q = 0; q < 64; ++q) f.queries.push_back(random_vec());
  search::IndexOptions flat_opt;
  f.flat = search::MakeVectorIndex(kAnnDim, flat_opt);
  search::IndexOptions hnsw_opt;
  hnsw_opt.backend = search::IndexBackend::kHnsw;
  f.hnsw = search::MakeVectorIndex(kAnnDim, hnsw_opt);
  for (size_t i = 0; i < n; ++i) {
    f.flat->Add(i, f.corpus[i]);
    f.hnsw->Add(i, f.corpus[i]);
  }
  return f;
}

// Mean recall@k of `index` against the exact flat scan over the fixture's
// query set.
double AnnRecallAtK(const AnnFixture& f, const search::VectorIndex& index,
                    size_t k) {
  double recall_sum = 0;
  for (const auto& query : f.queries) {
    std::unordered_set<size_t> gold;
    for (const auto& [p, d] : f.flat->Search(query, k)) gold.insert(p);
    size_t hits = 0;
    for (const auto& [p, d] : index.Search(query, k)) hits += gold.count(p);
    recall_sum += static_cast<double>(hits) / static_cast<double>(gold.size());
  }
  return recall_sum / static_cast<double>(f.queries.size());
}

void BM_MinHashUpdate(benchmark::State& state) {
  const size_t num_perm = static_cast<size_t>(state.range(0));
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back("value_" + std::to_string(i));
  for (auto _ : state) {
    MinHash mh(num_perm);
    mh.UpdateAll(values);
    benchmark::DoNotOptimize(mh.signature().data());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MinHashUpdate)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MinHashJaccard(benchmark::State& state) {
  std::vector<std::string> a, b;
  for (int i = 0; i < 500; ++i) a.push_back("a" + std::to_string(i));
  for (int i = 250; i < 750; ++i) b.push_back("a" + std::to_string(i));
  MinHash ma = MinHashOfSet(a, 128), mb = MinHashOfSet(b, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ma.EstimateJaccard(mb));
  }
}
BENCHMARK(BM_MinHashJaccard);

void BM_TableSketch(benchmark::State& state) {
  lakebench::DomainCatalog catalog(1, 100);
  Rng rng(2);
  Table table =
      lakebench::GenerateDomainTable(catalog.domain(0), "t", state.range(0), &rng);
  for (auto _ : state) {
    TableSketch sketch = BuildTableSketch(table);
    benchmark::DoNotOptimize(sketch.columns.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableSketch)->Arg(64)->Arg(256)->Arg(1024);

void BM_Tokenizer(benchmark::State& state) {
  text::Vocab vocab = text::Vocab::Build(
      {"residential", "properties", "reference", "area", "population", "street"});
  text::Tokenizer tokenizer(&vocab);
  const std::string input =
      "residential properties reference area population street unknownword";
  for (auto _ : state) {
    auto ids = tokenizer.Encode(input);
    benchmark::DoNotOptimize(ids.data());
  }
}
BENCHMARK(BM_Tokenizer);

void BM_AttentionForward(benchmark::State& state) {
  const size_t seq = static_cast<size_t>(state.range(0));
  const size_t hidden = 64;
  Rng rng(3);
  nn::MultiHeadAttention attn(hidden, 4, 0.0f, &rng);
  nn::Tensor x(seq, hidden);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.UniformDouble(-1, 1));
  }
  for (auto _ : state) {
    nn::Var input = nn::MakeLeaf(x, false);
    nn::Var out = attn.Forward(input, false, &rng);
    benchmark::DoNotOptimize(out->value().data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(32)->Arg(64)->Arg(128);

void BM_AttentionBackward(benchmark::State& state) {
  const size_t seq = static_cast<size_t>(state.range(0));
  const size_t hidden = 64;
  Rng rng(4);
  nn::MultiHeadAttention attn(hidden, 4, 0.0f, &rng);
  nn::Tensor x(seq, hidden);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.UniformDouble(-1, 1));
  }
  for (auto _ : state) {
    attn.ZeroGrad();
    nn::Var input = nn::MakeLeaf(x, true);
    nn::Var loss = nn::MeanAll(attn.Forward(input, false, &rng));
    nn::Backward(loss);
    benchmark::DoNotOptimize(input->grad().data());
  }
}
BENCHMARK(BM_AttentionBackward)->Arg(32)->Arg(64);

// ----------------------------------------------------- distance kernels
// Scalar vs SIMD kernel throughput at embedding-sized dims, plus the
// one-query-many-rows flat scan both paths feed. The last arg selects the
// kernel set (0 = scalar reference, 1 = BestKernels — AVX2+FMA / NEON
// where available, scalar otherwise; the label names the set measured);
// for BM_DistanceKernel{Dot,L2} the first arg is the dim.
// The acceptance bar is SIMD >= 2x scalar at dim 768 on AVX2 hosts; see
// bench/results/distance_kernels.json for a recorded run.

const search::KernelDispatch& BenchKernels(int64_t simd) {
  return simd != 0 ? search::BestKernels() : search::ScalarKernels();
}

// Two vectors long enough that dim-768 reads stream from cache, offset so
// the pair never aliases.
struct KernelFixture {
  std::vector<float> a, b;
  KernelFixture() {
    Rng rng(23);
    a.resize(4096);
    b.resize(4096);
    for (auto& x : a) x = static_cast<float>(rng.Normal());
    for (auto& x : b) x = static_cast<float>(rng.Normal());
  }
};

void BM_DistanceKernelDot(benchmark::State& state) {
  static const KernelFixture& f = *new KernelFixture();
  const size_t dim = static_cast<size_t>(state.range(0));
  const search::KernelDispatch& kd = BenchKernels(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kd.dot(f.a.data(), f.b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dim));
  state.SetLabel(kd.name);
}
BENCHMARK(BM_DistanceKernelDot)->ArgsProduct({{64, 384, 768}, {0, 1}});

void BM_DistanceKernelL2(benchmark::State& state) {
  static const KernelFixture& f = *new KernelFixture();
  const size_t dim = static_cast<size_t>(state.range(0));
  const search::KernelDispatch& kd = BenchKernels(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kd.l2sq(f.a.data(), f.b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dim));
  state.SetLabel(kd.name);
}
BENCHMARK(BM_DistanceKernelL2)->ArgsProduct({{64, 384, 768}, {0, 1}});

// Single-thread flat-scan QPS through ScanTopK / ScanTopKSq8 — the loop
// every flat KnnIndex::Search (and therefore every flat lake query)
// bottoms out in. Second arg picks the row storage (0 = float32 rows,
// 1 = sq8 codes + exact rescore); bytes_per_row makes the 4x footprint
// gap explicit in the report.
struct ScanFixture {
  std::vector<float> rows, norms, query;
  search::Sq8Codec codec;
  std::vector<uint8_t> codes;
  std::vector<float> code_norms;
  ScanFixture(size_t num_rows, size_t dim) {
    Rng rng(29);
    rows.resize(num_rows * dim);
    for (auto& x : rows) x = static_cast<float>(rng.Normal());
    for (size_t r = 0; r < num_rows; ++r) {
      norms.push_back(std::sqrt(search::ScalarKernels().dot(
          rows.data() + r * dim, rows.data() + r * dim, dim)));
    }
    for (size_t i = 0; i < dim; ++i) {
      query.push_back(static_cast<float>(rng.Normal()));
    }
    codec = search::Sq8Codec::Train(rows.data(), num_rows, dim);
    codes.resize(num_rows * dim);
    for (size_t r = 0; r < num_rows; ++r) {
      codec.EncodeRow(rows.data() + r * dim, codes.data() + r * dim);
      code_norms.push_back(codec.DecodedNorm(codes.data() + r * dim));
    }
  }
};

void ScanTopKBody(benchmark::State& state, const ScanFixture& f,
                  size_t num_rows, size_t dim) {
  const search::KernelDispatch& kd = BenchKernels(state.range(0));
  const bool sq8 = state.range(1) != 0;
  for (auto _ : state) {
    auto hits =
        sq8 ? search::ScanTopKSq8(kd, f.query.data(), f.codes.data(), f.codec,
                                  f.code_norms.data(), num_rows,
                                  search::Metric::kCosine, 10)
            : search::ScanTopK(kd, f.query.data(), f.rows.data(),
                               f.norms.data(), num_rows, dim,
                               search::Metric::kCosine, 10);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(num_rows));
  state.SetLabel(std::string(kd.name) + (sq8 ? "/sq8" : "/float32"));
  // sq8 rows store dim bytes of codes plus the cached decoded norm; float
  // rows store dim floats plus the cached norm.
  state.counters["bytes_per_row"] =
      static_cast<double>(sq8 ? dim + sizeof(float)
                              : dim * sizeof(float) + sizeof(float));
}

void BM_FlatScanTopK(benchmark::State& state) {
  constexpr size_t kRows = 512, kDim = 768;
  static const ScanFixture& f = *new ScanFixture(kRows, kDim);
  ScanTopKBody(state, f, kRows, kDim);
}
BENCHMARK(BM_FlatScanTopK)->ArgsProduct({{0, 1}, {0, 1}});

// The acceptance-bar configuration: a corpus big enough that float rows
// (192 MB at 65536 x 768) stream from memory while sq8 codes (48 MB) sit
// much closer to cache — the 4x bandwidth saving is the speedup source, so
// a small corpus would understate it. Excluded from the bench_smoke ctest
// (fixture build alone dwarfs the smoke budget).
void BM_FlatScanTopKLarge(benchmark::State& state) {
  constexpr size_t kRows = 65536, kDim = 768;
  static const ScanFixture& f = *new ScanFixture(kRows, kDim);
  ScanTopKBody(state, f, kRows, kDim);
}
BENCHMARK(BM_FlatScanTopKLarge)->ArgsProduct({{0, 1}, {0, 1}});

// Multi-query mini-GEMM scan: ONE pass over the rows answers the whole
// query block, so row loads amortize across queries instead of re-streaming
// per query. items_processed counts (query, row) pairs, so items/sec is
// directly comparable across num_queries: the gap between num_queries=1
// and 8 at the same kernel/storage is the batching win. Args:
// {kernel set, storage, num_queries}.
void BM_MultiScanTopK(benchmark::State& state) {
  constexpr size_t kRows = 4096, kDim = 768, kMaxQueries = 8;
  static const ScanFixture& f = *new ScanFixture(kRows, kDim);
  static const std::vector<float>& queries = *[] {
    Rng rng(31);
    auto* q = new std::vector<float>(kMaxQueries * kDim);
    for (auto& x : *q) x = static_cast<float>(rng.Normal());
    return q;
  }();
  const search::KernelDispatch& kd = BenchKernels(state.range(0));
  const bool sq8 = state.range(1) != 0;
  const size_t nq = static_cast<size_t>(state.range(2));
  for (auto _ : state) {
    auto hits =
        sq8 ? search::ScanTopKMultiSq8(kd, queries.data(), nq, f.codes.data(),
                                       f.codec, f.code_norms.data(), kRows,
                                       search::Metric::kCosine, 10)
            : search::ScanTopKMulti(kd, queries.data(), nq, f.rows.data(),
                                    f.norms.data(), kRows, kDim,
                                    search::Metric::kCosine, 10);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nq * kRows));
  state.SetLabel(std::string(kd.name) + (sq8 ? "/sq8" : "/float32"));
  state.counters["num_queries"] = static_cast<double>(nq);
}
BENCHMARK(BM_MultiScanTopK)->ArgsProduct({{0, 1}, {0, 1}, {1, 4, 8}});

// --------------------------------------------------------- ANN backends
// Flat-vs-HNSW comparison: build time, single-query QPS (with recall@10 of
// the approximate backend against the exact scan), and multi-query batch
// throughput serial vs fanned out over the ThreadPool.

void BM_AnnBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto backend = static_cast<search::IndexBackend>(state.range(1));
  const AnnFixture& f = GetAnnFixture(n);
  search::IndexOptions options;
  options.backend = backend;
  for (auto _ : state) {
    auto index = search::MakeVectorIndex(kAnnDim, options);
    for (size_t i = 0; i < n; ++i) index->Add(i, f.corpus[i]);
    benchmark::DoNotOptimize(index->size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AnnBuild)
    ->ArgsProduct({{1000, 10000},
                   {static_cast<long>(search::IndexBackend::kFlat),
                    static_cast<long>(search::IndexBackend::kHnsw)}});

void BM_KnnSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const AnnFixture& f = GetAnnFixture(n);
  size_t q = 0;
  for (auto _ : state) {
    auto hits = f.flat->Search(f.queries[q++ % f.queries.size()], 10);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KnnSearch)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_HnswSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const AnnFixture& f = GetAnnFixture(n);
  size_t q = 0;
  for (auto _ : state) {
    auto hits = f.hnsw->Search(f.queries[q++ % f.queries.size()], 10);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["recall@10"] = AnnRecallAtK(f, *f.hnsw, 10);
}
BENCHMARK(BM_HnswSearch)->Arg(1000)->Arg(10000)->Arg(50000);

// The seed answered benchmark queries one at a time on one thread; the batch
// path fans the same query set out over the ThreadPool. Compare these two
// at the same corpus size for the multi-query throughput win.
void BM_AnnBatchSearchSerial(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto backend = static_cast<search::IndexBackend>(state.range(1));
  const AnnFixture& f = GetAnnFixture(n);
  const search::VectorIndex& index =
      backend == search::IndexBackend::kHnsw ? *f.hnsw : *f.flat;
  for (auto _ : state) {
    auto results = index.SearchBatch(f.queries, 10, /*pool=*/nullptr);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * f.queries.size());
}
BENCHMARK(BM_AnnBatchSearchSerial)
    ->ArgsProduct({{1000, 10000},
                   {static_cast<long>(search::IndexBackend::kFlat),
                    static_cast<long>(search::IndexBackend::kHnsw)}});

void BM_AnnBatchSearchParallel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto backend = static_cast<search::IndexBackend>(state.range(1));
  const AnnFixture& f = GetAnnFixture(n);
  const search::VectorIndex& index =
      backend == search::IndexBackend::kHnsw ? *f.hnsw : *f.flat;
  ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  for (auto _ : state) {
    auto results = index.SearchBatch(f.queries, 10, &pool);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * f.queries.size());
  state.counters["threads"] = static_cast<double>(pool.num_threads());
}
BENCHMARK(BM_AnnBatchSearchParallel)
    ->ArgsProduct({{1000, 10000},
                   {static_cast<long>(search::IndexBackend::kFlat),
                    static_cast<long>(search::IndexBackend::kHnsw)}})
    ->UseRealTime();  // the work happens on pool threads, not the main one

// ------------------------------------------------------- Sharded lake index
// Sharded-vs-flat comparison on the full LakeIndex stack: build time and
// batch query throughput at 1 / 2 / 4 shards over the same corpus. Shard
// count 1 is the unsharded baseline; flat-backend results are identical at
// every shard count, so these isolate the scatter/gather overhead and the
// per-shard build-time win.

struct ShardedLakeFixture {
  std::vector<std::vector<std::vector<float>>> tables;  // per table: columns
  std::vector<std::vector<float>> join_queries;
  std::vector<std::vector<std::vector<float>>> union_queries;
};

constexpr size_t kLakeDim = 32;
constexpr size_t kLakeTables = 1000;

const ShardedLakeFixture& GetShardedLakeFixture() {
  static ShardedLakeFixture* fixture = [] {
    auto* f = new ShardedLakeFixture();
    Rng rng(13);
    auto random_vec = [&] {
      std::vector<float> v(kLakeDim);
      for (auto& x : v) x = static_cast<float>(rng.Normal());
      return v;
    };
    f->tables.reserve(kLakeTables);
    for (size_t t = 0; t < kLakeTables; ++t) {
      std::vector<std::vector<float>> cols(1 + t % 3);
      for (auto& col : cols) col = random_vec();
      f->tables.push_back(std::move(cols));
    }
    for (size_t q = 0; q < 32; ++q) {
      f->join_queries.push_back(random_vec());
      f->union_queries.push_back({random_vec(), random_vec()});
    }
    return f;
  }();
  return *fixture;
}

search::ShardedLakeIndex BuildShardedLake(
    const ShardedLakeFixture& f, size_t shards,
    search::Storage storage = search::Storage::kFloat32) {
  search::IndexOptions options;
  options.storage = storage;
  search::ShardedLakeIndex lake(kLakeDim, shards, options);
  for (size_t t = 0; t < f.tables.size(); ++t) {
    lake.AddTable("table_" + std::to_string(t), f.tables[t]);
  }
  return lake;
}

void BM_ShardedLakeBuild(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const ShardedLakeFixture& f = GetShardedLakeFixture();
  for (auto _ : state) {
    auto lake = BuildShardedLake(f, shards);
    benchmark::DoNotOptimize(lake.num_tables());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.tables.size()));
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedLakeBuild)->Arg(1)->Arg(2)->Arg(4);

void BM_ShardedLakeBatchQuery(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const auto storage = state.range(1) != 0 ? search::Storage::kSq8
                                           : search::Storage::kFloat32;
  const ShardedLakeFixture& f = GetShardedLakeFixture();
  ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  auto lake = BuildShardedLake(f, shards, storage);
  for (auto _ : state) {
    auto join = lake.QueryJoinableBatch(f.join_queries, 10, &pool);
    auto join_union = lake.QueryUnionableBatch(f.union_queries, 10, &pool);
    benchmark::DoNotOptimize(join.data());
    benchmark::DoNotOptimize(join_union.data());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(f.join_queries.size() + f.union_queries.size()));
  state.counters["shards"] = static_cast<double>(shards);
  state.SetLabel(storage == search::Storage::kSq8 ? "sq8" : "float32");
}
BENCHMARK(BM_ShardedLakeBatchQuery)
    ->ArgsProduct({{1, 2, 4}, {0, 1}})
    ->UseRealTime();

// Query throughput under churn: a sealed 4-shard lake with 0% / 10% / 50%
// of its tables tombstoned, measured pre-compaction (the scan filters dead
// handles and merges the delta segment every query) and post-compaction
// (dead rows physically gone, handles re-densified). The pre/post gap at a
// given tombstone ratio is what a compaction pass buys; the 0% rows pin
// the no-churn overhead of the epoch locking itself.
void BM_ChurnedQueryQPS(benchmark::State& state) {
  const size_t tombstone_pct = static_cast<size_t>(state.range(0));
  const bool compacted = state.range(1) != 0;
  const ShardedLakeFixture& f = GetShardedLakeFixture();
  ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  auto lake = BuildShardedLake(f, 4);
  lake.Seal();
  // 7919 is coprime with the table count, so the removals walk a
  // permutation — no duplicate ids, spread across every shard.
  const size_t to_remove = kLakeTables * tombstone_pct / 100;
  for (size_t t = 0; t < to_remove; ++t) {
    Status removed =
        lake.RemoveTable("table_" + std::to_string((t * 7919) % kLakeTables));
    if (!removed.ok()) state.SkipWithError(removed.ToString().c_str());
  }
  if (compacted) {
    Status folded = lake.Compact(/*hnsw_rebuild_threshold=*/0.0, &pool);
    if (!folded.ok()) state.SkipWithError(folded.ToString().c_str());
  }
  for (auto _ : state) {
    auto join = lake.QueryJoinableBatch(f.join_queries, 10, &pool);
    auto join_union = lake.QueryUnionableBatch(f.union_queries, 10, &pool);
    benchmark::DoNotOptimize(join.data());
    benchmark::DoNotOptimize(join_union.data());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(f.join_queries.size() + f.union_queries.size()));
  state.counters["tombstone_pct"] = static_cast<double>(tombstone_pct);
  state.SetLabel(compacted ? "post-compaction" : "pre-compaction");
}
BENCHMARK(BM_ChurnedQueryQPS)
    ->ArgsProduct({{0, 10, 50}, {0, 1}})
    ->UseRealTime();

// --------------------------------------------------------------- server QPS
// End-to-end query throughput through the socket server at 1 / 4 / 16
// concurrent clients, against a direct-batch-call baseline over the same
// total query count. The gap between the two is the serving overhead
// (framing + socket hops + batcher queue) the coalescing has to amortize.
// The second arg is the batcher's max_batch: 1 disables coalescing (every
// query dispatches alone), the default 64 lets concurrent clients share
// one multi-query scan — the gap at 16 clients is the coalescing win.

constexpr size_t kServerShards = 4;
constexpr size_t kQueriesPerClient = 8;

void BM_ServerQPS(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t max_batch = static_cast<size_t>(state.range(1));
  const ShardedLakeFixture& f = GetShardedLakeFixture();
  server::ServerOptions options;
  options.io_threads = clients;  // no client waits behind another's handler
  options.max_batch = max_batch;
  server::LakeServer lake_server(BuildShardedLake(f, kServerShards), options);
  const std::string socket_path =
      "/tmp/tsfm_bench_server_" + std::to_string(::getpid()) + ".sock";
  if (!lake_server.Start(socket_path).ok()) {
    state.SkipWithError("server start failed");
    return;
  }

  // Persistent pre-connected client threads driven by a generation
  // barrier, so the timed region contains only request round trips — not
  // thread spawns or socket connects, which the direct baseline has no
  // analogue of.
  std::mutex mu;
  std::condition_variable start_cv, done_cv;
  size_t generation = 0, done = 0, ready = 0, connect_failures = 0;
  std::atomic<size_t> query_failures{0};
  bool quit = false;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      server::LakeClient client;
      const bool connected = client.Connect(socket_path).ok();
      {
        std::unique_lock<std::mutex> lock(mu);
        if (!connected) ++connect_failures;
        if (++ready == clients) done_cv.notify_one();
      }
      size_t seen = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(mu);
          start_cv.wait(lock, [&] { return quit || generation != seen; });
          if (quit) return;
          seen = generation;
        }
        for (size_t q = 0; q < kQueriesPerClient; ++q) {
          auto ids = client.QueryJoinable(
              f.join_queries[(c + q) % f.join_queries.size()], 10);
          // A failed round trip returns near-instantly; counting it as
          // served work would inflate the QPS, so invalidate instead.
          if (!ids.ok()) query_failures.fetch_add(1);
          benchmark::DoNotOptimize(ids.ok());
        }
        std::unique_lock<std::mutex> lock(mu);
        if (++done == clients) done_cv.notify_one();
      }
    });
  }

  // A worker without a connection would contribute zero round trips while
  // SetItemsProcessed still counted its share, inflating the reported QPS;
  // invalidate the run instead.
  {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return ready == clients; });
    if (connect_failures > 0) {
      quit = true;
      lock.unlock();
      start_cv.notify_all();
      for (auto& t : workers) t.join();
      state.SkipWithError("client connect failed");
      lake_server.Stop();
      return;
    }
  }

  for (auto _ : state) {
    {
      std::unique_lock<std::mutex> lock(mu);
      done = 0;
      ++generation;
    }
    start_cv.notify_all();
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return done == clients; });
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    quit = true;
  }
  start_cv.notify_all();
  for (auto& t : workers) t.join();
  if (query_failures.load() > 0) {
    state.SkipWithError("query round trips failed mid-benchmark");
  } else {
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(clients * kQueriesPerClient));
  }
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["max_batch"] = static_cast<double>(max_batch);
  // How much coalescing actually happened: the mean dispatched batch size
  // over the whole run (1.0 means every query went to the backend alone).
  server::LakeClient stats_client;
  if (stats_client.Connect(socket_path).ok()) {
    if (auto stats = stats_client.Stats(); stats.ok() &&
                                           stats.value().batches > 0) {
      state.counters["avg_batch"] =
          static_cast<double>(stats.value().requests) /
          static_cast<double>(stats.value().batches);
    }
  }
  lake_server.Stop();
}
BENCHMARK(BM_ServerQPS)->ArgsProduct({{1, 4, 16}, {1, 64}})->UseRealTime();

void BM_ServerQPSDirectBaseline(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  const ShardedLakeFixture& f = GetShardedLakeFixture();
  auto lake = BuildShardedLake(f, kServerShards);
  ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  // The same queries BM_ServerQPS issues at this client count, as one
  // in-process batch call: the upper bound the server is measured against.
  std::vector<std::vector<float>> queries;
  for (size_t c = 0; c < clients; ++c) {
    for (size_t q = 0; q < kQueriesPerClient; ++q) {
      queries.push_back(f.join_queries[(c + q) % f.join_queries.size()]);
    }
  }
  for (auto _ : state) {
    auto ranked = lake.QueryJoinableBatch(queries, 10, &pool);
    benchmark::DoNotOptimize(ranked.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["clients"] = static_cast<double>(clients);
}
BENCHMARK(BM_ServerQPSDirectBaseline)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

// ---------------------------------------------------------- distributed QPS
// The same batch workload BM_ShardedLakeBatchQuery answers in-process, but
// scattered over 1 / 2 / 4 lake_shard_worker *processes* through a
// DistributedLakeIndex coordinator. Results are identical at every worker
// count (the distributed parity suite proves it bit-exactly), so the gap
// against BM_ShardedLakeBatchQuery at the same shard count is precisely the
// cost of crossing the process boundary: framing, socket hops, and the
// coordinator's remap/merge.

void BM_DistributedQPS(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  const ShardedLakeFixture& f = GetShardedLakeFixture();
  auto lake = BuildShardedLake(f, workers);
  const std::string manifest = "/tmp/tsfm_bench_dist_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(workers) + ".laks";
  if (!lake.Save(manifest).ok()) {
    state.SkipWithError("manifest save failed");
    return;
  }

  auto unlink_index_files = [&] {
    for (size_t s = 0; s < workers; ++s) {
      ::unlink((manifest + ".shard-" + std::to_string(s)).c_str());
    }
    ::unlink(manifest.c_str());
  };
  // Fork the worker fleet before this benchmark grows pool threads; the
  // fleet stops its workers and unlinks its sockets on destruction. The
  // socket prefix must differ from the manifest path — worker sockets are
  // "<prefix>.shard-s" and binding one must not clobber a shard *file* of
  // the same name.
  auto fleet = server::ShardWorkerFleet::Spawn(manifest, manifest + ".sock");
  if (!fleet.ok()) {
    unlink_index_files();
    state.SkipWithError("worker spawn failed");
    return;
  }
  auto coordinator =
      server::DistributedLakeIndex::Connect(manifest, fleet.value().sockets());
  if (!coordinator.ok()) {
    unlink_index_files();
    state.SkipWithError("coordinator connect failed");
    return;
  }

  ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  bool failed = false;
  for (auto _ : state) {
    auto join =
        coordinator.value().QueryJoinableBatch(f.join_queries, 10, &pool);
    auto join_union =
        coordinator.value().QueryUnionableBatch(f.union_queries, 10, &pool);
    if (!join.ok() || !join_union.ok()) {
      failed = true;
      break;
    }
    benchmark::DoNotOptimize(join.value().data());
    benchmark::DoNotOptimize(join_union.value().data());
  }
  if (failed) {
    state.SkipWithError("distributed query failed mid-benchmark");
  } else {
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(f.join_queries.size() + f.union_queries.size()));
  }
  state.counters["workers"] = static_cast<double>(workers);
  fleet.value().StopAll();
  unlink_index_files();
}
BENCHMARK(BM_DistributedQPS)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  nn::Tensor a(n, n), b(n, n);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.UniformDouble(-1, 1));
    b[i] = static_cast<float>(rng.UniformDouble(-1, 1));
  }
  for (auto _ : state) {
    nn::Var va = nn::MakeLeaf(a, false);
    nn::Var vb = nn::MakeLeaf(b, false);
    nn::Var c = nn::MatMul(va, vb);
    benchmark::DoNotOptimize(c->value().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace tsfm

// BENCHMARK_MAIN(), plus a context line recording how *this* binary was
// compiled. The stock "library_build_type" JSON field describes the
// google-benchmark shared library (which distro packages ship
// self-reporting debug), not the code under test; scripts/record_bench.sh
// keys off tsfm_build_type instead.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("tsfm_build_type", "release");
#else
  benchmark::AddCustomContext("tsfm_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
