// Regenerates paper Table VII: TUS union search — Mean F1, P@60, R@60.
// TUS groups are large (up to 60 unionable tables per query), so the k
// sweep runs to 60.
#include <cstdio>

#include "search_common.h"

namespace tsfm::bench {
namespace {

void Run() {
  BenchConfig bconfig;

  lakebench::UnionSearchScale uscale;
  uscale.num_seeds = 6;
  uscale.variants_per_seed = 64;  // TUS-style large groups
  uscale.num_queries = 24;
  uscale.rows = 48;
  auto bench = lakebench::MakeUnionSearch(
      lakebench::DomainCatalog(bconfig.seed, 200), uscale, bconfig.seed + 52, "TUS");
  bench.BuildSketches({.num_perm = bconfig.num_perm});

  auto tus = lakebench::MakeTusSantos(lakebench::DomainCatalog(bconfig.seed, 200),
                                      bconfig.scale, bconfig.seed + 1);
  tus.BuildSketches({.num_perm = bconfig.num_perm});

  std::vector<Table> extra = bench.tables;
  extra.insert(extra.end(), tus.tables.begin(), tus.tables.end());
  auto ctx = MakeContext(bconfig, extra);

  const size_t k_max = 60;
  baselines::SbertLikeEncoder sbert(64);

  PrintHeader("Table VII: TUS union search (measured | paper, F1 x100)");

  auto tabert = FinetuneDualEncoder(ctx.get(), tus,
                                    baselines::DualEncoderMode::kTabertLike,
                                    bconfig.seed + 65);
  PrintSearchRow("TaBERT-FT", EvalDualEncoderSearch(bench, k_max, *tabert, false),
                 60, 28.05, 0.90, 0.32);
  auto tuta = FinetuneDualEncoder(ctx.get(), tus,
                                  baselines::DualEncoderMode::kTutaLike,
                                  bconfig.seed + 66);
  PrintSearchRow("TUTA-FT", EvalDualEncoderSearch(bench, k_max, *tuta, true), 60,
                 28.68, 0.89, 0.33);
  PrintSearchRow("Starmie", EvalStarmieSearch(bench, k_max, &sbert), 60, 28.79,
                 0.90, 0.33);
  PrintSearchRow("D3L", EvalD3lSearch(bench, k_max, &sbert), 60, 20.77, 0.60, 0.23);
  PrintSearchRow("SANTOS", EvalSantosSearch(bench, k_max, &sbert), 60, 24.27, 0.81,
                 0.27);
  PrintSearchRow("SBERT", EvalSbertSearch(bench, k_max, &sbert), 60, 32.73, 0.99,
                 0.38);

  auto encoder = FinetuneTabSketchFM(ctx.get(), tus, bconfig.seed + 67);
  PrintSearchRow("TabSketchFM",
                 EvalTabSketchFMSearch(ctx.get(), encoder->model(), bench, k_max,
                                       false, &sbert),
                 60, 32.00, 0.97, 0.37);
  PrintSearchRow("TabSketchFM-SBERT",
                 EvalTabSketchFMSearch(ctx.get(), encoder->model(), bench, k_max,
                                       true, &sbert),
                 60, 32.30, 0.99, 0.38);

  std::printf(
      "\nShape check vs paper: value embeddings (SBERT) suffice for union;\n"
      "TabSketchFM(-SBERT) matches; D3L trails.\n");
}

}  // namespace
}  // namespace tsfm::bench

int main() {
  tsfm::bench::Run();
  return 0;
}
