// Regenerates paper Fig 4 (a-d): F1-vs-k curves for join, SANTOS union,
// TUS union and Eurostat subset search, comparing SBERT, TabSketchFM and
// TabSketchFM-SBERT (plus Josie on the join panel).
#include <cstdio>

#include "search_common.h"

namespace tsfm::bench {
namespace {

void PrintCurve(const std::string& name, const search::SearchReport& report,
                const std::vector<size_t>& ks) {
  std::printf("%-22s", name.c_str());
  for (size_t k : ks) {
    std::printf(" %5.2f", report.F1At(k));
  }
  std::printf("\n");
}

void PrintKsHeader(const std::vector<size_t>& ks) {
  std::printf("%-22s", "k =");
  for (size_t k : ks) std::printf(" %5zu", k);
  std::printf("\n");
}

void Run() {
  BenchConfig bconfig;
  bconfig.scale.num_pairs = 120;

  lakebench::DomainCatalog catalog(bconfig.seed, 200);

  // Corpora for the four panels.
  lakebench::WikiJoinScale wscale;
  wscale.num_tables = 160;
  wscale.num_queries = 24;
  auto join_bench = lakebench::MakeWikiJoinSearch(wscale, bconfig.seed + 80);
  lakebench::UnionSearchScale sscale;
  sscale.num_seeds = 8;
  sscale.variants_per_seed = 12;
  sscale.num_queries = 24;
  auto santos_bench =
      lakebench::MakeUnionSearch(catalog, sscale, bconfig.seed + 81, "SANTOS");
  lakebench::UnionSearchScale tscale;
  tscale.num_seeds = 4;
  tscale.variants_per_seed = 64;
  tscale.num_queries = 16;
  auto tus_bench =
      lakebench::MakeUnionSearch(catalog, tscale, bconfig.seed + 82, "TUS");
  lakebench::EurostatScale escale;
  escale.num_seeds = 20;
  auto subset_bench =
      lakebench::MakeEurostatSubsetSearch(catalog, escale, bconfig.seed + 83);

  SketchOptions sopt{.num_perm = bconfig.num_perm};
  join_bench.BuildSketches(sopt);
  santos_bench.BuildSketches(sopt);
  tus_bench.BuildSketches(sopt);
  subset_bench.BuildSketches(sopt);

  // Fine-tuning tasks per panel (paper: containment for join, TUS-SANTOS
  // for union, CKAN Subset for subset).
  auto containment =
      lakebench::MakeWikiContainment(catalog, bconfig.scale, bconfig.seed + 4);
  auto tus_task = lakebench::MakeTusSantos(catalog, bconfig.scale, bconfig.seed + 1);
  auto ckan = lakebench::MakeCkanSubset(catalog, bconfig.scale, bconfig.seed + 8);
  containment.BuildSketches(sopt);
  tus_task.BuildSketches(sopt);
  ckan.BuildSketches(sopt);

  std::vector<Table> extra;
  for (const auto* b : {&join_bench, &santos_bench, &tus_bench, &subset_bench}) {
    extra.insert(extra.end(), b->tables.begin(), b->tables.end());
  }
  for (const auto* d : {&containment, &tus_task, &ckan}) {
    extra.insert(extra.end(), d->tables.begin(), d->tables.end());
  }
  auto ctx = MakeContext(bconfig, extra);
  baselines::SbertLikeEncoder sbert(64);

  struct Panel {
    const char* title;
    const lakebench::SearchBenchmark* bench;
    const core::PairDataset* task;
    size_t k_max;
    bool include_josie;
  };
  const Panel panels[4] = {
      {"Fig 4a: Wiki join search F1 vs k", &join_bench, &containment, 10, true},
      {"Fig 4b: SANTOS union search F1 vs k", &santos_bench, &tus_task, 10, false},
      {"Fig 4c: TUS union search F1 vs k", &tus_bench, &tus_task, 60, false},
      {"Fig 4d: Eurostat subset search F1 vs k", &subset_bench, &ckan, 11, false},
  };

  for (const auto& panel : panels) {
    PrintHeader(panel.title);
    std::vector<size_t> ks;
    for (size_t k = 1; k <= panel.k_max; k += (panel.k_max > 20 ? 10 : 2)) {
      ks.push_back(k);
    }
    if (ks.back() != panel.k_max) ks.push_back(panel.k_max);
    PrintKsHeader(ks);

    if (panel.include_josie) {
      PrintCurve("Josie", EvalJosieSearch(*panel.bench, panel.k_max), ks);
    }
    PrintCurve("SBERT", EvalSbertSearch(*panel.bench, panel.k_max, &sbert), ks);

    auto encoder = FinetuneTabSketchFM(ctx.get(), *panel.task, bconfig.seed + 90);
    PrintCurve("TabSketchFM",
               EvalTabSketchFMSearch(ctx.get(), encoder->model(), *panel.bench,
                                     panel.k_max, false, &sbert),
               ks);
    PrintCurve("TabSketchFM-SBERT",
               EvalTabSketchFMSearch(ctx.get(), encoder->model(), *panel.bench,
                                     panel.k_max, true, &sbert),
               ks);
  }
  std::printf(
      "\nShape check vs paper Fig 4: curves rise then flatten as k passes the\n"
      "gold-set size; TabSketchFM-SBERT tracks the best method per panel.\n");

  // The ANN substrate the curves above run on: exact flat scan vs HNSW at a
  // lake-scale column count.
  PrintHeader("VectorIndex backends: flat vs HNSW");
  PrintAnnBackendComparison(/*num_columns=*/10000, /*dim=*/64,
                            /*num_queries=*/64, /*k=*/10);
}

}  // namespace
}  // namespace tsfm::bench

int main() {
  tsfm::bench::Run();
  return 0;
}
