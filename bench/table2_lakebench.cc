// Regenerates paper Table II: TabSketchFM vs Vanilla BERT, TAPAS, TABBIE,
// TUTA and TaBERT on the eight LakeBench tasks (weighted F1 for
// classification, R2 for regression, micro F1 for multi-label).
//
// Set TSFM_SEEDS=n to average over n random seeds (paper: 5; default 1 to
// keep CPU runtime in minutes).
#include <cstdio>
#include <cstdlib>

#include "baselines/pair_trainer.h"
#include "baselines/vanilla_bert.h"
#include "bench_common.h"

namespace tsfm::bench {
namespace {

using baselines::DualEncoderMode;
using baselines::PairTrainOptions;
using baselines::TinyBertConfig;
using baselines::TrainPairModel;
using baselines::ValueDualEncoder;
using baselines::VanillaBertBaseline;

// Paper Table II values for the "paper" column.
struct PaperRow {
  const char* metric;
  double vanilla, tapas, tabbie, tuta, tabert, tsfm;
};
const PaperRow kPaper[8] = {
    {"F1", 0.99, 0.34, 0.75, 0.99, 0.99, 0.99},   // TUS-SANTOS
    {"F1", 0.33, 0.41, 0.64, 0.33, 0.97, 0.94},   // Wiki Union
    {"R2", 0.03, -0.01, 0.02, 0.87, 0.35, 0.90},  // ECB Union
    {"R2", 0.00, -0.03, 0.25, 0.43, 0.33, 0.58},  // Wiki Jaccard
    {"R2", 0.00, 0.00, 0.21, 0.35, 0.30, 0.58},   // Wiki Containment
    {"F1", 0.71, 0.65, 0.57, 0.76, 0.87, 0.83},   // Spider-OpenData
    {"F1", 0.63, 0.40, 0.42, 0.81, 0.79, 0.86},   // ECB Join
    {"F1", 0.43, 0.43, 0.43, 0.43, 0.43, 0.98},   // CKAN Subset
};

TinyBertConfig BaselineConfig(const BenchContext& ctx) {
  TinyBertConfig config;
  config.encoder = ctx.config.encoder;
  config.vocab_size = ctx.vocab.size();
  config.max_seq_len = ctx.config.max_seq_len;
  return config;
}

double TrainAndEvalVanilla(BenchContext* ctx, const core::PairDataset& ds,
                           uint64_t seed) {
  Rng rng(seed);
  VanillaBertBaseline model(BaselineConfig(*ctx), ds.task, ds.num_outputs,
                            ctx->tokenizer.get(), &rng);
  PairTrainOptions opt;
  opt.epochs = ctx->bench_config.finetune_epochs;
  opt.patience = ctx->bench_config.finetune_patience;
  opt.lr = 5e-4f;
  opt.seed = seed;
  opt.max_train_examples = ctx->bench_config.max_train_pairs;
  TrainPairModel(
      ds, opt,
      [&](const core::PairExample& ex, bool training, Rng* r) {
        return model.Loss(ds, ex, training, r);
      },
      model.Params("vb"));
  std::vector<std::vector<float>> preds;
  for (const auto& ex : ds.test) preds.push_back(model.Predict(ds, ex));
  return MetricFromPredictions(ds, ds.test, preds);
}

double TrainAndEvalDual(BenchContext* ctx, const core::PairDataset& ds,
                        DualEncoderMode mode, uint64_t seed) {
  Rng rng(seed);
  ValueDualEncoder model(BaselineConfig(*ctx), mode, ds.task, ds.num_outputs,
                         ctx->tokenizer.get(), &rng);
  PairTrainOptions opt;
  opt.epochs = ctx->bench_config.finetune_epochs;
  opt.patience = ctx->bench_config.finetune_patience;
  opt.lr = 5e-4f;
  opt.seed = seed;
  opt.max_train_examples = ctx->bench_config.max_train_pairs;
  TrainPairModel(
      ds, opt,
      [&](const core::PairExample& ex, bool training, Rng* r) {
        return model.Loss(ds, ex, training, r);
      },
      model.TrainableParams());
  std::vector<std::vector<float>> preds;
  for (const auto& ex : ds.test) preds.push_back(model.Predict(ds, ex));
  return MetricFromPredictions(ds, ds.test, preds);
}

void Run() {
  const char* seeds_env = std::getenv("TSFM_SEEDS");
  const size_t num_seeds = seeds_env ? std::strtoul(seeds_env, nullptr, 10) : 1;

  BenchConfig bconfig;
  auto datasets = lakebench::MakeAllFinetuneBenchmarks(
      lakebench::DomainCatalog(bconfig.seed, 200), bconfig.scale, bconfig.seed);
  std::vector<Table> all_tables;
  for (auto& ds : datasets) {
    ds.BuildSketches({.num_perm = bconfig.num_perm});
    all_tables.insert(all_tables.end(), ds.tables.begin(), ds.tables.end());
  }
  auto ctx = MakeContext(bconfig, all_tables);

  PrintHeader("Table II: fine-tuning on LakeBench (measured | paper)");
  PrintRow("Task", {"VanillaBERT", "TAPAS", "TABBIE", "TUTA", "TaBERT",
                    "TabSketchFM"});

  for (size_t d = 0; d < datasets.size(); ++d) {
    const auto& ds = datasets[d];
    double sums[6] = {0, 0, 0, 0, 0, 0};
    for (size_t s = 0; s < num_seeds; ++s) {
      uint64_t seed = bconfig.seed + 1000 * (s + 1);
      sums[0] += TrainAndEvalVanilla(ctx.get(), ds, seed);
      sums[1] += TrainAndEvalDual(ctx.get(), ds, DualEncoderMode::kTapasLike, seed);
      sums[2] += TrainAndEvalDual(ctx.get(), ds, DualEncoderMode::kTabbieLike, seed);
      sums[3] += TrainAndEvalDual(ctx.get(), ds, DualEncoderMode::kTutaLike, seed);
      sums[4] += TrainAndEvalDual(ctx.get(), ds, DualEncoderMode::kTabertLike, seed);
      auto encoder = FinetuneTabSketchFM(ctx.get(), ds, seed);
      sums[5] += EvalTabSketchFM(ctx.get(), encoder.get(), ds);
      std::fprintf(stderr, "[bench] %s seed %zu done\n", ds.name.c_str(), s);
    }
    const PaperRow& paper = kPaper[d];
    const double paper_vals[6] = {paper.vanilla, paper.tapas, paper.tabbie,
                                  paper.tuta,    paper.tabert, paper.tsfm};
    std::vector<std::string> cells;
    for (int m = 0; m < 6; ++m) {
      cells.push_back(Measured(sums[m] / num_seeds) + "|" +
                      Measured(paper_vals[m]));
    }
    PrintRow(ds.name + " (" + paper.metric + ")", cells);
  }
  std::printf(
      "\nShape check vs paper: TabSketchFM should lead or tie on most tasks;\n"
      "CKAN Subset separates TabSketchFM (content) from header/value models\n"
      "(~random); TUS-SANTOS is solvable by Vanilla BERT from headers alone.\n");
}

}  // namespace
}  // namespace tsfm::bench

int main() {
  tsfm::bench::Run();
  return 0;
}
