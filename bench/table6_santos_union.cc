// Regenerates paper Table VI: SANTOS union search — Mean F1, P@10, R@10
// for TaBERT-FT, TUTA-FT, Starmie, D3L, SANTOS, SBERT, TabSketchFM and
// TabSketchFM-SBERT.
#include <cstdio>

#include "search_common.h"

namespace tsfm::bench {
namespace {

void Run() {
  BenchConfig bconfig;

  lakebench::UnionSearchScale uscale;
  uscale.num_seeds = 10;
  uscale.variants_per_seed = 12;
  uscale.num_queries = 40;
  auto bench = lakebench::MakeUnionSearch(
      lakebench::DomainCatalog(bconfig.seed, 200), uscale, bconfig.seed + 51,
      "SANTOS");
  bench.BuildSketches({.num_perm = bconfig.num_perm});

  // Fine-tuning data: TUS-SANTOS, as in the paper's *-FT baselines.
  auto tus = lakebench::MakeTusSantos(lakebench::DomainCatalog(bconfig.seed, 200),
                                      bconfig.scale, bconfig.seed + 1);
  tus.BuildSketches({.num_perm = bconfig.num_perm});

  std::vector<Table> extra = bench.tables;
  extra.insert(extra.end(), tus.tables.begin(), tus.tables.end());
  auto ctx = MakeContext(bconfig, extra);

  const size_t k_max = 10;
  baselines::SbertLikeEncoder sbert(64);

  PrintHeader("Table VI: SANTOS union search (measured | paper, F1 x100)");

  auto tabert = FinetuneDualEncoder(ctx.get(), tus,
                                    baselines::DualEncoderMode::kTabertLike,
                                    bconfig.seed + 62);
  PrintSearchRow("TaBERT-FT", EvalDualEncoderSearch(bench, k_max, *tabert, false),
                 10, 36.64, 0.63, 0.46);
  auto tuta = FinetuneDualEncoder(ctx.get(), tus,
                                  baselines::DualEncoderMode::kTutaLike,
                                  bconfig.seed + 63);
  PrintSearchRow("TUTA-FT", EvalDualEncoderSearch(bench, k_max, *tuta, true), 10,
                 25.34, 0.43, 0.30);
  PrintSearchRow("Starmie", EvalStarmieSearch(bench, k_max, &sbert), 10, 54.08,
                 0.97, 0.72);
  PrintSearchRow("D3L", EvalD3lSearch(bench, k_max, &sbert), 10, 26.44, 0.54, 0.40);
  PrintSearchRow("SANTOS", EvalSantosSearch(bench, k_max, &sbert), 10, 50.36, 0.89,
                 0.67);
  PrintSearchRow("SBERT", EvalSbertSearch(bench, k_max, &sbert), 10, 53.86, 0.97,
                 0.73);

  auto encoder = FinetuneTabSketchFM(ctx.get(), tus, bconfig.seed + 64);
  PrintSearchRow("TabSketchFM",
                 EvalTabSketchFMSearch(ctx.get(), encoder->model(), bench, k_max,
                                       false, &sbert),
                 10, 51.38, 0.92, 0.69);
  PrintSearchRow("TabSketchFM-SBERT",
                 EvalTabSketchFMSearch(ctx.get(), encoder->model(), bench, k_max,
                                       true, &sbert),
                 10, 54.09, 0.97, 0.73);

  std::printf(
      "\nShape check vs paper: Starmie, SBERT and TabSketchFM-SBERT cluster\n"
      "at the top; D3L and TUTA-FT trail.\n");
}

}  // namespace
}  // namespace tsfm::bench

int main() {
  tsfm::bench::Run();
  return 0;
}
