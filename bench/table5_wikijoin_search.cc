// Regenerates paper Table V: Wiki join search — Mean F1, P@10, R@10 for
// TaBERT-FT, LSH-Forest, Josie, DeepJoin, WarpGate, SBERT, TabSketchFM and
// TabSketchFM-SBERT.
#include <cstdio>

#include "search_common.h"

namespace tsfm::bench {
namespace {

void Run() {
  BenchConfig bconfig;

  // Corpus + gold.
  lakebench::WikiJoinScale wscale;
  auto bench = lakebench::MakeWikiJoinSearch(wscale, bconfig.seed + 50);
  bench.BuildSketches({.num_perm = bconfig.num_perm});

  // Fine-tuning data for the neural searchers: the join-flavoured
  // containment task, as in the paper (TaBERT-FT uses Wiki-Containment).
  auto containment = lakebench::MakeWikiContainment(
      lakebench::DomainCatalog(bconfig.seed, 200), bconfig.scale, bconfig.seed + 4);
  containment.BuildSketches({.num_perm = bconfig.num_perm});

  std::vector<Table> extra = bench.tables;
  extra.insert(extra.end(), containment.tables.begin(), containment.tables.end());
  auto ctx = MakeContext(bconfig, extra);

  const size_t k_max = 10;
  baselines::SbertLikeEncoder sbert(64);

  PrintHeader("Table V: Wiki join search (measured | paper, F1 x100)");

  auto tabert = FinetuneDualEncoder(ctx.get(), containment,
                                    baselines::DualEncoderMode::kTabertLike,
                                    bconfig.seed + 60);
  PrintSearchRow("TaBERT-FT", EvalDualEncoderSearch(bench, k_max, *tabert, false),
                 10, 30.16, 0.43, 0.32);
  PrintSearchRow("LSH-Forest", EvalLshForestSearch(bench, k_max), 10, 50.84, 0.80,
                 0.70);
  PrintSearchRow("Josie", EvalJosieSearch(bench, k_max), 10, 94.86, 0.99, 1.00);
  PrintSearchRow("DeepJoin", EvalDeepJoinSearch(bench, k_max, &sbert), 10, 91.59,
                 0.96, 0.97);
  PrintSearchRow("WarpGate", EvalWarpGateSearch(bench, k_max, &sbert), 10, 90.34,
                 0.95, 0.95);
  PrintSearchRow("SBERT", EvalSbertSearch(bench, k_max, &sbert), 10, 83.67, 0.96,
                 0.89);

  PrintSearchRow("TSFM (pretrain-only)",
                 EvalTabSketchFMSearch(ctx.get(), ctx->pretrained.get(), bench,
                                       k_max, false, &sbert),
                 10, 89.09, 0.97, 0.94);
  auto encoder = FinetuneTabSketchFM(ctx.get(), containment, bconfig.seed + 61);
  PrintSearchRow("TabSketchFM",
                 EvalTabSketchFMSearch(ctx.get(), encoder->model(), bench, k_max,
                                       /*concat_sbert=*/false, &sbert),
                 10, 89.09, 0.97, 0.94);
  PrintSearchRow("TabSketchFM-SBERT",
                 EvalTabSketchFMSearch(ctx.get(), encoder->model(), bench, k_max,
                                       /*concat_sbert=*/true, &sbert),
                 10, 92.81, 0.98, 0.99);

  std::printf(
      "\nShape check vs paper: Josie (exact containment) leads; DeepJoin,\n"
      "WarpGate, TabSketchFM-SBERT cluster just below; TaBERT-FT is weak.\n");
}

}  // namespace
}  // namespace tsfm::bench

int main() {
  tsfm::bench::Run();
  return 0;
}
