#include "bench_common.h"

#include <cstdio>

#include "util/string_util.h"
#include "util/timer.h"

namespace tsfm::bench {

std::unique_ptr<BenchContext> MakeContext(const BenchConfig& config,
                                          const std::vector<Table>& extra_tables) {
  auto ctx = std::make_unique<BenchContext>();
  ctx->bench_config = config;
  ctx->catalog = lakebench::DomainCatalog(config.seed, 200);

  lakebench::CorpusScale cscale;
  cscale.num_tables = config.pretrain_tables;
  cscale.augmentations = 2;  // paper: x3 total versions per table
  auto corpus = lakebench::MakePretrainCorpus(ctx->catalog, cscale, config.seed + 100);

  std::vector<Table> vocab_tables = corpus;
  vocab_tables.insert(vocab_tables.end(), extra_tables.begin(), extra_tables.end());
  ctx->vocab = lakebench::BuildVocabFromTables(vocab_tables, /*include_cells=*/true);

  ctx->config.encoder.hidden = config.hidden;
  ctx->config.encoder.num_layers = config.layers;
  ctx->config.encoder.num_heads = config.heads;
  ctx->config.encoder.ffn_dim = config.ffn;
  // No dropout at bench scale: with ~100 fine-tuning pairs and a 2-layer
  // model, dropout is pure gradient noise rather than regularization.
  ctx->config.encoder.dropout = 0.0f;
  ctx->config.vocab_size = ctx->vocab.size();
  ctx->config.max_seq_len = config.max_seq_len;
  ctx->config.num_perm = config.num_perm;
  ctx->sketch_options.num_perm = config.num_perm;

  ctx->tokenizer = std::make_unique<text::Tokenizer>(&ctx->vocab);
  ctx->input_encoder =
      std::make_unique<core::InputEncoder>(&ctx->config, ctx->tokenizer.get());

  Rng rng(config.seed + 7);
  ctx->pretrained = std::make_unique<core::TabSketchFM>(ctx->config, &rng);

  // MLM pretraining on the synthetic open-data corpus.
  std::vector<core::EncodedTable> train_enc, val_enc;
  for (size_t i = 0; i < corpus.size(); ++i) {
    corpus[i].InferTypes();
    auto enc = ctx->input_encoder->EncodeTable(
        BuildTableSketch(corpus[i], ctx->sketch_options));
    (i % 8 == 0 ? val_enc : train_enc).push_back(std::move(enc));
  }
  core::PretrainOptions popt;
  popt.epochs = config.pretrain_epochs;
  popt.batch_size = 8;
  popt.lr = 3e-4f;
  popt.seed = config.seed + 8;
  core::Pretrainer pretrainer(ctx->pretrained.get(), popt);
  WallTimer timer;
  auto result = pretrainer.Train(train_enc, val_enc);
  std::fprintf(stderr, "[bench] pretrained %zu epochs in %.1fs (val loss %.3f)\n",
               result.epochs_run, timer.Seconds(), result.best_val_loss);
  return ctx;
}

std::unique_ptr<core::CrossEncoder> FinetuneTabSketchFM(
    BenchContext* ctx, const core::PairDataset& dataset, uint64_t seed,
    const core::SketchAblation& ablation) {
  Rng rng(seed);
  auto encoder = std::make_unique<core::CrossEncoder>(
      ctx->config, dataset.task, dataset.num_outputs, &rng, ctx->pretrained.get());
  core::FinetuneOptions fopt;
  fopt.epochs = ctx->bench_config.finetune_epochs;
  fopt.patience = ctx->bench_config.finetune_patience;
  fopt.lr = 5e-4f;
  fopt.seed = seed;
  fopt.max_train_examples = ctx->bench_config.max_train_pairs;
  fopt.ablation = ablation;
  core::Finetuner finetuner(encoder.get(), ctx->input_encoder.get(), fopt);
  finetuner.Train(dataset);
  return encoder;
}

double MetricFromPredictions(const core::PairDataset& dataset,
                             const std::vector<core::PairExample>& examples,
                             const std::vector<std::vector<float>>& predictions) {
  switch (dataset.task) {
    case core::TaskType::kBinaryClassification: {
      std::vector<int> y_true, y_pred;
      for (size_t i = 0; i < examples.size(); ++i) {
        y_true.push_back(examples[i].label);
        y_pred.push_back(predictions[i][0] > 0.5f ? 1 : 0);
      }
      return search::WeightedF1(y_true, y_pred, 2);
    }
    case core::TaskType::kRegression: {
      std::vector<float> y_true, y_pred;
      for (size_t i = 0; i < examples.size(); ++i) {
        y_true.push_back(examples[i].target);
        y_pred.push_back(predictions[i][0]);
      }
      return search::R2Score(y_true, y_pred);
    }
    case core::TaskType::kMultiLabel: {
      std::vector<std::vector<float>> y_true;
      for (const auto& ex : examples) y_true.push_back(ex.multi_labels);
      return search::MultiLabelF1(y_true, predictions);
    }
  }
  return 0.0;
}

double EvalTabSketchFM(BenchContext* ctx, core::CrossEncoder* encoder,
                       const core::PairDataset& dataset,
                       const core::SketchAblation& ablation) {
  core::FinetuneOptions fopt;
  fopt.ablation = ablation;
  core::Finetuner finetuner(encoder, ctx->input_encoder.get(), fopt);
  auto predictions = finetuner.Predict(dataset, dataset.test);
  return MetricFromPredictions(dataset, dataset.test, predictions);
}

void PrintRow(const std::string& name, const std::vector<std::string>& cells,
              size_t name_width) {
  std::string line = PadRight(name, name_width);
  for (const auto& cell : cells) {
    line += PadLeft(cell, 14);
  }
  std::printf("%s\n", line.c_str());
}

std::string Measured(double value, int precision) {
  return FormatDouble(value, precision);
}

void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace tsfm::bench
