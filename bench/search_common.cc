#include "search_common.h"

#include <cstdio>
#include <thread>
#include <unordered_set>

#include "baselines/pair_trainer.h"
#include "search/vector_index.h"
#include "sketch/table_sketch.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tsfm::bench {

namespace {

// Ranked-list evaluation over per-query ranked tables.
search::SearchReport EvalRanked(const lakebench::SearchBenchmark& bench,
                                const std::vector<std::vector<size_t>>& ranked,
                                size_t k_max) {
  return search::EvaluateRankedLists(bench, ranked, k_max);
}

}  // namespace

search::SearchReport EvalTabSketchFMSearch(BenchContext* ctx,
                                           const core::TabSketchFM* model,
                                           const lakebench::SearchBenchmark& bench,
                                           size_t k_max, bool concat_sbert,
                                           const baselines::SbertLikeEncoder* sbert) {
  core::Embedder embedder(model, ctx->input_encoder.get());
  // Pre-compute all column embeddings once.
  std::vector<std::vector<std::vector<float>>> all(bench.tables.size());
  size_t dim = 0, count = 0;
  for (size_t t = 0; t < bench.tables.size(); ++t) {
    all[t] = embedder.ColumnEmbeddings(bench.sketches[t]);
    for (const auto& c : all[t]) {
      dim = c.size();
      ++count;
    }
  }
  // Mean-center over the corpus: column states share a large common
  // component (identical header tokens across the lake); centering turns
  // cosine into a correlation over the *distinguishing* sketch-driven
  // directions. Without it near-duplicate embeddings rank by noise.
  std::vector<float> mean(dim, 0.0f);
  for (const auto& table_cols : all) {
    for (const auto& c : table_cols) {
      for (size_t i = 0; i < dim; ++i) mean[i] += c[i];
    }
  }
  for (auto& m : mean) m /= static_cast<float>(count);
  for (auto& table_cols : all) {
    for (auto& c : table_cols) {
      for (size_t i = 0; i < dim; ++i) c[i] -= mean[i];
    }
  }
  if (concat_sbert) {
    for (size_t t = 0; t < bench.tables.size(); ++t) {
      auto sbert_cols = sbert->EmbedColumns(bench.tables[t]);
      for (size_t c = 0; c < all[t].size(); ++c) {
        all[t][c] = core::NormalizeAndConcat(all[t][c], sbert_cols[c]);
      }
    }
  }
  auto embed = [&](size_t t) { return all[t]; };
  return search::EvaluateEmbeddingSearch(bench, embed, k_max);
}

search::SearchReport EvalSbertSearch(const lakebench::SearchBenchmark& bench,
                                     size_t k_max,
                                     const baselines::SbertLikeEncoder* sbert) {
  auto embed = [&](size_t t) { return sbert->EmbedColumns(bench.tables[t]); };
  return search::EvaluateEmbeddingSearch(bench, embed, k_max);
}

search::SearchReport EvalDualEncoderSearch(const lakebench::SearchBenchmark& bench,
                                           size_t k_max,
                                           const baselines::ValueDualEncoder& model,
                                           bool table_level) {
  auto embed = [&](size_t t) {
    std::vector<std::vector<float>> cols;
    if (table_level) {
      cols.push_back(model.EmbedTable(bench.tables[t]));
    } else {
      for (size_t c = 0; c < bench.tables[t].num_columns(); ++c) {
        cols.push_back(model.EmbedColumn(bench.tables[t], c));
      }
    }
    return cols;
  };
  return search::EvaluateEmbeddingSearch(bench, embed, k_max);
}

search::SearchReport EvalJosieSearch(const lakebench::SearchBenchmark& bench,
                                     size_t k_max) {
  baselines::JosieIndex josie;
  for (size_t t = 0; t < bench.tables.size(); ++t) {
    josie.AddTable(t, bench.tables[t]);
  }
  std::vector<std::vector<size_t>> ranked;
  for (const auto& q : bench.queries) {
    size_t col = q.column_index >= 0 ? static_cast<size_t>(q.column_index) : 0;
    ranked.push_back(josie.Search(
        DistinctCells(bench.tables[q.table_index].column(col)), k_max,
        q.table_index));
  }
  return EvalRanked(bench, ranked, k_max);
}

search::SearchReport EvalLshForestSearch(const lakebench::SearchBenchmark& bench,
                                         size_t k_max) {
  baselines::LshForestJoinSearch lsh(&bench);
  std::vector<std::vector<size_t>> ranked;
  for (const auto& q : bench.queries) {
    size_t col = q.column_index >= 0 ? static_cast<size_t>(q.column_index) : 0;
    ranked.push_back(lsh.Rank(q.table_index, col, k_max));
  }
  return EvalRanked(bench, ranked, k_max);
}

search::SearchReport EvalWarpGateSearch(const lakebench::SearchBenchmark& bench,
                                        size_t k_max,
                                        const baselines::SbertLikeEncoder* sbert) {
  baselines::WarpGateJoinSearch warpgate(&bench, sbert);
  std::vector<std::vector<size_t>> ranked;
  for (const auto& q : bench.queries) {
    size_t col = q.column_index >= 0 ? static_cast<size_t>(q.column_index) : 0;
    ranked.push_back(warpgate.Rank(q.table_index, col, k_max));
  }
  return EvalRanked(bench, ranked, k_max);
}

search::SearchReport EvalDeepJoinSearch(const lakebench::SearchBenchmark& bench,
                                        size_t k_max,
                                        const baselines::SbertLikeEncoder* sbert) {
  baselines::DeepJoinSearch deepjoin(&bench, sbert);
  std::vector<std::vector<size_t>> ranked;
  for (const auto& q : bench.queries) {
    size_t col = q.column_index >= 0 ? static_cast<size_t>(q.column_index) : 0;
    ranked.push_back(deepjoin.Rank(q.table_index, col, k_max));
  }
  return EvalRanked(bench, ranked, k_max);
}

search::SearchReport EvalD3lSearch(const lakebench::SearchBenchmark& bench,
                                   size_t k_max,
                                   const baselines::SbertLikeEncoder* sbert) {
  baselines::D3lUnionSearch d3l(&bench, sbert);
  std::vector<std::vector<size_t>> ranked;
  for (const auto& q : bench.queries) {
    ranked.push_back(d3l.Rank(q.table_index, k_max));
  }
  return EvalRanked(bench, ranked, k_max);
}

search::SearchReport EvalSantosSearch(const lakebench::SearchBenchmark& bench,
                                      size_t k_max,
                                      const baselines::SbertLikeEncoder* sbert) {
  baselines::SantosUnionSearch santos(&bench, sbert);
  std::vector<std::vector<size_t>> ranked;
  for (const auto& q : bench.queries) {
    ranked.push_back(santos.Rank(q.table_index, k_max));
  }
  return EvalRanked(bench, ranked, k_max);
}

search::SearchReport EvalStarmieSearch(const lakebench::SearchBenchmark& bench,
                                       size_t k_max,
                                       const baselines::SbertLikeEncoder* sbert) {
  baselines::StarmieUnionSearch starmie(&bench, sbert);
  std::vector<std::vector<size_t>> ranked;
  for (const auto& q : bench.queries) {
    ranked.push_back(starmie.Rank(q.table_index, k_max));
  }
  return EvalRanked(bench, ranked, k_max);
}

std::unique_ptr<baselines::ValueDualEncoder> FinetuneDualEncoder(
    BenchContext* ctx, const core::PairDataset& dataset,
    baselines::DualEncoderMode mode, uint64_t seed) {
  baselines::TinyBertConfig config;
  config.encoder = ctx->config.encoder;
  config.vocab_size = ctx->vocab.size();
  config.max_seq_len = ctx->config.max_seq_len;
  Rng rng(seed);
  auto model = std::make_unique<baselines::ValueDualEncoder>(
      config, mode, dataset.task, dataset.num_outputs, ctx->tokenizer.get(), &rng);
  baselines::PairTrainOptions opt;
  opt.epochs = ctx->bench_config.finetune_epochs;
  opt.patience = ctx->bench_config.finetune_patience;
  opt.lr = 5e-4f;
  opt.seed = seed;
  opt.max_train_examples = ctx->bench_config.max_train_pairs;
  baselines::TrainPairModel(
      dataset, opt,
      [&](const core::PairExample& ex, bool training, Rng* r) {
        return model->Loss(dataset, ex, training, r);
      },
      model->TrainableParams());
  return model;
}

void PrintAnnBackendComparison(size_t num_columns, size_t dim,
                               size_t num_queries, size_t k) {
  Rng rng(23);
  auto random_vec = [&] {
    std::vector<float> v(dim);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    return v;
  };
  std::vector<std::vector<float>> corpus, queries;
  corpus.reserve(num_columns);
  for (size_t i = 0; i < num_columns; ++i) corpus.push_back(random_vec());
  for (size_t q = 0; q < num_queries; ++q) queries.push_back(random_vec());

  struct Row {
    const char* name;
    search::IndexOptions options;
  };
  Row rows[2];
  rows[0].name = "flat (exact)";
  rows[1].name = "hnsw";
  rows[1].options.backend = search::IndexBackend::kHnsw;

  ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  std::printf("ANN backends over %zu columns, dim %zu, %zu queries:\n",
              num_columns, dim, num_queries);
  std::printf("%-14s %10s %12s %12s %10s\n", "backend", "build s",
              "serial QPS", "batch QPS", "recall@k");

  std::unique_ptr<search::VectorIndex> exact;
  for (const Row& row : rows) {
    WallTimer build_timer;
    auto index = search::MakeVectorIndex(dim, row.options);
    for (size_t i = 0; i < num_columns; ++i) index->Add(i, corpus[i]);
    const double build_s = build_timer.Seconds();

    WallTimer serial_timer;
    auto serial = index->SearchBatch(queries, k, /*pool=*/nullptr);
    const double serial_qps = static_cast<double>(queries.size()) /
                              std::max(1e-9, serial_timer.Seconds());
    WallTimer batch_timer;
    auto batched = index->SearchBatch(queries, k, &pool);
    const double batch_qps = static_cast<double>(queries.size()) /
                             std::max(1e-9, batch_timer.Seconds());

    double recall = 1.0;
    if (exact != nullptr) {
      double recall_sum = 0;
      for (size_t q = 0; q < queries.size(); ++q) {
        std::unordered_set<size_t> gold;
        for (const auto& [p, d] : exact->Search(queries[q], k)) gold.insert(p);
        size_t hits = 0;
        for (const auto& [p, d] : serial[q]) hits += gold.count(p);
        recall_sum += static_cast<double>(hits) /
                      static_cast<double>(std::max<size_t>(1, gold.size()));
      }
      recall = recall_sum / static_cast<double>(queries.size());
    } else {
      exact = std::move(index);
    }
    std::printf("%-14s %10.3f %12.0f %12.0f %10.3f\n", row.name, build_s,
                serial_qps, batch_qps, recall);
  }
}

void PrintSearchRow(const std::string& method, const search::SearchReport& report,
                    size_t k, double paper_f1, double paper_p, double paper_r) {
  std::printf("%-22s  F1 %6.2f|%6.2f   P@%zu %5.2f|%5.2f   R@%zu %5.2f|%5.2f\n",
              method.c_str(), 100.0 * report.mean_f1, paper_f1, k,
              report.PrecisionAt(k), paper_p, k, report.RecallAt(k), paper_r);
}

}  // namespace tsfm::bench
