// Regenerates paper Table VIII: Eurostat subset search — Mean F1, P@10,
// R@10 — plus the paper's row/column order-invariance counts.
#include <cstdio>
#include <unordered_set>

#include "search_common.h"

namespace tsfm::bench {
namespace {

void Run() {
  BenchConfig bconfig;

  lakebench::EurostatScale escale;
  escale.num_seeds = 30;
  auto bench = lakebench::MakeEurostatSubsetSearch(
      lakebench::DomainCatalog(bconfig.seed, 200), escale, bconfig.seed + 53);
  bench.BuildSketches({.num_perm = bconfig.num_perm});

  // Fine-tune on CKAN Subset, as in the paper.
  auto ckan = lakebench::MakeCkanSubset(lakebench::DomainCatalog(bconfig.seed, 200),
                                        bconfig.scale, bconfig.seed + 8);
  ckan.BuildSketches({.num_perm = bconfig.num_perm});

  std::vector<Table> extra = bench.tables;
  extra.insert(extra.end(), ckan.tables.begin(), ckan.tables.end());
  auto ctx = MakeContext(bconfig, extra);

  const size_t k_max = 10;
  baselines::SbertLikeEncoder sbert(64);

  PrintHeader("Table VIII: Eurostat subset search (measured | paper, F1 x100)");

  auto tabert = FinetuneDualEncoder(ctx.get(), ckan,
                                    baselines::DualEncoderMode::kTabertLike,
                                    bconfig.seed + 70);
  PrintSearchRow("TaBERT-FT", EvalDualEncoderSearch(bench, k_max, *tabert, false),
                 10, 4.03, 0.05, 0.05);
  auto tuta = FinetuneDualEncoder(ctx.get(), ckan,
                                  baselines::DualEncoderMode::kTutaLike,
                                  bconfig.seed + 71);
  PrintSearchRow("TUTA-FT", EvalDualEncoderSearch(bench, k_max, *tuta, true), 10,
                 9.82, 0.13, 0.12);
  PrintSearchRow("SBERT", EvalSbertSearch(bench, k_max, &sbert), 10, 43.12, 0.56,
                 0.51);

  auto encoder = FinetuneTabSketchFM(ctx.get(), ckan, bconfig.seed + 72);
  PrintSearchRow("TabSketchFM",
                 EvalTabSketchFMSearch(ctx.get(), encoder->model(), bench, k_max,
                                       false, &sbert),
                 10, 49.96, 0.59, 0.53);
  PrintSearchRow("TabSketchFM-SBERT",
                 EvalTabSketchFMSearch(ctx.get(), encoder->model(), bench, k_max,
                                       true, &sbert),
                 10, 47.54, 0.58, 0.52);

  // Order-invariance probe (paper Sec IV-C.3): do the shuffled variants of
  // each seed appear among its nearest neighbours? Variants 9/10 of each
  // seed group are column-shuffled / row-shuffled.
  core::Embedder embedder(encoder->model(), ctx->input_encoder.get());
  size_t row_shuffle_found = 0, col_shuffle_found = 0;
  std::vector<std::vector<size_t>> ranked = search::RunSearch(
      bench,
      [&](size_t t) { return embedder.ColumnEmbeddings(bench.sketches[t]); }, 11);
  for (size_t q = 0; q < bench.queries.size(); ++q) {
    std::unordered_set<size_t> top(
        ranked[q].begin(),
        ranked[q].begin() + std::min<size_t>(11, ranked[q].size()));
    // gold[q] holds the 11 variants in Fig 7 order; 9 = column shuffle,
    // 10 = row shuffle.
    if (top.count(bench.gold[q][9])) ++col_shuffle_found;
    if (top.count(bench.gold[q][10])) ++row_shuffle_found;
  }
  std::printf(
      "\nOrder invariance (paper: row-shuffled 3072/3072, col-shuffled "
      "3059/3072):\n  row-shuffled variants in top-11: %zu/%zu\n  "
      "column-shuffled variants in top-11: %zu/%zu\n",
      row_shuffle_found, bench.queries.size(), col_shuffle_found,
      bench.queries.size());
  std::printf(
      "\nShape check vs paper: TabSketchFM leads; adding SBERT value\n"
      "embeddings slightly hurts subsets; *-FT value baselines collapse.\n");
}

}  // namespace
}  // namespace tsfm::bench

int main() {
  tsfm::bench::Run();
  return 0;
}
