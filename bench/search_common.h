// Shared helpers for the search benches (Tables V-VIII, Figs 4 and 8):
// one evaluation entry point per method family, all returning the common
// SearchReport so benches can print uniform rows.
#ifndef TSFM_BENCH_SEARCH_COMMON_H_
#define TSFM_BENCH_SEARCH_COMMON_H_

#include <string>
#include <vector>

#include "baselines/josie.h"
#include "baselines/traditional_search.h"
#include "bench_common.h"

namespace tsfm::bench {

/// Evaluates TabSketchFM column embeddings (from a fine-tuned model) on a
/// search benchmark. When `concat_sbert` is set, SBERT column-value
/// embeddings are z-normalized and concatenated (TabSketchFM-SBERT).
search::SearchReport EvalTabSketchFMSearch(BenchContext* ctx,
                                           const core::TabSketchFM* model,
                                           const lakebench::SearchBenchmark& bench,
                                           size_t k_max, bool concat_sbert,
                                           const baselines::SbertLikeEncoder* sbert);

/// Evaluates the frozen SBERT-like column-value embeddings.
search::SearchReport EvalSbertSearch(const lakebench::SearchBenchmark& bench,
                                     size_t k_max,
                                     const baselines::SbertLikeEncoder* sbert);

/// Evaluates a fine-tuned value dual encoder (TaBERT-FT via column
/// embeddings, TUTA-FT via table embeddings).
search::SearchReport EvalDualEncoderSearch(const lakebench::SearchBenchmark& bench,
                                           size_t k_max,
                                           const baselines::ValueDualEncoder& model,
                                           bool table_level);

/// Evaluates Josie exact-containment join search (join benchmarks only).
search::SearchReport EvalJosieSearch(const lakebench::SearchBenchmark& bench,
                                     size_t k_max);

/// Evaluates LSH-Forest join search.
search::SearchReport EvalLshForestSearch(const lakebench::SearchBenchmark& bench,
                                         size_t k_max);

/// Evaluates WarpGate SimHash join search.
search::SearchReport EvalWarpGateSearch(const lakebench::SearchBenchmark& bench,
                                        size_t k_max,
                                        const baselines::SbertLikeEncoder* sbert);

/// Evaluates DeepJoin column-text join search.
search::SearchReport EvalDeepJoinSearch(const lakebench::SearchBenchmark& bench,
                                        size_t k_max,
                                        const baselines::SbertLikeEncoder* sbert);

/// Evaluates the D3L / SANTOS / Starmie union searchers.
search::SearchReport EvalD3lSearch(const lakebench::SearchBenchmark& bench,
                                   size_t k_max,
                                   const baselines::SbertLikeEncoder* sbert);
search::SearchReport EvalSantosSearch(const lakebench::SearchBenchmark& bench,
                                      size_t k_max,
                                      const baselines::SbertLikeEncoder* sbert);
search::SearchReport EvalStarmieSearch(const lakebench::SearchBenchmark& bench,
                                       size_t k_max,
                                       const baselines::SbertLikeEncoder* sbert);

/// Trains a TaBERT- or TUTA-mode dual encoder on `dataset` for the *-FT
/// search baselines.
std::unique_ptr<baselines::ValueDualEncoder> FinetuneDualEncoder(
    BenchContext* ctx, const core::PairDataset& dataset,
    baselines::DualEncoderMode mode, uint64_t seed);

/// Prints one "method: MeanF1 P@k R@k (paper ...)" row.
void PrintSearchRow(const std::string& method, const search::SearchReport& report,
                    size_t k, double paper_f1, double paper_p, double paper_r);

/// \brief Prints a flat-vs-HNSW VectorIndex comparison table.
///
/// Builds both backends over `num_columns` random column embeddings and
/// reports build time, single-thread QPS, ThreadPool batch QPS, and
/// recall@k against the exact flat scan — the numbers that decide which
/// backend a deployment should pick (see src/search/README.md).
void PrintAnnBackendComparison(size_t num_columns, size_t dim,
                               size_t num_queries, size_t k);

}  // namespace tsfm::bench

#endif  // TSFM_BENCH_SEARCH_COMMON_H_
