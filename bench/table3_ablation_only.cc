// Regenerates paper Table III: TabSketchFM fine-tuned with only one sketch
// type enabled (MinHash-only / numerical-only / content-snapshot-only vs
// everything). TUS-SANTOS is skipped, as in the paper, because it is
// solvable from headers alone.
#include <cstdio>

#include "bench_common.h"

namespace tsfm::bench {
namespace {

struct PaperRow {
  double minhash_only, numerical_only, snapshot_only, full;
};
// Paper Table III (7 tasks).
const PaperRow kPaper[7] = {
    {0.914, 0.804, 0.897, 0.940},  // Wiki Union (F1)
    {0.829, 0.498, 0.752, 0.897},  // ECB Union (R2)
    {0.537, 0.318, 0.314, 0.577},  // Wiki Jaccard (R2)
    {0.628, 0.252, 0.301, 0.587},  // Wiki Containment (R2)
    {0.831, 0.817, 0.797, 0.831},  // Spider-OpenData (F1)
    {0.874, 0.812, 0.815, 0.856},  // ECB Join (F1)
    {0.431, 0.984, 0.431, 0.986},  // CKAN Subset (F1)
};

core::SketchAblation Only(bool minhash, bool numerical, bool snapshot) {
  core::SketchAblation a;
  a.use_minhash = minhash;
  a.use_numerical = numerical;
  a.use_snapshot = snapshot;
  return a;
}

void Run() {
  BenchConfig bconfig;
  auto datasets = lakebench::MakeAllFinetuneBenchmarks(
      lakebench::DomainCatalog(bconfig.seed, 200), bconfig.scale, bconfig.seed);
  std::vector<Table> all_tables;
  for (auto& ds : datasets) {
    ds.BuildSketches({.num_perm = bconfig.num_perm});
    all_tables.insert(all_tables.end(), ds.tables.begin(), ds.tables.end());
  }
  auto ctx = MakeContext(bconfig, all_tables);

  PrintHeader("Table III: using only one sketch type (measured | paper)");
  PrintRow("Task", {"MinHash", "Numerical", "Snapshot", "Everything"});

  const core::SketchAblation variants[4] = {
      Only(true, false, false),  // MinHash sketches only
      Only(false, true, false),  // numerical sketches only
      Only(false, false, true),  // content snapshot only
      Only(true, true, true),    // full model
  };

  // Skip dataset 0 (TUS-SANTOS), as the paper does.
  for (size_t d = 1; d < datasets.size(); ++d) {
    const auto& ds = datasets[d];
    double measured[4];
    for (int v = 0; v < 4; ++v) {
      auto encoder =
          FinetuneTabSketchFM(ctx.get(), ds, bconfig.seed + 11, variants[v]);
      measured[v] = EvalTabSketchFM(ctx.get(), encoder.get(), ds, variants[v]);
      std::fprintf(stderr, "[bench] %s variant %d done\n", ds.name.c_str(), v);
    }
    const PaperRow& paper = kPaper[d - 1];
    const double paper_vals[4] = {paper.minhash_only, paper.numerical_only,
                                  paper.snapshot_only, paper.full};
    std::vector<std::string> cells;
    for (int v = 0; v < 4; ++v) {
      cells.push_back(Measured(measured[v]) + "|" + Measured(paper_vals[v]));
    }
    PrintRow(ds.name, cells);
  }
  std::printf(
      "\nShape check vs paper: MinHash-only ~ full model on join tasks;\n"
      "numerical-only ~ full model on CKAN Subset; snapshot-only weakest on\n"
      "joins and subsets.\n");
}

}  // namespace
}  // namespace tsfm::bench

int main() {
  tsfm::bench::Run();
  return 0;
}
