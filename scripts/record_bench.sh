#!/usr/bin/env bash
# Record a micro_benchmarks run to a JSON file under bench/results/.
#
# Checked-in benchmark numbers must come from an optimized build — a debug
# binary understates the SIMD and quantization wins by an order of
# magnitude and poisons any comparison against them. This script refuses
# to record unless both the configured CMAKE_BUILD_TYPE and the JSON the
# binary reports about itself say Release.
#
# usage: scripts/record_bench.sh <build-dir> <output.json> [benchmark args...]
# e.g.:  scripts/record_bench.sh build bench/results/sq8_scan.json \
#            '--benchmark_filter=BM_FlatScanTopK'
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <build-dir> <output.json> [benchmark args...]" >&2
  exit 2
fi

build_dir=$1
out=$2
shift 2

cache="$build_dir/CMakeCache.txt"
if [[ ! -f "$cache" ]]; then
  echo "error: $cache not found — configure the build first" >&2
  exit 1
fi
if ! grep -q '^CMAKE_BUILD_TYPE:STRING=Release$' "$cache"; then
  echo "error: $build_dir is not a Release build; refusing to record." >&2
  echo "       (re-run: cmake -B $build_dir -S . -DCMAKE_BUILD_TYPE=Release)" >&2
  exit 1
fi

bench="$build_dir/micro_benchmarks"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not built" >&2
  exit 1
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
"$bench" --benchmark_out="$tmp" --benchmark_out_format=json "$@"

# Belt and braces: the binary stamps its own compile mode into the JSON
# context (tsfm_build_type — the stock library_build_type field describes
# the google-benchmark shared library, which distro packages ship
# self-reporting debug). A stale non-optimized binary in a Release tree
# must not slip through.
if ! grep -q '"tsfm_build_type": "release"' "$tmp"; then
  echo "error: benchmark binary reports a non-release build; refusing to" >&2
  echo "       record. Rebuild $build_dir and retry." >&2
  exit 1
fi

mkdir -p "$(dirname "$out")"
mv "$tmp" "$out"
trap - EXIT
echo "recorded -> $out"
