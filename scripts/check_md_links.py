#!/usr/bin/env python3
"""Offline markdown link checker for the repo's doc layer.

Walks every tracked .md file, extracts [text](target) links, and verifies
that each *relative* target resolves to a file or directory in the repo
(anchors are stripped; http(s)/mailto links are skipped — CI has no
network and the doc layer should not depend on one). Exits nonzero with
one line per broken link, so the docs cannot silently rot as files move.

Usage: scripts/check_md_links.py [repo-root]
"""
import os
import re
import sys

# [text](target) — skips images' leading '!' implicitly (same syntax) and
# ignores inline code spans by stripping them first.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
SKIP_DIRS = {".git", "build", ".claude"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for target in LINK_RE.findall(CODE_SPAN_RE.sub("", line)):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                target = target.split("#", 1)[0]
                if not target:  # pure in-page anchor
                    continue
                if target.startswith("/"):
                    resolved = os.path.join(root, target.lstrip("/"))
                else:
                    resolved = os.path.join(os.path.dirname(path), target)
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    failures = 0
    checked = 0
    for path in sorted(md_files(root)):
        checked += 1
        for lineno, target in check_file(path, root):
            rel = os.path.relpath(path, root)
            print(f"BROKEN {rel}:{lineno}: ({target}) does not exist")
            failures += 1
    print(f"checked {checked} markdown files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
