#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over every
# first-party translation unit under src/.
#
# Uses the compile_commands.json the build exports by default
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt); pass a build
# directory that has been configured, or let the script configure a fresh
# one. Exits non-zero on any WarningsAsErrors hit, so CI can gate on it.
#
# usage: scripts/run_static_analysis.sh [build-dir]
# e.g.:  scripts/run_static_analysis.sh build
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH." >&2
  echo "       Install it (e.g. apt-get install clang-tidy) and re-run." >&2
  exit 1
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "no compile_commands.json in $build_dir — configuring..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "error: $build_dir/compile_commands.json still missing after" >&2
  echo "       configure; is CMAKE_EXPORT_COMPILE_COMMANDS being overridden?" >&2
  exit 1
fi

# First-party sources only: generated or third-party TUs never appear
# under src/, and headers are covered through HeaderFilterRegex.
mapfile -t sources < <(find "$repo_root/src" -name '*.cc' | sort)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "error: no sources found under $repo_root/src" >&2
  exit 1
fi

echo "clang-tidy ($(clang-tidy --version | head -n 1)) over ${#sources[@]} files" >&2

# run-clang-tidy parallelizes across cores when available; otherwise fall
# back to a serial loop with the same gate semantics.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$build_dir" -quiet "${sources[@]}"
else
  status=0
  for src in "${sources[@]}"; do
    clang-tidy -p "$build_dir" --quiet "$src" || status=1
  done
  exit "$status"
fi
