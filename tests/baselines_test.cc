#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "baselines/josie.h"
#include "baselines/pair_trainer.h"
#include "baselines/sbert_like.h"
#include "baselines/serialize_table.h"
#include "baselines/tiny_bert.h"
#include "baselines/traditional_search.h"
#include "baselines/value_dual_encoder.h"
#include "baselines/vanilla_bert.h"
#include "lakebench/corpus.h"
#include "lakebench/finetune_benchmarks.h"

namespace tsfm::baselines {
namespace {

double Cos(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

Table MakeToyTable() {
  Table t("toy", "toy table");
  t.AddColumn("name", {"ann", "bob"});
  t.AddColumn("age", {"30", "40"});
  t.InferTypes();
  return t;
}

// ------------------------------------------------------------- Serializers

TEST(SerializeTest, Headers) {
  EXPECT_EQ(SerializeHeaders(MakeToyTable()), "name | age");
}

TEST(SerializeTest, RowsCapped) {
  std::string s = SerializeRows(MakeToyTable(), 1);
  EXPECT_NE(s.find("ann 30"), std::string::npos);
  EXPECT_EQ(s.find("bob"), std::string::npos);
}

TEST(SerializeTest, ColumnsIncludeHeadersAndValues) {
  std::string s = SerializeColumns(MakeToyTable(), 2);
  EXPECT_NE(s.find("name : ann bob"), std::string::npos);
  EXPECT_NE(s.find("age : 30 40"), std::string::npos);
}

TEST(SerializeTest, DeepJoinTextHasStats) {
  std::string s = DeepJoinColumnText(MakeToyTable(), 0);
  EXPECT_NE(s.find("toy"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("max"), std::string::npos);
}

TEST(SerializeTest, SbertColumnTextDistinctOnly) {
  Table t("t", "d");
  t.AddColumn("c", {"x", "x", "y"});
  EXPECT_EQ(SbertColumnText(t, 0), "x y");
}

// ------------------------------------------------------------- SBERT-like

TEST(SbertLikeTest, DeterministicAndNormalized) {
  SbertLikeEncoder enc(64);
  auto a = enc.Embed("hello world");
  auto b = enc.Embed("hello world");
  EXPECT_EQ(a, b);
  double norm = 0;
  for (float v : a) norm += v * v;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(SbertLikeTest, SharedWordsIncreaseSimilarity) {
  SbertLikeEncoder enc(64);
  auto a = enc.Embed("red apple fruit");
  auto b = enc.Embed("green apple fruit");
  auto c = enc.Embed("quantum flux capacitor");
  EXPECT_GT(Cos(a, b), Cos(a, c));
}

TEST(SbertLikeTest, SubwordShapeHelps) {
  SbertLikeEncoder enc(64);
  // Shared trigrams ("str", "tre", "ree", "eet") between street/streets.
  auto a = enc.Embed("street");
  auto b = enc.Embed("streets");
  auto c = enc.Embed("zzz");
  EXPECT_GT(Cos(a, b), Cos(a, c));
}

TEST(SbertLikeTest, ColumnEmbeddingUsesValues) {
  SbertLikeEncoder enc(64);
  Table t1("a", "d"), t2("b", "d");
  t1.AddColumn("x", {"paris", "london", "rome"});
  t2.AddColumn("y", {"paris", "london", "rome"});
  Table t3("c", "d");
  t3.AddColumn("z", {"17.5", "93.1", "2.7"});
  EXPECT_GT(Cos(enc.EmbedColumn(t1, 0), enc.EmbedColumn(t2, 0)),
            Cos(enc.EmbedColumn(t1, 0), enc.EmbedColumn(t3, 0)));
}

// ----------------------------------------------------------------- Josie

TEST(JosieTest, RanksByExactContainment) {
  JosieIndex index;
  index.AddColumn(1, 0, {"a", "b", "c", "d"});
  index.AddColumn(2, 0, {"a", "b"});
  index.AddColumn(3, 0, {"x", "y"});
  auto ranked = index.Search({"a", "b", "c"}, 5, /*exclude=*/99);
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 1u);  // containment 1.0
  EXPECT_EQ(ranked[1], 2u);  // containment 2/3
  for (size_t t : ranked) EXPECT_NE(t, 3u);
}

TEST(JosieTest, ExcludesQueryTable) {
  JosieIndex index;
  index.AddColumn(7, 0, {"a"});
  auto ranked = index.Search({"a"}, 5, /*exclude=*/7);
  EXPECT_TRUE(ranked.empty());
}

TEST(JosieTest, AddTableIndexesAllColumns) {
  JosieIndex index;
  index.AddTable(4, MakeToyTable());
  EXPECT_EQ(index.num_columns(), 2u);
  auto ranked = index.Search({"30", "40"}, 5, 99);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0], 4u);
}

// ------------------------------------------------------------- TinyBert

lakebench::DomainCatalog SmallCatalog() { return lakebench::DomainCatalog(42, 40); }

TEST(TinyBertTest, EncodeAndPoolShapes) {
  TinyBertConfig config;
  config.encoder.hidden = 16;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 32;
  config.encoder.dropout = 0.0f;
  config.vocab_size = 50;
  Rng rng(1);
  TinyBert bert(config, &rng);
  nn::Var h = bert.Encode({2, 7, 8, 3}, {}, false, &rng);
  EXPECT_EQ(h->value().rows(), 4u);
  EXPECT_EQ(h->value().cols(), 16u);
  nn::Var p = bert.Pool(h);
  EXPECT_EQ(p->value().rows(), 1u);
}

TEST(TinyBertTest, TruncatesLongInput) {
  TinyBertConfig config;
  config.encoder.hidden = 8;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 1;
  config.encoder.ffn_dim = 16;
  config.vocab_size = 50;
  config.max_seq_len = 10;
  Rng rng(2);
  TinyBert bert(config, &rng);
  std::vector<int> ids(100, 5);
  nn::Var h = bert.Encode(ids, {}, false, &rng);
  EXPECT_EQ(h->value().rows(), 10u);
}

// ----------------------------------------------- VanillaBert + DualEncoder

struct BaselineFixture {
  lakebench::DomainCatalog catalog = SmallCatalog();
  core::PairDataset ds;
  text::Vocab vocab;
  TinyBertConfig config;

  BaselineFixture() {
    lakebench::BenchScale scale;
    scale.num_pairs = 16;
    scale.rows = 10;
    ds = lakebench::MakeTusSantos(catalog, scale, 5);
    vocab = lakebench::BuildVocabFromTables(ds.tables, true);
    config.encoder.hidden = 16;
    config.encoder.num_layers = 1;
    config.encoder.num_heads = 2;
    config.encoder.ffn_dim = 32;
    config.encoder.dropout = 0.0f;
    config.vocab_size = vocab.size();
    config.max_seq_len = 48;
  }
};

TEST(VanillaBertTest, LossAndPredictRun) {
  BaselineFixture fx;
  text::Tokenizer tokenizer(&fx.vocab);
  Rng rng(3);
  VanillaBertBaseline model(fx.config, fx.ds.task, 2, &tokenizer, &rng);
  nn::Var loss = model.Loss(fx.ds, fx.ds.train[0], false, &rng);
  EXPECT_TRUE(std::isfinite(loss->value()[0]));
  auto pred = model.Predict(fx.ds, fx.ds.train[0]);
  ASSERT_EQ(pred.size(), 1u);
  EXPECT_GE(pred[0], 0.0f);
  EXPECT_LE(pred[0], 1.0f);
}

TEST(VanillaBertTest, TrainsOnHeaderSolvableTask) {
  BaselineFixture fx;
  text::Tokenizer tokenizer(&fx.vocab);
  Rng rng(4);
  VanillaBertBaseline model(fx.config, fx.ds.task, 2, &tokenizer, &rng);
  PairTrainOptions opt;
  opt.epochs = 8;
  opt.lr = 1e-3f;
  opt.patience = 8;
  opt.seed = 4;
  auto result = TrainPairModel(
      fx.ds, opt,
      [&](const core::PairExample& ex, bool training, Rng* r) {
        return model.Loss(fx.ds, ex, training, r);
      },
      model.Params("vb"));
  EXPECT_LT(result.train_losses.back(), result.train_losses.front());
}

TEST(ValueDualEncoderTest, AllModesForward) {
  BaselineFixture fx;
  text::Tokenizer tokenizer(&fx.vocab);
  for (auto mode : {DualEncoderMode::kTabertLike, DualEncoderMode::kTutaLike,
                    DualEncoderMode::kTapasLike, DualEncoderMode::kTabbieLike}) {
    Rng rng(5);
    ValueDualEncoder model(fx.config, mode, fx.ds.task, 2, &tokenizer, &rng);
    nn::Var loss = model.Loss(fx.ds, fx.ds.train[0], false, &rng);
    EXPECT_TRUE(std::isfinite(loss->value()[0])) << DualEncoderModeName(mode);
    auto pred = model.Predict(fx.ds, fx.ds.train[0]);
    EXPECT_EQ(pred.size(), 1u);
  }
}

TEST(ValueDualEncoderTest, FrozenModesExcludeEncoderParams) {
  BaselineFixture fx;
  text::Tokenizer tokenizer(&fx.vocab);
  Rng rng(6);
  ValueDualEncoder tapas(fx.config, DualEncoderMode::kTapasLike, fx.ds.task, 2,
                         &tokenizer, &rng);
  ValueDualEncoder tabert(fx.config, DualEncoderMode::kTabertLike, fx.ds.task, 2,
                          &tokenizer, &rng);
  EXPECT_LT(tapas.TrainableParams().size(), tabert.TrainableParams().size());
}

TEST(ValueDualEncoderTest, EmbedTableAndColumn) {
  BaselineFixture fx;
  text::Tokenizer tokenizer(&fx.vocab);
  Rng rng(7);
  ValueDualEncoder model(fx.config, DualEncoderMode::kTabertLike, fx.ds.task, 2,
                         &tokenizer, &rng);
  auto emb = model.EmbedTable(fx.ds.tables[0]);
  EXPECT_EQ(emb.size(), fx.config.encoder.hidden);
  auto cemb = model.EmbedColumn(fx.ds.tables[0], 0);
  EXPECT_EQ(cemb.size(), fx.config.encoder.hidden);
}

// -------------------------------------------------- Traditional baselines

lakebench::SearchBenchmark SmallJoinBench() {
  lakebench::WikiJoinScale scale;
  scale.num_pools = 5;
  scale.pool_size = 24;
  scale.num_tables = 30;
  scale.num_queries = 6;
  scale.rows = 20;
  return lakebench::MakeWikiJoinSearch(scale, 8);
}

TEST(LshForestSearchTest, FindsJoinableTables) {
  auto bench = SmallJoinBench();
  LshForestJoinSearch lsh(&bench);
  const auto& q = bench.queries[0];
  auto ranked = lsh.Rank(q.table_index, 0, 10);
  EXPECT_FALSE(ranked.empty());
  for (size_t t : ranked) EXPECT_NE(t, q.table_index);
}

TEST(JosieOnBenchTest, BeatsRandomOnGold) {
  auto bench = SmallJoinBench();
  JosieIndex josie;
  for (size_t t = 0; t < bench.tables.size(); ++t) josie.AddTable(t, bench.tables[t]);
  size_t hits = 0, total = 0;
  for (size_t q = 0; q < bench.queries.size(); ++q) {
    if (bench.gold[q].empty()) continue;
    auto ranked = josie.Search(
        DistinctCells(bench.tables[bench.queries[q].table_index].column(0)), 5,
        bench.queries[q].table_index);
    std::unordered_set<size_t> gold(bench.gold[q].begin(), bench.gold[q].end());
    for (size_t i = 0; i < std::min<size_t>(5, ranked.size()); ++i) {
      hits += gold.count(ranked[i]);
    }
    total += std::min<size_t>(5, gold.size());
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(hits) / total, 0.6);
}

TEST(TraditionalSearchTest, UnionBaselinesRankSiblingsHigh) {
  lakebench::DomainCatalog catalog = SmallCatalog();
  lakebench::UnionSearchScale scale;
  scale.num_seeds = 4;
  scale.variants_per_seed = 4;
  scale.num_queries = 6;
  scale.rows = 20;
  auto bench = MakeUnionSearch(catalog, scale, 9, "mini");
  SbertLikeEncoder enc(32);

  D3lUnionSearch d3l(&bench, &enc);
  SantosUnionSearch santos(&bench, &enc);
  StarmieUnionSearch starmie(&bench, &enc);

  auto top1_accuracy = [&](auto& method) {
    size_t hit = 0;
    for (size_t q = 0; q < bench.queries.size(); ++q) {
      auto ranked = method.Rank(bench.queries[q].table_index, 3);
      if (ranked.empty()) continue;
      std::unordered_set<size_t> gold(bench.gold[q].begin(), bench.gold[q].end());
      hit += gold.count(ranked[0]);
    }
    return static_cast<double>(hit) / bench.queries.size();
  };
  // Same-seed variants share headers, values and shapes: every method must
  // beat chance (chance ~ 3/15 = 0.2).
  EXPECT_GT(top1_accuracy(d3l), 0.5);
  EXPECT_GT(top1_accuracy(santos), 0.5);
  EXPECT_GT(top1_accuracy(starmie), 0.5);
}

TEST(TraditionalSearchTest, JoinBaselinesReturnRankings) {
  auto bench = SmallJoinBench();
  SbertLikeEncoder enc(32);
  WarpGateJoinSearch warpgate(&bench, &enc);
  DeepJoinSearch deepjoin(&bench, &enc);
  const auto& q = bench.queries[0];
  auto r1 = warpgate.Rank(q.table_index, 0, 5);
  auto r2 = deepjoin.Rank(q.table_index, 0, 5);
  EXPECT_FALSE(r1.empty());
  EXPECT_FALSE(r2.empty());
}

}  // namespace
}  // namespace tsfm::baselines
