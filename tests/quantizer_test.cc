// The SQ8 codec and the quantized flat index built on it: calibration
// shape, the scale/2 round-trip error bound, encode monotonicity, codec
// persistence, ScanTopKSq8 against a decoded-float reference, and the
// KnnIndex-level recall + format round-trip guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "search/distance_kernels.h"
#include "search/knn_index.h"
#include "search/quantizer.h"
#include "search/vector_index.h"
#include "test_util.h"
#include "util/random.h"

namespace tsfm::search {
namespace {

using testutil::RandomRows;
using testutil::RandomVec;

// ----------------------------------------------------------------- codec

TEST(Sq8CodecTest, TrainRecordsPerDimensionRange) {
  // Two rows straddling known ranges per dim.
  const size_t dim = 3;
  const std::vector<float> rows = {-1.0f, 2.0f, 5.0f,   // row 0
                                   3.0f, 2.0f, -5.0f};  // row 1
  const Sq8Codec codec = Sq8Codec::Train(rows.data(), 2, dim);
  ASSERT_TRUE(codec.trained());
  ASSERT_EQ(codec.dim(), dim);
  EXPECT_EQ(codec.offset()[0], -1.0f);
  EXPECT_EQ(codec.scale()[0], 4.0f / 255.0f);
  // Constant dim: offset is the constant, scale stays 1 so decode is exact.
  EXPECT_EQ(codec.offset()[1], 2.0f);
  EXPECT_EQ(codec.scale()[1], 1.0f);
  EXPECT_EQ(codec.offset()[2], -5.0f);
  EXPECT_EQ(codec.scale()[2], 10.0f / 255.0f);
}

TEST(Sq8CodecTest, RoundTripErrorBoundedByHalfScale) {
  Rng rng(71);
  for (size_t dim : {1u, 7u, 19u, 64u, 130u}) {
    const auto rows = RandomRows(&rng, 50, dim);
    const Sq8Codec codec = Sq8Codec::Train(rows.data(), 50, dim);
    std::vector<uint8_t> code(dim);
    std::vector<float> decoded(dim);
    for (size_t r = 0; r < 50; ++r) {
      codec.EncodeRow(rows.data() + r * dim, code.data());
      codec.DecodeRow(code.data(), decoded.data());
      for (size_t i = 0; i < dim; ++i) {
        // round() puts every in-range value within half a quantization
        // step of its reconstruction (small float slack for the affine
        // arithmetic itself).
        const float bound = codec.scale()[i] * 0.5f * (1.0f + 1e-4f) + 1e-6f;
        EXPECT_LE(std::abs(decoded[i] - rows[r * dim + i]), bound)
            << "dim " << dim << " row " << r << " component " << i;
      }
    }
  }
}

TEST(Sq8CodecTest, ConstantDimensionDecodesExactly) {
  const size_t dim = 5;
  std::vector<float> rows(3 * dim, 4.25f);
  const Sq8Codec codec = Sq8Codec::Train(rows.data(), 3, dim);
  std::vector<uint8_t> code(dim);
  std::vector<float> decoded(dim);
  codec.EncodeRow(rows.data(), code.data());
  codec.DecodeRow(code.data(), decoded.data());
  for (size_t i = 0; i < dim; ++i) EXPECT_EQ(decoded[i], 4.25f);
}

TEST(Sq8CodecTest, EncodeIsMonotonePerDimension) {
  // Calibration monotonicity: a larger value never encodes below a smaller
  // one in the same dimension (equal codes are fine — that is what
  // quantization does).
  Rng rng(73);
  const size_t dim = 9;
  const auto rows = RandomRows(&rng, 40, dim);
  const Sq8Codec codec = Sq8Codec::Train(rows.data(), 40, dim);
  std::vector<float> probe(dim, 0.0f);
  std::vector<uint8_t> prev(dim), cur(dim);
  for (size_t i = 0; i < dim; ++i) probe[i] = codec.offset()[i] - 1.0f;
  codec.EncodeRow(probe.data(), prev.data());
  for (int step = 0; step < 64; ++step) {
    for (size_t i = 0; i < dim; ++i) {
      probe[i] += codec.scale()[i] * 8.0f;  // sweep through the range
    }
    codec.EncodeRow(probe.data(), cur.data());
    for (size_t i = 0; i < dim; ++i) {
      EXPECT_GE(cur[i], prev[i]) << "dim " << i << " step " << step;
    }
    std::swap(prev, cur);
  }
}

TEST(Sq8CodecTest, OutOfRangeValuesClampToRangeEdges) {
  const size_t dim = 2;
  const std::vector<float> rows = {0.0f, -1.0f, 10.0f, 1.0f};
  const Sq8Codec codec = Sq8Codec::Train(rows.data(), 2, dim);
  const std::vector<float> below = {-100.0f, -100.0f};
  const std::vector<float> above = {100.0f, 100.0f};
  std::vector<uint8_t> code(dim);
  codec.EncodeRow(below.data(), code.data());
  EXPECT_EQ(code[0], 0);
  EXPECT_EQ(code[1], 0);
  codec.EncodeRow(above.data(), code.data());
  EXPECT_EQ(code[0], 255);
  EXPECT_EQ(code[1], 255);
}

TEST(Sq8CodecTest, DecodedNormMatchesDecodeThenNorm) {
  Rng rng(79);
  const size_t dim = 33;
  const auto rows = RandomRows(&rng, 8, dim);
  const Sq8Codec codec = Sq8Codec::Train(rows.data(), 8, dim);
  std::vector<uint8_t> code(dim);
  std::vector<float> decoded(dim);
  for (size_t r = 0; r < 8; ++r) {
    codec.EncodeRow(rows.data() + r * dim, code.data());
    codec.DecodeRow(code.data(), decoded.data());
    float sq = 0.0f;
    for (float v : decoded) sq += v * v;
    EXPECT_NEAR(codec.DecodedNorm(code.data()), std::sqrt(sq),
                1e-4f * (1.0f + std::sqrt(sq)));
  }
}

TEST(Sq8CodecTest, SaveLoadRoundTripsBitExactly) {
  Rng rng(83);
  const size_t dim = 21;
  const auto rows = RandomRows(&rng, 30, dim);
  const Sq8Codec codec = Sq8Codec::Train(rows.data(), 30, dim);
  std::stringstream buf;
  ASSERT_TRUE(codec.Save(buf).ok());
  auto loaded = Sq8Codec::Load(buf, dim);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().scale(), codec.scale());
  EXPECT_EQ(loaded.value().offset(), codec.offset());
}

TEST(Sq8CodecTest, LoadRejectsWrongDimAndGarbage) {
  Rng rng(89);
  const auto rows = RandomRows(&rng, 5, 8);
  const Sq8Codec codec = Sq8Codec::Train(rows.data(), 5, 8);
  std::stringstream buf;
  ASSERT_TRUE(codec.Save(buf).ok());
  EXPECT_FALSE(Sq8Codec::Load(buf, 9).ok());
  std::stringstream garbage("not a codec section at all");
  EXPECT_FALSE(Sq8Codec::Load(garbage, 8).ok());
  std::stringstream empty;
  EXPECT_FALSE(Sq8Codec::Load(empty, 8).ok());
}

TEST(Sq8CodecTest, FromPartsRejectsBadCalibration) {
  EXPECT_FALSE(Sq8Codec::FromParts({1.0f, 0.0f}, {0.0f, 0.0f}).ok());
  EXPECT_FALSE(Sq8Codec::FromParts({1.0f}, {0.0f, 0.0f}).ok());
  EXPECT_TRUE(Sq8Codec::FromParts({1.0f, 2.0f}, {0.0f, -3.0f}).ok());
}

// ----------------------------------------------------------- ScanTopKSq8

TEST(Sq8ScanTest, MatchesFloatScanOverDecodedRows) {
  // The rescore contract: ScanTopKSq8's output must equal ScanTopK run on
  // the decoded rows — same ids, distances within the kernel tolerance.
  Rng rng(97);
  const size_t dim = 19, rows = 400;
  const auto data = RandomRows(&rng, rows, dim);
  const Sq8Codec codec = Sq8Codec::Train(data.data(), rows, dim);
  std::vector<uint8_t> codes(rows * dim);
  std::vector<float> decoded(rows * dim);
  std::vector<float> norms(rows);
  for (size_t r = 0; r < rows; ++r) {
    codec.EncodeRow(data.data() + r * dim, codes.data() + r * dim);
    codec.DecodeRow(codes.data() + r * dim, decoded.data() + r * dim);
    norms[r] = codec.DecodedNorm(codes.data() + r * dim);
  }
  const auto query = RandomVec(&rng, dim);
  for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
    for (Metric metric : {Metric::kCosine, Metric::kL2}) {
      for (size_t k : {1u, 10u, 63u, 400u}) {
        const auto expected = ScanTopK(*kd, query.data(), decoded.data(),
                                       norms.data(), rows, dim, metric, k);
        const auto got = ScanTopKSq8(*kd, query.data(), codes.data(), codec,
                                     norms.data(), rows, metric, k);
        ASSERT_EQ(got.size(), expected.size())
            << kd->name << " k=" << k;
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].row, expected[i].row)
              << kd->name << " metric " << static_cast<int>(metric)
              << " k=" << k << " i=" << i;
          const float scale = std::max(
              {1.0f, std::abs(got[i].distance), std::abs(expected[i].distance)});
          EXPECT_LE(std::abs(got[i].distance - expected[i].distance),
                    1e-4f * scale);
        }
      }
    }
  }
}

TEST(Sq8ScanTest, DegenerateInputs) {
  const Sq8Codec codec = Sq8Codec::Train(nullptr, 0, 4);
  const std::vector<float> query = {1.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_TRUE(ScanTopKSq8(query.data(), nullptr, codec, nullptr, 0,
                          Metric::kL2, 5)
                  .empty());
  const std::vector<uint8_t> codes = {1, 2, 3, 4};
  const std::vector<float> norms = {1.0f};
  EXPECT_TRUE(ScanTopKSq8(query.data(), codes.data(), codec, norms.data(), 1,
                          Metric::kCosine, 0)
                  .empty());
}

// ------------------------------------------------------- KnnIndex (kSq8)

TEST(Sq8KnnIndexTest, RecallAtTenAgainstFloatFlat) {
  // The acceptance bound: over a normal corpus, sq8 + exact rescore keeps
  // recall@10 >= 0.99 vs the float flat scan. Recall is tie-aware: on
  // Gaussian data the 10th and 11th neighbours are often separated by less
  // than one quantization step, and swapping such effective ties is within
  // the codec's contract, so a returned row also counts as a hit when its
  // exact float distance is within 0.1% of the gold 10th distance.
  Rng rng(101);
  const size_t dim = 64, n = 2000, queries = 50, k = 10;
  for (Metric metric : {Metric::kCosine, Metric::kL2}) {
    KnnIndex flat(dim, metric);
    KnnIndex sq8(dim, metric, Storage::kSq8);
    for (size_t r = 0; r < n; ++r) {
      const auto v = RandomVec(&rng, dim);
      flat.Add(r, v);
      sq8.Add(r, v);
    }
    double sum = 0.0;
    for (size_t q = 0; q < queries; ++q) {
      const auto query = RandomVec(&rng, dim);
      const auto all = flat.Search(query, n);
      ASSERT_GE(all.size(), k);
      std::unordered_map<size_t, float> float_dist;
      for (const auto& [p, d] : all) float_dist[p] = d;
      const float kth = all[k - 1].second;
      const float cutoff = kth + 1e-3f * std::max(1.0f, std::fabs(kth));
      size_t hits = 0;
      for (const auto& [p, d] : sq8.Search(query, k)) {
        hits += float_dist.at(p) <= cutoff;
      }
      sum += static_cast<double>(hits) / static_cast<double>(k);
    }
    const double recall = sum / static_cast<double>(queries);
    EXPECT_GE(recall, 0.99) << "metric " << static_cast<int>(metric);
  }
}

TEST(Sq8KnnIndexTest, SaveLoadRoundTripsSearchResults) {
  Rng rng(103);
  const size_t dim = 17, n = 200;
  KnnIndex index(dim, Metric::kCosine, Storage::kSq8);
  for (size_t r = 0; r < n; ++r) index.Add(r * 3, RandomVec(&rng, dim));

  std::stringstream buf;
  ASSERT_TRUE(index.Save(buf).ok());
  auto loaded = LoadVectorIndex(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto* restored = dynamic_cast<const KnnIndex*>(loaded.value().get());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->storage(), Storage::kSq8);
  EXPECT_EQ(restored->size(), n);

  for (int trial = 0; trial < 10; ++trial) {
    const auto query = RandomVec(&rng, dim);
    const auto a = index.Search(query, 10);
    const auto b = loaded.value()->Search(query, 10);
    // Same codes, same codec, same kernels: results are identical.
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].first, b[i].first);
      EXPECT_EQ(a[i].second, b[i].second);
    }
  }
}

TEST(Sq8KnnIndexTest, AddAfterSearchKeepsRoundTripFaithful) {
  // Rows added after the codec trained encode through the existing
  // calibration; a save/load round trip must reproduce the same results
  // (the persisted codec pins the calibration).
  Rng rng(107);
  const size_t dim = 12;
  KnnIndex index(dim, Metric::kL2, Storage::kSq8);
  for (size_t r = 0; r < 100; ++r) index.Add(r, RandomVec(&rng, dim));
  (void)index.Search(RandomVec(&rng, dim), 5);  // trains the codec
  for (size_t r = 100; r < 140; ++r) index.Add(r, RandomVec(&rng, dim));

  std::stringstream buf;
  ASSERT_TRUE(index.Save(buf).ok());
  auto loaded = LoadVectorIndex(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->size(), 140u);
  const auto query = RandomVec(&rng, dim);
  const auto a = index.Search(query, 20);
  const auto b = loaded.value()->Search(query, 20);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second);
  }
}

TEST(Sq8KnnIndexTest, MakeVectorIndexHonorsStorage) {
  IndexOptions options;
  options.storage = Storage::kSq8;
  auto index = MakeVectorIndex(8, options);
  const auto* flat = dynamic_cast<const KnnIndex*>(index.get());
  ASSERT_NE(flat, nullptr);
  EXPECT_EQ(flat->storage(), Storage::kSq8);
  EXPECT_NE(flat->sq8_codec(), nullptr);  // trains (empty) on demand
}

TEST(Sq8KnnIndexTest, DistancesLiveInDecodedSpace) {
  // An sq8 index queried with one of its own (encoded) rows must report a
  // distance near zero — the rescore ranks decoded rows, not proxies.
  Rng rng(109);
  const size_t dim = 24;
  KnnIndex index(dim, Metric::kL2, Storage::kSq8);
  std::vector<std::vector<float>> rows;
  for (size_t r = 0; r < 50; ++r) {
    rows.push_back(RandomVec(&rng, dim));
    index.Add(r, rows.back());
  }
  const auto hits = index.Search(rows[7], 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, 7u);
  // Bounded by the codec's round-trip error, far below inter-row L2 (~7).
  EXPECT_LT(hits[0].second, 0.1f);
}

}  // namespace
}  // namespace tsfm::search
