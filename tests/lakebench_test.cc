#include <gtest/gtest.h>

#include <unordered_set>

#include "lakebench/corpus.h"
#include "lakebench/datagen.h"
#include "lakebench/finetune_benchmarks.h"
#include "lakebench/search_benchmarks.h"

namespace tsfm::lakebench {
namespace {

DomainCatalog SmallCatalog() { return DomainCatalog(42, 60); }

// ---------------------------------------------------------------- Datagen

TEST(DatagenTest, SyntheticNamesAreCapitalizedAndVaried) {
  Rng rng(1);
  std::unordered_set<std::string> names;
  for (int i = 0; i < 100; ++i) {
    std::string n = SyntheticName(&rng);
    EXPECT_FALSE(n.empty());
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(n[0])));
    names.insert(n);
  }
  EXPECT_GT(names.size(), 80u);
}

TEST(DatagenTest, EntityPoolsAreDistinct) {
  Rng rng(2);
  auto pool = MakeEntityPool(50, &rng);
  std::unordered_set<std::string> unique(pool.begin(), pool.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(DatagenTest, SyntheticCodesLookEnterprise) {
  Rng rng(3);
  std::string code = SyntheticCode(&rng);
  EXPECT_NE(code.find('_'), std::string::npos);
}

TEST(DatagenTest, CatalogIsDeterministic) {
  DomainCatalog a(42, 30), b(42, 30);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.domain(0).entity_pools[0][0], b.domain(0).entity_pools[0][0]);
  EXPECT_EQ(a.size(), 12u);  // the 12 documented domains
}

TEST(DatagenTest, DomainTableMatchesSchema) {
  DomainCatalog catalog = SmallCatalog();
  Rng rng(4);
  Table t = GenerateDomainTable(catalog.domain(0), "t0", 20, &rng);
  EXPECT_EQ(t.num_rows(), 20u);
  EXPECT_EQ(t.num_columns(), catalog.domain(0).columns.size());
  EXPECT_TRUE(t.Validate());
  // Types inferred: mass grams should be numeric.
  int mass_idx = t.ColumnIndex("mass grams");
  ASSERT_GE(mass_idx, 0);
  EXPECT_NE(t.column(mass_idx).type, ColumnType::kString);
}

// ------------------------------------------------------ Finetune datasets

TEST(FinetuneBenchTest, SplitsAreDisjointAndCover) {
  DomainCatalog catalog = SmallCatalog();
  BenchScale scale;
  scale.num_pairs = 40;
  scale.rows = 12;
  auto ds = MakeTusSantos(catalog, scale, 5);
  EXPECT_EQ(ds.train.size() + ds.val.size() + ds.test.size(), 40u);
  EXPECT_GT(ds.train.size(), ds.val.size());
}

TEST(FinetuneBenchTest, TusSantosHeadersRevealLabel) {
  DomainCatalog catalog = SmallCatalog();
  BenchScale scale;
  scale.num_pairs = 30;
  scale.rows = 10;
  auto ds = MakeTusSantos(catalog, scale, 6);
  // Positive pairs share every column header; negatives share few.
  auto header_overlap = [&](const core::PairExample& ex) {
    std::unordered_set<std::string> ha;
    for (const auto& c : ds.tables[ex.a].columns()) ha.insert(c.name);
    size_t shared = 0;
    for (const auto& c : ds.tables[ex.b].columns()) shared += ha.count(c.name);
    return static_cast<double>(shared) / ds.tables[ex.b].num_columns();
  };
  for (const auto& ex : ds.train) {
    if (ex.label == 1) {
      EXPECT_GT(header_overlap(ex), 0.99);
    } else {
      EXPECT_LT(header_overlap(ex), 0.5);
    }
  }
}

TEST(FinetuneBenchTest, WikiUnionHeadersAreUninformative) {
  DomainCatalog catalog = SmallCatalog();
  BenchScale scale;
  scale.num_pairs = 20;
  scale.rows = 12;
  auto ds = MakeWikiUnion(catalog, scale, 7);
  // Every table has the same generic headers.
  for (const auto& t : ds.tables) {
    EXPECT_EQ(t.column(0).name, "name");
    EXPECT_EQ(t.column(1).name, "value");
  }
}

TEST(FinetuneBenchTest, WikiJaccardTargetsMatchExactJaccard) {
  DomainCatalog catalog = SmallCatalog();
  BenchScale scale;
  scale.num_pairs = 25;
  scale.rows = 20;
  auto ds = MakeWikiJaccard(catalog, scale, 8);
  for (const auto& ex : ds.train) {
    // Recompute jaccard over the entity columns' distinct values.
    std::unordered_set<std::string> sa, sb;
    for (const auto& v : ds.tables[ex.a].column(0).cells) sa.insert(v);
    for (const auto& v : ds.tables[ex.b].column(0).cells) sb.insert(v);
    size_t inter = 0;
    for (const auto& v : sb) inter += sa.count(v);
    double jaccard =
        static_cast<double>(inter) / static_cast<double>(sa.size() + sb.size() - inter);
    EXPECT_NEAR(ex.target, jaccard, 1e-5);
    EXPECT_GE(ex.target, 0.0f);
    EXPECT_LE(ex.target, 1.0f);
  }
}

TEST(FinetuneBenchTest, WikiContainmentTargetsInRange) {
  DomainCatalog catalog = SmallCatalog();
  BenchScale scale;
  scale.num_pairs = 20;
  scale.rows = 20;
  auto ds = MakeWikiContainment(catalog, scale, 9);
  bool saw_positive = false;
  for (const auto& ex : ds.train) {
    EXPECT_GE(ex.target, 0.0f);
    EXPECT_LE(ex.target, 1.0f);
    saw_positive |= ex.target > 0.1f;
  }
  EXPECT_TRUE(saw_positive);
}

TEST(FinetuneBenchTest, EcbUnionTargetIsSharedFraction) {
  DomainCatalog catalog = SmallCatalog();
  BenchScale scale;
  scale.num_pairs = 15;
  scale.rows = 10;
  scale.wide_cols = 8;
  auto ds = MakeEcbUnion(catalog, scale, 10);
  for (const auto& ex : ds.train) {
    // Count exact header matches = shared columns.
    std::unordered_set<std::string> ha;
    for (const auto& c : ds.tables[ex.a].columns()) ha.insert(c.name);
    size_t shared = 0;
    for (const auto& c : ds.tables[ex.b].columns()) shared += ha.count(c.name);
    EXPECT_NEAR(ex.target, static_cast<double>(shared) / 8.0, 1e-5);
  }
}

TEST(FinetuneBenchTest, SpiderJoinPositivesHaveValueOverlap) {
  DomainCatalog catalog = SmallCatalog();
  BenchScale scale;
  scale.num_pairs = 30;
  scale.rows = 20;
  auto ds = MakeSpiderOpenData(catalog, scale, 11);
  for (const auto& ex : ds.train) {
    std::unordered_set<std::string> keys;
    for (const auto& v : ds.tables[ex.a].column(0).cells) keys.insert(v);
    size_t overlap = 0;
    std::unordered_set<std::string> fk;
    for (const auto& v : ds.tables[ex.b].column(0).cells) fk.insert(v);
    for (const auto& v : fk) overlap += keys.count(v);
    double containment = static_cast<double>(overlap) / fk.size();
    if (ex.label == 1) {
      EXPECT_GT(containment, 0.5);
    } else {
      EXPECT_LT(containment, 0.3);
    }
  }
}

TEST(FinetuneBenchTest, EcbJoinLabelsMatchConstruction) {
  DomainCatalog catalog = SmallCatalog();
  BenchScale scale;
  scale.num_pairs = 10;
  scale.rows = 16;
  auto ds = MakeEcbJoin(catalog, scale, 12);
  EXPECT_EQ(ds.num_outputs, kEcbJoinLabels);
  for (const auto& ex : ds.train) {
    ASSERT_EQ(ex.multi_labels.size(), kEcbJoinLabels);
    for (size_t c = 0; c < kEcbJoinLabels; ++c) {
      const auto& name = ds.tables[ex.a].column(c).name;
      // Joinable columns were named "key ..."; others "obs ...".
      if (ex.multi_labels[c] > 0.5f) {
        EXPECT_EQ(name.substr(0, 3), "key");
      } else {
        EXPECT_EQ(name.substr(0, 3), "obs");
      }
    }
  }
}

TEST(FinetuneBenchTest, CkanSubsetPositivesAreRealSubsets) {
  DomainCatalog catalog = SmallCatalog();
  BenchScale scale;
  scale.num_pairs = 16;
  scale.rows = 20;
  auto ds = MakeCkanSubset(catalog, scale, 13);
  for (const auto& ex : ds.train) {
    const Table& a = ds.tables[ex.a];
    const Table& b = ds.tables[ex.b];
    // Identical headers in both classes.
    ASSERT_EQ(a.num_columns(), b.num_columns());
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.column(c).name, b.column(c).name);
    }
    if (ex.label == 1) {
      // Every row string of B appears in A.
      std::unordered_set<std::string> rows_a;
      for (size_t r = 0; r < a.num_rows(); ++r) rows_a.insert(a.RowString(r));
      for (size_t r = 0; r < b.num_rows(); ++r) {
        EXPECT_TRUE(rows_a.count(b.RowString(r))) << "row " << r << " not in A";
      }
    }
  }
}

TEST(FinetuneBenchTest, AllEightBenchmarksGenerate) {
  DomainCatalog catalog = SmallCatalog();
  BenchScale scale;
  scale.num_pairs = 10;
  scale.rows = 10;
  auto all = MakeAllFinetuneBenchmarks(catalog, scale, 14);
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].name, "TUS-SANTOS");
  EXPECT_EQ(all[7].name, "CKAN Subset");
  for (const auto& ds : all) {
    EXPECT_FALSE(ds.tables.empty());
    EXPECT_FALSE(ds.train.empty());
    for (const auto& ex : ds.train) {
      EXPECT_LT(ex.a, ds.tables.size());
      EXPECT_LT(ex.b, ds.tables.size());
    }
  }
}

// -------------------------------------------------------- Search datasets

TEST(SearchBenchTest, WikiJoinGoldRespectsAnnotations) {
  WikiJoinScale scale;
  scale.num_pools = 6;
  scale.pool_size = 30;
  scale.num_tables = 40;
  scale.num_queries = 8;
  scale.rows = 24;
  auto bench = MakeWikiJoinSearch(scale, 15);
  EXPECT_EQ(bench.tables.size(), 40u);
  EXPECT_EQ(bench.queries.size(), 8u);
  ASSERT_EQ(bench.gold.size(), 8u);
  // Most queries should have same-pool gold tables.
  size_t with_gold = 0;
  for (const auto& g : bench.gold) with_gold += !g.empty();
  EXPECT_GT(with_gold, 4u);
  // Gold never contains the query itself.
  for (size_t q = 0; q < bench.queries.size(); ++q) {
    for (size_t t : bench.gold[q]) {
      EXPECT_NE(t, bench.queries[q].table_index);
    }
  }
}

TEST(SearchBenchTest, WikiJoinHasSurfaceTraps) {
  WikiJoinScale scale;
  scale.num_pools = 4;
  scale.pool_size = 30;
  scale.num_tables = 20;
  scale.num_queries = 4;
  scale.rows = 24;
  scale.surface_overlap = 0.3;
  auto bench = MakeWikiJoinSearch(scale, 16);
  // Count distinct surface values across tables of different pools: with
  // surface overlap, some literal values must collide across pools.
  std::unordered_set<std::string> v0, v1;
  for (const auto& c : bench.tables[0].column(0).cells) v0.insert(c);
  size_t collisions = 0;
  for (size_t t = 1; t < bench.tables.size(); ++t) {
    if (bench.column_annotations[t][0][0] == bench.column_annotations[0][0][0]) {
      continue;  // same pool, skip
    }
    for (const auto& c : bench.tables[t].column(0).cells) {
      collisions += v0.count(c);
    }
  }
  EXPECT_GT(collisions, 0u);
}

TEST(SearchBenchTest, UnionSearchGoldIsSameSeed) {
  DomainCatalog catalog = SmallCatalog();
  UnionSearchScale scale;
  scale.num_seeds = 4;
  scale.variants_per_seed = 5;
  scale.num_queries = 6;
  scale.rows = 20;
  auto bench = MakeUnionSearch(catalog, scale, 17, "TUS");
  EXPECT_EQ(bench.tables.size(), 20u);
  for (size_t q = 0; q < bench.queries.size(); ++q) {
    EXPECT_EQ(bench.gold[q].size(), 4u);  // variants_per_seed - 1
    size_t group = bench.queries[q].table_index / 5;
    for (size_t t : bench.gold[q]) {
      EXPECT_EQ(t / 5, group);
    }
  }
}

TEST(SearchBenchTest, EurostatVariantsFollowFig7) {
  DomainCatalog catalog = SmallCatalog();
  Rng rng(18);
  Table seed = GenerateDomainTable(catalog.domain(8), "s", 40, &rng);
  auto variants = MakeEurostatVariants(seed, &rng);
  ASSERT_EQ(variants.size(), 11u);
  // Variant 0: 25% rows, 25% cols.
  EXPECT_EQ(variants[0].num_rows(), 10u);
  // Variant 3: all rows, 25% cols.
  EXPECT_EQ(variants[3].num_rows(), 40u);
  EXPECT_LT(variants[3].num_columns(), seed.num_columns());
  // Variant 9 (shuffle columns): same shape as seed.
  EXPECT_EQ(variants[9].num_rows(), seed.num_rows());
  EXPECT_EQ(variants[9].num_columns(), seed.num_columns());
  // Variant 10 (shuffle rows): same shape.
  EXPECT_EQ(variants[10].num_rows(), seed.num_rows());
  EXPECT_EQ(variants[10].num_columns(), seed.num_columns());
}

TEST(SearchBenchTest, EurostatBenchmarkShape) {
  DomainCatalog catalog = SmallCatalog();
  EurostatScale scale;
  scale.num_seeds = 3;
  scale.rows = 16;
  auto bench = MakeEurostatSubsetSearch(catalog, scale, 19);
  EXPECT_EQ(bench.tables.size(), 3u * 12u);  // seed + 11 variants
  EXPECT_EQ(bench.queries.size(), 3u);
  for (const auto& g : bench.gold) EXPECT_EQ(g.size(), 11u);
}

// ----------------------------------------------------------------- Corpus

TEST(CorpusTest, AugmentationMultipliesTables) {
  DomainCatalog catalog = SmallCatalog();
  CorpusScale scale;
  scale.num_tables = 5;
  scale.augmentations = 2;
  auto corpus = MakePretrainCorpus(catalog, scale, 20);
  EXPECT_EQ(corpus.size(), 15u);  // base + 2 shuffles each
}

TEST(CorpusTest, AugmentedCopiesPreserveColumnsSet) {
  DomainCatalog catalog = SmallCatalog();
  CorpusScale scale;
  scale.num_tables = 3;
  scale.augmentations = 1;
  auto corpus = MakePretrainCorpus(catalog, scale, 21);
  // Each aug table is adjacent to its base (aug first, then base).
  const Table& aug = corpus[0];
  const Table& base = corpus[1];
  std::unordered_set<std::string> base_cols, aug_cols;
  for (const auto& c : base.columns()) base_cols.insert(c.name);
  for (const auto& c : aug.columns()) aug_cols.insert(c.name);
  EXPECT_EQ(base_cols, aug_cols);
}

TEST(CorpusTest, VocabCoversColumnNames) {
  DomainCatalog catalog = SmallCatalog();
  CorpusScale scale;
  scale.num_tables = 6;
  scale.augmentations = 0;
  auto corpus = MakePretrainCorpus(catalog, scale, 22);
  text::Vocab vocab = BuildVocabFromTables(corpus, false);
  EXPECT_GT(vocab.size(), 20u);
  // A column word from domain 0 must be present.
  EXPECT_TRUE(vocab.Contains("name") || vocab.Contains("site") ||
              vocab.Contains("population") || vocab.Contains("year"));
}

TEST(CorpusTest, IncludeCellsGrowsVocab) {
  DomainCatalog catalog = SmallCatalog();
  CorpusScale scale;
  scale.num_tables = 4;
  scale.augmentations = 0;
  auto corpus = MakePretrainCorpus(catalog, scale, 23);
  text::Vocab without = BuildVocabFromTables(corpus, false);
  text::Vocab with = BuildVocabFromTables(corpus, true);
  EXPECT_GT(with.size(), without.size());
}

}  // namespace
}  // namespace tsfm::lakebench
