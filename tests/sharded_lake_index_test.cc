// ShardedLakeIndex: scatter/gather parity against the unsharded LakeIndex,
// HNSW recall per shard count, the "LAKS" manifest round trip, and failure
// injection for missing/truncated/legacy files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "search/sharded_lake_index.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tsfm::search {
namespace {

using testutil::Corpus;
using testutil::MakeCorpus;
using testutil::RandomVec;
using testutil::RecallAtK;

LakeIndex BuildUnsharded(const Corpus& corpus, size_t dim,
                         const IndexOptions& options = {}) {
  LakeIndex index(dim, options);
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    index.AddTable(corpus.ids[t], corpus.tables[t]);
  }
  return index;
}

ShardedLakeIndex BuildSharded(const Corpus& corpus, size_t dim, size_t shards,
                              const IndexOptions& options = {}) {
  ShardedLakeIndex index(dim, shards, options);
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    index.AddTable(corpus.ids[t], corpus.tables[t]);
  }
  return index;
}

TEST(ShardedLakeIndexTest, FlatBackendExactParityWithUnsharded) {
  const size_t dim = 16;
  Corpus corpus = MakeCorpus(60, dim, 1);
  LakeIndex reference = BuildUnsharded(corpus, dim);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
    ShardedLakeIndex sharded = BuildSharded(corpus, dim, shards);
    EXPECT_EQ(sharded.num_shards(), shards);
    EXPECT_EQ(sharded.num_tables(), corpus.tables.size());
    for (const auto& q : corpus.join_queries) {
      EXPECT_EQ(sharded.QueryJoinable(q, 5), reference.QueryJoinable(q, 5))
          << shards << " shards";
    }
    for (const auto& q : corpus.union_queries) {
      EXPECT_EQ(sharded.QueryUnionable(q, 5), reference.QueryUnionable(q, 5))
          << shards << " shards";
    }
  }
}

TEST(ShardedLakeIndexTest, HnswRecallAtLeastPointNinePerShardCount) {
  const size_t dim = 16, k = 10;
  Corpus corpus = MakeCorpus(200, dim, 2);
  LakeIndex flat_gold = BuildUnsharded(corpus, dim);
  IndexOptions hnsw;
  hnsw.backend = IndexBackend::kHnsw;
  hnsw.hnsw.ef_search = 128;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
    ShardedLakeIndex sharded = BuildSharded(corpus, dim, shards, hnsw);
    double recall_sum = 0;
    for (const auto& q : corpus.join_queries) {
      auto gold = flat_gold.QueryJoinable(q, k);
      ASSERT_GE(gold.size(), k);
      recall_sum += RecallAtK(gold, sharded.QueryJoinable(q, k), k);
    }
    EXPECT_GE(recall_sum / static_cast<double>(corpus.join_queries.size()), 0.9)
        << shards << " shards";
  }
}

TEST(ShardedLakeIndexTest, ScatterAndBatchMatchSerial) {
  const size_t dim = 16;
  Corpus corpus = MakeCorpus(50, dim, 3);
  ShardedLakeIndex sharded = BuildSharded(corpus, dim, 3);
  ThreadPool pool(3);
  for (const auto& q : corpus.join_queries) {
    // Pool-scattered single query == serial single query.
    EXPECT_EQ(sharded.QueryJoinable(q, 5, &pool), sharded.QueryJoinable(q, 5));
  }
  auto join_batch = sharded.QueryJoinableBatch(corpus.join_queries, 5, &pool);
  ASSERT_EQ(join_batch.size(), corpus.join_queries.size());
  for (size_t q = 0; q < corpus.join_queries.size(); ++q) {
    EXPECT_EQ(join_batch[q], sharded.QueryJoinable(corpus.join_queries[q], 5));
  }
  auto union_batch = sharded.QueryUnionableBatch(corpus.union_queries, 5, &pool);
  ASSERT_EQ(union_batch.size(), corpus.union_queries.size());
  for (size_t q = 0; q < corpus.union_queries.size(); ++q) {
    EXPECT_EQ(union_batch[q], sharded.QueryUnionable(corpus.union_queries[q], 5));
  }
}

TEST(ShardedLakeIndexTest, ManifestRoundTripBothBackends) {
  const size_t dim = 12;
  Corpus corpus = MakeCorpus(40, dim, 4);
  for (auto backend : {IndexBackend::kFlat, IndexBackend::kHnsw}) {
    IndexOptions options;
    options.backend = backend;
    options.hnsw.ef_search = 96;
    ShardedLakeIndex index = BuildSharded(corpus, dim, 3, options);
    std::string path = testing::TempDir() + "/tsfm_sharded_lake.laks";
    ThreadPool pool(3);
    ASSERT_TRUE(index.Save(path, &pool).ok());

    auto loaded = ShardedLakeIndex::Load(path, &pool);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().num_shards(), 3u);
    EXPECT_EQ(loaded.value().num_tables(), corpus.tables.size());
    EXPECT_EQ(loaded.value().options().backend, backend);
    EXPECT_EQ(loaded.value().options().hnsw.ef_search, 96u);
    // Global handles survive the round trip: handle h still names the same
    // table (the manifest records the insertion order).
    for (size_t h = 0; h < index.num_tables(); ++h) {
      EXPECT_EQ(loaded.value().table_id(h), index.table_id(h));
    }
    // Shard files rebuild each shard's index deterministically, so the
    // loaded index answers queries identically — both backends.
    for (const auto& q : corpus.join_queries) {
      EXPECT_EQ(loaded.value().QueryJoinable(q, 5), index.QueryJoinable(q, 5));
    }
    for (const auto& q : corpus.union_queries) {
      EXPECT_EQ(loaded.value().QueryUnionable(q, 5), index.QueryUnionable(q, 5));
    }
    std::remove(path.c_str());
    for (size_t s = 0; s < 3; ++s) {
      std::remove((path + ".shard-" + std::to_string(s)).c_str());
    }
  }
}

TEST(ShardedLakeIndexTest, Sq8ManifestRoundTrip) {
  const size_t dim = 12;
  Corpus corpus = MakeCorpus(40, dim, 9);
  IndexOptions options;
  options.storage = Storage::kSq8;
  ShardedLakeIndex index = BuildSharded(corpus, dim, 3, options);
  std::string path = testing::TempDir() + "/tsfm_sharded_sq8.laks";
  ThreadPool pool(3);
  ASSERT_TRUE(index.Save(path, &pool).ok());

  auto loaded = ShardedLakeIndex::Load(path, &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().options().storage, Storage::kSq8);
  EXPECT_EQ(loaded.value().num_tables(), corpus.tables.size());
  // Shard files persist codec + codes, so the loaded index ranks exactly
  // like the writer.
  for (const auto& q : corpus.join_queries) {
    EXPECT_EQ(loaded.value().QueryJoinable(q, 5), index.QueryJoinable(q, 5));
  }
  for (const auto& q : corpus.union_queries) {
    EXPECT_EQ(loaded.value().QueryUnionable(q, 5), index.QueryUnionable(q, 5));
  }
  std::remove(path.c_str());
  for (size_t s = 0; s < 3; ++s) {
    std::remove((path + ".shard-" + std::to_string(s)).c_str());
  }
}

TEST(ShardedLakeIndexTest, MixedStorageShardsRejected) {
  // A manifest that says sq8 but points at a float32 shard file (or vice
  // versa) is corrupt; loading must fail with a clear ParseError, not
  // silently mix representations.
  const size_t dim = 8;
  Corpus corpus = MakeCorpus(30, dim, 10);
  IndexOptions sq8;
  sq8.storage = Storage::kSq8;
  ShardedLakeIndex index = BuildSharded(corpus, dim, 3, sq8);
  std::string path = testing::TempDir() + "/tsfm_sharded_mixed.laks";
  ASSERT_TRUE(index.Save(path).ok());

  // Overwrite shard 1 with a float32 lake of the same dim.
  Rng rng(11);
  LakeIndex imposter(dim);
  imposter.AddTable("imposter", {RandomVec(&rng, dim)});
  ASSERT_TRUE(imposter.Save(path + ".shard-1").ok());

  auto loaded = ShardedLakeIndex::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().ToString().find("storage"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
  for (size_t s = 0; s < 3; ++s) {
    std::remove((path + ".shard-" + std::to_string(s)).c_str());
  }
}

TEST(ShardedLakeIndexTest, Sq8RecallAtTenVersusFloatFlat) {
  // Acceptance bar for quantized storage: after exact rescore, sharded sq8
  // recall@10 against the float32 flat gold standard is at least 0.99.
  const size_t dim = 32, k = 10;
  Corpus corpus = MakeCorpus(300, dim, 12);
  LakeIndex flat_gold = BuildUnsharded(corpus, dim);
  IndexOptions sq8;
  sq8.storage = Storage::kSq8;
  for (size_t shards : {size_t{1}, size_t{4}}) {
    ShardedLakeIndex sharded = BuildSharded(corpus, dim, shards, sq8);
    double recall_sum = 0;
    for (const auto& q : corpus.join_queries) {
      auto gold = flat_gold.QueryJoinable(q, k);
      ASSERT_GE(gold.size(), k);
      recall_sum += RecallAtK(gold, sharded.QueryJoinable(q, k), k);
    }
    EXPECT_GE(recall_sum / static_cast<double>(corpus.join_queries.size()),
              0.99)
        << shards << " shards";
  }
}

TEST(ShardedLakeIndexTest, MissingShardFileIsAnErrorNotACrash) {
  const size_t dim = 8;
  Corpus corpus = MakeCorpus(30, dim, 5);
  ShardedLakeIndex index = BuildSharded(corpus, dim, 3);
  std::string path = testing::TempDir() + "/tsfm_sharded_missing.laks";
  ASSERT_TRUE(index.Save(path).ok());
  ASSERT_EQ(std::remove((path + ".shard-1").c_str()), 0);
  auto loaded = ShardedLakeIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
  std::remove((path + ".shard-0").c_str());
  std::remove((path + ".shard-2").c_str());
}

TEST(ShardedLakeIndexTest, TruncatedManifestIsAnErrorNotACrash) {
  const size_t dim = 8;
  Corpus corpus = MakeCorpus(30, dim, 6);
  ShardedLakeIndex index = BuildSharded(corpus, dim, 2);
  std::string path = testing::TempDir() + "/tsfm_sharded_trunc.laks";
  ASSERT_TRUE(index.Save(path).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  // Truncate at every prefix boundary that cuts the header or a shard name;
  // none may crash and all must fail.
  for (size_t keep : {size_t{6}, size_t{20}, bytes.size() / 2}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(ShardedLakeIndex::Load(path).ok()) << "kept " << keep;
  }
  std::remove(path.c_str());
  std::remove((path + ".shard-0").c_str());
  std::remove((path + ".shard-1").c_str());
}

TEST(ShardedLakeIndexTest, LegacyLak2FileLoadsAsOneShard) {
  const size_t dim = 10;
  Corpus corpus = MakeCorpus(25, dim, 7);
  LakeIndex single = BuildUnsharded(corpus, dim);
  std::string path = testing::TempDir() + "/tsfm_sharded_legacy_lak2.bin";
  ASSERT_TRUE(single.Save(path).ok());

  auto loaded = ShardedLakeIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_shards(), 1u);
  EXPECT_EQ(loaded.value().num_tables(), corpus.tables.size());
  for (const auto& q : corpus.join_queries) {
    EXPECT_EQ(loaded.value().QueryJoinable(q, 5), single.QueryJoinable(q, 5));
  }
  std::remove(path.c_str());
}

TEST(ShardedLakeIndexTest, LegacyHeaderlessLakeFileLoadsAsOneShard) {
  // The oldest format: magic "LAKE", dim, table records, no backend
  // metadata. It must come up as a 1-shard flat index.
  std::string path = testing::TempDir() + "/tsfm_sharded_legacy_lake.bin";
  {
    std::ofstream out(path, std::ios::binary);
    uint32_t magic = 0x4c414b45;  // "LAKE"
    uint64_t dim = 2, num_tables = 2;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(&num_tables), sizeof(num_tables));
    const std::vector<std::pair<std::string, std::vector<float>>> tables = {
        {"alpha", {1, 0}}, {"beta", {0, 1}}};
    for (const auto& [id, col] : tables) {
      uint64_t id_len = id.size(), num_cols = 1;
      out.write(reinterpret_cast<const char*>(&id_len), sizeof(id_len));
      out.write(id.data(), static_cast<std::streamsize>(id_len));
      out.write(reinterpret_cast<const char*>(&num_cols), sizeof(num_cols));
      out.write(reinterpret_cast<const char*>(col.data()),
                static_cast<std::streamsize>(col.size() * sizeof(float)));
    }
  }
  auto loaded = ShardedLakeIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_shards(), 1u);
  EXPECT_EQ(loaded.value().options().backend, IndexBackend::kFlat);
  auto ranked = loaded.value().QueryJoinable({1, 0}, 2);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0], "alpha");
  std::remove(path.c_str());
}

TEST(ShardedLakeIndexTest, GarbageAndMissingFilesRejected) {
  std::string path = testing::TempDir() + "/tsfm_sharded_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not an index of any vintage";
  }
  EXPECT_FALSE(ShardedLakeIndex::Load(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(ShardedLakeIndex::Load("/nonexistent/lake.laks").ok());
}

TEST(ShardedLakeIndexTest, HandlesAssignedInInsertionOrder) {
  const size_t dim = 4;
  ShardedLakeIndex index(dim, 4);
  Rng rng(8);
  for (size_t t = 0; t < 20; ++t) {
    size_t handle = index.AddTable("t" + std::to_string(t),
                                   {RandomVec(&rng, dim)});
    EXPECT_EQ(handle, t);
    EXPECT_EQ(index.table_id(handle), "t" + std::to_string(t));
  }
  size_t total = 0;
  for (size_t s = 0; s < index.num_shards(); ++s) total += index.shard_size(s);
  EXPECT_EQ(total, 20u);
}

TEST(ShardedLakeIndexTest, EmptyIndexQueriesAreEmpty) {
  ShardedLakeIndex index(4, 3);
  EXPECT_TRUE(index.QueryJoinable({1, 0, 0, 0}, 5).empty());
  EXPECT_TRUE(index.QueryUnionable({{1, 0, 0, 0}}, 5).empty());
}

}  // namespace
}  // namespace tsfm::search
