#include <gtest/gtest.h>

#include "text/tokenizer.h"
#include "text/vocab.h"

namespace tsfm::text {
namespace {

TEST(VocabTest, SpecialTokensFixed) {
  Vocab v;
  EXPECT_EQ(v.Id("[PAD]"), kPadId);
  EXPECT_EQ(v.Id("[UNK]"), kUnkId);
  EXPECT_EQ(v.Id("[CLS]"), kClsId);
  EXPECT_EQ(v.Id("[SEP]"), kSepId);
  EXPECT_EQ(v.Id("[MASK]"), kMaskId);
  EXPECT_EQ(v.size(), static_cast<size_t>(kNumSpecialTokens));
}

TEST(VocabTest, AddTokenIdempotent) {
  Vocab v;
  int id1 = v.AddToken("hello");
  int id2 = v.AddToken("hello");
  EXPECT_EQ(id1, id2);
  EXPECT_TRUE(v.Contains("hello"));
  EXPECT_EQ(v.TokenOf(id1), "hello");
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.Id("zzz"), kUnkId);
}

TEST(VocabTest, BuildRespectsMinCount) {
  Vocab v = Vocab::Build({"aa", "aa", "bb"}, /*min_count=*/2, 1000);
  EXPECT_TRUE(v.Contains("aa"));
  EXPECT_FALSE(v.Contains("bb"));
}

TEST(VocabTest, BuildAddsSuffixPieces) {
  Vocab v = Vocab::Build({"street"}, 1, 1000);
  EXPECT_TRUE(v.Contains("street"));
  EXPECT_TRUE(v.Contains("##treet"));
  EXPECT_TRUE(v.Contains("##t"));
}

TEST(VocabTest, BuildIsDeterministic) {
  std::vector<std::string> words = {"x", "y", "x", "z", "w", "z", "z"};
  Vocab a = Vocab::Build(words);
  Vocab b = Vocab::Build(words);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.Id("z"), b.Id("z"));
}

TEST(BasicTokenizeTest, LowercasesAndSplitsPunct) {
  auto toks = BasicTokenize("Hello, World-2024!");
  std::vector<std::string> expected = {"hello", ",", "world", "-", "2024", "!"};
  EXPECT_EQ(toks, expected);
}

TEST(BasicTokenizeTest, EmptyAndWhitespace) {
  EXPECT_TRUE(BasicTokenize("").empty());
  EXPECT_TRUE(BasicTokenize("   \t\n").empty());
}

TEST(TokenizerTest, WholeWordInVocab) {
  Vocab v = Vocab::Build({"reference", "area"});
  Tokenizer t(&v);
  auto ids = t.Encode("Reference Area");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], v.Id("reference"));
  EXPECT_EQ(ids[1], v.Id("area"));
}

TEST(TokenizerTest, GreedyLongestMatchSubwords) {
  Vocab v;
  v.AddToken("str");
  v.AddToken("##eet");
  Tokenizer t(&v);
  auto pieces = t.WordPieceIds("street");
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], v.Id("str"));
  EXPECT_EQ(pieces[1], v.Id("##eet"));
}

TEST(TokenizerTest, UndecomposableIsUnk) {
  Vocab v;
  v.AddToken("abc");
  Tokenizer t(&v);
  auto pieces = t.WordPieceIds("xyz");
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], kUnkId);
}

TEST(TokenizerTest, DecodeMergesPieces) {
  Vocab v;
  v.AddToken("str");
  v.AddToken("##eet");
  v.AddToken("main");
  Tokenizer t(&v);
  EXPECT_EQ(t.Decode({v.Id("main"), v.Id("str"), v.Id("##eet")}), "main street");
}

TEST(TokenizerTest, RoundTripThroughCorpusVocab) {
  Vocab v = Vocab::Build({"residential", "properties", "age", "price"});
  Tokenizer t(&v);
  EXPECT_EQ(t.Decode(t.Encode("residential properties age")),
            "residential properties age");
}

TEST(TokenizerTest, CharFallbackDecomposesUnseenWords) {
  // Build() adds single chars, so unseen alphabetic words decompose instead
  // of collapsing to UNK.
  Vocab v = Vocab::Build({"hello"});
  Tokenizer t(&v);
  auto pieces = t.WordPieceIds("cat");
  EXPECT_GT(pieces.size(), 1u);
  for (int id : pieces) EXPECT_NE(id, kUnkId);
}

}  // namespace
}  // namespace tsfm::text
