// QueryBatcher dispatch semantics: group formation (per-key fill to
// max_batch over the whole queue), concurrent group execution (one slow
// group must not head-of-line-block the groups behind it), and the Stop()
// drain guarantee for groups already handed to the query pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/backend.h"
#include "server/batcher.h"
#include "server/protocol.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tsfm::server {
namespace {

using namespace std::chrono_literals;

std::vector<std::vector<float>> OneColumn() { return {{1.0f, 2.0f, 3.0f}}; }

/// LakeBackend stub that records the size of every batch call it receives
/// and can gate calls with a chosen `k` on a latch, so tests can hold one
/// group inside the backend while asserting what happens to the others.
/// All waits are bounded (10s) so a dispatcher bug fails the test instead
/// of hanging it.
class StubBackend final : public LakeBackend {
 public:
  size_t dim() const override { return 3; }
  size_t num_tables() const override { return 0; }
  size_t num_columns() const override { return 0; }
  const char* kind() const override { return "stub"; }

  Result<std::vector<std::vector<std::string>>> QueryJoinableBatch(
      const std::vector<std::vector<float>>& queries, size_t k,
      ThreadPool* pool) const override {
    (void)pool;
    return Answer("join", queries.size(), k);
  }

  Result<std::vector<std::vector<std::string>>> QueryUnionableBatch(
      const std::vector<std::vector<std::vector<float>>>& queries, size_t k,
      ThreadPool* pool) const override {
    (void)pool;
    return Answer("union", queries.size(), k);
  }

  Result<std::vector<std::vector<ShardHit>>> ShardQuery(
      const std::vector<std::vector<float>>&, size_t,
      ThreadPool*) const override {
    return Status::Unimplemented("stub");
  }
  Result<std::vector<std::string>> TableIds() const override {
    return std::vector<std::string>{};
  }
  ShardHealth Health() const override { return {}; }

  /// Calls with this k block inside the backend until ReleaseGated().
  void GateOn(size_t k) {
    std::lock_guard<std::mutex> lock(mu_);
    gated_k_ = k;
  }

  /// Blocks until a gated call has entered the backend.
  bool WaitForGatedEntry() {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, 10s, [this] { return gated_entered_; });
  }

  void ReleaseGated() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  bool gated_finished() const {
    std::lock_guard<std::mutex> lock(mu_);
    return gated_finished_;
  }

  /// Batch sizes seen so far, sorted ascending for stable comparison.
  std::vector<size_t> batch_sizes() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<size_t> sizes = batch_sizes_;
    std::sort(sizes.begin(), sizes.end());
    return sizes;
  }

 private:
  Result<std::vector<std::vector<std::string>>> Answer(const std::string& op,
                                                       size_t n,
                                                       size_t k) const {
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_sizes_.push_back(n);
      if (k == gated_k_) {
        gated_entered_ = true;
        cv_.notify_all();
        cv_.wait_for(lock, 10s, [this] { return released_; });
      }
    }
    std::vector<std::vector<std::string>> ids(n);
    for (auto& list : ids) list = {op + "_k" + std::to_string(k)};
    if (k != SIZE_MAX && k == gated_k_) {
      std::lock_guard<std::mutex> lock(mu_);
      gated_finished_ = true;
    }
    return ids;
  }

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  size_t gated_k_ = SIZE_MAX;
  mutable bool gated_entered_ = false;
  mutable bool released_ = false;
  mutable bool gated_finished_ = false;
  mutable std::vector<size_t> batch_sizes_;
};

// A group stuck in the backend (cold shard, huge k) must not delay groups
// formed after it: groups run on the query pool, not on the dispatcher
// thread. With the old dispatch-thread execution the fast query below
// would block behind the gated group and the test would time out.
TEST(QueryBatcherTest, SlowGroupDoesNotBlockOtherGroups) {
  StubBackend backend;
  backend.GateOn(/*k=*/999);
  ThreadPool pool(4);
  QueryBatcher batcher(&backend, &pool, /*max_batch=*/8);

  auto slow = std::async(std::launch::async, [&] {
    return batcher.Submit(Opcode::kJoin, OneColumn(), 999);
  });
  ASSERT_TRUE(backend.WaitForGatedEntry());

  // The gated group is in flight; a different-(op, k) group must still
  // complete. Bounded wait: on regression this fails rather than hangs.
  auto fast = std::async(std::launch::async, [&] {
    return batcher.Submit(Opcode::kJoin, OneColumn(), 5);
  });
  ASSERT_EQ(fast.wait_for(10s), std::future_status::ready);
  auto fast_result = fast.get();
  ASSERT_TRUE(fast_result.ok());
  EXPECT_EQ(fast_result.value(), std::vector<std::string>{"join_k5"});
  EXPECT_FALSE(backend.gated_finished());

  backend.ReleaseGated();
  auto slow_result = slow.get();
  ASSERT_TRUE(slow_result.ok());
  EXPECT_EQ(slow_result.value(), std::vector<std::string>{"join_k999"});
}

// Group formation must split by (opcode, k) BEFORE applying the max_batch
// cap, filling each group from the whole queue. The old code took
// max_batch jobs first and then split, so an interleaved join/union burst
// yielded fragmented half-size batches (2+2 with max_batch 4) instead of
// full per-key ones (4+4).
TEST(QueryBatcherTest, MixedOpcodeBurstFormsFullPerKeyGroups) {
  StubBackend backend;
  backend.GateOn(/*k=*/1);
  // A shut-down pool rejects Submit, so every group runs inline on the
  // dispatcher thread — which serializes rounds and lets the gated plug
  // job below hold the dispatcher while the burst queues up.
  ThreadPool pool(2);
  pool.Shutdown();
  QueryBatcher batcher(&backend, &pool, /*max_batch=*/4);

  auto plug = std::async(std::launch::async, [&] {
    return batcher.Submit(Opcode::kJoin, OneColumn(), 1);
  });
  ASSERT_TRUE(backend.WaitForGatedEntry());

  // Interleave 4 join and 4 union queries with the same k while the
  // dispatcher is plugged; wait until all 8 are parked.
  std::vector<std::future<Result<std::vector<std::string>>>> burst;
  for (size_t i = 0; i < 8; ++i) {
    const Opcode op = (i % 2 == 0) ? Opcode::kJoin : Opcode::kUnion;
    burst.push_back(std::async(std::launch::async, [&, op] {
      return batcher.Submit(op, OneColumn(), 7);
    }));
  }
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (batcher.PendingForTest() < 8) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(1ms);
  }

  backend.ReleaseGated();
  ASSERT_TRUE(plug.get().ok());
  for (auto& f : burst) {
    auto result = f.get();
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().size(), 1u);
  }

  // One plug batch of 1, then one full group per key: {1, 4, 4}.
  EXPECT_EQ(backend.batch_sizes(), (std::vector<size_t>{1, 4, 4}));
  const ServerStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 9u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.max_batch, 4u);
}

// Stop() must wait out groups already handed to the query pool: every
// Submit accepted before Stop gets a real result, never a broken promise.
TEST(QueryBatcherTest, StopDrainsAcceptedAndInflightQueries) {
  StubBackend backend;
  ThreadPool pool(4);
  QueryBatcher batcher(&backend, &pool, /*max_batch=*/4);

  std::vector<std::future<Result<std::vector<std::string>>>> submits;
  for (size_t i = 0; i < 16; ++i) {
    submits.push_back(std::async(std::launch::async, [&, i] {
      return batcher.Submit(Opcode::kJoin, OneColumn(), 3 + i % 2);
    }));
  }
  batcher.Stop();

  size_t answered = 0;
  for (auto& f : submits) {
    auto result = f.get();  // a broken promise would throw here
    if (result.ok()) {
      ASSERT_EQ(result.value().size(), 1u);
      ++answered;
    }
    // !ok is the documented shutting-down rejection for late arrivals.
  }
  EXPECT_EQ(batcher.stats().requests, answered);
}

}  // namespace
}  // namespace tsfm::server
