#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "search/hnsw.h"
#include "search/knn_index.h"
#include "util/random.h"

namespace tsfm::search {
namespace {

std::vector<float> RandomUnit(size_t dim, Rng* rng) {
  std::vector<float> v(dim);
  double norm = 0;
  for (auto& x : v) {
    x = static_cast<float>(rng->Normal());
    norm += static_cast<double>(x) * x;
  }
  norm = std::sqrt(norm);
  for (auto& x : v) x = static_cast<float>(x / norm);
  return v;
}

TEST(HnswTest, EmptyIndexReturnsNothing) {
  HnswIndex index(4);
  EXPECT_TRUE(index.Search({1, 0, 0, 0}, 5).empty());
}

TEST(HnswTest, SingleItem) {
  HnswIndex index(3);
  index.Add(42, {1, 0, 0});
  auto hits = index.Search({1, 0, 0}, 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, 42u);
  EXPECT_NEAR(hits[0].second, 0.0f, 1e-5);
}

TEST(HnswTest, ZeroVectorDegradesToDistanceOne) {
  // Normalization on insert erases norms, so HNSW cannot apply the flat
  // backend's zero-norm -> kMaxCosineDistance rule: a zero-norm vector
  // degrades to the zero vector at distance 1.0 (documented in hnsw.h).
  // This pins the divergence so a silent change fails loudly.
  HnswIndex index(2);
  index.Add(0, {0, 0});
  index.Add(1, {1, 1});
  auto hits = index.Search({1, 1}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, 1u);
  EXPECT_EQ(hits[1].first, 0u);
  EXPECT_NEAR(hits[1].second, 1.0f, 1e-5);
}

TEST(HnswTest, ExactMatchRanksFirst) {
  Rng rng(1);
  HnswIndex index(16);
  std::vector<std::vector<float>> vecs;
  for (size_t i = 0; i < 200; ++i) {
    vecs.push_back(RandomUnit(16, &rng));
    index.Add(i, vecs.back());
  }
  for (size_t probe : {0u, 50u, 199u}) {
    auto hits = index.Search(vecs[probe], 5);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].first, probe);
  }
}

TEST(HnswTest, RecallAgainstBruteForce) {
  Rng rng(2);
  const size_t n = 500, dim = 24, k = 10;
  HnswIndex hnsw(dim);
  KnnIndex brute(dim, Metric::kCosine);
  std::vector<std::vector<float>> vecs;
  for (size_t i = 0; i < n; ++i) {
    vecs.push_back(RandomUnit(dim, &rng));
    hnsw.Add(i, vecs.back());
    brute.Add(i, vecs.back());
  }
  double recall_sum = 0;
  const size_t queries = 20;
  for (size_t q = 0; q < queries; ++q) {
    auto query = RandomUnit(dim, &rng);
    auto exact = brute.Search(query, k);
    auto approx = hnsw.Search(query, k);
    std::unordered_set<size_t> gold;
    for (auto& [p, d] : exact) gold.insert(p);
    size_t hits = 0;
    for (auto& [p, d] : approx) hits += gold.count(p);
    recall_sum += static_cast<double>(hits) / k;
  }
  // HNSW with default ef should stay well above 80% recall at this scale.
  EXPECT_GT(recall_sum / queries, 0.8);
}

TEST(HnswTest, DistancesAreSortedAscending) {
  Rng rng(3);
  HnswIndex index(8);
  for (size_t i = 0; i < 100; ++i) index.Add(i, RandomUnit(8, &rng));
  auto hits = index.Search(RandomUnit(8, &rng), 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i].second, hits[i - 1].second);
  }
}

TEST(HnswTest, UnnormalizedInputsHandled) {
  HnswIndex index(2);
  index.Add(0, {10, 0});  // normalized internally
  index.Add(1, {0, 0.1f});
  auto hits = index.Search({5, 0}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, 0u);
}

TEST(HnswTest, KLargerThanIndexSize) {
  Rng rng(4);
  HnswIndex index(4);
  for (size_t i = 0; i < 3; ++i) index.Add(i, RandomUnit(4, &rng));
  EXPECT_LE(index.Search(RandomUnit(4, &rng), 50).size(), 3u);
}

TEST(HnswTest, DegenerateQueriesReturnEmpty) {
  Rng rng(5);
  HnswIndex index(4);
  for (size_t i = 0; i < 10; ++i) index.Add(i, RandomUnit(4, &rng));
  EXPECT_TRUE(index.Search(RandomUnit(4, &rng), 0).empty());  // k == 0
  EXPECT_TRUE(index.Search({1, 0}, 5).empty());               // dim mismatch
}

TEST(HnswTest, RecallAtTenAtLeastPointNineVsExact) {
  // The flat and HNSW backends index the same random corpus; with a wide
  // search beam the graph must recover >= 90% of the exact top-10.
  Rng rng(6);
  const size_t n = 1000, dim = 24, k = 10;
  HnswOptions options;
  options.ef_search = 128;
  HnswIndex hnsw(dim, options);
  KnnIndex brute(dim, Metric::kCosine);
  for (size_t i = 0; i < n; ++i) {
    auto vec = RandomUnit(dim, &rng);
    hnsw.Add(i, vec);
    brute.Add(i, vec);
  }
  double recall_sum = 0;
  const size_t queries = 30;
  for (size_t q = 0; q < queries; ++q) {
    auto query = RandomUnit(dim, &rng);
    std::unordered_set<size_t> gold;
    for (auto& [p, d] : brute.Search(query, k)) gold.insert(p);
    size_t hits = 0;
    for (auto& [p, d] : hnsw.Search(query, k)) hits += gold.count(p);
    recall_sum += static_cast<double>(hits) / k;
  }
  EXPECT_GE(recall_sum / queries, 0.9);
}

TEST(HnswTest, SaveLoadAnswersIdentically) {
  Rng rng(7);
  const size_t dim = 12;
  HnswIndex index(dim);
  for (size_t i = 0; i < 120; ++i) index.Add(i * 7, RandomUnit(dim, &rng));

  std::stringstream stream;
  ASSERT_TRUE(index.Save(stream).ok());
  uint32_t tag = 0;
  stream.read(reinterpret_cast<char*>(&tag), sizeof(tag));
  ASSERT_EQ(tag, HnswIndex::kFormatTag);
  auto loaded = HnswIndex::Load(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), index.size());
  for (size_t q = 0; q < 10; ++q) {
    auto query = RandomUnit(dim, &rng);
    EXPECT_EQ(loaded.value().Search(query, 10), index.Search(query, 10));
  }
}

TEST(HnswTest, LoadRejectsCorruptEntryPoint) {
  Rng rng(9);
  HnswIndex index(4);
  for (size_t i = 0; i < 20; ++i) index.Add(i, RandomUnit(4, &rng));
  std::stringstream stream;
  ASSERT_TRUE(index.Save(stream).ok());
  std::string bytes = stream.str();
  // Header layout after the 4-byte tag: metric (u32), m, ef_construction,
  // ef_search, seed (u64 each), dim, n (u64 each), max_level (i32),
  // entry_point (u32).
  const size_t entry_point_offset =
      4 + sizeof(uint32_t) + 6 * sizeof(uint64_t) + sizeof(int32_t);
  uint32_t bogus = 1000;
  bytes.replace(entry_point_offset, sizeof(bogus),
                reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  std::stringstream corrupt(bytes);
  uint32_t tag = 0;
  corrupt.read(reinterpret_cast<char*>(&tag), sizeof(tag));
  EXPECT_FALSE(HnswIndex::Load(corrupt).ok());
}

TEST(HnswTest, L2NeighboursAgreeWithFlatScan) {
  // Metric parity: with IndexOptions.metric = kL2 both backends must rank
  // by Euclidean distance. On a small corpus with a wide beam the graph
  // recovers (nearly) the exact L2 top-10.
  Rng rng(10);
  const size_t n = 200, dim = 12, k = 10;
  HnswOptions options;
  options.ef_search = 128;
  HnswIndex hnsw(dim, options, Metric::kL2);
  KnnIndex brute(dim, Metric::kL2);
  for (size_t i = 0; i < n; ++i) {
    // Deliberately unnormalized: under L2 the vector length matters, which
    // is exactly what cosine would erase.
    std::vector<float> vec(dim);
    for (auto& x : vec) x = static_cast<float>(rng.Normal() * 3.0);
    hnsw.Add(i, vec);
    brute.Add(i, vec);
  }
  EXPECT_EQ(hnsw.metric(), Metric::kL2);
  double recall_sum = 0;
  const size_t queries = 20;
  for (size_t q = 0; q < queries; ++q) {
    std::vector<float> query(dim);
    for (auto& x : query) x = static_cast<float>(rng.Normal() * 3.0);
    auto exact = brute.Search(query, k);
    auto approx = hnsw.Search(query, k);
    ASSERT_FALSE(exact.empty());
    // Top-1 must agree and carry the same distance value.
    ASSERT_FALSE(approx.empty());
    EXPECT_EQ(approx[0].first, exact[0].first);
    EXPECT_NEAR(approx[0].second, exact[0].second, 1e-4);
    std::unordered_set<size_t> gold;
    for (auto& [p, d] : exact) gold.insert(p);
    size_t hits = 0;
    for (auto& [p, d] : approx) hits += gold.count(p);
    recall_sum += static_cast<double>(hits) / k;
  }
  EXPECT_GE(recall_sum / queries, 0.9);
}

TEST(HnswTest, LegacyPreMetricStreamLoadsAsCosine) {
  // Streams written before the metric field carry the old "HNSW" tag and no
  // metric u32; they must load as cosine with identical answers. Synthesize
  // one by re-tagging a current stream and dropping the metric field.
  Rng rng(12);
  const size_t dim = 8;
  HnswIndex index(dim);
  for (size_t i = 0; i < 80; ++i) index.Add(i, RandomUnit(dim, &rng));
  std::stringstream stream;
  ASSERT_TRUE(index.Save(stream).ok());
  std::string bytes = stream.str();
  const uint32_t legacy_tag = HnswIndex::kLegacyFormatTag;
  std::string legacy_bytes(reinterpret_cast<const char*>(&legacy_tag),
                           sizeof(legacy_tag));
  legacy_bytes += bytes.substr(sizeof(uint32_t) + sizeof(uint32_t));

  std::stringstream legacy(legacy_bytes);
  auto loaded = LoadVectorIndex(legacy);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->backend(), IndexBackend::kHnsw);
  EXPECT_EQ(loaded.value()->metric(), Metric::kCosine);
  auto query = RandomUnit(dim, &rng);
  EXPECT_EQ(loaded.value()->Search(query, 5), index.Search(query, 5));
}

TEST(HnswTest, SaveLoadPreservesL2Metric) {
  Rng rng(11);
  HnswIndex index(6, HnswOptions{}, Metric::kL2);
  for (size_t i = 0; i < 50; ++i) {
    std::vector<float> vec(6);
    for (auto& x : vec) x = static_cast<float>(rng.Normal());
    index.Add(i, vec);
  }
  std::stringstream stream;
  ASSERT_TRUE(index.Save(stream).ok());
  uint32_t tag = 0;
  stream.read(reinterpret_cast<char*>(&tag), sizeof(tag));
  auto loaded = HnswIndex::Load(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().metric(), Metric::kL2);
  std::vector<float> query(6, 0.5f);
  EXPECT_EQ(loaded.value().Search(query, 5), index.Search(query, 5));
}

TEST(HnswTest, LoadedIndexAcceptsFurtherAdds) {
  Rng rng(8);
  HnswIndex index(8);
  for (size_t i = 0; i < 50; ++i) index.Add(i, RandomUnit(8, &rng));
  std::stringstream stream;
  ASSERT_TRUE(index.Save(stream).ok());
  uint32_t tag = 0;
  stream.read(reinterpret_cast<char*>(&tag), sizeof(tag));
  auto loaded = HnswIndex::Load(stream);
  ASSERT_TRUE(loaded.ok());
  auto probe = RandomUnit(8, &rng);
  loaded.value().Add(999, probe);
  auto hits = loaded.value().Search(probe, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, 999u);
}

}  // namespace
}  // namespace tsfm::search
