#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "search/lake_index.h"

namespace tsfm::search {
namespace {

LakeIndex MakeToyIndex() {
  LakeIndex index(3);
  index.AddTable("sales_q1", {{1, 0, 0}, {0, 1, 0}});
  index.AddTable("sales_q2", {{0.9f, 0.1f, 0}, {0, 0.9f, 0.1f}});
  index.AddTable("weather", {{0, 0, 1}});
  return index;
}

TEST(LakeIndexTest, JoinQueryRanksByNearestColumn) {
  LakeIndex index = MakeToyIndex();
  auto ranked = index.QueryJoinable({1, 0, 0}, 3);
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], "sales_q1");
  EXPECT_EQ(ranked[1], "sales_q2");
}

TEST(LakeIndexTest, UnionQueryUsesAllColumns) {
  LakeIndex index = MakeToyIndex();
  auto ranked = index.QueryUnionable({{1, 0, 0}, {0, 1, 0}}, 3);
  ASSERT_GE(ranked.size(), 2u);
  // sales_q1 matches both query columns exactly.
  EXPECT_EQ(ranked[0], "sales_q1");
}

TEST(LakeIndexTest, RespectsK) {
  LakeIndex index = MakeToyIndex();
  EXPECT_LE(index.QueryJoinable({1, 0, 0}, 1).size(), 1u);
}

TEST(LakeIndexTest, SaveLoadRoundTrip) {
  LakeIndex index = MakeToyIndex();
  std::string path = testing::TempDir() + "/tsfm_lake_index.bin";
  ASSERT_TRUE(index.Save(path).ok());

  auto loaded = LakeIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_tables(), 3u);
  EXPECT_EQ(loaded.value().dim(), 3u);
  auto ranked = loaded.value().QueryJoinable({1, 0, 0}, 3);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0], "sales_q1");
  std::remove(path.c_str());
}

TEST(LakeIndexTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/tsfm_lake_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage bytes here";
  }
  EXPECT_FALSE(LakeIndex::Load(path).ok());
  std::remove(path.c_str());
}

TEST(LakeIndexTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LakeIndex::Load("/nonexistent/lake.bin").ok());
}

TEST(LakeIndexTest, EmptyIndexQueriesAreEmpty) {
  LakeIndex index(4);
  EXPECT_TRUE(index.QueryJoinable({1, 0, 0, 0}, 5).empty());
  EXPECT_TRUE(index.QueryUnionable({{1, 0, 0, 0}}, 5).empty());
}

}  // namespace
}  // namespace tsfm::search
